#!/usr/bin/env bash
# CI cluster e2e gate: the multi-process sharding topology out of process.
#
#   ci/e2e_cluster.sh [BUILD_DIR]
#
# Leg 1 (reference): a single-process `service_demo partitioned --serve`
# ingests a synProbe chain under a parked watcher; the pushed EVENT MATCH
# lines are the expected multiset.
#
# Leg 2 (cluster): two worker daemons + a coordinator serving the same
# unix-socket protocol. The same watcher/feeder scripts run against it,
# with a kill -9 of worker 0 mid-stream and a restart from its frame log.
# The recovered cluster must deliver the byte-identical sorted multiset —
# nothing lost to the crash, nothing delivered twice — and the restarted
# worker must prove it actually replayed its log on reconnect.
#
# Leg 3 (observability) is interleaved with leg 2: workers run with
# --http-port 0, the coordinator /metrics must federate the workers'
# edges_fed counters exactly, /cluster.json and /epochs.json must report
# the live topology and epoch phases, and /healthz must flip to degraded
# after the kill -9 and back to ok once the restarted worker reconnects.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/service_demo"
CLIENT="$BUILD_DIR/examples/streamworks_client"
TMP="/tmp/streamworks_e2e_cluster_$$"
SSOCK="$TMP/single.sock"
CSOCK="$TMP/cluster.sock"
mkdir -p "$TMP/w0" "$TMP/w1"

SINGLE_PID=""
W0_PID=""
W1_PID=""
COORD_PID=""

fail() {
  echo "e2e_cluster: FAIL: $*" >&2
  for log in single.server single.watcher single.feeder \
             w0 w0.restarted w1 coord cluster.watcher \
             cluster.feeder_a cluster.feeder_b; do
    echo "--- $log log ---" >&2
    cat "$TMP/$log.log" >&2 2>/dev/null || true
  done
  exit 1
}
cleanup() {
  kill $SINGLE_PID $W0_PID $W1_PID $COORD_PID 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

# The workload: a 60-edge synProbe path 1->2->...->61. Every consecutive
# edge pair is a two-hop chain match, so completions need partial matches
# that hop between shards (vertex i and i+1 rarely share an owner). The
# split point puts edge 30->31's chain partner on the far side of the
# worker crash: its match only exists if the frame log brought the first
# half back.
N_EDGES=60
N_MATCHES=$((N_EDGES - 1))
seq 1 "$N_EDGES" \
  | awk '{print "FEED " $1 " Host " $1+1 " Host synProbe " $1}' \
  > "$TMP/feed_all.txt"
head -n $((N_EDGES / 2)) "$TMP/feed_all.txt" > "$TMP/feed_a.txt"
echo "FLUSH" >> "$TMP/feed_a.txt"
tail -n +$((N_EDGES / 2 + 1)) "$TMP/feed_all.txt" > "$TMP/feed_b.txt"
echo "FLUSH" >> "$TMP/feed_b.txt"
cat "$TMP/feed_a.txt" "$TMP/feed_b.txt" > "$TMP/feed_single.txt"

cat > "$TMP/subscribe.txt" <<'EOF'
DEFINE chain
  node a Host
  node b Host
  node c Host
  edge a b synProbe
  edge b c synProbe
  window 1000
END
SESSION watcher
SUBMIT watcher live chain CAP 256
STREAM watcher live
EOF

await_banner() {  # await_banner LOGFILE PATTERN PID WHAT
  for _ in $(seq 1 150); do
    grep -q "$2" "$1" 2>/dev/null && return 0
    kill -0 "$3" 2>/dev/null || fail "$4 died before ready"
    sleep 0.1
  done
  fail "$4 never became ready ($2)"
}

run_watcher_and_feeders() {  # run_watcher_and_feeders SOCK NAME FEED...
  local sock="$1" name="$2"
  shift 2
  timeout 120 "$CLIENT" --unix "$sock" --expect-events "$N_MATCHES" \
    --timeout-ms 90000 < "$TMP/subscribe.txt" \
    > "$TMP/$name.watcher.log" 2>&1 &
  WATCHER_PID=$!
  await_banner "$TMP/$name.watcher.log" "OK stream watcher.live" \
    "$WATCHER_PID" "$name watcher"
}

# --- Leg 1: single-process reference ---------------------------------------

"$SERVER" partitioned --serve --unix "$SSOCK" --http 0 \
  > "$TMP/single.server.log" 2>&1 &
SINGLE_PID=$!
await_banner "$TMP/single.server.log" "^SERVING " "$SINGLE_PID" \
  "single-process server"

run_watcher_and_feeders "$SSOCK" single
timeout 60 "$CLIENT" --unix "$SSOCK" < "$TMP/feed_single.txt" \
  > "$TMP/single.feeder.log" 2>&1 || fail "single-process feeder failed"
wait "$WATCHER_PID" || fail "single-process watcher failed"

sed -n 's/^EVENT MATCH watcher\.live //p' "$TMP/single.watcher.log" \
  | sort > "$TMP/single.matches"
MATCHES=$(wc -l < "$TMP/single.matches")
[ "$MATCHES" -eq "$N_MATCHES" ] \
  || fail "reference run pushed $MATCHES of $N_MATCHES chain matches"

kill -TERM "$SINGLE_PID"
wait "$SINGLE_PID" || fail "single-process server exited non-zero"
SINGLE_PID=""

# --- Leg 2: coordinator + 2 workers, kill -9 mid-stream --------------------

# Raw HTTP/1.1 GET over bash's /dev/tcp (no curl dependency). The
# endpoint closes after one response, so read-to-EOF is the framing.
scrape() {
  local port="$1" target="$2" out="$3"
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: e2e\r\n\r\n' "$target" >&3
  cat <&3 > "$out"
  exec 3<&- 3>&- || true
}

"$SERVER" --role worker --listen-port 0 --http-port 0 --data-dir "$TMP/w0" \
  > "$TMP/w0.log" 2>&1 &
W0_PID=$!
"$SERVER" --role worker --listen-port 0 --http-port 0 --data-dir "$TMP/w1" \
  > "$TMP/w1.log" 2>&1 &
W1_PID=$!
await_banner "$TMP/w0.log" "^WORKER port=" "$W0_PID" "worker 0"
await_banner "$TMP/w1.log" "^WORKER port=" "$W1_PID" "worker 1"
W0_PORT=$(sed -n 's/^WORKER port=\([0-9]*\).*$/\1/p' "$TMP/w0.log")
W1_PORT=$(sed -n 's/^WORKER port=\([0-9]*\).*$/\1/p' "$TMP/w1.log")
W0_HTTP=$(sed -n 's/^WORKER port=[0-9]* http=\([0-9]*\)$/\1/p' "$TMP/w0.log")
W1_HTTP=$(sed -n 's/^WORKER port=[0-9]* http=\([0-9]*\)$/\1/p' "$TMP/w1.log")
[ -n "$W0_HTTP" ] && [ -n "$W1_HTTP" ] \
  || fail "worker banners carry no http= port (w0='$W0_HTTP' w1='$W1_HTTP')"

"$SERVER" --role coordinator \
  --workers "127.0.0.1:$W0_PORT,127.0.0.1:$W1_PORT" \
  --serve --unix "$CSOCK" --http 0 > "$TMP/coord.log" 2>&1 &
COORD_PID=$!
await_banner "$TMP/coord.log" "^SERVING " "$COORD_PID" "coordinator"

run_watcher_and_feeders "$CSOCK" cluster

# First half; its trailing FLUSH barriers the cluster, so both frame logs
# hold the applied prefix before the crash.
timeout 60 "$CLIENT" --unix "$CSOCK" < "$TMP/feed_a.txt" \
  > "$TMP/cluster.feeder_a.log" 2>&1 || fail "cluster feeder (first half) failed"

# --- Leg 3a: one pane of glass over the healthy cluster --------------------

COORD_HTTP=$(sed -n 's/^SERVING .*http=\([0-9][0-9]*\).*/\1/p' "$TMP/coord.log")
[ -n "$COORD_HTTP" ] || fail "coordinator SERVING banner has no http= port"

# Federation exactness: the coordinator's merged edges_fed{role="worker"}
# series must equal the sum of the workers' own scrapes. Nothing is
# feeding, so all three scrapes see the same settled counters.
scrape "$COORD_HTTP" /metrics "$TMP/coord.metrics" \
  || fail "scrape coordinator /metrics failed"
head -1 "$TMP/coord.metrics" | grep -q "HTTP/1.1 200 OK" \
  || fail "coordinator /metrics not 200"
scrape "$W0_HTTP" /metrics "$TMP/w0.metrics" || fail "scrape w0 /metrics failed"
scrape "$W1_HTTP" /metrics "$TMP/w1.metrics" || fail "scrape w1 /metrics failed"
FED_SERIES='streamworks_edges_fed_total{role="worker"}'
COORD_FED=$(awk -v s="$FED_SERIES" '$1 == s {print $2}' "$TMP/coord.metrics")
W0_FED=$(awk -v s="$FED_SERIES" '$1 == s {print $2}' "$TMP/w0.metrics")
W1_FED=$(awk -v s="$FED_SERIES" '$1 == s {print $2}' "$TMP/w1.metrics")
[ -n "$COORD_FED" ] && [ -n "$W0_FED" ] && [ -n "$W1_FED" ] \
  || fail "edges_fed series missing (coord='$COORD_FED' w0='$W0_FED' w1='$W1_FED')"
[ "$COORD_FED" -eq $((W0_FED + W1_FED)) ] \
  || fail "federated edges_fed $COORD_FED != worker sum $((W0_FED + W1_FED))"
grep -q '^streamworks_epoch_phase_us_bucket{phase="barrier"' "$TMP/coord.metrics" \
  || fail "coordinator /metrics missing epoch phase histograms"
grep -q '^streamworks_stage_duration_us_bucket{role="worker"' \
  "$TMP/coord.metrics" \
  || fail "coordinator /metrics missing federated worker stage histograms"

# Worker-local endpoints: /healthz, /trace.json alongside /metrics.
scrape "$W0_HTTP" /healthz "$TMP/w0.healthz" || fail "scrape w0 /healthz failed"
grep -q '"status":"ok"' "$TMP/w0.healthz" || fail "w0 /healthz not ok"
grep -q '"role":"worker"' "$TMP/w0.healthz" || fail "w0 /healthz has no role"
scrape "$W0_HTTP" /trace.json "$TMP/w0.trace" || fail "scrape w0 /trace failed"
grep -q '"stages"' "$TMP/w0.trace" || fail "w0 /trace.json has no stages"

# Cluster topology + epoch timeline endpoints.
scrape "$COORD_HTTP" /cluster.json "$TMP/cluster.json" \
  || fail "scrape /cluster.json failed"
grep -q '"healthy":true' "$TMP/cluster.json" || fail "/cluster.json not healthy"
CONNECTED=$(grep -o '"connected":true' "$TMP/cluster.json" | wc -l)
[ "$CONNECTED" -eq 2 ] \
  || fail "/cluster.json shows $CONNECTED of 2 workers connected"
grep -q '"wal_seq":[1-9]' "$TMP/cluster.json" \
  || fail "/cluster.json has no advanced wal_seq"
scrape "$COORD_HTTP" /epochs.json "$TMP/epochs.json" \
  || fail "scrape /epochs.json failed"
grep -q '"barrier_us"' "$TMP/epochs.json" \
  || fail "/epochs.json carries no phase durations"
grep -q '"edges":[1-9]' "$TMP/epochs.json" \
  || fail "/epochs.json traced no edges"
scrape "$COORD_HTTP" /healthz "$TMP/coord.healthz.ok" \
  || fail "scrape coordinator /healthz failed"
grep -q '"status":"ok"' "$TMP/coord.healthz.ok" \
  || fail "coordinator /healthz not ok with a healthy cluster"

# The crash: no goodbye, no final sync — the frame log's page-cache
# contents are all that survives.
kill -9 "$W0_PID"
wait "$W0_PID" 2>/dev/null || true
W0_PID=""

# --- Leg 3b: /healthz must see the corpse ----------------------------------
# A health scrape only re-pulls once the cached report ages past
# metrics_cache_ms (1s default); the re-pull on the dead link then fails
# fast and flips the worker to disconnected. Poll until the cache window
# lapses — well under the 15s staleness threshold, so this proves the
# disconnect path, not the staleness fallback.
DEGRADED=""
for _ in $(seq 1 25); do
  scrape "$COORD_HTTP" /healthz "$TMP/coord.healthz.dead" \
    || fail "scrape coordinator /healthz after kill failed"
  if grep -q '"status":"degraded"' "$TMP/coord.healthz.dead"; then
    DEGRADED=1
    break
  fi
  sleep 0.2
done
[ -n "$DEGRADED" ] || fail "coordinator /healthz still ok after worker kill -9"
scrape "$COORD_HTTP" /cluster.json "$TMP/cluster.dead.json" \
  || fail "scrape /cluster.json after kill failed"
grep -q '"healthy":false' "$TMP/cluster.dead.json" \
  || fail "/cluster.json still healthy after worker kill -9"
grep -q '"connected":false' "$TMP/cluster.dead.json" \
  || fail "/cluster.json shows no disconnected worker after kill -9"

# Restart on the same port and frame log; the coordinator's reconnect
# (retrying inside its 30s recovery budget) replays it.
"$SERVER" --role worker --listen-port "$W0_PORT" --data-dir "$TMP/w0" \
  > "$TMP/w0.restarted.log" 2>&1 &
W0_PID=$!
await_banner "$TMP/w0.restarted.log" "^WORKER port=" "$W0_PID" \
  "restarted worker 0"

# Second half: edge 31 completes the chain whose first hop (edge 30)
# predates the crash — deliverable only from recovered state.
timeout 90 "$CLIENT" --unix "$CSOCK" < "$TMP/feed_b.txt" \
  > "$TMP/cluster.feeder_b.log" 2>&1 || fail "cluster feeder (second half) failed"
wait "$WATCHER_PID" || fail "cluster watcher failed (missing matches?)"

# --- Leg 3c: recovery visible on the pane of glass -------------------------
# The reconnect healed the link and the next pull reaches the restarted
# worker, whose report carries its replay counter.
scrape "$COORD_HTTP" /healthz "$TMP/coord.healthz.recovered" \
  || fail "scrape coordinator /healthz after recovery failed"
grep -q '"status":"ok"' "$TMP/coord.healthz.recovered" \
  || fail "coordinator /healthz not ok after worker recovery"
scrape "$COORD_HTTP" /cluster.json "$TMP/cluster.recovered.json" \
  || fail "scrape /cluster.json after recovery failed"
grep -q '"healthy":true' "$TMP/cluster.recovered.json" \
  || fail "/cluster.json not healthy after worker recovery"
grep -q '"replayed_frames":[1-9]' "$TMP/cluster.recovered.json" \
  || fail "/cluster.json shows no replayed frames on the restarted worker"

sed -n 's/^EVENT MATCH watcher\.live //p' "$TMP/cluster.watcher.log" \
  | sort > "$TMP/cluster.matches"
cmp "$TMP/single.matches" "$TMP/cluster.matches" || {
  diff "$TMP/single.matches" "$TMP/cluster.matches" >&2 || true
  fail "cluster matches are not byte-identical to the single-process run"
}

# The restarted worker must have replayed its log, not started fresh; its
# graceful-shutdown summary carries the counter.
kill -TERM "$W0_PID"
for _ in $(seq 1 100); do
  kill -0 "$W0_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$W0_PID" 2>/dev/null && fail "restarted worker did not exit on SIGTERM"
wait "$W0_PID" || fail "restarted worker exited non-zero"
W0_PID=""
REPLAYED=$(sed -n 's/.*replayed=\([0-9]*\).*/\1/p' "$TMP/w0.restarted.log")
[ -n "$REPLAYED" ] && [ "$REPLAYED" -gt 0 ] \
  || fail "restarted worker reports no replayed frames (replayed=$REPLAYED)"

# Clean teardown of the rest of the cluster.
kill -TERM "$COORD_PID"
for _ in $(seq 1 100); do
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$COORD_PID" 2>/dev/null && fail "coordinator did not exit on SIGTERM"
wait "$COORD_PID" || fail "coordinator exited non-zero"
COORD_PID=""
grep -q "^SHUTDOWN " "$TMP/coord.log" || fail "coordinator: no SHUTDOWN summary"
kill -TERM "$W1_PID"
wait "$W1_PID" || fail "worker 1 exited non-zero"
W1_PID=""

echo "e2e_cluster: PASS ($N_MATCHES cross-shard chain matches byte-identical" \
     "to single-process; worker 0 kill -9 mid-stream, replayed=$REPLAYED" \
     "frames on restart)"
