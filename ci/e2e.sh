#!/usr/bin/env bash
# CI e2e gate: the first out-of-process exercise of the whole stack.
#
#   ci/e2e.sh [BUILD_DIR]
#
# Starts `service_demo --serve` (partitioned two-shard group behind the
# QueryService behind the SocketServer) on a unix socket, then drives it
# with two independent streamworks_client processes: a watcher that
# subscribes and push-streams, and a feeder that ingests the probes the
# watcher is waiting for. A second leg repeats the exercise with the
# feeder in --binary mode (FEEDB frames), asserting the binary wire path
# pushes exactly as many matches as the text leg did. Fails on any
# timeout, transport error, ERR response, missing match, or an unclean
# server shutdown.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/service_demo"
CLIENT="$BUILD_DIR/examples/streamworks_client"
SOCK="/tmp/streamworks_e2e_$$.sock"
SERVER_LOG="/tmp/streamworks_e2e_$$.server.log"
WATCHER_LOG="/tmp/streamworks_e2e_$$.watcher.log"
FEEDER_LOG="/tmp/streamworks_e2e_$$.feeder.log"
WATCHER2_LOG="/tmp/streamworks_e2e_$$.watcher2.log"
FEEDER2_LOG="/tmp/streamworks_e2e_$$.feeder2.log"

fail() {
  echo "e2e: FAIL: $*" >&2
  echo "--- server log ---" >&2;  cat "$SERVER_LOG" >&2 || true
  echo "--- watcher log ---" >&2; cat "$WATCHER_LOG" >&2 || true
  echo "--- feeder log ---" >&2;  cat "$FEEDER_LOG" >&2 || true
  echo "--- watcher2 log ---" >&2; cat "$WATCHER2_LOG" >&2 || true
  echo "--- feeder2 log ---" >&2;  cat "$FEEDER2_LOG" >&2 || true
  exit 1
}
touch "$WATCHER2_LOG" "$FEEDER2_LOG"

"$SERVER" partitioned --serve --unix "$SOCK" > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# The SERVING banner is the readiness signal (it prints after the bind,
# so it also implies the socket file exists).
for _ in $(seq 1 100); do
  grep -q "^SERVING " "$SERVER_LOG" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before binding"
  sleep 0.1
done
grep -q "^SERVING " "$SERVER_LOG" || fail "no SERVING banner"
[ -S "$SOCK" ] || fail "SERVING printed but $SOCK is missing"

# Watcher first (it parks waiting for 3 pushed events), then the feeder.
timeout 60 "$CLIENT" --unix "$SOCK" --expect-events 3 \
  < ci/e2e_subscribe.txt > "$WATCHER_LOG" 2>&1 &
WATCHER_PID=$!
# The watcher must have subscribed before the feeder fires; its SUBMIT is
# the 3rd response, so a short grep-poll on its log is enough.
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$WATCHER_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$WATCHER_LOG" || fail "watcher never subscribed"

timeout 60 "$CLIENT" --unix "$SOCK" < ci/e2e_feed.txt > "$FEEDER_LOG" 2>&1 \
  || fail "feeder client failed (exit $?)"
wait "$WATCHER_PID" || fail "watcher client failed (exit $?)"

# The watcher saw exactly its three pushed matches...
EVENTS=$(grep -c "^EVENT MATCH watcher.live" "$WATCHER_LOG" || true)
[ "$EVENTS" -eq 3 ] || fail "expected 3 pushed matches, saw $EVENTS"
# ...and the feeder's STATS observed the multi-tenant picture: the
# watcher's session was opened (sessions=1), and it is either still
# listed or — if it already collected its events and quit — reclaimed
# (disconnect compaction erases the tombstone; both outcomes are correct,
# which one we see is a benign race against the watcher's exit).
grep -q "service: sessions=1 " "$FEEDER_LOG" || fail "feeder STATS missing sessions=1"
grep -qE "'watcher'|reclaimed=[1-9]" "$FEEDER_LOG" \
  || fail "feeder STATS shows neither the watcher session nor its reclamation"
grep -q "edges_fed=3" "$FEEDER_LOG" || fail "feeder STATS missing edges_fed=3"

# --- Binary leg: same scenario, feeder speaks FEEDB frames ------------------
# The watcher's text-protocol view is identical either way; only the
# feeder's wire encoding changes. Its pushed-match count must equal the
# text leg's — the codec proven out-of-process on every push.

timeout 60 "$CLIENT" --unix "$SOCK" --expect-events 3 \
  < ci/e2e_subscribe.txt > "$WATCHER2_LOG" 2>&1 &
WATCHER2_PID=$!
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$WATCHER2_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$WATCHER2_LOG" \
  || fail "binary-leg watcher never subscribed"

timeout 60 "$CLIENT" --unix "$SOCK" \
  --feed-file ci/e2e_edges_binary.txt --binary --batch 2 \
  < ci/e2e_feed_tail.txt > "$FEEDER2_LOG" 2>&1 \
  || fail "binary feeder client failed (exit $?)"
wait "$WATCHER2_PID" || fail "binary-leg watcher client failed (exit $?)"

# The binary frames were acknowledged per frame (3 edges over frames of
# --batch 2: 2 + 1)...
grep -q "OK feedb 3 0" "$FEEDER2_LOG" \
  || fail "binary feeder missing 'OK feedb 3 0' acknowledgement"
# ...the watcher saw exactly as many pushed matches as the text leg...
EVENTS2=$(grep -c "^EVENT MATCH watcher.live" "$WATCHER2_LOG" || true)
[ "$EVENTS2" -eq "$EVENTS" ] \
  || fail "binary leg pushed $EVENTS2 matches, text leg pushed $EVENTS"
# ...and the service counted both legs' edges.
grep -q "edges_fed=6" "$FEEDER2_LOG" || fail "feeder2 STATS missing edges_fed=6"

# Graceful shutdown: SIGTERM must produce the SHUTDOWN summary and exit 0.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
# A wedged shutdown must fail the gate now, not hang `wait` for the job's
# 6-hour ceiling.
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit after SIGTERM"
if wait "$SERVER_PID"; then :; else fail "server exited non-zero"; fi
grep -q "^SHUTDOWN " "$SERVER_LOG" || fail "no SHUTDOWN summary"
[ -S "$SOCK" ] && fail "socket file not unlinked on shutdown"

echo "e2e: PASS ($EVENTS text + $EVENTS2 binary pushed matches, clean shutdown)"
