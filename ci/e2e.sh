#!/usr/bin/env bash
# CI e2e gate: the first out-of-process exercise of the whole stack.
#
#   ci/e2e.sh [BUILD_DIR]
#
# Starts `service_demo --serve` (partitioned two-shard group behind the
# QueryService behind the SocketServer) on a unix socket, then drives it
# with two independent streamworks_client processes: a watcher that
# subscribes and push-streams, and a feeder that ingests the probes the
# watcher is waiting for. A second leg repeats the exercise with the
# feeder in --binary mode (FEEDB frames), asserting the binary wire path
# pushes exactly as many matches as the text leg did. Fails on any
# timeout, transport error, ERR response, missing match, or an unclean
# server shutdown.
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/examples/service_demo"
CLIENT="$BUILD_DIR/examples/streamworks_client"
SOCK="/tmp/streamworks_e2e_$$.sock"
SERVER_LOG="/tmp/streamworks_e2e_$$.server.log"
WATCHER_LOG="/tmp/streamworks_e2e_$$.watcher.log"
FEEDER_LOG="/tmp/streamworks_e2e_$$.feeder.log"
WATCHER2_LOG="/tmp/streamworks_e2e_$$.watcher2.log"
FEEDER2_LOG="/tmp/streamworks_e2e_$$.feeder2.log"
DATA_DIR="/tmp/streamworks_e2e_$$.data"
RSOCK="/tmp/streamworks_e2e_$$.r.sock"
RSERVER1_LOG="/tmp/streamworks_e2e_$$.rserver1.log"
RSERVER2_LOG="/tmp/streamworks_e2e_$$.rserver2.log"
RWATCHER1_LOG="/tmp/streamworks_e2e_$$.rwatcher1.log"
RFEEDER1_LOG="/tmp/streamworks_e2e_$$.rfeeder1.log"
RWATCHER2_LOG="/tmp/streamworks_e2e_$$.rwatcher2.log"
RFEEDER2_LOG="/tmp/streamworks_e2e_$$.rfeeder2.log"
OBS_WATCHER_LOG="/tmp/streamworks_e2e_$$.obswatcher.log"
OBS_FEEDER_LOG="/tmp/streamworks_e2e_$$.obsfeeder.log"
OBS_STATS_LOG="/tmp/streamworks_e2e_$$.obsstats.log"
OBS_DIR="/tmp/streamworks_e2e_$$.obs"
FAN_SERVER_LOG="/tmp/streamworks_e2e_$$.fanserver.log"
FAN_FEEDER_LOG="/tmp/streamworks_e2e_$$.fanfeeder.log"
FAN_STATS_LOG="/tmp/streamworks_e2e_$$.fanstats.log"
FAN_DIR="/tmp/streamworks_e2e_$$.fanout"

fail() {
  echo "e2e: FAIL: $*" >&2
  echo "--- server log ---" >&2;  cat "$SERVER_LOG" >&2 || true
  echo "--- watcher log ---" >&2; cat "$WATCHER_LOG" >&2 || true
  echo "--- feeder log ---" >&2;  cat "$FEEDER_LOG" >&2 || true
  echo "--- watcher2 log ---" >&2; cat "$WATCHER2_LOG" >&2 || true
  echo "--- feeder2 log ---" >&2;  cat "$FEEDER2_LOG" >&2 || true
  echo "--- recovery server 1 log ---" >&2; cat "$RSERVER1_LOG" >&2 || true
  echo "--- recovery server 2 log ---" >&2; cat "$RSERVER2_LOG" >&2 || true
  echo "--- recovery watcher 1 log ---" >&2; cat "$RWATCHER1_LOG" >&2 || true
  echo "--- recovery feeder 1 log ---" >&2; cat "$RFEEDER1_LOG" >&2 || true
  echo "--- recovery watcher 2 log ---" >&2; cat "$RWATCHER2_LOG" >&2 || true
  echo "--- recovery feeder 2 log ---" >&2; cat "$RFEEDER2_LOG" >&2 || true
  echo "--- obs watcher log ---" >&2; cat "$OBS_WATCHER_LOG" >&2 || true
  echo "--- obs stats log ---" >&2; cat "$OBS_STATS_LOG" >&2 || true
  echo "--- fanout server log ---" >&2; cat "$FAN_SERVER_LOG" >&2 || true
  echo "--- fanout feeder log ---" >&2; cat "$FAN_FEEDER_LOG" >&2 || true
  echo "--- fanout stats log ---" >&2; cat "$FAN_STATS_LOG" >&2 || true
  exit 1
}
touch "$WATCHER2_LOG" "$FEEDER2_LOG" "$RSERVER1_LOG" "$RSERVER2_LOG" \
      "$RWATCHER1_LOG" "$RFEEDER1_LOG" "$RWATCHER2_LOG" "$RFEEDER2_LOG" \
      "$OBS_WATCHER_LOG" "$OBS_FEEDER_LOG" "$OBS_STATS_LOG" \
      "$FAN_SERVER_LOG" "$FAN_FEEDER_LOG" "$FAN_STATS_LOG"
mkdir -p "$OBS_DIR" "$FAN_DIR"

"$SERVER" partitioned --serve --unix "$SOCK" --http 0 > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!
RSERVER_PID=""
FAN_SERVER_PID=""
trap 'kill "$SERVER_PID" $RSERVER_PID $FAN_SERVER_PID 2>/dev/null || true; rm -rf "$DATA_DIR" "$OBS_DIR" "$FAN_DIR"' EXIT

# The SERVING banner is the readiness signal (it prints after the bind,
# so it also implies the socket file exists).
for _ in $(seq 1 100); do
  grep -q "^SERVING " "$SERVER_LOG" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died before binding"
  sleep 0.1
done
grep -q "^SERVING " "$SERVER_LOG" || fail "no SERVING banner"
[ -S "$SOCK" ] || fail "SERVING printed but $SOCK is missing"

# Watcher first (it parks waiting for 3 pushed events), then the feeder.
timeout 60 "$CLIENT" --unix "$SOCK" --expect-events 3 \
  < ci/e2e_subscribe.txt > "$WATCHER_LOG" 2>&1 &
WATCHER_PID=$!
# The watcher must have subscribed before the feeder fires; its SUBMIT is
# the 3rd response, so a short grep-poll on its log is enough.
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$WATCHER_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$WATCHER_LOG" || fail "watcher never subscribed"

timeout 60 "$CLIENT" --unix "$SOCK" < ci/e2e_feed.txt > "$FEEDER_LOG" 2>&1 \
  || fail "feeder client failed (exit $?)"
wait "$WATCHER_PID" || fail "watcher client failed (exit $?)"

# The watcher saw exactly its three pushed matches...
EVENTS=$(grep -c "^EVENT MATCH watcher.live" "$WATCHER_LOG" || true)
[ "$EVENTS" -eq 3 ] || fail "expected 3 pushed matches, saw $EVENTS"
# ...and the feeder's STATS observed the multi-tenant picture: the
# watcher's session was opened (sessions=1), and it is either still
# listed or — if it already collected its events and quit — reclaimed
# (disconnect compaction erases the tombstone; both outcomes are correct,
# which one we see is a benign race against the watcher's exit).
grep -q "service: sessions=1 " "$FEEDER_LOG" || fail "feeder STATS missing sessions=1"
grep -qE "'watcher'|reclaimed=[1-9]" "$FEEDER_LOG" \
  || fail "feeder STATS shows neither the watcher session nor its reclamation"
grep -q "edges_fed=3" "$FEEDER_LOG" || fail "feeder STATS missing edges_fed=3"

# --- Binary leg: same scenario, feeder speaks FEEDB frames ------------------
# The watcher's text-protocol view is identical either way; only the
# feeder's wire encoding changes. Its pushed-match count must equal the
# text leg's — the codec proven out-of-process on every push.

timeout 60 "$CLIENT" --unix "$SOCK" --expect-events 3 \
  < ci/e2e_subscribe.txt > "$WATCHER2_LOG" 2>&1 &
WATCHER2_PID=$!
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$WATCHER2_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$WATCHER2_LOG" \
  || fail "binary-leg watcher never subscribed"

timeout 60 "$CLIENT" --unix "$SOCK" \
  --feed-file ci/e2e_edges_binary.txt --binary --batch 2 \
  < ci/e2e_feed_tail.txt > "$FEEDER2_LOG" 2>&1 \
  || fail "binary feeder client failed (exit $?)"
wait "$WATCHER2_PID" || fail "binary-leg watcher client failed (exit $?)"

# The binary frames were acknowledged per frame (3 edges over frames of
# --batch 2: 2 + 1)...
grep -q "OK feedb 3 0" "$FEEDER2_LOG" \
  || fail "binary feeder missing 'OK feedb 3 0' acknowledgement"
# ...the watcher saw exactly as many pushed matches as the text leg...
EVENTS2=$(grep -c "^EVENT MATCH watcher.live" "$WATCHER2_LOG" || true)
[ "$EVENTS2" -eq "$EVENTS" ] \
  || fail "binary leg pushed $EVENTS2 matches, text leg pushed $EVENTS"
# ...and the service counted both legs' edges.
grep -q "edges_fed=6" "$FEEDER2_LOG" || fail "feeder2 STATS missing edges_fed=6"

# --- Observability leg: HTTP scrapes under a live streaming watcher --------
# The --http listener rides the same poll loop as the line protocol, so a
# scrape sees exactly the state the text STATS verb sees. Assert the two
# tell the same story, then feed more edges under a parked watcher and
# assert the scrape advanced with the stream.

HTTP_PORT=$(sed -n 's/^SERVING .*http=\([0-9][0-9]*\).*/\1/p' "$SERVER_LOG")
[ -n "$HTTP_PORT" ] || fail "SERVING banner has no http= port"

# Raw HTTP/1.1 GET over bash's /dev/tcp (no curl dependency). The
# endpoint closes after one response, so read-to-EOF is the framing.
scrape() {
  local port="$1" target="$2" out="$3"
  exec 3<>"/dev/tcp/127.0.0.1/$port" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: e2e\r\n\r\n' "$target" >&3
  cat <&3 > "$out"
  exec 3<&- 3>&- || true
}

timeout 60 "$CLIENT" --unix "$SOCK" --expect-events 3 \
  < ci/e2e_subscribe.txt > "$OBS_WATCHER_LOG" 2>&1 &
OBS_WATCHER_PID=$!
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$OBS_WATCHER_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$OBS_WATCHER_LOG" \
  || fail "obs watcher never subscribed"

scrape "$HTTP_PORT" /metrics "$OBS_DIR/metrics" || fail "scrape /metrics failed"
head -1 "$OBS_DIR/metrics" | grep -q "HTTP/1.1 200 OK" || fail "/metrics not 200"
grep -q "Content-Type: text/plain; version=0.0.4" "$OBS_DIR/metrics" \
  || fail "/metrics wrong content type"
# Exposition-format shape: HELP + TYPE per family, histograms close +Inf.
grep -q "^# HELP streamworks_edges_fed_total " "$OBS_DIR/metrics" \
  || fail "/metrics missing HELP for edges_fed"
grep -q "^# TYPE streamworks_edges_fed_total counter$" "$OBS_DIR/metrics" \
  || fail "/metrics missing TYPE for edges_fed"
grep -q "^# TYPE streamworks_stage_duration_us histogram$" "$OBS_DIR/metrics" \
  || fail "/metrics missing the stage-duration histogram"
grep -q 'le="+Inf"' "$OBS_DIR/metrics" || fail "/metrics histogram lacks +Inf"
grep -q "^streamworks_frontend_http_requests_total " "$OBS_DIR/metrics" \
  || fail "/metrics missing frontend http counter"

# The text STATS verb and the scrape must agree on edges_fed; TRACE must
# answer over the same wire.
METRICS_FED=$(awk '$1 == "streamworks_edges_fed_total" {print $2}' \
  "$OBS_DIR/metrics")
timeout 60 "$CLIENT" --unix "$SOCK" < ci/e2e_obs_stats.txt \
  > "$OBS_STATS_LOG" 2>&1 || fail "obs stats client failed (exit $?)"
STATS_FED=$(sed -n 's/.* edges_fed=\([0-9][0-9]*\).*/\1/p' "$OBS_STATS_LOG" \
  | head -1)
[ -n "$METRICS_FED" ] && [ "$METRICS_FED" = "$STATS_FED" ] \
  || fail "edges_fed disagrees: STATS=$STATS_FED /metrics=$METRICS_FED"
grep -q "^OK trace n=" "$OBS_STATS_LOG" || fail "TRACE verb did not answer"

scrape "$HTTP_PORT" /stats.json "$OBS_DIR/stats.json" \
  || fail "scrape /stats.json failed"
grep -q "\"edges_fed\":$STATS_FED" "$OBS_DIR/stats.json" \
  || fail "/stats.json edges_fed disagrees with STATS"
scrape "$HTTP_PORT" /healthz "$OBS_DIR/healthz" || fail "scrape /healthz failed"
grep -q '"status":"ok"' "$OBS_DIR/healthz" || fail "/healthz not ok"
scrape "$HTTP_PORT" /queries.json "$OBS_DIR/queries.json" \
  || fail "scrape /queries.json failed"
grep -q '"query_name":"sweep"' "$OBS_DIR/queries.json" \
  || fail "/queries.json missing the live query"

# promtool, when present, vets the full exposition document.
if command -v promtool >/dev/null 2>&1; then
  awk 'body {print} /^\r?$/ {body=1}' "$OBS_DIR/metrics" \
    | promtool check metrics || fail "promtool rejected /metrics"
fi

# Feed under the parked watcher: the stream and the scrape advance together.
timeout 60 "$CLIENT" --unix "$SOCK" < ci/e2e_obs_feed.txt \
  > "$OBS_FEEDER_LOG" 2>&1 || fail "obs feeder client failed (exit $?)"
wait "$OBS_WATCHER_PID" || fail "obs watcher client failed (exit $?)"
OBS_EVENTS=$(grep -c "^EVENT MATCH watcher.live" "$OBS_WATCHER_LOG" || true)
[ "$OBS_EVENTS" -eq 3 ] || fail "obs watcher saw $OBS_EVENTS matches, want 3"
scrape "$HTTP_PORT" /metrics "$OBS_DIR/metrics2" \
  || fail "post-feed scrape failed"
grep -q "^streamworks_edges_fed_total $((STATS_FED + 3))$" "$OBS_DIR/metrics2" \
  || fail "post-feed scrape did not advance edges_fed to $((STATS_FED + 3))"

# Graceful shutdown: SIGTERM must produce the SHUTDOWN summary and exit 0.
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
# A wedged shutdown must fail the gate now, not hang `wait` for the job's
# 6-hour ceiling.
kill -0 "$SERVER_PID" 2>/dev/null && fail "server did not exit after SIGTERM"
if wait "$SERVER_PID"; then :; else fail "server exited non-zero"; fi
grep -q "^SHUTDOWN " "$SERVER_LOG" || fail "no SHUTDOWN summary"
[ -S "$SOCK" ] && fail "socket file not unlinked on shutdown"

# --- Crash-recovery leg: kill -9 mid-stream, restart from --data-dir --------
# A durable daemon (--snapshot-every 4) takes a snapshot at edge 4, so
# edges 5-6 live only in the WAL when the harness kill -9s it. The
# restarted process must recover the watcher's session + subscription
# from the snapshot, replay the WAL tail, and resume pushing matches to
# the re-attached watcher — the resumed count asserts it.

"$SERVER" partitioned --serve --unix "$RSOCK" \
  --data-dir "$DATA_DIR" --snapshot-every 4 > "$RSERVER1_LOG" 2>&1 &
RSERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "^SERVING " "$RSERVER1_LOG" 2>/dev/null && break
  kill -0 "$RSERVER_PID" 2>/dev/null || fail "durable server died before binding"
  sleep 0.1
done
grep -q "^SERVING " "$RSERVER1_LOG" || fail "durable server: no SERVING banner"
# A fresh data dir is a fresh start, stated on the banner.
grep -q "^RECOVERED snapshot=- wal_seq=0 " "$RSERVER1_LOG" \
  || fail "durable server: missing fresh-start RECOVERED banner"

timeout 60 "$CLIENT" --unix "$RSOCK" --expect-events 6 \
  < ci/e2e_subscribe.txt > "$RWATCHER1_LOG" 2>&1 &
RWATCHER1_PID=$!
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$RWATCHER1_LOG" && break
  sleep 0.1
done
grep -q "OK stream watcher.live" "$RWATCHER1_LOG" \
  || fail "recovery watcher never subscribed"

timeout 60 "$CLIENT" --unix "$RSOCK" < ci/e2e_recover_feed.txt \
  > "$RFEEDER1_LOG" 2>&1 || fail "recovery feeder failed (exit $?)"
wait "$RWATCHER1_PID" || fail "recovery watcher failed (exit $?)"
REVENTS1=$(grep -c "^EVENT MATCH watcher.live" "$RWATCHER1_LOG" || true)
[ "$REVENTS1" -eq 6 ] || fail "expected 6 pre-crash matches, saw $REVENTS1"
ls "$DATA_DIR"/snap-*.snap >/dev/null 2>&1 \
  || fail "no snapshot written by --snapshot-every"

# The crash: no SIGTERM courtesy, no final snapshot.
kill -9 "$RSERVER_PID"
wait "$RSERVER_PID" 2>/dev/null || true

"$SERVER" partitioned --serve --unix "$RSOCK" --http 0 \
  --data-dir "$DATA_DIR" --snapshot-every 4 > "$RSERVER2_LOG" 2>&1 &
RSERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "^SERVING " "$RSERVER2_LOG" 2>/dev/null && break
  kill -0 "$RSERVER_PID" 2>/dev/null || fail "restarted server died (recovery crash?)"
  sleep 0.1
done
grep -q "^SERVING " "$RSERVER2_LOG" || fail "restarted server: no SERVING banner"
# Snapshot at edge 4 + WAL tail of 2: the banner must say exactly that.
grep -Eq "^RECOVERED snapshot=.*snap-0000000000000004\.snap wal_seq=6 window_edges=4 sessions=1 subscriptions=1 replayed_edges=2$" \
  "$RSERVER2_LOG" || fail "restarted server: wrong RECOVERED banner"

timeout 60 "$CLIENT" --unix "$RSOCK" --expect-events 2 \
  < ci/e2e_recover_attach.txt > "$RWATCHER2_LOG" 2>&1 &
RWATCHER2_PID=$!
for _ in $(seq 1 100); do
  grep -q "OK stream watcher.live" "$RWATCHER2_LOG" && break
  sleep 0.1
done
grep -q "OK attach watcher id=0 subs=live:active" "$RWATCHER2_LOG" \
  || fail "re-attach did not resolve the recovered session"
grep -q "OK stream watcher.live" "$RWATCHER2_LOG" \
  || fail "re-attached watcher never streamed"

timeout 60 "$CLIENT" --unix "$RSOCK" < ci/e2e_recover_feed_tail.txt \
  > "$RFEEDER2_LOG" 2>&1 || fail "post-recovery feeder failed (exit $?)"
wait "$RWATCHER2_PID" || fail "post-recovery watcher failed (exit $?)"
REVENTS2=$(grep -c "^EVENT MATCH watcher.live" "$RWATCHER2_LOG" || true)
[ "$REVENTS2" -eq 2 ] || fail "expected 2 resumed matches, saw $REVENTS2"
# STATS surfaces the durability counters and the recovered session.
grep -q "persist: wal_seq=8 " "$RFEEDER2_LOG" \
  || fail "post-recovery STATS missing persist counters (wal_seq=8)"
grep -Eq "recovered\(edges=4,sessions=1,subs=1,replayed=2\)" "$RFEEDER2_LOG" \
  || fail "post-recovery STATS missing recovery counters"
grep -q "'watcher'" "$RFEEDER2_LOG" \
  || fail "post-recovery STATS does not list the recovered session"

# /healthz on the durable daemon reports WAL/snapshot freshness: the WAL
# ran 2 edges past the recovered snapshot plus the 2 resumed matches.
RHTTP_PORT=$(sed -n 's/^SERVING .*http=\([0-9][0-9]*\).*/\1/p' "$RSERVER2_LOG")
[ -n "$RHTTP_PORT" ] || fail "durable SERVING banner has no http= port"
scrape "$RHTTP_PORT" /healthz "$OBS_DIR/healthz_durable" \
  || fail "scrape durable /healthz failed"
grep -q '"persist_enabled":true' "$OBS_DIR/healthz_durable" \
  || fail "durable /healthz missing persist_enabled"
grep -q '"wal_seq":8' "$OBS_DIR/healthz_durable" \
  || fail "durable /healthz wrong wal_seq"
grep -q '"status":"ok"' "$OBS_DIR/healthz_durable" \
  || fail "durable /healthz not ok"

# Graceful shutdown of the durable daemon writes a final snapshot.
kill -TERM "$RSERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$RSERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$RSERVER_PID" 2>/dev/null && fail "durable server did not exit after SIGTERM"
if wait "$RSERVER_PID"; then :; else fail "durable server exited non-zero"; fi
grep -q "^SNAPSHOT final wal_seq=8 " "$RSERVER2_LOG" \
  || fail "no final shutdown snapshot"

# --- Bench smoke: the stage hooks must not wreck FeedBatch ingest ----------
# One tiny repetition of each arm proves the benchmark (the overhead gate
# measured in bench-results/BENCH_obs.json) still builds and runs; the
# real before/after numbers are committed, not re-measured in CI.
if [ -x "$BUILD_DIR/bench/bench_micro" ]; then
  timeout 120 "$BUILD_DIR/bench/bench_micro" \
    --benchmark_filter=BM_ServiceFeedBatch --benchmark_min_time=0.05 \
    > "$OBS_DIR/bench_smoke" 2>&1 || fail "bench smoke failed"
  grep -q "BM_ServiceFeedBatch/0" "$OBS_DIR/bench_smoke" \
    || fail "bench smoke missing hooks-off arm"
  grep -q "BM_ServiceFeedBatch/1" "$OBS_DIR/bench_smoke" \
    || fail "bench smoke missing hooks-on arm"
fi

# --- Fanout leg: 64 streaming watchers + one deliberately-stalled reader ----
# A multi-loop (epoll) frontend with a tiny write high-water: 64 watcher
# processes each subscribe + push-stream on their own connection while one
# raw /dev/tcp connection subscribes CAP 4 POLICY drop_oldest and then
# never reads. Every healthy watcher must still receive all matches, and
# STATS must show the backpressure localized to the stalled subscription.

FAN_EDGES=2000
FAN_WATCHERS=64
"$SERVER" partitioned --serve --tcp 0 --io-loops 4 \
  --max-connections $((FAN_WATCHERS + 8)) \
  --write-high-water 2048 --so-sndbuf 4096 > "$FAN_SERVER_LOG" 2>&1 &
FAN_SERVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "^SERVING " "$FAN_SERVER_LOG" 2>/dev/null && break
  kill -0 "$FAN_SERVER_PID" 2>/dev/null || fail "fanout server died before binding"
  sleep 0.1
done
grep -q "^SERVING " "$FAN_SERVER_LOG" || fail "fanout server: no SERVING banner"
FAN_PORT=$(sed -n 's/^SERVING tcp=\([0-9][0-9]*\).*/\1/p' "$FAN_SERVER_LOG")
[ -n "$FAN_PORT" ] || fail "fanout SERVING banner has no tcp= port"

# The stalled reader: a bash fd, commands written by hand. Its setup
# responses are consumed (so the subscription provably exists before the
# feed), then the fd is simply never read again.
exec 4<>"/dev/tcp/127.0.0.1/$FAN_PORT" || fail "stalled reader cannot connect"
printf 'DEFINE sweep\nnode a Host\nnode b Host\nedge a b synProbe\nwindow 1000000\nEND\nSESSION stalled\nSUBMIT stalled live sweep CAP 4 POLICY drop_oldest\nSTREAM stalled live\n' >&4
FAN_TERMS=0
while [ "$FAN_TERMS" -lt 9 ]; do
  IFS= read -r -t 10 -u 4 line || fail "stalled reader setup timed out"
  case "$line" in
    ERR*) fail "stalled reader setup refused: $line" ;;
    .*) FAN_TERMS=$((FAN_TERMS + 1)) ;;
  esac
done

FAN_WATCHER_PIDS=()
for i in $(seq 0 $((FAN_WATCHERS - 1))); do
  {
    printf 'DEFINE sweep\nnode a Host\nnode b Host\nedge a b synProbe\nwindow 1000000\nEND\n'
    printf 'SESSION w%d\nSUBMIT w%d live sweep CAP %d\nSTREAM w%d live\n' \
      "$i" "$i" $((FAN_EDGES + 16)) "$i"
  } > "$FAN_DIR/sub_$i.txt"
  timeout 120 "$CLIENT" --tcp "127.0.0.1:$FAN_PORT" \
    --expect-events "$FAN_EDGES" --timeout-ms 90000 \
    < "$FAN_DIR/sub_$i.txt" > "$FAN_DIR/watcher_$i.log" 2>&1 &
  FAN_WATCHER_PIDS+=($!)
done
for i in $(seq 0 $((FAN_WATCHERS - 1))); do
  for _ in $(seq 1 200); do
    grep -q "OK stream w$i.live" "$FAN_DIR/watcher_$i.log" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "OK stream w$i.live" "$FAN_DIR/watcher_$i.log" \
    || fail "fanout watcher $i never subscribed"
done

seq 1 "$FAN_EDGES" \
  | awk '{print "FEED " 2*$1 " Host " 2*$1+1 " Host synProbe " $1}' \
  > "$FAN_DIR/feed.txt"
timeout 120 "$CLIENT" --tcp "127.0.0.1:$FAN_PORT" \
  --feed-file "$FAN_DIR/feed.txt" < ci/e2e_feed_tail.txt \
  > "$FAN_FEEDER_LOG" 2>&1 || fail "fanout feeder failed (exit $?)"

# Healthy watchers all drain the full stream even though the stalled
# reader's connection has been wedged since the first kilobytes.
for i in $(seq 0 $((FAN_WATCHERS - 1))); do
  wait "${FAN_WATCHER_PIDS[$i]}" || fail "fanout watcher $i failed (exit $?)"
  FAN_EVENTS=$(grep -c "^EVENT MATCH w$i.live" "$FAN_DIR/watcher_$i.log" || true)
  [ "$FAN_EVENTS" -eq "$FAN_EDGES" ] \
    || fail "fanout watcher $i saw $FAN_EVENTS of $FAN_EDGES matches"
done

# STATS (fresh connection): the stalled subscription alone dropped, and
# the per-loop split of the multi-loop frontend is visible.
timeout 60 "$CLIENT" --tcp "127.0.0.1:$FAN_PORT" < ci/e2e_obs_stats.txt \
  > "$FAN_STATS_LOG" 2>&1 || fail "fanout stats client failed (exit $?)"
STALLED_DROPPED=$(awk "/^session .*'stalled'/{s=1;next} /^session /{s=0} \
  s && /dropped=/{if (match(\$0, /dropped=[0-9]+/)) \
  print substr(\$0, RSTART+8, RLENGTH-8); exit}" "$FAN_STATS_LOG")
[ -n "$STALLED_DROPPED" ] && [ "$STALLED_DROPPED" -gt 0 ] \
  || fail "stalled subscription shows no drops (dropped=$STALLED_DROPPED)"
grep -q "^io_loop 3: " "$FAN_STATS_LOG" \
  || fail "STATS missing the per-loop split (io_loop 3)"

exec 4<&- 4>&- || true
kill -TERM "$FAN_SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$FAN_SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$FAN_SERVER_PID" 2>/dev/null \
  && fail "fanout server did not exit after SIGTERM"
if wait "$FAN_SERVER_PID"; then :; else fail "fanout server exited non-zero"; fi
FAN_SERVER_PID=""

echo "e2e: PASS ($EVENTS text + $EVENTS2 binary pushed matches, clean shutdown;" \
     "crash-recovery: $REVENTS1 pre-crash + $REVENTS2 resumed matches;" \
     "obs: /metrics agreed with STATS at edges_fed=$STATS_FED," \
     "advanced to $((STATS_FED + 3)) under a live watcher;" \
     "fanout: $FAN_WATCHERS watchers x $FAN_EDGES matches delivered," \
     "stalled reader throttled alone with dropped=$STALLED_DROPPED)"
