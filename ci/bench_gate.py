#!/usr/bin/env python3
"""Perf-regression gate over the bench JSON artifacts.

Compares freshly-produced bench results (bench-results/bench_*.json,
written by the bench binaries during the CI Bench smoke step) against the
committed baselines (bench-results/BENCH_*.json). A scenario fails the
gate when a higher-is-better throughput metric lands below
baseline * (1 - tolerance).

Design choices for a shared-runner world:

  * The default tolerance is generous (25%): CI machines are noisy
    neighbours, and the gate's job is to catch the 2x cliff a refactor
    introduces, not a 10% wobble.
  * Scenarios are matched by their "scenario" key and compared only when
    present on both sides, so adding or retiring a scenario never breaks
    the gate; it reports (but does not fail on) baseline scenarios that
    disappeared from the fresh run.
  * Only throughput-like metrics (events/edges per second) gate.
    Latency percentiles ride along in the JSON for humans but are far too
    machine-dependent to block a merge on.
  * A missing fresh file is skipped with a note (the smoke step may run a
    subset); a missing *baseline* for a present fresh file is also only a
    note, so brand-new benches can land before their first baseline.
  * --strict inverts the lenient-by-default posture for runs that are
    supposed to be complete (the nightly job): a committed baseline whose
    fresh counterpart is missing, lacks a scenario, or ran at a different
    workload size FAILS instead of skipping. Without it, a bench that
    silently stopped producing a scenario would pass the gate forever.

The obs-overhead gate is different in kind: BENCH_obs.json carries its
own acceptance threshold (overhead.gate_pct, from the PR that measured
it), so the gate re-checks median_cpu_pct <= gate_pct on whichever file
is present (fresh if produced, else the committed baseline's
self-consistency).

Usage:
  ci/bench_gate.py [--results DIR] [--baseline DIR] [--tolerance 0.25]
                   [--strict]
  ci/bench_gate.py --self-test
"""

import argparse
import json
import pathlib
import sys

# Fresh-file name -> committed baseline name. bench_micro's Google
# Benchmark JSON and the smoke wall-time roll-up are deliberately absent:
# neither carries scenario-keyed throughput rows.
PAIRS = [
    ("bench_net.json", "BENCH_net.json"),
    ("bench_net_fanout.json", "BENCH_net_fanout.json"),
    ("bench_recovery.json", "BENCH_recovery.json"),
    ("bench_cluster.json", "BENCH_cluster.json"),
]

# Higher-is-better metrics, in the order a bench is likely to define
# them. Every other numeric field (latency ms, byte counts, setup time)
# is informational only.
THROUGHPUT_KEYS = ("ingest_eps", "deliver_mps", "deliver_eps", "eps")


def load(path):
    with open(path) as f:
        return json.load(f)


def index_rows(doc):
    """scenario -> row, for any bench doc with a rows[] of scenarios."""
    return {
        row["scenario"]: row
        for row in doc.get("rows", [])
        if "scenario" in row
    }


def workload_edges(doc, row):
    """A row's workload size: per-row edges, else the doc-wide count."""
    return row.get("edges", doc.get("edges"))


def gate_throughput(fresh, baseline, tolerance, label, report, strict=False):
    """Appends (ok, message) findings; returns the number of failures."""
    failures = 0
    fresh_rows = index_rows(fresh)
    base_rows = index_rows(baseline)
    for scenario, base_row in sorted(base_rows.items()):
        fresh_row = fresh_rows.get(scenario)
        if fresh_row is None:
            if strict:
                failures += 1
                report.append(
                    (False, f"{label}: '{scenario}' absent from fresh run "
                            "(strict)"))
            else:
                report.append(
                    (True, f"{label}: '{scenario}' absent from fresh run "
                           "(skipped)"))
            continue
        # Throughput at a downsized workload is dominated by fixed costs
        # (server start, file create), so only like-for-like sizes gate.
        fresh_edges = workload_edges(fresh, fresh_row)
        base_edges = workload_edges(baseline, base_row)
        if fresh_edges != base_edges:
            if strict:
                failures += 1
                report.append(
                    (False, f"{label}: '{scenario}' workload {fresh_edges} "
                            f"!= baseline {base_edges} edges (strict)"))
            else:
                report.append(
                    (True, f"{label}: '{scenario}' workload {fresh_edges} "
                           f"!= baseline {base_edges} edges (skipped)"))
            continue
        for key in THROUGHPUT_KEYS:
            base_value = base_row.get(key)
            fresh_value = fresh_row.get(key)
            if not isinstance(base_value, (int, float)) or base_value <= 0:
                continue
            if not isinstance(fresh_value, (int, float)):
                failures += 1
                report.append(
                    (False, f"{label}: '{scenario}' lost metric {key}"))
                continue
            floor = base_value * (1.0 - tolerance)
            ratio = fresh_value / base_value
            if fresh_value < floor:
                failures += 1
                report.append(
                    (False,
                     f"{label}: '{scenario}' {key} {fresh_value:.0f} is "
                     f"{ratio:.2f}x baseline {base_value:.0f} "
                     f"(floor {floor:.0f})"))
            else:
                report.append(
                    (True,
                     f"{label}: '{scenario}' {key} {ratio:.2f}x baseline"))
    return failures


def gate_obs_overhead(doc, label, report):
    """Re-checks an observability overhead block against its recorded
    budget. BENCH_obs.json carries median_cpu_pct (stage hooks on a
    CPU-bound path); bench_cluster.json carries median_ingest_pct (wall
    slowdown of the latency-bound cluster ingest under live scraping)."""
    overhead = doc.get("overhead", {})
    measured = overhead.get("median_ingest_pct",
                            overhead.get("median_cpu_pct"))
    budget = overhead.get("gate_pct")
    if not isinstance(measured, (int, float)) or not isinstance(
            budget, (int, float)):
        report.append(
            (False, f"{label}: overhead median pct / gate_pct missing"))
        return 1
    if measured > budget:
        report.append(
            (False, f"{label}: observability overhead {measured:.2f}% "
                    f"exceeds its {budget:.2f}% budget"))
        return 1
    report.append(
        (True, f"{label}: observability overhead {measured:.2f}% within "
               f"{budget:.2f}% budget"))
    return 0


def run_gate(results_dir, baseline_dir, tolerance, strict=False):
    report = []
    failures = 0
    for fresh_name, base_name in PAIRS:
        fresh_path = results_dir / fresh_name
        base_path = baseline_dir / base_name
        if not fresh_path.exists():
            if strict and base_path.exists():
                failures += 1
                report.append(
                    (False, f"{fresh_name}: committed baseline {base_name} "
                            "has no fresh results (strict)"))
            else:
                report.append(
                    (True, f"{fresh_name}: no fresh results (skipped)"))
            continue
        if not base_path.exists():
            report.append(
                (True, f"{fresh_name}: no committed baseline yet (skipped)"))
            continue
        failures += gate_throughput(load(fresh_path), load(base_path),
                                    tolerance, fresh_name, report, strict)
    obs_fresh = results_dir / "bench_obs.json"
    obs_base = baseline_dir / "BENCH_obs.json"
    if obs_fresh.exists():
        failures += gate_obs_overhead(load(obs_fresh), "bench_obs.json",
                                      report)
    elif obs_base.exists():
        failures += gate_obs_overhead(load(obs_base),
                                      "BENCH_obs.json (committed)", report)
    # Cluster observability rides the same budget discipline: the fresh
    # bench_cluster.json carries its own overhead block (paired
    # obs-off/obs-on CPU at 2 workers) with a recorded gate_pct.
    cluster_fresh = results_dir / "bench_cluster.json"
    cluster_base = baseline_dir / "BENCH_cluster.json"
    if cluster_fresh.exists() and "overhead" in load(cluster_fresh):
        failures += gate_obs_overhead(load(cluster_fresh),
                                      "bench_cluster.json (obs overhead)",
                                      report)
    elif cluster_base.exists() and "overhead" in load(cluster_base):
        failures += gate_obs_overhead(
            load(cluster_base), "BENCH_cluster.json (committed obs overhead)",
            report)
    return failures, report


def self_test():
    """The gate gates itself: a clean fresh run must pass, a degraded one
    must fail, and noise inside the tolerance must not trip it."""
    baseline = {
        "bench": "net_fanout",
        "rows": [
            {"scenario": "loops1 c100", "deliver_eps": 100000.0,
             "p99_ms": 40.0},
            {"scenario": "loops4 c1000", "deliver_eps": 400000.0,
             "p99_ms": 90.0},
        ],
    }
    clean = {
        "bench": "net_fanout",
        "rows": [
            # -20% and +10%: both inside the default 25% tolerance.
            {"scenario": "loops1 c100", "deliver_eps": 80000.0,
             "p99_ms": 70.0},  # latency regressions never gate
            {"scenario": "loops4 c1000", "deliver_eps": 440000.0,
             "p99_ms": 95.0},
        ],
    }
    degraded = {
        "bench": "net_fanout",
        "rows": [
            {"scenario": "loops1 c100", "deliver_eps": 60000.0},  # -40%
            {"scenario": "loops4 c1000", "deliver_eps": 410000.0},
        ],
    }
    downsized = {
        "bench": "net_fanout",
        "edges": 100,  # smoke-sized workload: must skip, not fail
        "rows": [
            {"scenario": "loops1 c100", "deliver_eps": 1000.0},
            {"scenario": "loops4 c1000", "deliver_eps": 1000.0},
        ],
    }
    partial = {
        "bench": "net_fanout",
        "rows": [
            # One baseline scenario missing: lenient skips, strict fails.
            {"scenario": "loops1 c100", "deliver_eps": 100000.0},
        ],
    }
    report = []
    ok_failures = gate_throughput(clean, baseline, 0.25, "self-test", report)
    bad_failures = gate_throughput(degraded, baseline, 0.25, "self-test",
                                   report)
    downsized_failures = gate_throughput(downsized, baseline, 0.25,
                                         "self-test", report)
    partial_lenient = gate_throughput(partial, baseline, 0.25, "self-test",
                                      report)
    partial_strict = gate_throughput(partial, baseline, 0.25, "self-test",
                                     report, strict=True)
    downsized_strict = gate_throughput(downsized, baseline, 0.25,
                                       "self-test", report, strict=True)
    obs_pass = {"overhead": {"median_cpu_pct": 1.6, "gate_pct": 3.0}}
    obs_fail = {"overhead": {"median_cpu_pct": 4.5, "gate_pct": 3.0}}
    obs_ok = gate_obs_overhead(obs_pass, "self-test obs", report)
    obs_bad = gate_obs_overhead(obs_fail, "self-test obs", report)
    obs_absent = gate_obs_overhead({}, "self-test obs", report)
    cluster_pass = {"overhead": {"median_ingest_pct": 0.8, "gate_pct": 3.0}}
    cluster_fail = {"overhead": {"median_ingest_pct": 5.1, "gate_pct": 3.0}}
    cluster_ok = gate_obs_overhead(cluster_pass, "self-test cluster", report)
    cluster_bad = gate_obs_overhead(cluster_fail, "self-test cluster", report)
    checks = [
        (ok_failures == 0, "clean fresh run passes"),
        (bad_failures == 1, "40% degradation fails exactly one scenario"),
        (downsized_failures == 0, "size-mismatched workload skips, not fails"),
        (partial_lenient == 0, "missing scenario skips by default"),
        (partial_strict == 1, "missing scenario fails under --strict"),
        (downsized_strict == 2, "size mismatch fails under --strict"),
        (obs_ok == 0, "in-budget obs overhead passes"),
        (obs_bad == 1, "over-budget obs overhead fails"),
        (obs_absent == 1, "overhead block with missing fields fails"),
        (cluster_ok == 0, "in-budget cluster ingest overhead passes"),
        (cluster_bad == 1, "over-budget cluster ingest overhead fails"),
    ]
    all_ok = True
    for ok, what in checks:
        print(f"{'ok' if ok else 'FAIL'}: {what}")
        all_ok = all_ok and ok
    return 0 if all_ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="bench-results",
                        help="directory with fresh bench_*.json")
    parser.add_argument("--baseline", default="bench-results",
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional throughput drop (0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="fail (instead of skip) when a committed "
                             "baseline has no matching fresh scenario at "
                             "the same workload size")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes clean and fails "
                             "degraded synthetic results, then exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    failures, report = run_gate(pathlib.Path(args.results),
                                pathlib.Path(args.baseline), args.tolerance,
                                args.strict)
    for ok, message in report:
        print(f"{'ok' if ok else 'REGRESSION'}: {message}")
    if failures:
        print(f"\nbench gate: {failures} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance")
        return 1
    print("\nbench gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
