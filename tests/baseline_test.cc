// Tests for streamworks/baseline: the repeated-search matcher and the
// naive no-decomposition incremental matcher.

#include <gtest/gtest.h>

#include <set>

#include "streamworks/baseline/naive.h"
#include "streamworks/baseline/recompute.h"
#include "streamworks/common/interner.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build("path2").value();
}

TEST(RecomputeMatcherTest, ReportsEachMatchOnce) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  RecomputeMatcher matcher(&q, 100, &interner);

  auto r1 = matcher.ProcessBatch({MakeEdge(&interner, 1, 2, "x", 0)});
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->empty());

  auto r2 = matcher.ProcessBatch({MakeEdge(&interner, 2, 3, "y", 1)});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 1u);

  // Re-running on an unrelated batch re-enumerates the old match but does
  // not report it again.
  auto r3 = matcher.ProcessBatch({MakeEdge(&interner, 7, 8, "zz", 2)});
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->empty());
  EXPECT_GE(matcher.last_enumerated(), 1u);  // wasted re-discovery
  EXPECT_EQ(matcher.total_matches(), 1u);
}

TEST(RecomputeMatcherTest, WastedWorkGrowsWithWindowContent) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  RecomputeMatcher matcher(&q, 1000, &interner);
  // Build k complete matches, then measure enumeration on a no-op batch.
  Timestamp ts = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(matcher
                    .ProcessBatch({MakeEdge(&interner, 100 + i, 200 + i,
                                            "x", ts++)})
                    .ok());
    ASSERT_TRUE(matcher
                    .ProcessBatch({MakeEdge(&interner, 200 + i, 300 + i,
                                            "y", ts++)})
                    .ok());
  }
  ASSERT_TRUE(
      matcher.ProcessBatch({MakeEdge(&interner, 1, 2, "zz", ts)}).ok());
  EXPECT_EQ(matcher.last_enumerated(), 10u);  // re-found all 10, reported 0
  EXPECT_EQ(matcher.total_matches(), 10u);
}

TEST(RecomputeMatcherTest, WindowEvictionForgetsOldEdges) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  RecomputeMatcher matcher(&q, 5, &interner);
  ASSERT_TRUE(
      matcher.ProcessBatch({MakeEdge(&interner, 1, 2, "x", 0)}).ok());
  // 100 ticks later the x edge is long evicted; no match forms.
  auto r = matcher.ProcessBatch({MakeEdge(&interner, 2, 3, "y", 100)});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_LE(matcher.graph().num_stored_edges(), 1u);
}

TEST(RecomputeMatcherTest, PropagatesIngestErrors) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  RecomputeMatcher matcher(&q, 100, &interner);
  ASSERT_TRUE(
      matcher.ProcessBatch({MakeEdge(&interner, 1, 2, "x", 10)}).ok());
  EXPECT_FALSE(
      matcher.ProcessBatch({MakeEdge(&interner, 1, 2, "x", 3)}).ok());
}

TEST(NaiveIncrementalMatcherTest, FindsMatchOnCompletingEdge) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  NaiveIncrementalMatcher matcher(&q, 100, &interner);
  EXPECT_TRUE(matcher.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0))
                  .value()
                  .empty());
  const auto found =
      matcher.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 1)).value();
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].bound_edges().Count(), 2);
  EXPECT_EQ(matcher.total_matches(), 1u);
}

TEST(NaiveIncrementalMatcherTest, NoDuplicatesAcrossAnchorSlots) {
  Interner interner;
  // Query with two same-labelled edges: both anchor slots apply to every
  // "x" edge; the id discipline must still prevent duplicates.
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "x");
  const QueryGraph q = builder.Build().value();
  NaiveIncrementalMatcher matcher(&q, 100, &interner);

  std::multiset<uint64_t> sigs;
  const std::vector<StreamEdge> stream = {MakeEdge(&interner, 1, 2, "x", 0),
                                          MakeEdge(&interner, 2, 3, "x", 1),
                                          MakeEdge(&interner, 3, 4, "x", 2)};
  for (const StreamEdge& e : stream) {
    const std::vector<Match> found_839 = matcher.ProcessEdge(e).value();
    for (const Match& m : found_839) {
      sigs.insert(m.MappingSignature());
    }
  }
  // Matches: (e0,e1) and (e1,e2); each exactly once.
  EXPECT_EQ(sigs.size(), 2u);
  EXPECT_EQ(std::set<uint64_t>(sigs.begin(), sigs.end()).size(), 2u);
}

TEST(NaiveIncrementalMatcherTest, AgreesWithRecomputeOnRandomStream) {
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 5150;
  opt.num_vertices = 15;
  opt.num_edges = 300;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto edges = GenerateUniformStream(opt, &interner);
  Rng rng(909);
  const QueryGraph q =
      GenerateRandomConnectedQuery(rng, 3, 3, 2, 2, &interner).value();

  NaiveIncrementalMatcher naive(&q, 20, &interner);
  RecomputeMatcher recompute(&q, 20, &interner);
  std::multiset<uint64_t> naive_sigs;
  std::multiset<uint64_t> recompute_sigs;
  for (const StreamEdge& e : edges) {
    const std::vector<Match> found_737 = naive.ProcessEdge(e).value();
    for (const Match& m : found_737) {
      naive_sigs.insert(m.MappingSignature());
    }
    const std::vector<Match> found_714 = recompute.ProcessBatch({e}).value();
    for (const Match& m : found_714) {
      recompute_sigs.insert(m.MappingSignature());
    }
  }
  EXPECT_EQ(naive_sigs, recompute_sigs);
}

}  // namespace
}  // namespace streamworks
