// Tests for streamworks/stream: batching, the netflow generator with
// attack injection, the news generator with planted events, and the
// workload query builders — including end-to-end detection of every
// injected pattern through the SJ-Tree.

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/sjtree/sj_tree.h"
#include "streamworks/sjtree/exchange.h"
#include "streamworks/stream/batching.h"
#include "streamworks/stream/cluster_wire.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/wire_format.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

// --- Batching --------------------------------------------------------------------

TEST(BatchingTest, BatchByTickGroupsEqualTimestamps) {
  Interner interner;
  std::vector<StreamEdge> edges(6);
  const Timestamp ts[] = {0, 0, 1, 1, 1, 5};
  for (int i = 0; i < 6; ++i) {
    edges[i].src = i;
    edges[i].dst = i + 1;
    edges[i].src_label = edges[i].dst_label = interner.Intern("V");
    edges[i].edge_label = interner.Intern("e");
    edges[i].ts = ts[i];
  }
  const auto batches = BatchByTick(edges);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[1].size(), 3u);
  EXPECT_EQ(batches[2].size(), 1u);
  EXPECT_TRUE(BatchByTick({}).empty());
}

TEST(BatchingTest, BatchBySizeSplitsEvenly) {
  std::vector<StreamEdge> edges(10);
  const auto batches = BatchBySize(edges, 4);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 4u);
  EXPECT_EQ(batches[2].size(), 2u);
}

// --- Wire format (FEEDB binary frames) ----------------------------------------------

EdgeBatch WireBatch(Interner* interner, int n) {
  EdgeBatch batch;
  for (int i = 0; i < n; ++i) {
    StreamEdge e;
    e.src = 100 + static_cast<uint64_t>(i);
    e.dst = 200 + static_cast<uint64_t>(i);
    e.src_label = interner->Intern("Host");
    e.dst_label = interner->Intern(i % 2 == 0 ? "Host" : "Server");
    e.edge_label = interner->Intern("connectsTo");
    e.ts = 10 + i;
    batch.push_back(e);
  }
  return batch;
}

TEST(WireFormatTest, EncodeDecodeRoundTripsAcrossInterners) {
  // Encoder and decoder deliberately use different interners (different
  // processes never share LabelIds): labels must survive as strings.
  Interner encode_side;
  const EdgeBatch batch = WireBatch(&encode_side, 5);
  const std::string frame = EncodeFeedFrame(batch, encode_side).value();
  ASSERT_TRUE(IsFrameStart(frame));

  Interner decode_side;
  decode_side.Intern("unrelated");  // skew the id spaces
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &decode_side);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kOk);
  EXPECT_EQ(decoded.frame_bytes, frame.size());
  ASSERT_EQ(decoded.batch.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(decoded.batch[i].src, batch[i].src);
    EXPECT_EQ(decoded.batch[i].dst, batch[i].dst);
    EXPECT_EQ(decoded.batch[i].ts, batch[i].ts);
    EXPECT_EQ(decode_side.Name(decoded.batch[i].src_label),
              encode_side.Name(batch[i].src_label));
    EXPECT_EQ(decode_side.Name(decoded.batch[i].dst_label),
              encode_side.Name(batch[i].dst_label));
    EXPECT_EQ(decode_side.Name(decoded.batch[i].edge_label),
              encode_side.Name(batch[i].edge_label));
  }
  // The string table interned each distinct label once.
  EXPECT_EQ(decode_side.size(), 1u + 3u);
}

TEST(WireFormatTest, EveryProperPrefixNeedsMoreData) {
  Interner interner;
  const std::string frame =
      EncodeFeedFrame(WireBatch(&interner, 3), interner).value();
  for (size_t len = 0; len < frame.size(); ++len) {
    Interner scratch;
    const FrameDecodeResult decoded = DecodeFeedFrame(
        frame.substr(0, len), kDefaultMaxFrameBodyBytes, &scratch);
    EXPECT_EQ(decoded.status, FrameDecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(WireFormatTest, EmptyBatchRoundTrips) {
  Interner interner;
  const std::string frame = EncodeFeedFrame({}, interner).value();
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &interner);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kOk);
  EXPECT_TRUE(decoded.batch.empty());
}

TEST(WireFormatTest, OversizedBodyIsRefusedWithSkippableLength) {
  Interner interner;
  const std::string frame =
      EncodeFeedFrame(WireBatch(&interner, 10), interner).value();
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, /*max_body_bytes=*/16, &interner);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kOversized);
  // The refusal still reports the full frame length so a server can skip
  // it and stay in sync.
  EXPECT_EQ(decoded.frame_bytes, frame.size());
}

TEST(WireFormatTest, LyingStringTableCountIsRejectedBeforeAllocating) {
  // A 16-byte frame claiming 2^32-1 table entries must be refused
  // outright (a remote peer's counts must never size an allocation).
  std::string frame(kFeedFrameMagic, sizeof(kFeedFrameMagic));
  const auto put_u32 = [&frame](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  put_u32(8);           // body_len
  put_u32(0xFFFFFFFF);  // n_labels, wildly beyond the 4 body bytes left
  put_u32(0);
  Interner interner;
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &interner);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kMalformed);
  EXPECT_EQ(decoded.frame_bytes, frame.size());  // skippable
}

TEST(WireFormatTest, EncodeRefusesLabelsBeyondU16Length) {
  Interner interner;
  EdgeBatch batch = WireBatch(&interner, 1);
  batch[0].edge_label = interner.Intern(std::string(70000, 'x'));
  const auto encoded = EncodeFeedFrame(batch, interner);
  ASSERT_FALSE(encoded.ok());  // not silently truncated into a bad frame
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, BadMagicIsUnrecoverable) {
  Interner interner;
  std::string frame =
      EncodeFeedFrame(WireBatch(&interner, 1), interner).value();
  frame[1] = 'X';  // lead byte right, magic wrong
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &interner);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kMalformed);
  EXPECT_EQ(decoded.frame_bytes, 0u);  // no length to resync by
}

TEST(WireFormatTest, CorruptBodiesAreMalformedButSkippable) {
  Interner interner;
  const EdgeBatch batch = WireBatch(&interner, 2);
  // Label index beyond the string table.
  std::string frame = EncodeFeedFrame(batch, interner).value();
  // Edge records sit at the tail; clobber the first edge's src_label
  // field (offset: header + table + 4-byte edge count + 16).
  const size_t table_bytes = frame.size() - kFeedFrameHeaderBytes - 4 -
                             batch.size() * kFeedFrameEdgeBytes;
  const size_t src_label_at =
      kFeedFrameHeaderBytes + table_bytes + 4 + 16;
  frame[src_label_at] = '\x7F';
  FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &interner);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kMalformed);
  EXPECT_EQ(decoded.frame_bytes, frame.size());  // still skippable

  // Body length that does not match the edge-record count.
  std::string truncated = EncodeFeedFrame(batch, interner).value();
  truncated.resize(truncated.size() - 1);
  // Patch the body length down by one so the frame is "complete".
  const uint32_t body_len = static_cast<uint32_t>(
      truncated.size() - kFeedFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    truncated[4 + i] = static_cast<char>((body_len >> (8 * i)) & 0xFF);
  }
  decoded = DecodeFeedFrame(truncated, kDefaultMaxFrameBodyBytes,
                            &interner);
  EXPECT_EQ(decoded.status, FrameDecodeStatus::kMalformed);
}

TEST(WireFormatTest, StringEntryLengthBeyondBodyIsRejected) {
  // A frame whose *total* body_len is internally consistent but whose
  // first string-table entry declares a length running past the body:
  // the per-entry bounds check must refuse it (and report the declared
  // frame length so the stream can resync), not read out of bounds.
  Interner interner;
  std::string frame =
      EncodeFeedFrame(WireBatch(&interner, 2), interner).value();
  // First table entry's u16 length sits right after header + n_labels.
  const size_t len_at = kFeedFrameHeaderBytes + 4;
  frame[len_at] = '\xFF';
  frame[len_at + 1] = '\xFF';
  Interner scratch;
  const FrameDecodeResult decoded =
      DecodeFeedFrame(frame, kDefaultMaxFrameBodyBytes, &scratch);
  ASSERT_EQ(decoded.status, FrameDecodeStatus::kMalformed);
  EXPECT_EQ(decoded.frame_bytes, frame.size());
  EXPECT_NE(decoded.error.find("truncated string"), std::string::npos);
  EXPECT_EQ(scratch.size(), 0u);  // nothing bogus interned before...
}

TEST(WireFormatTest, TextNeverLooksLikeAFrame) {
  EXPECT_FALSE(IsFrameStart("FEED 1 V 2 V ping 3"));
  EXPECT_FALSE(IsFrameStart("STATS"));
  EXPECT_FALSE(IsFrameStart(""));
}

// --- NetflowGenerator ---------------------------------------------------------------

TEST(NetflowGeneratorTest, DeterministicAndTimeOrdered) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 5;
  opt.background_edges = 2000;
  NetflowGenerator gen_a(opt, &interner);
  NetflowGenerator gen_b(opt, &interner);
  const auto a = gen_a.Generate();
  const auto b = gen_b.Generate();
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 2000u);
  Timestamp prev = 0;
  for (const StreamEdge& e : a) {
    EXPECT_GE(e.ts, prev);
    prev = e.ts;
    EXPECT_LT(e.src, 256u);
    EXPECT_LT(e.dst, 256u);
  }
}

TEST(NetflowGeneratorTest, SubnetPartition) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.num_hosts = 64;
  opt.num_subnets = 4;
  NetflowGenerator gen(opt, &interner);
  EXPECT_EQ(gen.hosts_per_subnet(), 16);
  EXPECT_EQ(gen.SubnetOf(0), 0);
  EXPECT_EQ(gen.SubnetOf(15), 0);
  EXPECT_EQ(gen.SubnetOf(16), 1);
  EXPECT_EQ(gen.SubnetOf(63), 3);
}

TEST(NetflowGeneratorTest, ProtocolMixIsSkewed) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 7;
  opt.background_edges = 5000;
  NetflowGenerator gen(opt, &interner);
  std::unordered_map<LabelId, int> counts;
  for (const StreamEdge& e : gen.Generate()) ++counts[e.edge_label];
  const LabelId tcp = interner.Find("tcpConn");
  ASSERT_NE(tcp, kInvalidLabelId);
  int max_other = 0;
  for (const auto& [label, count] : counts) {
    if (label != tcp) max_other = std::max(max_other, count);
  }
  EXPECT_GT(counts[tcp], max_other);  // rank-0 protocol dominates
}

TEST(NetflowGeneratorTest, NoAttackNoiseOptionExcludesAttackLabels) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 11;
  opt.background_edges = 3000;
  opt.attack_label_noise = false;
  NetflowGenerator gen(opt, &interner);
  const LabelId probe = interner.Find("synProbe");
  const LabelId echo = interner.Find("icmpEchoReq");
  for (const StreamEdge& e : gen.Generate()) {
    EXPECT_NE(e.edge_label, probe);
    EXPECT_NE(e.edge_label, echo);
  }
}

TEST(NetflowGeneratorTest, SmurfInjectionShape) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 13;
  opt.background_edges = 100;
  NetflowGenerator gen(opt, &interner);
  gen.InjectSmurf(/*at=*/3, /*num_amplifiers=*/4, /*attacker_subnet=*/0,
                  /*victim_subnet=*/2);
  ASSERT_EQ(gen.injections().size(), 1u);
  const Injection& inj = gen.injections()[0];
  EXPECT_EQ(inj.kind, "smurf");
  ASSERT_EQ(inj.edges.size(), 8u);  // 4 requests + 4 replies
  const LabelId req = interner.Find("icmpEchoReq");
  const LabelId reply = interner.Find("icmpEchoReply");
  std::set<ExternalVertexId> amplifiers;
  ExternalVertexId attacker = inj.edges[0].src;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(inj.edges[i].edge_label, req);
    EXPECT_EQ(inj.edges[i].src, attacker);
    amplifiers.insert(inj.edges[i].dst);
  }
  EXPECT_EQ(amplifiers.size(), 4u);
  const ExternalVertexId victim = inj.edges[4].dst;
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(inj.edges[i].edge_label, reply);
    EXPECT_TRUE(amplifiers.count(inj.edges[i].src));
    EXPECT_EQ(inj.edges[i].dst, victim);
  }
  EXPECT_EQ(gen.SubnetOf(attacker), 0);
  EXPECT_EQ(gen.SubnetOf(victim), 2);
  // The injection lands in the generated stream.
  const auto edges = gen.Generate();
  int found = 0;
  for (const StreamEdge& e : edges) {
    for (const StreamEdge& inj_e : inj.edges) {
      if (e == inj_e) ++found;
    }
  }
  EXPECT_EQ(found, 8);
}

TEST(NetflowGeneratorTest, WormScanExfilInjectionShapes) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 17;
  opt.background_edges = 50;
  NetflowGenerator gen(opt, &interner);
  gen.InjectWorm(5, /*hops=*/3);
  gen.InjectPortScan(9, /*num_targets=*/5);
  gen.InjectExfiltration(12);
  ASSERT_EQ(gen.injections().size(), 3u);

  const Injection& worm = gen.injections()[0];
  ASSERT_EQ(worm.edges.size(), 3u);
  EXPECT_EQ(worm.edges[0].dst, worm.edges[1].src);  // chain links
  EXPECT_EQ(worm.edges[1].dst, worm.edges[2].src);

  const Injection& scan = gen.injections()[1];
  ASSERT_EQ(scan.edges.size(), 5u);
  std::set<ExternalVertexId> targets;
  for (const StreamEdge& e : scan.edges) {
    EXPECT_EQ(e.src, scan.edges[0].src);
    targets.insert(e.dst);
  }
  EXPECT_EQ(targets.size(), 5u);

  const Injection& exfil = gen.injections()[2];
  ASSERT_EQ(exfil.edges.size(), 2u);
  EXPECT_EQ(exfil.edges[0].dst, exfil.edges[1].src);
  EXPECT_EQ(exfil.edges[0].edge_label, interner.Find("copy"));
  EXPECT_EQ(exfil.edges[1].edge_label, interner.Find("upload"));
}

// --- NewsGenerator ---------------------------------------------------------------

TEST(NewsGeneratorTest, DeterministicTimeOrderedAndWellLabelled) {
  Interner interner;
  NewsGenerator::Options opt;
  opt.seed = 3;
  opt.num_articles = 500;
  NewsGenerator gen_a(opt, &interner);
  NewsGenerator gen_b(opt, &interner);
  const auto a = gen_a.Generate();
  EXPECT_EQ(a, gen_b.Generate());
  ASSERT_GT(a.size(), 500u);  // >= 1 keyword edge per article

  const LabelId article = interner.Find("Article");
  Timestamp prev = 0;
  for (const StreamEdge& e : a) {
    EXPECT_GE(e.ts, prev);
    prev = e.ts;
    EXPECT_EQ(e.src_label, article);  // article -> entity orientation
    EXPECT_GE(e.src, NewsGenerator::kArticleBase);
    EXPECT_GE(e.dst, NewsGenerator::kKeywordBase);
  }
}

TEST(NewsGeneratorTest, KeywordVerticesCarryTopicLabels) {
  Interner interner;
  NewsGenerator::Options opt;
  opt.seed = 5;
  opt.num_articles = 300;
  NewsGenerator gen(opt, &interner);
  const auto edges = gen.Generate();
  const LabelId has_keyword = interner.Find("hasKeyword");
  std::set<LabelId> keyword_labels;
  for (const StreamEdge& e : edges) {
    if (e.edge_label == has_keyword) keyword_labels.insert(e.dst_label);
  }
  // All six topics should appear among keyword vertex labels.
  for (const char* topic : {"politics", "sports", "business", "accident",
                            "science", "health"}) {
    EXPECT_TRUE(keyword_labels.count(interner.Find(topic)))
        << topic << " missing";
  }
}

TEST(NewsGeneratorTest, EntityPopularityIsSkewed) {
  Interner interner;
  NewsGenerator::Options opt;
  opt.seed = 7;
  opt.num_articles = 1000;
  opt.entity_skew = 1.1;
  NewsGenerator gen(opt, &interner);
  std::unordered_map<ExternalVertexId, int> keyword_counts;
  const LabelId has_keyword = interner.Find("hasKeyword");
  for (const StreamEdge& e : gen.Generate()) {
    if (e.edge_label == has_keyword) ++keyword_counts[e.dst];
  }
  // Rank-0 keyword should be far more popular than the median keyword.
  const int top = keyword_counts[NewsGenerator::kKeywordBase + 0];
  int total = 0;
  for (const auto& [k, c] : keyword_counts) total += c;
  EXPECT_GT(top * 10, total / static_cast<int>(keyword_counts.size()) * 10
                          * 5);  // top >= 5x mean
}

TEST(NewsGeneratorTest, InjectedEventSharesKeywordAndLocation) {
  Interner interner;
  NewsGenerator::Options opt;
  opt.seed = 9;
  opt.num_articles = 200;
  NewsGenerator gen(opt, &interner);
  gen.InjectEvent(10, "accident", 3);
  ASSERT_EQ(gen.injections().size(), 1u);
  const Injection& inj = gen.injections()[0];
  ASSERT_EQ(inj.edges.size(), 6u);  // 3 articles x (keyword + location)
  std::set<ExternalVertexId> keywords;
  std::set<ExternalVertexId> locations;
  std::set<ExternalVertexId> articles;
  for (const StreamEdge& e : inj.edges) {
    articles.insert(e.src);
    if (e.edge_label == interner.Find("hasKeyword")) {
      keywords.insert(e.dst);
      EXPECT_EQ(e.dst_label, interner.Find("accident"));
    } else {
      locations.insert(e.dst);
    }
  }
  EXPECT_EQ(keywords.size(), 1u);
  EXPECT_EQ(locations.size(), 1u);
  EXPECT_EQ(articles.size(), 3u);
}

// --- Workload queries ------------------------------------------------------------

TEST(WorkloadQueriesTest, ShapesAreValid) {
  Interner interner;
  const QueryGraph smurf = BuildSmurfQuery(&interner, 3);
  EXPECT_EQ(smurf.num_vertices(), 5);
  EXPECT_EQ(smurf.num_edges(), 6);
  const QueryGraph worm = BuildWormQuery(&interner, 3);
  EXPECT_EQ(worm.num_vertices(), 4);
  EXPECT_EQ(worm.num_edges(), 3);
  const QueryGraph scan = BuildPortScanQuery(&interner, 4);
  EXPECT_EQ(scan.num_vertices(), 5);
  EXPECT_EQ(scan.num_edges(), 4);
  const QueryGraph exfil = BuildExfiltrationQuery(&interner);
  EXPECT_EQ(exfil.num_edges(), 2);
  const QueryGraph news = BuildNewsEventQuery(&interner, "politics", 3);
  EXPECT_EQ(news.num_vertices(), 5);
  EXPECT_EQ(news.num_edges(), 6);
  EXPECT_EQ(news.vertex_label(0), interner.Find("politics"));
}

// --- End-to-end detection through the SJ-Tree ---------------------------------------

/// Replays a stream through a left-deep SJ-Tree and returns completions.
std::vector<Match> Detect(const std::vector<StreamEdge>& edges,
                          const QueryGraph& q, Interner* interner,
                          Timestamp window) {
  auto order = ConnectedEdgeOrder(q, q.AllEdges(), 0);
  std::vector<Bitset64> leaves;
  for (QueryEdgeId e : order) leaves.push_back(Bitset64::Single(e));
  SjTree tree(&q, Decomposition::MakeLeftDeep(q, leaves).value(), window);
  DynamicGraph g(interner);
  g.set_retention(window);
  std::vector<Match> completed;
  for (const StreamEdge& e : edges) {
    tree.ProcessEdge(g, g.AddEdge(e).value(), &completed);
  }
  return completed;
}

TEST(EndToEndDetectionTest, SmurfInjectionIsDetected) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 21;
  opt.background_edges = 4000;
  opt.attack_label_noise = false;  // every detection is the injection
  NetflowGenerator gen(opt, &interner);
  gen.InjectSmurf(/*at=*/100, /*num_amplifiers=*/3);
  const QueryGraph q = BuildSmurfQuery(&interner, 3);
  const auto matches = Detect(gen.Generate(), q, &interner, 50);
  // 3 amplifiers in the query, 3 injected: 3! = 6 automorphic mappings of
  // one underlying attack subgraph.
  ASSERT_EQ(matches.size(), 6u);
  std::set<uint64_t> distinct_subgraphs;
  for (const Match& m : matches) {
    distinct_subgraphs.insert(m.EdgeSetSignature());
  }
  EXPECT_EQ(distinct_subgraphs.size(), 1u);
}

TEST(EndToEndDetectionTest, EverySeparateInjectionFound) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 23;
  opt.background_edges = 6000;
  opt.attack_label_noise = false;
  NetflowGenerator gen(opt, &interner);
  gen.InjectPortScan(40, 4);
  gen.InjectPortScan(120, 4);
  gen.InjectWorm(200, 3);
  gen.InjectExfiltration(260);
  const auto edges = gen.Generate();

  const auto scans =
      Detect(edges, BuildPortScanQuery(&interner, 4), &interner, 30);
  // Each injected scan yields 4! = 24 automorphic mappings; two scans.
  std::set<uint64_t> scan_subgraphs;
  for (const Match& m : scans) scan_subgraphs.insert(m.EdgeSetSignature());
  EXPECT_EQ(scan_subgraphs.size(), 2u);
  EXPECT_EQ(scans.size(), 48u);

  const auto worms =
      Detect(edges, BuildWormQuery(&interner, 3), &interner, 30);
  EXPECT_EQ(worms.size(), 1u);

  const auto exfils =
      Detect(edges, BuildExfiltrationQuery(&interner), &interner, 30);
  EXPECT_EQ(exfils.size(), 1u);
}

TEST(EndToEndDetectionTest, WindowSeparatesSlowAttack) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 29;
  opt.background_edges = 1000;
  opt.attack_label_noise = false;
  NetflowGenerator gen(opt, &interner);
  gen.InjectWorm(10, 2);  // hops at ts 10, 11
  const auto edges = gen.Generate();
  const QueryGraph q = BuildWormQuery(&interner, 2);
  EXPECT_EQ(Detect(edges, q, &interner, 5).size(), 1u);
  // A window of 1 cannot span the two ticks.
  EXPECT_TRUE(Detect(edges, q, &interner, 1).empty());
}

TEST(EndToEndDetectionTest, NewsEventDetectedPerTopic) {
  Interner interner;
  NewsGenerator::Options opt;
  opt.seed = 31;
  opt.num_articles = 600;
  opt.entity_skew = 0.4;  // flatter popularity: few organic co-occurrences
  NewsGenerator gen(opt, &interner);
  gen.InjectEvent(30, "accident", 3);
  const auto edges = gen.Generate();
  const QueryGraph q = BuildNewsEventQuery(&interner, "accident", 3);
  const auto matches = Detect(edges, q, &interner, 20);
  // The injected event must be found: 3 articles are interchangeable, so
  // its subgraph appears as 3! = 6 mappings; organic accident events may
  // add more.
  ASSERT_GE(matches.size(), 6u);
  std::set<uint64_t> subgraphs;
  for (const Match& m : matches) subgraphs.insert(m.EdgeSetSignature());
  // At least one distinct subgraph is the injection; all its articles link
  // one keyword and one location.
  EXPECT_GE(subgraphs.size(), 1u);
}

// --- Cluster control-frame codec -------------------------------------------

// Decodes a buffer that must hold exactly one well-formed frame.
CtrlFrame MustDecode(const std::string& buf, Interner* interner) {
  const CtrlDecodeResult result =
      DecodeCtrlFrame(buf, kDefaultMaxFrameBodyBytes, interner);
  EXPECT_EQ(result.status, FrameDecodeStatus::kOk) << result.error;
  EXPECT_EQ(result.frame_bytes, buf.size());
  return result.frame;
}

LabelNameFn NameFn(const Interner& interner) {
  return [&interner](LabelId id) -> std::string_view {
    return interner.Name(id);
  };
}

TEST(ClusterWireTest, HelloAndAckRoundTrip) {
  CtrlHello hello;
  hello.num_shards = 4;
  hello.shard_index = 2;
  hello.partitioner_seed = 0xfeedfacecafebeefULL;
  hello.exchange_items_received = 123456789;
  hello.completions_received = 42;
  Interner interner;
  const CtrlFrame frame = MustDecode(EncodeHelloFrame(hello), &interner);
  ASSERT_EQ(frame.type, CtrlType::kHello);
  EXPECT_EQ(frame.hello.protocol, kCtrlProtocolVersion);
  EXPECT_EQ(frame.hello.num_shards, 4);
  EXPECT_EQ(frame.hello.shard_index, 2);
  EXPECT_EQ(frame.hello.partitioner_seed, hello.partitioner_seed);
  EXPECT_EQ(frame.hello.exchange_items_received, 123456789u);
  EXPECT_EQ(frame.hello.completions_received, 42u);

  CtrlHelloAck ack;
  ack.applied_frames = 7;
  const CtrlFrame ackf = MustDecode(EncodeHelloAckFrame(ack), &interner);
  ASSERT_EQ(ackf.type, CtrlType::kHelloAck);
  EXPECT_EQ(ackf.hello_ack.applied_frames, 7u);
}

TEST(ClusterWireTest, RegisterRoundTripPreservesQueryShape) {
  CtrlRegister reg;
  reg.expect_id = 3;
  reg.strategy = 1;
  reg.window = 500;
  reg.name = "lateral";
  reg.vertex_labels = {"User", "Host", "Host"};
  reg.edges = {{0, 1, "login"}, {1, 2, "connect"}};
  Interner interner;
  const CtrlFrame frame = MustDecode(EncodeRegisterFrame(reg), &interner);
  ASSERT_EQ(frame.type, CtrlType::kRegister);
  EXPECT_EQ(frame.reg.expect_id, 3);
  EXPECT_EQ(frame.reg.strategy, 1);
  EXPECT_EQ(frame.reg.window, 500);
  EXPECT_EQ(frame.reg.name, "lateral");
  ASSERT_EQ(frame.reg.vertex_labels.size(), 3u);
  EXPECT_EQ(frame.reg.vertex_labels[1], "Host");
  ASSERT_EQ(frame.reg.edges.size(), 2u);
  EXPECT_EQ(frame.reg.edges[0].src, 0);
  EXPECT_EQ(frame.reg.edges[1].dst, 2);
  EXPECT_EQ(frame.reg.edges[1].label, "connect");

  CtrlRegisterAck ack;
  ack.id = 3;
  ack.ok = false;
  ack.error = "window must be positive";
  const CtrlFrame ackf = MustDecode(EncodeRegisterAckFrame(ack), &interner);
  ASSERT_EQ(ackf.type, CtrlType::kRegisterAck);
  EXPECT_EQ(ackf.register_ack.id, 3);
  EXPECT_FALSE(ackf.register_ack.ok);
  EXPECT_EQ(ackf.register_ack.error, "window must be positive");
}

TEST(ClusterWireTest, BatchRoundTripReResolvesLabelsByString) {
  Interner enc_interner;
  CtrlBatch batch;
  CtrlShardEdge e1;
  e1.edge = {10, 20, enc_interner.Intern("Host"), enc_interner.Intern("IP"),
             enc_interner.Intern("hasIP"), 77};
  e1.global_id = 5;
  e1.run_anchors = true;
  CtrlShardEdge e2;
  e2.edge = {20, 10, enc_interner.Intern("IP"), enc_interner.Intern("Host"),
             enc_interner.Intern("reverse"), 78};
  e2.global_id = 6;
  e2.run_anchors = false;
  batch.edges = {e1, e2};
  // Decode into a *fresh* interner whose id assignment differs — labels
  // must survive as strings, not ids.
  Interner dec_interner;
  dec_interner.Intern("something-else");
  const CtrlFrame frame =
      MustDecode(EncodeBatchFrame(batch, NameFn(enc_interner)), &dec_interner);
  ASSERT_EQ(frame.type, CtrlType::kBatch);
  ASSERT_EQ(frame.batch.edges.size(), 2u);
  const CtrlShardEdge& d1 = frame.batch.edges[0];
  EXPECT_EQ(d1.edge.src, 10u);
  EXPECT_EQ(d1.edge.dst, 20u);
  EXPECT_EQ(dec_interner.Name(d1.edge.src_label), "Host");
  EXPECT_EQ(dec_interner.Name(d1.edge.edge_label), "hasIP");
  EXPECT_EQ(d1.edge.ts, 77);
  EXPECT_EQ(d1.global_id, 5u);
  EXPECT_TRUE(d1.run_anchors);
  EXPECT_FALSE(frame.batch.edges[1].run_anchors);
  EXPECT_EQ(dec_interner.Name(frame.batch.edges[1].edge.edge_label),
            "reverse");
}

TEST(ClusterWireTest, ExchangeRoundTripCarriesFullItem) {
  Interner enc_interner;
  CtrlExchange exchange;
  CtrlExchangeItem item;
  item.dest = 3;
  item.item.kind = ExchangeKind::kInsert;
  item.item.query_id = 9;
  item.item.plan = 2;
  item.item.step = 4;
  item.item.node = 6;
  item.item.match.vertices = {{0, 100, enc_interner.Intern("Host")},
                              {1, 200, enc_interner.Intern("IP")}};
  item.item.match.edges = {{0, 55, 77}};
  exchange.items = {item};
  Interner dec_interner;
  const CtrlFrame frame = MustDecode(
      EncodeExchangeFrame(exchange, NameFn(enc_interner)), &dec_interner);
  ASSERT_EQ(frame.type, CtrlType::kExchange);
  ASSERT_EQ(frame.exchange.items.size(), 1u);
  const CtrlExchangeItem& d = frame.exchange.items[0];
  EXPECT_EQ(d.dest, 3);
  EXPECT_EQ(d.item.kind, ExchangeKind::kInsert);
  EXPECT_EQ(d.item.query_id, 9);
  EXPECT_EQ(d.item.plan, 2u);
  EXPECT_EQ(d.item.step, 4);
  EXPECT_EQ(d.item.node, 6);
  ASSERT_EQ(d.item.match.vertices.size(), 2u);
  EXPECT_EQ(d.item.match.vertices[1].vertex, 200u);
  EXPECT_EQ(dec_interner.Name(d.item.match.vertices[0].label), "Host");
  ASSERT_EQ(d.item.match.edges.size(), 1u);
  EXPECT_EQ(d.item.match.edges[0].edge, 55u);
  EXPECT_EQ(d.item.match.edges[0].ts, 77);
}

TEST(ClusterWireTest, ControlOnlyFramesRoundTrip) {
  Interner interner;
  CtrlBarrier barrier;
  barrier.round = 31;
  CtrlFrame f = MustDecode(EncodeBarrierFrame(barrier), &interner);
  ASSERT_EQ(f.type, CtrlType::kBarrier);
  EXPECT_EQ(f.barrier.round, 31u);

  CtrlBarrierAck back;
  back.round = 31;
  back.applied_frames = 99;
  f = MustDecode(EncodeBarrierAckFrame(back), &interner);
  ASSERT_EQ(f.type, CtrlType::kBarrierAck);
  EXPECT_EQ(f.barrier_ack.round, 31u);
  EXPECT_EQ(f.barrier_ack.applied_frames, 99u);

  CtrlCommit commit;
  commit.watermark = 12345;
  f = MustDecode(EncodeCommitFrame(commit), &interner);
  ASSERT_EQ(f.type, CtrlType::kCommit);
  EXPECT_EQ(f.commit.watermark, 12345);

  f = MustDecode(EncodeEndBackfillFrame(), &interner);
  EXPECT_EQ(f.type, CtrlType::kEndBackfill);

  CtrlUnregister unreg;
  unreg.query_id = 8;
  f = MustDecode(EncodeUnregisterFrame(unreg), &interner);
  ASSERT_EQ(f.type, CtrlType::kUnregister);
  EXPECT_EQ(f.unregister.query_id, 8);

  CtrlInfo info;
  info.query_id = 2;
  f = MustDecode(EncodeInfoFrame(info), &interner);
  ASSERT_EQ(f.type, CtrlType::kInfo);
  EXPECT_EQ(f.info.query_id, 2);

  f = MustDecode(EncodeStatsFrame(), &interner);
  EXPECT_EQ(f.type, CtrlType::kStats);
}

TEST(ClusterWireTest, CompletionAndAckPayloadsRoundTrip) {
  Interner enc_interner;
  CtrlCompletion completion;
  completion.query_id = 4;
  completion.completed_at = 900;
  completion.match.vertices = {{0, 7, enc_interner.Intern("Host")}};
  completion.match.edges = {{0, 3, 899}, {1, 4, 900}};
  Interner dec_interner;
  CtrlFrame f = MustDecode(
      EncodeCompletionFrame(completion, NameFn(enc_interner)), &dec_interner);
  ASSERT_EQ(f.type, CtrlType::kCompletion);
  EXPECT_EQ(f.completion.query_id, 4);
  EXPECT_EQ(f.completion.completed_at, 900);
  ASSERT_EQ(f.completion.match.edges.size(), 2u);
  EXPECT_EQ(f.completion.match.edges[1].edge, 4u);

  CtrlInfoAck info_ack;
  info_ack.ok = true;
  info_ack.name = "probe";
  info_ack.window = 100;
  info_ack.completions = 8;
  info_ack.live_partial_matches = 3;
  info_ack.peak_partial_matches = 5;
  CtrlNodeRuntime node;
  node.node = 1;
  node.is_leaf = true;
  node.query_edges = 2;
  node.matches_inserted = 10;
  node.probes = 20;
  node.join_attempts = 30;
  node.joins_succeeded = 15;
  node.live_partial_matches = 2;
  info_ack.nodes = {node};
  f = MustDecode(EncodeInfoAckFrame(info_ack), &dec_interner);
  ASSERT_EQ(f.type, CtrlType::kInfoAck);
  EXPECT_TRUE(f.info_ack.ok);
  EXPECT_EQ(f.info_ack.name, "probe");
  ASSERT_EQ(f.info_ack.nodes.size(), 1u);
  EXPECT_EQ(f.info_ack.nodes[0].joins_succeeded, 15u);
  EXPECT_TRUE(f.info_ack.nodes[0].is_leaf);

  CtrlStatsAck stats;
  stats.retained_edges = 1;
  stats.retained_vertices = 2;
  stats.evicted_edges = 3;
  stats.edges_processed = 4;
  stats.completions = 5;
  stats.live_partial_matches = 6;
  stats.exchange.sent_inserts = 7;
  stats.exchange.received_completions = 8;
  f = MustDecode(EncodeStatsAckFrame(stats), &dec_interner);
  ASSERT_EQ(f.type, CtrlType::kStatsAck);
  EXPECT_EQ(f.stats_ack.evicted_edges, 3u);
  EXPECT_EQ(f.stats_ack.exchange.sent_inserts, 7u);
  EXPECT_EQ(f.stats_ack.exchange.received_completions, 8u);
}

TEST(ClusterWireTest, TruncatedFrameNeedsMoreAtEveryPrefix) {
  CtrlRegister reg;
  reg.expect_id = 1;
  reg.window = 10;
  reg.name = "q";
  reg.vertex_labels = {"A", "B"};
  reg.edges = {{0, 1, "e"}};
  const std::string whole = EncodeRegisterFrame(reg);
  Interner interner;
  for (size_t len = 0; len < whole.size(); ++len) {
    const CtrlDecodeResult result = DecodeCtrlFrame(
        whole.substr(0, len), kDefaultMaxFrameBodyBytes, &interner);
    EXPECT_EQ(result.status, FrameDecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(ClusterWireTest, BadMagicIsUnrecoverablyMalformed) {
  std::string buf = EncodeBarrierFrame(CtrlBarrier{});
  buf[0] = 'X';
  Interner interner;
  const CtrlDecodeResult result =
      DecodeCtrlFrame(buf, kDefaultMaxFrameBodyBytes, &interner);
  EXPECT_EQ(result.status, FrameDecodeStatus::kMalformed);
  // frame_bytes 0 signals desync: the control plane tears the link down.
  EXPECT_EQ(result.frame_bytes, 0u);
}

TEST(ClusterWireTest, LyingInteriorCountIsMalformedNotOverread) {
  CtrlBatch batch;
  CtrlShardEdge e;
  Interner enc;
  e.edge = {1, 2, enc.Intern("A"), enc.Intern("B"), enc.Intern("e"), 3};
  e.global_id = 0;
  batch.edges = {e};
  std::string buf = EncodeBatchFrame(batch, NameFn(enc));
  // The edge count lives right after the 8-byte header + 1-byte type +
  // string table; easier and stronger: bump every interior byte in turn
  // and require the decoder to stay within [kOk with same size,
  // kMalformed] — never a crash, never consuming beyond the buffer.
  Interner interner;
  for (size_t i = kCtrlFrameHeaderBytes; i < buf.size(); ++i) {
    std::string corrupt = buf;
    corrupt[i] = static_cast<char>(corrupt[i] + 0x41);
    const CtrlDecodeResult result =
        DecodeCtrlFrame(corrupt, kDefaultMaxFrameBodyBytes, &interner);
    if (result.status == FrameDecodeStatus::kOk) {
      EXPECT_EQ(result.frame_bytes, corrupt.size());
    } else {
      EXPECT_TRUE(result.status == FrameDecodeStatus::kMalformed ||
                  result.status == FrameDecodeStatus::kNeedMore)
          << "byte " << i;
    }
  }
}

TEST(ClusterWireTest, OversizedBodyReportsSkipBytes) {
  CtrlBatch batch;
  CtrlShardEdge e;
  Interner enc;
  e.edge = {1, 2, enc.Intern("A"), enc.Intern("B"), enc.Intern("e"), 3};
  batch.edges.assign(100, e);
  const std::string buf = EncodeBatchFrame(batch, NameFn(enc));
  Interner interner;
  const CtrlDecodeResult result = DecodeCtrlFrame(buf, /*max_body_bytes=*/64,
                                                  &interner);
  EXPECT_EQ(result.status, FrameDecodeStatus::kOversized);
  EXPECT_EQ(result.frame_bytes, buf.size());
}

TEST(ClusterWireTest, TrailingBytesAreNotConsumed) {
  const std::string frame = EncodeCommitFrame(CtrlCommit{.watermark = 5});
  const std::string buf = frame + "garbage-after-the-frame";
  Interner interner;
  const CtrlDecodeResult result =
      DecodeCtrlFrame(buf, kDefaultMaxFrameBodyBytes, &interner);
  EXPECT_EQ(result.status, FrameDecodeStatus::kOk);
  EXPECT_EQ(result.frame_bytes, frame.size());
  EXPECT_EQ(result.frame.commit.watermark, 5);
}

TEST(ClusterWireTest, StateTypeClassificationMatchesProtocol) {
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kRegister));
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kEndBackfill));
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kUnregister));
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kBatch));
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kExchange));
  EXPECT_TRUE(IsStateCtrlType(CtrlType::kCommit));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kHello));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kHelloAck));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kBarrier));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kBarrierAck));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kCompletion));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kInfo));
  // Metrics federation frames are pure observability — never logged,
  // never replayed.
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kMetricsRequest));
  EXPECT_FALSE(IsStateCtrlType(CtrlType::kMetricsReport));
}

// Builds a representative MetricsReport: one sample of each kind, with
// and without labels, plus a sparse histogram.
CtrlMetricsReport SampleMetricsReport() {
  CtrlMetricsReport report;
  report.wal_seq = 17;
  report.replayed_frames = 3;
  report.exchange_items_sent = 1234;
  report.completions_sent = 56;
  MetricSample counter;
  counter.kind = MetricSample::Kind::kCounter;
  counter.name = "streamworks_edges_fed_total";
  counter.help = "Stream edges admitted through the query service.";
  counter.labels = {{"role", "worker"}};
  counter.counter = 4242;
  MetricSample gauge;
  gauge.kind = MetricSample::Kind::kGauge;
  gauge.name = "streamworks_watermark";
  gauge.help = "Group watermark.";
  gauge.gauge = -12.75;
  MetricSample hist;
  hist.kind = MetricSample::Kind::kHistogram;
  hist.name = "streamworks_stage_duration_us";
  hist.help = "Stage durations.";
  hist.labels = {{"stage", "sjtree_join"}, {"unit", "us"}};
  hist.histogram.Record(0);
  hist.histogram.Record(7);
  hist.histogram.Record(7);
  hist.histogram.Record(1 << 20);
  report.samples = {counter, gauge, hist};
  return report;
}

TEST(ClusterWireTest, MetricsFramesRoundTrip) {
  Interner interner;
  const CtrlFrame req = MustDecode(EncodeMetricsRequestFrame(), &interner);
  EXPECT_EQ(req.type, CtrlType::kMetricsRequest);

  const CtrlMetricsReport report = SampleMetricsReport();
  const CtrlFrame f = MustDecode(EncodeMetricsReportFrame(report), &interner);
  ASSERT_EQ(f.type, CtrlType::kMetricsReport);
  const CtrlMetricsReport& d = f.metrics_report;
  EXPECT_EQ(d.wal_seq, 17u);
  EXPECT_EQ(d.replayed_frames, 3u);
  EXPECT_EQ(d.exchange_items_sent, 1234u);
  EXPECT_EQ(d.completions_sent, 56u);
  ASSERT_EQ(d.samples.size(), 3u);
  EXPECT_EQ(d.samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(d.samples[0].name, "streamworks_edges_fed_total");
  ASSERT_EQ(d.samples[0].labels.size(), 1u);
  EXPECT_EQ(d.samples[0].labels[0].first, "role");
  EXPECT_EQ(d.samples[0].labels[0].second, "worker");
  EXPECT_EQ(d.samples[0].counter, 4242u);
  EXPECT_EQ(d.samples[1].kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(d.samples[1].gauge, -12.75);  // bit-exact through bit_cast
  EXPECT_TRUE(d.samples[1].labels.empty());
  EXPECT_EQ(d.samples[2].kind, MetricSample::Kind::kHistogram);
  ASSERT_EQ(d.samples[2].labels.size(), 2u);
  EXPECT_EQ(d.samples[2].labels[0].second, "sjtree_join");
  EXPECT_EQ(d.samples[2].histogram.total_count(), 4u);
  EXPECT_EQ(d.samples[2].histogram.sum(),
            report.samples[2].histogram.sum());
  EXPECT_EQ(d.samples[2].histogram.Quantile(0.5),
            report.samples[2].histogram.Quantile(0.5));
}

TEST(ClusterWireTest, MetricsReportTruncationNeedsMoreAtEveryPrefix) {
  const std::string whole = EncodeMetricsReportFrame(SampleMetricsReport());
  Interner interner;
  for (size_t len = 0; len < whole.size(); ++len) {
    const CtrlDecodeResult result = DecodeCtrlFrame(
        whole.substr(0, len), kDefaultMaxFrameBodyBytes, &interner);
    EXPECT_EQ(result.status, FrameDecodeStatus::kNeedMore)
        << "prefix of " << len << " bytes";
  }
}

TEST(ClusterWireTest, MetricsReportCorruptByteIsCaughtByCrc) {
  const std::string whole = EncodeMetricsReportFrame(SampleMetricsReport());
  Interner interner;
  for (size_t i = 0; i < whole.size(); ++i) {
    std::string corrupt = whole;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x41);
    const CtrlDecodeResult result =
        DecodeCtrlFrame(corrupt, kDefaultMaxFrameBodyBytes, &interner);
    if (i < kCtrlFrameHeaderBytes) {
      // Magic/body_len corruption: malformed, oversized, or starved —
      // never accepted.
      EXPECT_NE(result.status, FrameDecodeStatus::kOk) << "byte " << i;
    } else {
      // Every body byte (the type byte and the whole CRC-covered
      // payload, trailer included) must be rejected outright.
      EXPECT_EQ(result.status, FrameDecodeStatus::kMalformed) << "byte " << i;
    }
  }
}

TEST(ClusterWireTest, MetricsReportCrcMismatchNamesTheCheck) {
  std::string corrupt = EncodeMetricsReportFrame(SampleMetricsReport());
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);  // CRC trailer
  Interner interner;
  const CtrlDecodeResult result =
      DecodeCtrlFrame(corrupt, kDefaultMaxFrameBodyBytes, &interner);
  EXPECT_EQ(result.status, FrameDecodeStatus::kMalformed);
  EXPECT_NE(result.error.find("CRC"), std::string::npos) << result.error;
}

}  // namespace
}  // namespace streamworks
