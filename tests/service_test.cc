// Tests for streamworks/service: ResultQueue overflow policies, engine /
// parallel-group query lifecycle (unregister, mid-stream register), the
// QueryService state machine with admission control and exactly-once
// delivery across detach/re-submit, metrics aggregation, and the command
// interpreter's scripted multi-tenant scenarios.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/core/parallel.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/metrics.h"
#include "streamworks/service/query_service.h"
#include "streamworks/service/result_queue.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

/// Single-edge query a -[ping]-> b over "V" vertices: every matching edge
/// completes one match immediately, which makes delivery counting exact.
QueryGraph PingQuery(Interner* interner, std::string_view name = "ping_q") {
  QueryGraphBuilder b(interner);
  const auto a = b.AddVertex("V");
  const auto c = b.AddVertex("V");
  b.AddEdge(a, c, "ping");
  auto built = b.Build(name);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return *built;
}

/// Two-edge path query: u -[login]-> h -[connect]-> x. Its first edge
/// parks a partial match, which admission-budget tests lean on.
QueryGraph PathQuery(Interner* interner, std::string_view name = "path_q") {
  QueryGraphBuilder b(interner);
  const auto u = b.AddVertex("V");
  const auto h = b.AddVertex("V");
  const auto x = b.AddVertex("V");
  b.AddEdge(u, h, "login");
  b.AddEdge(h, x, "connect");
  auto built = b.Build(name);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return *built;
}

CompleteMatch FakeMatch(Timestamp completed_at) {
  CompleteMatch cm;
  cm.query_id = 0;
  cm.completed_at = completed_at;
  return cm;
}

// --- LagHistogram ----------------------------------------------------------

TEST(LagHistogramTest, QuantilesOfEmptyAndSingleton) {
  LagHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  h.Record(100);
  EXPECT_EQ(h.total_count(), 1u);
  // 100us lands in bucket [64, 128); with one sample in the bucket the
  // interpolated quantile sits at the bucket lower bound (the old
  // upper-bound answer overestimated a lone 100us sample as 127us).
  EXPECT_EQ(h.Quantile(0.5), 64u);
  EXPECT_EQ(h.Quantile(0.99), 64u);
}

TEST(LagHistogramTest, MergeAndTailQuantile) {
  LagHistogram a;
  for (int i = 0; i < 90; ++i) a.Record(1);
  LagHistogram b;
  for (int i = 0; i < 10; ++i) b.Record(1 << 20);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 100u);
  EXPECT_EQ(a.Quantile(0.5), 1u);
  EXPECT_GE(a.Quantile(0.99), uint64_t{1} << 20);
}

// --- ResultQueue -----------------------------------------------------------

TEST(ResultQueueTest, DropOldestKeepsNewestMatches) {
  ResultQueue q(2, OverflowPolicy::kDropOldest);
  for (Timestamp ts = 1; ts <= 5; ++ts) q.Push(FakeMatch(ts));
  EXPECT_EQ(q.counters().enqueued, 5u);
  EXPECT_EQ(q.counters().dropped, 3u);
  std::vector<CompleteMatch> drained;
  EXPECT_EQ(q.Drain(&drained), 2u);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].completed_at, 4);
  EXPECT_EQ(drained[1].completed_at, 5);
  EXPECT_EQ(q.counters().delivered, 2u);
}

TEST(ResultQueueTest, DropNewestKeepsOldestMatches) {
  ResultQueue q(2, OverflowPolicy::kDropNewest);
  for (Timestamp ts = 1; ts <= 5; ++ts) q.Push(FakeMatch(ts));
  EXPECT_EQ(q.counters().enqueued, 2u);
  EXPECT_EQ(q.counters().dropped, 3u);
  std::vector<CompleteMatch> drained;
  q.Drain(&drained);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].completed_at, 1);
  EXPECT_EQ(drained[1].completed_at, 2);
}

TEST(ResultQueueTest, BlockPolicyStallsProducerUntilPop) {
  ResultQueue q(1, OverflowPolicy::kBlock);
  q.Push(FakeMatch(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.Push(FakeMatch(2));
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());  // full queue blocks the producer

  CompleteMatch out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out.completed_at, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.counters().dropped, 0u);
  EXPECT_EQ(q.counters().enqueued, 2u);
}

TEST(ResultQueueTest, CloseUnblocksProducerAndKeepsQueueDrainable) {
  ResultQueue q(1, OverflowPolicy::kBlock);
  q.Push(FakeMatch(1));
  std::thread producer([&] { q.Push(FakeMatch(2)); });  // blocks: full
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();  // close released it; the match was dropped
  EXPECT_EQ(q.counters().dropped, 1u);
  q.Push(FakeMatch(3));  // post-close pushes are drops too
  EXPECT_EQ(q.counters().dropped, 2u);

  CompleteMatch out;
  ASSERT_TRUE(q.TryPop(&out));  // pre-close match still drainable
  EXPECT_EQ(out.completed_at, 1);
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(ResultQueueTest, WaitPopTimesOutOnEmptyAndWakesOnPush) {
  ResultQueue q(4, OverflowPolicy::kBlock);
  CompleteMatch out;
  EXPECT_FALSE(q.WaitPop(&out, std::chrono::milliseconds(10)));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(FakeMatch(7));
  });
  EXPECT_TRUE(q.WaitPop(&out, std::chrono::seconds(5)));
  EXPECT_EQ(out.completed_at, 7);
  producer.join();
  EXPECT_EQ(q.lag_histogram().total_count(), 1u);
}

// --- Engine lifecycle ------------------------------------------------------

TEST(EngineLifecycleTest, UnregisterStopsRoutingAndPreservesOthers) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  int hits_a = 0, hits_b = 0;
  const QueryGraph q = PingQuery(&interner);
  const int qa = engine
                     .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                    1000, [&](const CompleteMatch&) { ++hits_a; })
                     .value();
  const int qb = engine
                     .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                    1000, [&](const CompleteMatch&) { ++hits_b; })
                     .value();
  EXPECT_EQ(engine.num_queries(), 2u);

  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "ping", 1)).ok());
  EXPECT_EQ(hits_a, 1);
  EXPECT_EQ(hits_b, 1);

  ASSERT_TRUE(engine.UnregisterQuery(qa).ok());
  EXPECT_EQ(engine.num_queries(), 1u);
  EXPECT_FALSE(engine.has_query(qa));
  EXPECT_TRUE(engine.has_query(qb));
  EXPECT_FALSE(engine.UnregisterQuery(qa).ok());  // double-unregister

  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 3, 4, "ping", 2)).ok());
  EXPECT_EQ(hits_a, 1);  // detached query got nothing
  EXPECT_EQ(hits_b, 2);

  // Ids are not recycled: a fresh registration gets a fresh id and routes.
  const int qc = engine
                     .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                    1000, [&](const CompleteMatch&) { ++hits_a; })
                     .value();
  EXPECT_NE(qc, qa);
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 5, 6, "ping", 3)).ok());
  EXPECT_EQ(hits_a, 2);
  EXPECT_EQ(hits_b, 3);
}

TEST(EngineLifecycleTest, RetentionCanShrinkOnceAllQueriesUnregistered) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PingQuery(&interner);
  const int qid = engine
                      .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                     kMaxTimestamp, nullptr)
                      .value();
  EXPECT_EQ(engine.graph().retention(), kMaxTimestamp);
  ASSERT_TRUE(engine.UnregisterQuery(qid).ok());
  // No live query pins the unbounded window, so a finite registration may
  // finally bound the graph's memory.
  ASSERT_TRUE(engine
                  .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                 500, nullptr)
                  .ok());
  EXPECT_EQ(engine.graph().retention(), 500);
}

TEST(EngineLifecycleTest, ReplanOfUnregisteredQueryFails) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PingQuery(&interner);
  const int qid = engine
                      .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                     1000, nullptr)
                      .value();
  ASSERT_TRUE(engine.UnregisterQuery(qid).ok());
  EXPECT_FALSE(engine.ReplanQuery(qid).ok());
}

TEST(ParallelLifecycleTest, MidStreamRegisterAndShardAwareDetach) {
  Interner interner;
  const QueryGraph q = PingQuery(&interner);
  std::atomic<int> hits_a{0}, hits_b{0};
  ParallelEngineGroup group(&interner, 2);
  const int qa = group
                     .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                    1000,
                                    [&](const CompleteMatch&) { ++hits_a; })
                     .value();
  group.ProcessEdge(MakeEdge(&interner, 1, 2, "ping", 1));
  group.Flush();
  EXPECT_EQ(hits_a.load(), 1);

  // Mid-stream registration backfills the live window: edge @1 is inside
  // window 1000, but its match completed pre-registration and stays
  // suppressed.
  const int qb = group
                     .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder,
                                    1000,
                                    [&](const CompleteMatch&) { ++hits_b; })
                     .value();
  EXPECT_NE(qa, qb);
  group.ProcessEdge(MakeEdge(&interner, 3, 4, "ping", 2));
  group.Flush();
  EXPECT_EQ(hits_a.load(), 2);
  EXPECT_EQ(hits_b.load(), 1);

  const auto info = group.query_info(qa);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->completions, 2u);
  EXPECT_EQ(info->query_id, qa);

  ASSERT_TRUE(group.UnregisterQuery(qa).ok());
  EXPECT_FALSE(group.query_info(qa).ok());
  group.ProcessEdge(MakeEdge(&interner, 5, 6, "ping", 3));
  group.Flush();
  EXPECT_EQ(hits_a.load(), 2);  // no deliveries after detach
  EXPECT_EQ(hits_b.load(), 2);
  group.Close();
}

// --- QueryService ----------------------------------------------------------

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest() : engine_(&interner_), backend_(&engine_) {}

  Status FeedPing(uint64_t src, uint64_t dst, Timestamp ts,
                  QueryService& service) {
    return service.Feed(MakeEdge(&interner_, src, dst, "ping", ts));
  }

  Interner interner_;
  StreamWorksEngine engine_;
  SingleEngineBackend backend_;
};

TEST_F(QueryServiceTest, LifecycleStateMachine) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();

  EXPECT_EQ(service.state(session, sub).value(), SubscriptionState::kActive);
  EXPECT_FALSE(service.Resume(session, sub).ok());  // active -> resume: no

  ASSERT_TRUE(service.Pause(session, sub).ok());
  EXPECT_EQ(service.state(session, sub).value(), SubscriptionState::kPaused);
  EXPECT_FALSE(service.Pause(session, sub).ok());  // paused -> pause: no

  ASSERT_TRUE(service.Resume(session, sub).ok());
  EXPECT_EQ(service.state(session, sub).value(), SubscriptionState::kActive);

  ASSERT_TRUE(service.Detach(session, sub).ok());
  EXPECT_EQ(service.state(session, sub).value(),
            SubscriptionState::kDetached);
  EXPECT_FALSE(service.Detach(session, sub).ok());  // terminal
  EXPECT_FALSE(service.Pause(session, sub).ok());
  EXPECT_FALSE(service.Resume(session, sub).ok());

  // Unknown ids are NotFound, not crashes.
  EXPECT_FALSE(service.Pause(session, 999).ok());
  EXPECT_FALSE(service.Submit(77, PingQuery(&interner_)).ok());
}

TEST_F(QueryServiceTest, PauseSuppressesAndResumeRedelivers) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  ResultQueue* queue = service.queue(session, sub);
  ASSERT_NE(queue, nullptr);

  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  EXPECT_EQ(queue->size(), 1u);

  ASSERT_TRUE(service.Pause(session, sub).ok());
  ASSERT_TRUE(FeedPing(3, 4, 2, service).ok());
  ASSERT_TRUE(FeedPing(5, 6, 3, service).ok());
  EXPECT_EQ(queue->size(), 1u);  // nothing delivered while paused

  ASSERT_TRUE(service.Resume(session, sub).ok());
  ASSERT_TRUE(FeedPing(7, 8, 4, service).ok());
  EXPECT_EQ(queue->size(), 2u);

  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.matches_suppressed, 2u);
  EXPECT_EQ(snap.matches_enqueued, 2u);
  ASSERT_EQ(snap.sessions.size(), 1u);
  ASSERT_EQ(snap.sessions[0].subscriptions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].subscriptions[0].suppressed_while_paused, 2u);
}

TEST_F(QueryServiceTest, ExactlyOnceAcrossDetachAndResubmit) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  const int sub1 = service.Submit(session, PingQuery(&interner_)).value();

  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  ASSERT_TRUE(FeedPing(3, 4, 2, service).ok());
  std::vector<CompleteMatch> first_batch;
  service.queue(session, sub1)->Drain(&first_batch);
  ASSERT_EQ(first_batch.size(), 2u);

  ASSERT_TRUE(service.Detach(session, sub1).ok());

  // Re-submit the same pattern. The engine backfills the live window with
  // completions suppressed, so the two already-delivered matches must NOT
  // reappear; only genuinely new completions flow.
  const int sub2 = service.Submit(session, PingQuery(&interner_)).value();
  EXPECT_NE(sub1, sub2);
  ASSERT_TRUE(FeedPing(5, 6, 3, service).ok());

  std::vector<CompleteMatch> second_batch;
  service.queue(session, sub2)->Drain(&second_batch);
  ASSERT_EQ(second_batch.size(), 1u);
  EXPECT_EQ(second_batch[0].completed_at, 3);

  // And the detached queue saw nothing further.
  std::vector<CompleteMatch> leftovers;
  EXPECT_EQ(service.queue(session, sub1)->Drain(&leftovers), 0u);

  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.matches_enqueued, 3u);
  EXPECT_EQ(snap.matches_delivered, 3u);
  EXPECT_EQ(snap.matches_dropped, 0u);
}

TEST_F(QueryServiceTest, SessionQuotaAdmissionControl) {
  ServiceLimits limits;
  limits.max_queries_per_session = 2;
  QueryService service(&backend_, limits);
  const int session = service.OpenSession("alice").value();

  const int s1 = service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(service.Submit(session, PingQuery(&interner_)).ok());
  const auto rejected = service.Submit(session, PingQuery(&interner_));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Quota counts live queries: detaching frees a slot.
  ASSERT_TRUE(service.Detach(session, s1).ok());
  EXPECT_TRUE(service.Submit(session, PingQuery(&interner_)).ok());

  // Other sessions have their own quota.
  const int other = service.OpenSession("bob").value();
  EXPECT_TRUE(service.Submit(other, PingQuery(&interner_)).ok());

  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.rejected_session_quota, 1u);
  EXPECT_EQ(snap.admitted, 4u);
  EXPECT_EQ(snap.submissions, 5u);
}

TEST_F(QueryServiceTest, PartialMatchBudgetAdmissionControl) {
  ServiceLimits limits;
  limits.live_partial_match_budget = 1;
  QueryService service(&backend_, limits);
  const int session = service.OpenSession("alice").value();
  ASSERT_TRUE(service.Submit(session, PathQuery(&interner_)).ok());

  // No partial matches yet: still under budget.
  ASSERT_TRUE(service.Submit(session, PathQuery(&interner_)).ok());

  // One login edge parks a partial match in each live tree; the budget (1)
  // is now met, so the next submission is rejected.
  ASSERT_TRUE(
      service.Feed(MakeEdge(&interner_, 1, 2, "login", 1)).ok());
  const auto rejected = service.Submit(session, PathQuery(&interner_));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.Snapshot().rejected_partial_budget, 1u);
}

TEST_F(QueryServiceTest, CloseSessionDetachesEverything) {
  QueryService service(&backend_);
  const int alice = service.OpenSession("alice").value();
  const int bob = service.OpenSession("bob").value();
  const int a1 = service.Submit(alice, PingQuery(&interner_)).value();
  const int a2 = service.Submit(alice, PingQuery(&interner_)).value();
  const int b1 = service.Submit(bob, PingQuery(&interner_)).value();

  ASSERT_TRUE(service.CloseSession(alice).ok());
  EXPECT_EQ(service.state(alice, a1).value(), SubscriptionState::kDetached);
  EXPECT_EQ(service.state(alice, a2).value(), SubscriptionState::kDetached);
  EXPECT_FALSE(service.Submit(alice, PingQuery(&interner_)).ok());
  EXPECT_FALSE(service.CloseSession(alice).ok());  // already closed

  // Bob is untouched and still receives results.
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  EXPECT_EQ(service.queue(bob, b1)->size(), 1u);
  EXPECT_EQ(engine_.num_queries(), 1u);

  // Duplicate open-session names are rejected; the name frees on close.
  EXPECT_FALSE(service.OpenSession("bob").ok());
  EXPECT_TRUE(service.OpenSession("alice").ok());
}

TEST_F(QueryServiceTest, ReclaimCompactsDetachedSubsOfClosedSessions) {
  QueryService service(&backend_);
  const int alice = service.OpenSession("alice").value();
  const int bob = service.OpenSession("bob").value();
  const int a1 = service.Submit(alice, PingQuery(&interner_)).value();
  const int a2 = service.Submit(alice, PingQuery(&interner_)).value();
  const int b1 = service.Submit(bob, PingQuery(&interner_)).value();
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());  // a1/a2/b1 queue a match

  // Nothing is detached yet: nothing to reclaim.
  EXPECT_EQ(service.ReclaimDetached(), 0u);

  ASSERT_TRUE(service.CloseSession(alice).ok());
  // Closed-session subscriptions reclaim even with undrained queues (no
  // consumer can come back for them).
  EXPECT_EQ(service.ReclaimDetached(), 2u);

  // The ids are really gone — lookups answer NotFound/nullptr instead of
  // resolving to retained tombstones...
  EXPECT_FALSE(service.state(alice, a1).ok());
  EXPECT_FALSE(service.state(alice, a2).ok());
  EXPECT_EQ(service.queue(alice, a1), nullptr);
  EXPECT_EQ(service.queue_handle(alice, a2), nullptr);
  // ...the snapshot's tables compacted (alice's emptied closed session is
  // erased outright, not listed as a tombstone)...
  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.reclaimed, 2u);
  EXPECT_EQ(snap.sessions_opened, 2u);  // history survives compaction
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_EQ(snap.sessions[0].name, "bob");
  EXPECT_EQ(snap.sessions[0].subscriptions.size(), 1u);
  // Service-wide match totals are monotonic: the reclaimed subscriptions'
  // delivery history (one queued match each for a1/a2) is folded into the
  // baselines, not forgotten with the table entries.
  EXPECT_EQ(snap.matches_enqueued, 3u);
  // ...and bob is untouched.
  EXPECT_EQ(service.queue(bob, b1)->size(), 1u);
  // Ids stay unique across reclamation: a new submit never reuses a1/a2.
  const int b2 = service.Submit(bob, PingQuery(&interner_)).value();
  EXPECT_GT(b2, b1);
  EXPECT_NE(b2, a1);
  EXPECT_NE(b2, a2);
}

TEST_F(QueryServiceTest, ReclaimWaitsForOpenSessionQueuesToDrain) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  ASSERT_TRUE(service.Detach(session, sub).ok());

  // Detached but still drainable in an open session: the queued match
  // belongs to the consumer, so the subscription is NOT reclaimed...
  EXPECT_EQ(service.ReclaimDetached(), 0u);
  ResultQueue* queue = service.queue(session, sub);
  ASSERT_NE(queue, nullptr);
  std::vector<CompleteMatch> matches;
  EXPECT_EQ(queue->Drain(&matches), 1u);

  // ...and even drained it survives a closed-session-scoped pass (the
  // socket frontend's disconnect path: one tenant's disconnect must not
  // touch another tenant's open session)...
  EXPECT_EQ(service.ReclaimDetached(/*drained_in_open_sessions=*/false),
            0u);
  ASSERT_NE(service.queue(session, sub), nullptr);

  // ...but an explicit full compaction pass takes it.
  EXPECT_EQ(service.ReclaimDetached(), 1u);
  EXPECT_EQ(service.queue(session, sub), nullptr);
  EXPECT_FALSE(service.state(session, sub).ok());
  EXPECT_EQ(service.Snapshot().reclaimed, 1u);
}

TEST_F(QueryServiceTest, QueueHandleOutlivesReclaim) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  std::shared_ptr<ResultQueue> handle = service.queue_handle(session, sub);
  ASSERT_NE(handle, nullptr);
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  ASSERT_TRUE(service.Detach(session, sub).ok());
  ASSERT_TRUE(service.CloseSession(session).ok());
  EXPECT_EQ(service.ReclaimDetached(), 1u);

  // The service forgot the subscription, but the handle (the epoch/
  // refcount holder) keeps the DeliveryState alive and drainable...
  EXPECT_EQ(service.queue(session, sub), nullptr);
  std::vector<CompleteMatch> matches;
  EXPECT_EQ(handle->Drain(&matches), 1u);
  EXPECT_TRUE(handle->closed());

  // ...and the state truly frees when the last holder lets go.
  std::weak_ptr<ResultQueue> weak = handle;
  handle.reset();
  EXPECT_TRUE(weak.expired());
}

TEST_F(QueryServiceTest, OverflowPolicyPerSubscription) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  SubmitOptions oldest;
  oldest.queue_capacity = 2;
  oldest.policy = OverflowPolicy::kDropOldest;
  SubmitOptions newest;
  newest.queue_capacity = 2;
  newest.policy = OverflowPolicy::kDropNewest;
  const int s_old = service.Submit(session, PingQuery(&interner_), oldest)
                        .value();
  const int s_new = service.Submit(session, PingQuery(&interner_), newest)
                        .value();

  for (Timestamp ts = 1; ts <= 5; ++ts) {
    ASSERT_TRUE(FeedPing(10 + ts, 20 + ts, ts, service).ok());
  }

  std::vector<CompleteMatch> old_matches, new_matches;
  service.queue(session, s_old)->Drain(&old_matches);
  service.queue(session, s_new)->Drain(&new_matches);
  ASSERT_EQ(old_matches.size(), 2u);
  ASSERT_EQ(new_matches.size(), 2u);
  EXPECT_EQ(old_matches[0].completed_at, 4);  // oldest were evicted
  EXPECT_EQ(new_matches[1].completed_at, 2);  // newest were discarded
  EXPECT_EQ(service.queue(session, s_old)->counters().dropped, 3u);
  EXPECT_EQ(service.queue(session, s_new)->counters().dropped, 3u);
}

TEST(QueryServiceParallelTest, MultiSessionIsolationAcrossShards) {
  Interner interner;
  ParallelEngineGroup group(&interner, 3);
  ParallelGroupBackend backend(&group);
  QueryService service(&backend);

  const QueryGraph q = PingQuery(&interner);
  const int alice = service.OpenSession("alice").value();
  const int bob = service.OpenSession("bob").value();
  const int carol = service.OpenSession("carol").value();
  const int a = service.Submit(alice, q).value();
  const int b = service.Submit(bob, q).value();
  const int c = service.Submit(carol, q).value();

  auto feed = [&](uint64_t src, uint64_t dst, Timestamp ts) {
    ASSERT_TRUE(
        service.Feed(MakeEdge(&interner, src, dst, "ping", ts)).ok());
  };
  feed(1, 2, 1);
  service.Flush();
  EXPECT_EQ(service.queue(alice, a)->counters().enqueued, 1u);
  EXPECT_EQ(service.queue(bob, b)->counters().enqueued, 1u);
  EXPECT_EQ(service.queue(carol, c)->counters().enqueued, 1u);

  // Detach bob mid-stream; alice and carol keep flowing.
  ASSERT_TRUE(service.Detach(bob, b).ok());
  feed(3, 4, 2);
  feed(5, 6, 3);
  service.Flush();
  EXPECT_EQ(service.queue(alice, a)->counters().enqueued, 3u);
  EXPECT_EQ(service.queue(bob, b)->counters().enqueued, 1u);
  EXPECT_EQ(service.queue(carol, c)->counters().enqueued, 3u);

  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.matches_enqueued, 7u);
  EXPECT_EQ(snap.detaches, 1u);
  // Broadcast groups report per-shard loads too (no exchange traffic).
  ASSERT_EQ(snap.shards.size(), 3u);
  EXPECT_EQ(snap.shards[0].sharding, "broadcast");
  EXPECT_EQ(snap.shards[0].matches_forwarded, 0u);
  group.Close();
}

TEST(QueryServiceParallelTest, PartitionedBackendServesTenantsWithLoads) {
  // Tenants choose the sharding mode where the engine group is built; the
  // service sees the same QueryBackend either way, and its metrics pick up
  // the per-shard retained-memory and exchange counters.
  Interner interner;
  ParallelEngineGroup group(&interner, 3, {},
                            ShardingMode::kPartitionedData);
  ParallelGroupBackend backend(&group);
  QueryService service(&backend);

  const QueryGraph q = PingQuery(&interner);
  const int alice = service.OpenSession("alice").value();
  const int bob = service.OpenSession("bob").value();
  const int a = service.Submit(alice, q).value();
  const int b = service.Submit(bob, q).value();

  for (Timestamp ts = 1; ts <= 16; ++ts) {
    ASSERT_TRUE(service
                    .Feed(MakeEdge(&interner, 100 + ts, 200 + ts, "ping",
                                   ts))
                    .ok());
  }
  service.Flush();
  EXPECT_EQ(service.queue(alice, a)->counters().enqueued, 16u);
  EXPECT_EQ(service.queue(bob, b)->counters().enqueued, 16u);

  const ServiceStatsSnapshot snap = service.Snapshot();
  ASSERT_EQ(snap.shards.size(), 3u);
  uint64_t retained_total = 0;
  for (const ShardLoadSnapshot& shard : snap.shards) {
    EXPECT_EQ(shard.sharding, "partitioned/hash_modulo");
    retained_total += shard.retained_edges;
  }
  // Each edge lands on one or two owner shards — never on all three.
  EXPECT_GE(retained_total, 16u);
  EXPECT_LE(retained_total, 32u);
  EXPECT_NE(snap.ToString().find("shard 0 [partitioned/hash_modulo]"),
            std::string::npos);
  group.Close();
}

TEST(QueryServiceParallelTest, DetachUnwedgesABlockedSubscription) {
  Interner interner;
  ParallelEngineGroup group(&interner, 1);
  ParallelGroupBackend backend(&group);
  QueryService service(&backend);

  const int session = service.OpenSession("alice").value();
  SubmitOptions options;
  options.queue_capacity = 1;
  options.policy = OverflowPolicy::kBlock;
  const int sub =
      service.Submit(session, PingQuery(&interner), options).value();

  // Two matches against a capacity-1 kBlock queue with no consumer: the
  // shard worker blocks inside Push, so the shard cannot quiesce. Detach
  // must still complete (it closes the queue before unregistering).
  service.Feed(MakeEdge(&interner, 1, 2, "ping", 1)).ok();
  service.Feed(MakeEdge(&interner, 3, 4, "ping", 2)).ok();
  while (service.queue(session, sub)->counters().enqueued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.Detach(session, sub).ok());

  // The queued match survives the detach; the blocked one was dropped.
  std::vector<CompleteMatch> drained;
  EXPECT_EQ(service.queue(session, sub)->Drain(&drained), 1u);
  EXPECT_EQ(service.queue(session, sub)->counters().dropped, 1u);
  group.Close();
}

// --- CommandInterpreter ----------------------------------------------------

class InterpreterTest : public ::testing::Test {
 protected:
  InterpreterTest()
      : engine_(&interner_),
        backend_(&engine_),
        service_(&backend_, Limits()),
        interpreter_(&service_, &interner_, &out_) {}

  static ServiceLimits Limits() {
    ServiceLimits limits;
    limits.max_queries_per_session = 2;
    return limits;
  }

  bool OutputContains(std::string_view needle) const {
    return out_.str().find(needle) != std::string::npos;
  }

  Interner interner_;
  StreamWorksEngine engine_;
  SingleEngineBackend backend_;
  QueryService service_;
  std::ostringstream out_;
  CommandInterpreter interpreter_;
};

TEST_F(InterpreterTest, ScriptedMultiTenantScenario) {
  const Status status = interpreter_.ExecuteScript(R"(
    # Three tenants sharing one stream: different overflow policies and
    # lifecycles over the same single-edge pattern.
    DEFINE ping
      node a V
      node b V
      edge a b ping
      window 1000
    END
    SESSION alice
    SESSION bob
    SESSION carol
    SUBMIT alice fast ping CAP 2 POLICY drop_oldest
    SUBMIT bob slow ping CAP 2 POLICY drop_newest
    SUBMIT carol roomy ping CAP 64 POLICY block

    FEED 1 V 2 V ping 1
    FEED 3 V 4 V ping 2
    FEED 5 V 6 V ping 3
    FEED 7 V 8 V ping 4
    FEED 9 V 10 V ping 5
    FLUSH

    PAUSE bob slow
    FEED 11 V 12 V ping 6
    DETACH alice fast
    FEED 13 V 14 V ping 7
    FLUSH
    RESUME bob slow
    FEED 15 V 16 V ping 8
    STATS
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();

  const auto alice = interpreter_.ResolveSubscription("alice", "fast");
  const auto bob = interpreter_.ResolveSubscription("bob", "slow");
  const auto carol = interpreter_.ResolveSubscription("carol", "roomy");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  ASSERT_TRUE(carol.ok());

  // Overflow policies demonstrably differ: both bounded queues dropped,
  // the roomy blocking queue dropped nothing.
  ResultQueue* alice_q = service_.queue(alice->first, alice->second);
  ResultQueue* bob_q = service_.queue(bob->first, bob->second);
  ResultQueue* carol_q = service_.queue(carol->first, carol->second);
  EXPECT_EQ(alice_q->counters().dropped, 4u);   // 6 offered, cap 2
  EXPECT_EQ(bob_q->counters().dropped, 4u);     // 6 offered around the pause
  EXPECT_EQ(carol_q->counters().dropped, 0u);   // all 8 delivered
  EXPECT_EQ(carol_q->counters().enqueued, 8u);

  // drop_oldest holds the newest matches, drop_newest the oldest.
  std::vector<CompleteMatch> alice_m, bob_m;
  alice_q->Drain(&alice_m);
  bob_q->Drain(&bob_m);
  ASSERT_EQ(alice_m.size(), 2u);
  EXPECT_EQ(alice_m[0].completed_at, 5);  // edges 6/7 arrived post-detach
  EXPECT_EQ(alice_m[1].completed_at, 6);
  ASSERT_EQ(bob_m.size(), 2u);
  EXPECT_EQ(bob_m[0].completed_at, 1);
  EXPECT_EQ(bob_m[1].completed_at, 2);

  // Detach stopped alice's deliveries (edge @7, @8 missing) while carol
  // kept all 8; bob's pause suppressed @6..@7 and resume let @8 through.
  EXPECT_EQ(service_.state(alice->first, alice->second).value(),
            SubscriptionState::kDetached);
  const ServiceStatsSnapshot snap = service_.Snapshot();
  EXPECT_EQ(snap.matches_suppressed, 2u);
  EXPECT_EQ(snap.detaches, 1u);
  EXPECT_EQ(snap.pauses, 1u);
  EXPECT_EQ(snap.resumes, 1u);

  EXPECT_TRUE(OutputContains("OK submit alice.fast"));
  EXPECT_TRUE(OutputContains("OK DETACH alice.fast"));
  EXPECT_TRUE(OutputContains("service: sessions=3"));
}

TEST_F(InterpreterTest, AdmissionRejectionIsAScenarioOutcome) {
  const Status status = interpreter_.ExecuteScript(R"(
    DEFINE ping
      node a V
      node b V
      edge a b ping
    END
    SESSION alice
    SUBMIT alice one ping
    SUBMIT alice two ping
    SUBMIT alice three ping
  )");
  ASSERT_TRUE(status.ok()) << status.ToString();  // script keeps running
  EXPECT_TRUE(OutputContains("REJECTED alice.three"));
  EXPECT_FALSE(interpreter_.ResolveSubscription("alice", "three").ok());
  EXPECT_EQ(service_.Snapshot().rejected_session_quota, 1u);
}

TEST_F(InterpreterTest, PollDrainsAndReportsMatches) {
  ASSERT_TRUE(interpreter_
                  .ExecuteScript(R"(
    DEFINE ping
      node a V
      node b V
      edge a b ping
    END
    SESSION alice
    SUBMIT alice s ping
    FEED 1 V 2 V ping 1
    FEED 3 V 4 V ping 5
    POLL alice s
  )")
                  .ok());
  EXPECT_TRUE(OutputContains("MATCH alice.s completed_at=1"));
  EXPECT_TRUE(OutputContains("MATCH alice.s completed_at=5"));
  EXPECT_TRUE(OutputContains("POLLED alice.s n=2"));
}

TEST_F(InterpreterTest, SubNameReuseRejectedWhileLiveAllowedAfterDetach) {
  ASSERT_TRUE(interpreter_
                  .ExecuteScript(R"(
    DEFINE ping
      node a V
      node b V
      edge a b ping
    END
    SESSION alice
    SUBMIT alice s ping
  )")
                  .ok());
  // A live name must not be silently replaced...
  EXPECT_FALSE(interpreter_.ExecuteLine("SUBMIT alice s ping").ok());
  // ...but detaching frees it for the re-submit flow.
  ASSERT_TRUE(interpreter_.ExecuteLine("DETACH alice s").ok());
  EXPECT_TRUE(interpreter_.ExecuteLine("SUBMIT alice s ping").ok());
}

TEST_F(InterpreterTest, MalformedCommandsCarryLineNumbers) {
  EXPECT_FALSE(interpreter_.ExecuteLine("SUBMIT alice s nosuch").ok());
  EXPECT_FALSE(interpreter_.ExecuteLine("BOGUS").ok());
  EXPECT_FALSE(interpreter_.ExecuteLine("FEED 1 V").ok());
  const Status status = interpreter_.ExecuteScript("DEFINE dangling\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("missing END"), std::string::npos);
}

TEST_F(InterpreterTest, TokenizerHandlesTabsRepeatsAndOverflow) {
  ASSERT_TRUE(interpreter_
                  .ExecuteScript(
                      "DEFINE ping\nnode a V\nnode b V\nedge a b ping\n"
                      "window 1000\nEND\nSESSION tabby\n"
                      "SUBMIT tabby live ping")
                  .ok());
  // Tabs and collapsed runs of whitespace tokenize like single spaces.
  ASSERT_TRUE(
      interpreter_.ExecuteLine("FEED\t1  V \t 2   V\tping\t5").ok());
  ASSERT_TRUE(interpreter_.ExecuteLine("FLUSH").ok());
  ASSERT_TRUE(interpreter_.ExecuteLine("POLL tabby live").ok());
  EXPECT_TRUE(OutputContains("POLLED tabby.live n=1"));
  // More tokens than any command can take is refused, not truncated.
  std::string runaway = "FEED";
  for (int i = 0; i < 20; ++i) runaway += " x";
  const Status status = interpreter_.ExecuteLine(runaway);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("too many tokens"), std::string::npos);
}

TEST_F(InterpreterTest, ExecuteBatchRidesTheFastPathAndCounts) {
  ASSERT_TRUE(interpreter_
                  .ExecuteScript(
                      "DEFINE ping\nnode a V\nnode b V\nedge a b ping\n"
                      "window 1000\nEND\nSESSION b\nSUBMIT b live ping")
                  .ok());
  EdgeBatch batch;
  for (int i = 0; i < 3; ++i) {
    StreamEdge e;
    e.src = 2 * static_cast<uint64_t>(i);
    e.dst = 2 * static_cast<uint64_t>(i) + 1;
    e.src_label = interner_.Intern("V");
    e.dst_label = interner_.Intern("V");
    e.edge_label = interner_.Intern("ping");
    e.ts = 10 + i;
    batch.push_back(e);
  }
  // One malformed straggler: time regression against the watermark.
  StreamEdge stale = batch.back();
  stale.src = 100;
  stale.dst = 101;
  stale.ts = 1;
  batch.push_back(stale);
  ASSERT_TRUE(interpreter_.ExecuteBatch(batch).ok());
  // The frame is acknowledged once, the bad edge skipped and counted —
  // and the rest of the batch still ingested.
  EXPECT_TRUE(OutputContains("OK feedb 3 1"));
  EXPECT_EQ(interpreter_.batch_frames(), 1u);
  EXPECT_EQ(interpreter_.batch_edges(), 4u);
  ASSERT_TRUE(interpreter_.ExecuteLine("FLUSH").ok());
  ASSERT_TRUE(interpreter_.ExecuteLine("POLL b live").ok());
  EXPECT_TRUE(OutputContains("POLLED b.live n=3"));
}

// --- Age-based reclamation -------------------------------------------------

TEST_F(QueryServiceTest, AgedSweepReclaimsDrainedDetachedInOpenSessions) {
  ServiceLimits limits;
  limits.detached_reclaim_age = 5;   // epochs (one per Feed call)
  limits.aged_sweep_interval = 1;    // sweep on every control-path tick
  QueryService service(&backend_, limits);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());
  ASSERT_TRUE(service.Detach(session, sub).ok());
  // Drain the queued match: the subscription is now drained-but-never-
  // collected, exactly what the aged sweep exists for.
  std::vector<CompleteMatch> drained;
  service.queue(session, sub)->Drain(&drained);
  ASSERT_EQ(drained.size(), 1u);

  // Age the subscription on the control path; under the threshold it
  // must survive every sweep (each Feed ticks one epoch + one sweep).
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(FeedPing(1, 2, 2 + i, service).ok());
    EXPECT_TRUE(service.state(session, sub).ok()) << "swept at age " << i;
  }
  // The fifth tick crosses detached_reclaim_age: reclaimed, id gone, the
  // session itself stays open and serves on.
  ASSERT_TRUE(FeedPing(1, 2, 10, service).ok());
  EXPECT_FALSE(service.state(session, sub).ok());
  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.reclaimed, 1u);
  EXPECT_EQ(snap.reclaimed_aged, 1u);
  ASSERT_EQ(snap.sessions.size(), 1u);
  EXPECT_TRUE(snap.sessions[0].open);
  // Counter surfaces in the STATS rendering.
  EXPECT_NE(snap.ToString().find("reclaimed_aged=1"), std::string::npos);
}

TEST_F(QueryServiceTest, AgedSweepSparesUndrainedQueues) {
  ServiceLimits limits;
  limits.detached_reclaim_age = 2;
  limits.aged_sweep_interval = 1;
  QueryService service(&backend_, limits);
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(FeedPing(1, 2, 1, service).ok());  // queues one match
  ASSERT_TRUE(service.Detach(session, sub).ok());

  // Far past the age threshold — but the queue still holds a result a
  // slow consumer may come back for: age alone never discards matches.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(FeedPing(1, 2, 2 + i, service).ok());
  }
  EXPECT_TRUE(service.state(session, sub).ok());
  EXPECT_EQ(service.Snapshot().reclaimed_aged, 0u);

  // Draining it makes the next tick reclaim.
  std::vector<CompleteMatch> drained;
  service.queue(session, sub)->Drain(&drained);
  ASSERT_TRUE(FeedPing(1, 2, 20, service).ok());
  EXPECT_FALSE(service.state(session, sub).ok());
  EXPECT_EQ(service.Snapshot().reclaimed_aged, 1u);
}

TEST_F(QueryServiceTest, AgedSweepIsOffByDefaultAndDirectCallWorks) {
  QueryService service(&backend_);  // detached_reclaim_age = 0: no auto
  const int session = service.OpenSession("alice").value();
  const int sub = service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(service.Detach(session, sub).ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(FeedPing(1, 2, 1 + i, service).ok());
  }
  EXPECT_TRUE(service.state(session, sub).ok());  // never auto-swept
  // Explicit call reclaims immediately (age 0 = everything eligible).
  EXPECT_EQ(service.ReclaimAged(), 1u);
  EXPECT_FALSE(service.state(session, sub).ok());
}

// --- ATTACH (recovered-session rebinding) ----------------------------------

TEST_F(QueryServiceTest, AttachSessionClaimsOnlyRecoveredSessions) {
  QueryService service(&backend_);
  const int session = service.OpenSession("alice").value();
  SubmitOptions tagged;
  tagged.tag = "live";
  ASSERT_TRUE(service.Submit(session, PingQuery(&interner_), tagged).ok());
  const int detached =
      service.Submit(session, PingQuery(&interner_)).value();
  ASSERT_TRUE(service.Detach(session, detached).ok());

  // A live session is bound to its creator: another tenant guessing the
  // name must not be able to adopt it (and close it on disconnect).
  auto hijack = service.AttachSession("alice");
  ASSERT_FALSE(hijack.ok());
  EXPECT_EQ(hijack.status().code(), StatusCode::kFailedPrecondition);

  // A recovery-restored session is unbound until exactly one attach
  // claims it.
  StreamWorksEngine engine2(&interner_);
  SingleEngineBackend backend2(&engine2);
  QueryService recovered(&backend2);
  ASSERT_TRUE(
      recovered.RestorePersistState(service.ExportPersistState()).ok());
  const AttachedSession attached =
      recovered.AttachSession("alice").value();
  ASSERT_EQ(attached.subscriptions.size(), 1u);  // detached one excluded
  EXPECT_EQ(attached.subscriptions[0].tag, "live");
  EXPECT_EQ(attached.subscriptions[0].state, SubscriptionState::kActive);
  // Second claim of the same name: refused, like any bound session.
  EXPECT_FALSE(recovered.AttachSession("alice").ok());

  EXPECT_FALSE(recovered.AttachSession("nobody").ok());
  ASSERT_TRUE(recovered.CloseSession(attached.session_id).ok());
  EXPECT_FALSE(recovered.AttachSession("alice").ok());  // closed: gone
}

TEST_F(InterpreterTest, AttachRebindsRecoveredSessionAndSubNames) {
  ASSERT_TRUE(interpreter_
                  .ExecuteScript(
                      "DEFINE ping\nnode a V\nnode b V\nedge a b ping\n"
                      "window 1000\nEND\nSESSION alice\n"
                      "SUBMIT alice live ping")
                  .ok());
  // The live session is bound to this interpreter; a second frontend
  // cannot ATTACH it out from under its owner...
  std::ostringstream out2;
  CommandInterpreter intruder(&service_, &interner_, &out2);
  EXPECT_FALSE(intruder.ExecuteLine("ATTACH alice").ok());

  // ...but after a recovery (fresh stack restored from the persist
  // image) the reconnecting tenant adopts it by name and addresses the
  // same subscription names.
  StreamWorksEngine engine2(&interner_);
  SingleEngineBackend backend2(&engine2);
  QueryService recovered(&backend2);
  ASSERT_TRUE(
      recovered.RestorePersistState(service_.ExportPersistState()).ok());
  std::ostringstream out3;
  CommandInterpreter reconnected(&recovered, &interner_, &out3);
  ASSERT_TRUE(reconnected.ExecuteLine("ATTACH alice").ok());
  EXPECT_NE(out3.str().find("OK attach alice id=0 subs=live:active"),
            std::string::npos);
  ASSERT_TRUE(reconnected.ExecuteLine("FEED 1 V 2 V ping 5").ok());
  ASSERT_TRUE(reconnected.ExecuteLine("POLL alice live").ok());
  EXPECT_NE(out3.str().find("POLLED alice.live n=1"), std::string::npos);

  EXPECT_FALSE(reconnected.ExecuteLine("ATTACH ghost").ok());
}

TEST_F(InterpreterTest, SnapshotVerbNeedsAHook) {
  const Status status = interpreter_.ExecuteLine("SNAPSHOT");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("no durability layer"),
            std::string::npos);

  interpreter_.set_snapshot_hook(
      []() -> StatusOr<std::string> { return std::string("wal_seq=7"); });
  ASSERT_TRUE(interpreter_.ExecuteLine("SNAPSHOT").ok());
  EXPECT_TRUE(OutputContains("OK snapshot wal_seq=7"));
}

}  // namespace
}  // namespace streamworks
