// Deterministic corpus replay for toolchains without libFuzzer (gcc):
// links against a fuzz target's LLVMFuzzerTestOneInput and runs every
// file (or every file inside a directory) passed on the command line
// through it exactly once. Crashes propagate like any other process
// crash, so ctest / CI can gate on the corpus staying green even where
// -fsanitize=fuzzer is unavailable.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <corpus file or dir>...\n";
    return 2;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Directory iteration order is unspecified; replay must not be.
      std::sort(files.begin(), files.end());
    } else {
      files.push_back(arg);
    }
    for (const auto& file : files) {
      if (ReplayFile(file) != 0) return 1;
      ++replayed;
    }
  }
  std::cout << "replayed " << replayed << " corpus inputs\n";
  return 0;
}
