// Fuzz target for the cluster control-frame decoder — the parser every
// coordinator/worker link trusts with raw socket bytes, including the
// exchange payloads that carry partial matches between shards and the
// frame-log records a recovering worker replays. DecodeCtrlFrame must
// never read out of bounds, loop, or report a consumption count that
// would desync the link, no matter the bytes.
//
// Built by -DSTREAMWORKS_FUZZ=ON: under clang as a libFuzzer binary
// (-fsanitize=fuzzer), under gcc linked against the corpus replay driver
// (tests/fuzz/replay_driver.cc). Seeds live in tests/fuzz/corpus/exchange/.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/stream/cluster_wire.h"

namespace {

// A failed invariant must crash loudly under the fuzzer, not just return.
void Check(bool ok) {
  if (!ok) __builtin_trap();
}

streamworks::LabelNameFn NameFn(const streamworks::Interner& interner) {
  return [&interner](streamworks::LabelId id) -> std::string_view {
    return interner.Name(id);
  };
}

// Re-encodes an accepted frame and requires the copy to decode to the
// same type — the discipline the worker's log replay depends on
// (ReencodeStateFrame round-trips every state frame through this codec).
void CheckReencode(const streamworks::CtrlFrame& frame,
                   const streamworks::Interner& interner,
                   size_t max_body_bytes) {
  using streamworks::CtrlType;
  std::string encoded;
  switch (frame.type) {
    case CtrlType::kHello:
      encoded = EncodeHelloFrame(frame.hello);
      break;
    case CtrlType::kHelloAck:
      encoded = EncodeHelloAckFrame(frame.hello_ack);
      break;
    case CtrlType::kRegister:
      encoded = EncodeRegisterFrame(frame.reg);
      break;
    case CtrlType::kRegisterAck:
      encoded = EncodeRegisterAckFrame(frame.register_ack);
      break;
    case CtrlType::kEndBackfill:
      encoded = streamworks::EncodeEndBackfillFrame();
      break;
    case CtrlType::kUnregister:
      encoded = EncodeUnregisterFrame(frame.unregister);
      break;
    case CtrlType::kBatch:
      encoded = EncodeBatchFrame(frame.batch, NameFn(interner));
      break;
    case CtrlType::kExchange:
      encoded = EncodeExchangeFrame(frame.exchange, NameFn(interner));
      break;
    case CtrlType::kBarrier:
      encoded = EncodeBarrierFrame(frame.barrier);
      break;
    case CtrlType::kBarrierAck:
      encoded = EncodeBarrierAckFrame(frame.barrier_ack);
      break;
    case CtrlType::kCommit:
      encoded = EncodeCommitFrame(frame.commit);
      break;
    case CtrlType::kCompletion:
      encoded = EncodeCompletionFrame(frame.completion, NameFn(interner));
      break;
    case CtrlType::kInfo:
      encoded = EncodeInfoFrame(frame.info);
      break;
    case CtrlType::kInfoAck:
      encoded = EncodeInfoAckFrame(frame.info_ack);
      break;
    case CtrlType::kStats:
      encoded = streamworks::EncodeStatsFrame();
      break;
    case CtrlType::kStatsAck:
      encoded = EncodeStatsAckFrame(frame.stats_ack);
      break;
    case CtrlType::kMetricsRequest:
      encoded = streamworks::EncodeMetricsRequestFrame();
      break;
    case CtrlType::kMetricsReport:
      encoded = EncodeMetricsReportFrame(frame.metrics_report);
      break;
  }
  streamworks::Interner fresh;
  const streamworks::CtrlDecodeResult again =
      streamworks::DecodeCtrlFrame(encoded, max_body_bytes, &fresh);
  // An oversized re-encode is possible under the tiny limit; anything
  // else must decode to the same frame type, whole-buffer.
  if (again.status == streamworks::FrameDecodeStatus::kOversized) return;
  Check(again.status == streamworks::FrameDecodeStatus::kOk);
  Check(again.frame_bytes == encoded.size());
  Check(again.frame.type == frame.type);
}

void DecodeAndCheck(std::string_view buf, size_t max_body_bytes) {
  streamworks::Interner interner;
  const streamworks::CtrlDecodeResult result =
      streamworks::DecodeCtrlFrame(buf, max_body_bytes, &interner);
  switch (result.status) {
    case streamworks::FrameDecodeStatus::kOk:
      // The link consumes frame_bytes: it must cover at least the header
      // and never exceed what was actually in the buffer.
      Check(result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      Check(result.frame_bytes <= buf.size());
      CheckReencode(result.frame, interner, max_body_bytes);
      break;
    case streamworks::FrameDecodeStatus::kNeedMore:
      // Only ever a prefix-of-frame answer.
      Check(result.frame_bytes == 0 || result.frame_bytes > buf.size());
      break;
    case streamworks::FrameDecodeStatus::kOversized:
      // Skip count must cover the header it is skipping past.
      Check(result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      break;
    case streamworks::FrameDecodeStatus::kMalformed:
      // frame_bytes == 0 is the unrecoverable bad-magic answer; any other
      // value must be a self-consistent skip.
      Check(result.frame_bytes == 0 ||
            result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  // The control plane's production limit, then a tiny one so the
  // oversized path is exercised by ordinary inputs too.
  DecodeAndCheck(buf, streamworks::kDefaultMaxFrameBodyBytes);
  DecodeAndCheck(buf, 64);
  return 0;
}
