// Fuzz target for the observability HTTP/1.1 request parser. It reads
// whatever a scraper (or port scanner) throws at the /metrics listener,
// so it must be total: no out-of-bounds reads, no consumed count past the
// buffer, and byte-wise incremental delivery must agree with one-shot
// parsing — the IO loop feeds it partial reads.
//
// Built by -DSTREAMWORKS_FUZZ=ON: under clang as a libFuzzer binary
// (-fsanitize=fuzzer), under gcc linked against the corpus replay driver
// (tests/fuzz/replay_driver.cc). Seeds live in tests/fuzz/corpus/http/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "streamworks/obs/http_endpoint.h"

namespace {

void Check(bool ok) {
  if (!ok) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);

  streamworks::HttpRequest request;
  size_t consumed = 0;
  const streamworks::HttpParseResult result =
      streamworks::ParseHttpRequest(buf, &request, &consumed);
  if (result == streamworks::HttpParseResult::kComplete) {
    Check(consumed <= buf.size());
    Check(consumed > 0);
  }

  // Incremental agreement: parsing ever-longer prefixes must reach the
  // same verdict at the same cut the one-shot parse found, and kNeedMore
  // on every shorter prefix must stay kNeedMore (a parser that flips from
  // kBad back to kNeedMore as bytes arrive would wedge a connection).
  // Quadratic, so cap the prefix sweep; the fuzzer minimizes anyway.
  if (buf.size() <= 512) {
    bool settled = false;
    for (size_t len = 0; len <= buf.size() && !settled; ++len) {
      streamworks::HttpRequest prefix_request;
      size_t prefix_consumed = 0;
      const streamworks::HttpParseResult prefix_result =
          streamworks::ParseHttpRequest(buf.substr(0, len), &prefix_request,
                                        &prefix_consumed);
      if (prefix_result == streamworks::HttpParseResult::kNeedMore) continue;
      settled = true;
      if (result != streamworks::HttpParseResult::kNeedMore) {
        Check(prefix_result == result);
        if (prefix_result == streamworks::HttpParseResult::kComplete) {
          Check(prefix_consumed == consumed);
          Check(prefix_request.method == request.method);
          Check(prefix_request.target == request.target);
        }
      }
    }
  }
  return 0;
}
