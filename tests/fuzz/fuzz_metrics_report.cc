// Fuzz target for the MetricsReport codec — the one control frame whose
// payload is produced by a *remote* registry snapshot and parsed on the
// coordinator's scrape path. The frame carries a CRC trailer over the
// whole payload, which is great for wire integrity but terrible for
// coverage: random bytes almost never clear the CRC gate, so the
// field-level parsers (sample kinds, label tables, sparse histogram
// buckets) would go unfuzzed. This target therefore feeds the input two
// ways: once raw (exercising header/CRC handling), and once wrapped in a
// well-formed kMetricsReport frame with a freshly computed CRC so the
// bytes land directly in the report's field decoders.
//
// Built by -DSTREAMWORKS_FUZZ=ON: under clang as a libFuzzer binary
// (-fsanitize=fuzzer), under gcc linked against the corpus replay driver
// (tests/fuzz/replay_driver.cc). Seeds live in tests/fuzz/corpus/metrics/.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/persist/crc32.h"
#include "streamworks/stream/cluster_wire.h"

namespace {

// A failed invariant must crash loudly under the fuzzer, not just return.
void Check(bool ok) {
  if (!ok) __builtin_trap();
}

// An accepted report must survive re-encode → re-decode with the header
// counters intact — the property the coordinator's federation cache and
// /cluster.json rows depend on.
void CheckReencode(const streamworks::CtrlFrame& frame, size_t max_body_bytes) {
  if (frame.type != streamworks::CtrlType::kMetricsReport) return;
  const std::string encoded =
      streamworks::EncodeMetricsReportFrame(frame.metrics_report);
  streamworks::Interner fresh;
  const streamworks::CtrlDecodeResult again =
      streamworks::DecodeCtrlFrame(encoded, max_body_bytes, &fresh);
  if (again.status == streamworks::FrameDecodeStatus::kOversized) return;
  Check(again.status == streamworks::FrameDecodeStatus::kOk);
  Check(again.frame_bytes == encoded.size());
  Check(again.frame.type == streamworks::CtrlType::kMetricsReport);
  const streamworks::CtrlMetricsReport& a = frame.metrics_report;
  const streamworks::CtrlMetricsReport& b = again.frame.metrics_report;
  Check(a.wal_seq == b.wal_seq);
  Check(a.replayed_frames == b.replayed_frames);
  Check(a.exchange_items_sent == b.exchange_items_sent);
  Check(a.completions_sent == b.completions_sent);
  Check(a.samples.size() == b.samples.size());
}

void DecodeAndCheck(std::string_view buf, size_t max_body_bytes) {
  streamworks::Interner interner;
  const streamworks::CtrlDecodeResult result =
      streamworks::DecodeCtrlFrame(buf, max_body_bytes, &interner);
  switch (result.status) {
    case streamworks::FrameDecodeStatus::kOk:
      Check(result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      Check(result.frame_bytes <= buf.size());
      CheckReencode(result.frame, max_body_bytes);
      break;
    case streamworks::FrameDecodeStatus::kNeedMore:
      Check(result.frame_bytes == 0 || result.frame_bytes > buf.size());
      break;
    case streamworks::FrameDecodeStatus::kOversized:
      Check(result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      break;
    case streamworks::FrameDecodeStatus::kMalformed:
      Check(result.frame_bytes == 0 ||
            result.frame_bytes >= streamworks::kCtrlFrameHeaderBytes);
      break;
  }
}

// Wraps `payload` as the post-type bytes of a kMetricsReport frame with a
// valid CRC trailer, so the input reaches the field decoders.
std::string WrapAsReportFrame(std::string_view payload) {
  std::string body;
  body.push_back(
      static_cast<char>(streamworks::CtrlType::kMetricsReport));
  body.append(payload);
  const uint32_t crc = streamworks::Crc32(payload);
  for (int shift = 0; shift < 32; shift += 8) {
    body.push_back(static_cast<char>((crc >> shift) & 0xFF));
  }
  std::string frame(streamworks::kCtrlFrameMagic,
                    sizeof(streamworks::kCtrlFrameMagic));
  const uint32_t body_len = static_cast<uint32_t>(body.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<char>((body_len >> shift) & 0xFF));
  }
  frame.append(body);
  return frame;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  DecodeAndCheck(buf, streamworks::kDefaultMaxFrameBodyBytes);
  const std::string wrapped = WrapAsReportFrame(buf);
  DecodeAndCheck(wrapped, streamworks::kDefaultMaxFrameBodyBytes);
  DecodeAndCheck(wrapped, 64);
  return 0;
}
