// Fuzz target for the FEEDB binary frame decoder — the one parser that
// eats length-prefixed bytes straight off the network before any
// authentication or sanity layer. DecodeFeedFrame must never read out of
// bounds, loop, or report a consumption count that would desync the
// connection's demultiplexer, no matter the bytes.
//
// Built by -DSTREAMWORKS_FUZZ=ON: under clang as a libFuzzer binary
// (-fsanitize=fuzzer), under gcc linked against the corpus replay driver
// (tests/fuzz/replay_driver.cc). Seeds live in tests/fuzz/corpus/feedb/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/stream/wire_format.h"

namespace {

// A failed invariant must crash loudly under the fuzzer, not just return.
void Check(bool ok) {
  if (!ok) __builtin_trap();
}

void DecodeAndCheck(std::string_view buf, size_t max_body_bytes) {
  streamworks::Interner interner;
  const streamworks::FrameDecodeResult result =
      streamworks::DecodeFeedFrame(buf, max_body_bytes, &interner);
  switch (result.status) {
    case streamworks::FrameDecodeStatus::kOk: {
      // The demux consumes frame_bytes: it must cover at least the header
      // and never exceed what was actually in the buffer.
      Check(result.frame_bytes >= streamworks::kFeedFrameHeaderBytes);
      Check(result.frame_bytes <= buf.size());
      // Round trip: a frame the decoder accepted must re-encode and
      // re-decode to the same edge count (labels re-resolve by string).
      auto encoded = streamworks::EncodeFeedFrame(result.batch, interner);
      Check(encoded.ok());
      streamworks::Interner fresh;
      const streamworks::FrameDecodeResult again =
          streamworks::DecodeFeedFrame(*encoded, max_body_bytes, &fresh);
      Check(again.status == streamworks::FrameDecodeStatus::kOk);
      Check(again.batch.size() == result.batch.size());
      break;
    }
    case streamworks::FrameDecodeStatus::kNeedMore:
      // Only ever a prefix-of-frame answer; consuming nothing is implied.
      Check(buf.size() < streamworks::kFeedFrameHeaderBytes ||
            result.frame_bytes == 0 ||
            result.frame_bytes > buf.size());
      break;
    case streamworks::FrameDecodeStatus::kOversized:
      // Resync skip must cover the header it is skipping past.
      Check(result.frame_bytes >= streamworks::kFeedFrameHeaderBytes);
      break;
    case streamworks::FrameDecodeStatus::kMalformed:
      // frame_bytes == 0 is the unrecoverable bad-magic answer; any other
      // value must be a self-consistent skip.
      Check(result.frame_bytes == 0 ||
            result.frame_bytes >= streamworks::kFeedFrameHeaderBytes);
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view buf(reinterpret_cast<const char*>(data), size);
  // The server's production limit, then a tiny one so the oversized path
  // (skip_bytes resync) is exercised by ordinary inputs too.
  DecodeAndCheck(buf, streamworks::kDefaultMaxFrameBodyBytes);
  DecodeAndCheck(buf, 64);
  return 0;
}
