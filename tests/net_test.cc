// Tests for streamworks/net: the socket server frontend end-to-end over
// loopback — request/response framing, TCP + unix-domain listeners,
// multi-client isolation, POLL→push streaming (EVENT lines), write
// backpressure falling through to the ResultQueue overflow policies,
// malformed input, abrupt disconnect with session reclamation, and
// graceful shutdown. Every QueryService control-plane call during a
// server's lifetime goes through the wire; direct service introspection
// happens only after Stop() (single-threaded again), keeping the suite
// race-clean under TSan.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>
#include <set>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/engine.h"
#include "streamworks/core/parallel.h"
#include "streamworks/net/client.h"
#include "streamworks/net/server.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/persist/durable_backend.h"
#include "streamworks/persist/manager.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kTimeout{5000};

/// A single-edge query over the wire; one FEED of a "ping" edge completes
/// exactly one match, which keeps every delivery count exact.
const char* const kDefinePing =
    "DEFINE ping\n"
    "  node a V\n"
    "  node b V\n"
    "  edge a b ping\n"
    "  window 1000\n"
    "END";

std::string FeedPing(uint64_t src, uint64_t dst, int64_t ts) {
  return "FEED " + std::to_string(src) + " V " + std::to_string(dst) +
         " V ping " + std::to_string(ts);
}

/// Engine + service + server over a unix socket (and optionally TCP),
/// torn down in order.
class NetTest : public ::testing::Test {
 protected:
  NetTest() : engine_(&interner_), backend_(&engine_) {}

  ~NetTest() override {
    if (server_ != nullptr) server_->Stop();
  }

  std::string UniqueSocketPath() {
    static std::atomic<int> counter{0};
    return "/tmp/sw_net_test_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
  }

  /// Starts the server; default options serve a unix socket only.
  void StartServer(ServerOptions options = {}) {
    if (options.unix_path.empty() && options.tcp_port < 0) {
      options.unix_path = UniqueSocketPath();
    }
    service_ = std::make_unique<QueryService>(&backend_, limits_);
    server_ = std::make_unique<SocketServer>(service_.get(), &interner_,
                                             options);
    ASSERT_TRUE(server_->Start().ok());
  }

  LineClient Connect() {
    auto client = server_->unix_path().empty()
                      ? LineClient::ConnectTcp("127.0.0.1",
                                               server_->tcp_port())
                      : LineClient::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// One command over the wire, asserting the exchange itself worked.
  std::vector<std::string> Run(LineClient& client, const std::string& line) {
    auto payload = client.Command(line, kTimeout);
    EXPECT_TRUE(payload.ok()) << line << ": " << payload.status().ToString();
    return payload.ok() ? *payload : std::vector<std::string>{};
  }

  /// Runs a multi-line script, returning every payload line in order.
  std::vector<std::string> RunScript(LineClient& client,
                                     const std::string& script) {
    std::vector<std::string> all;
    for (std::string_view line : Split(script, '\n')) {
      for (std::string& reply : Run(client, std::string(line))) {
        all.push_back(std::move(reply));
      }
    }
    return all;
  }

  /// "key=<number>" extractor for STATS lines.
  static uint64_t Counter(const std::string& line, std::string_view key) {
    const std::string needle = std::string(key) + "=";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos) return 0;
    size_t end = pos + needle.size();
    while (end < line.size() && std::isdigit(line[end])) ++end;
    uint64_t value = 0;
    ParseUint64(line.substr(pos + needle.size(), end - pos - needle.size()),
                &value);
    return value;
  }

  static bool Contains(const std::vector<std::string>& lines,
                       std::string_view needle) {
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  static size_t CountPrefix(const std::vector<std::string>& lines,
                            std::string_view prefix) {
    size_t n = 0;
    for (const std::string& line : lines) {
      if (StartsWith(line, prefix)) ++n;
    }
    return n;
  }

  /// Waits until the server has torn a disconnected connection down (the
  /// poll loop owns teardown, so it is asynchronous to the client Close).
  void AwaitConnections(size_t expected) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server_->active_connections() != expected &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(milliseconds(1));
    }
    EXPECT_EQ(server_->active_connections(), expected);
  }

  Interner interner_;
  StreamWorksEngine engine_;
  SingleEngineBackend backend_;
  ServiceLimits limits_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(NetTest, UnixRoundTripSubscribeIngestPoll) {
  StartServer();
  LineClient client = Connect();
  const std::vector<std::string> lines = RunScript(
      client, std::string(kDefinePing) +
                  "\nSESSION alice\nSUBMIT alice live ping CAP 8\n" +
                  FeedPing(1, 2, 10) + "\nFLUSH\nPOLL alice live");
  EXPECT_TRUE(Contains(lines, "OK define ping"));
  EXPECT_TRUE(Contains(lines, "OK session alice"));
  EXPECT_TRUE(Contains(lines, "OK submit alice.live"));
  EXPECT_EQ(CountPrefix(lines, "MATCH alice.live"), 1u);
  EXPECT_TRUE(Contains(lines, "POLLED alice.live n=1"));
  client.Quit();
}

TEST_F(NetTest, TcpAndUnixListenersServeTheSameService) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.unix_path = UniqueSocketPath();
  StartServer(options);
  ASSERT_GT(server_->tcp_port(), 0);

  auto tcp = LineClient::ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_TRUE(tcp.ok()) << tcp.status().ToString();
  LineClient tcp_client = std::move(tcp).value();
  LineClient unix_client = Connect();

  RunScript(tcp_client, std::string(kDefinePing) +
                            "\nSESSION tcp_tenant\n"
                            "SUBMIT tcp_tenant live ping");
  RunScript(unix_client, std::string(kDefinePing) +
                             "\nSESSION unix_tenant\n"
                             "SUBMIT unix_tenant live ping");
  // One service behind both transports: either client's STATS sees both
  // tenants' sessions.
  const std::vector<std::string> stats = Run(unix_client, "STATS");
  EXPECT_TRUE(Contains(stats, "'tcp_tenant'"));
  EXPECT_TRUE(Contains(stats, "'unix_tenant'"));
  tcp_client.Quit();
  unix_client.Quit();
}

TEST_F(NetTest, MalformedInputGetsErrAndConnectionSurvives) {
  StartServer();
  LineClient client = Connect();
  std::vector<std::string> lines = Run(client, "FROBNICATE the graph");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(StartsWith(lines[0], "ERR "));
  EXPECT_TRUE(Contains(lines, "unknown command"));

  // Arity and lookup failures are reported the same way...
  EXPECT_TRUE(StartsWith(Run(client, "SUBMIT nosession nosub noquery")[0],
                         "ERR "));
  EXPECT_TRUE(StartsWith(Run(client, "FEED not numbers")[0], "ERR "));

  // ...and the session keeps working afterwards.
  const std::vector<std::string> ok = RunScript(
      client, std::string(kDefinePing) + "\nSESSION bob\n"
              "SUBMIT bob live ping\n" +
              FeedPing(5, 6, 1) + "\nFLUSH\nPOLL bob live");
  EXPECT_EQ(CountPrefix(ok, "MATCH bob.live"), 1u);
  client.Quit();
}

TEST_F(NetTest, StreamPushesMatchesAsEvents) {
  StartServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION eve\nSUBMIT eve live ping CAP 32");
  EXPECT_TRUE(Contains(Run(client, "STREAM eve live"), "OK stream eve.live"));

  Run(client, FeedPing(1, 2, 10));
  Run(client, FeedPing(3, 4, 11));
  Run(client, "FLUSH");
  for (int i = 0; i < 2; ++i) {
    auto event = client.NextEvent(kTimeout);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    EXPECT_TRUE(StartsWith(*event, "EVENT MATCH eve.live"));
  }

  // UNSTREAM reverts to pull delivery: the next match stays queued for
  // POLL instead of surfacing as an EVENT.
  EXPECT_TRUE(Contains(Run(client, "UNSTREAM eve live"),
                       "OK unstream eve.live"));
  Run(client, FeedPing(5, 6, 12));
  const std::vector<std::string> polled =
      RunScript(client, "FLUSH\nPOLL eve live");
  EXPECT_EQ(CountPrefix(polled, "MATCH eve.live"), 1u);
  EXPECT_EQ(client.buffered_events(), 0u);
  client.Quit();
}

TEST_F(NetTest, StreamEndsWhenSubscriptionDetaches) {
  StartServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION eve\nSUBMIT eve live ping\n"
                        "STREAM eve live\n" +
                        FeedPing(1, 2, 10) + "\nFLUSH");
  auto match = client.NextEvent(kTimeout);
  ASSERT_TRUE(match.ok()) << match.status().ToString();
  EXPECT_TRUE(StartsWith(*match, "EVENT MATCH eve.live"));

  Run(client, "DETACH eve live");
  auto end = client.NextEvent(kTimeout);
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(*end, "EVENT END eve.live");
  client.Quit();
}

TEST_F(NetTest, MultiClientStreamsAreIsolated) {
  StartServer();
  LineClient alice = Connect();
  LineClient bob = Connect();
  LineClient feeder = Connect();

  RunScript(alice, std::string(kDefinePing) +
                       "\nSESSION alice\nSUBMIT alice live ping\n"
                       "STREAM alice live");
  RunScript(bob, std::string(kDefinePing) +
                     "\nSESSION bob\nSUBMIT bob live ping\n"
                     "STREAM bob live");
  RunScript(feeder, FeedPing(1, 2, 10) + "\nFLUSH");

  auto alice_event = alice.NextEvent(kTimeout);
  ASSERT_TRUE(alice_event.ok()) << alice_event.status().ToString();
  EXPECT_TRUE(StartsWith(*alice_event, "EVENT MATCH alice.live"));
  auto bob_event = bob.NextEvent(kTimeout);
  ASSERT_TRUE(bob_event.ok()) << bob_event.status().ToString();
  EXPECT_TRUE(StartsWith(*bob_event, "EVENT MATCH bob.live"));

  // One edge, one match per subscription, nothing cross-delivered.
  EXPECT_EQ(alice.buffered_events(), 0u);
  EXPECT_EQ(bob.buffered_events(), 0u);
  alice.Quit();
  bob.Quit();
  feeder.Quit();
}

TEST_F(NetTest, DisconnectMidStreamClosesSessionsAndReclaims) {
  StartServer();
  LineClient doomed = Connect();
  RunScript(doomed, std::string(kDefinePing) +
                        "\nSESSION doomed\n"
                        "SUBMIT doomed live ping CAP 2 POLICY block\n"
                        "STREAM doomed live\n" +
                        FeedPing(1, 2, 10) + "\nFLUSH");
  // Vanish without BYE, mid-stream.
  doomed.Close();
  AwaitConnections(0);

  // The stream keeps flowing for everyone else: a second tenant can
  // subscribe and see matches (a wedged shard/worker would hang FLUSH
  // here, failing the Command timeout).
  LineClient survivor = Connect();
  const std::vector<std::string> lines = RunScript(
      survivor, std::string(kDefinePing) +
                    "\nSESSION survivor\nSUBMIT survivor live ping\n" +
                    FeedPing(3, 4, 20) + "\nFLUSH\nPOLL survivor live");
  EXPECT_EQ(CountPrefix(lines, "MATCH survivor.live"), 1u);
  // The doomed tenant left no tombstone: its session was closed AND
  // compacted away, so STATS no longer lists it at all.
  const std::vector<std::string> stats = Run(survivor, "STATS");
  EXPECT_FALSE(Contains(stats, "'doomed'"));
  EXPECT_TRUE(Contains(stats, "'survivor'"));
  survivor.Quit();
  AwaitConnections(0);

  server_->Stop();
  EXPECT_GE(server_->stats().subscriptions_reclaimed, 1u);
  // Both tenants' subscriptions (and their sessions) really are gone from
  // the service: DeliveryStates reclaimed, tables compacted.
  const ServiceStatsSnapshot snap = service_->Snapshot();
  EXPECT_EQ(snap.reclaimed, 2u);  // doomed.live and survivor.live
  EXPECT_EQ(snap.sessions_opened, 2u);  // history survives compaction
  EXPECT_TRUE(snap.sessions.empty());
  EXPECT_EQ(service_->queue(0, 0), nullptr);
}

TEST_F(NetTest, SlowReaderOverflowFallsThroughToQueuePolicy) {
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  // Tiny socket buffer + low high-water: the pump parks after a few KB of
  // unread events and the queue's own policy takes over.
  options.so_sndbuf = 4096;
  options.write_high_water = 2048;
  StartServer(options);

  LineClient slow = Connect();
  RunScript(slow, std::string(kDefinePing) +
                      "\nSESSION slow\n"
                      "SUBMIT slow live ping CAP 4 POLICY drop_oldest\n"
                      "STREAM slow live");
  // `slow` now stops reading entirely while a producer floods.
  LineClient producer = Connect();
  constexpr int kEdges = 2000;
  for (int i = 0; i < kEdges; ++i) {
    Run(producer, FeedPing(2 * i, 2 * i + 1, i + 1));
  }
  Run(producer, "FLUSH");

  // Every callback ran inside FLUSH (single-engine backend): the overflow
  // verdicts are final. The slow reader's queue dropped matches instead
  // of stalling the stream or growing without bound.
  const std::vector<std::string> stats = Run(producer, "STATS");
  bool found_sub = false;
  for (const std::string& line : stats) {
    if (line.find("query='ping'") == std::string::npos) continue;
    found_sub = true;
    EXPECT_NE(line.find("policy=drop_oldest"), std::string::npos) << line;
    // drop_oldest admits every match (enqueued counts all kEdges) and
    // evicts from the front to make room: the drops are the evictions,
    // and what the reader can still get is delivered + queued.
    const uint64_t enqueued = Counter(line, "enqueued");
    const uint64_t dropped = Counter(line, "dropped");
    const uint64_t delivered = Counter(line, "delivered");
    const uint64_t depth = Counter(line, "depth");
    EXPECT_EQ(enqueued, static_cast<uint64_t>(kEdges)) << line;
    EXPECT_GT(dropped, 0u) << line;
    // delivered and depth are read in separate lock scopes while the pump
    // may still pop, so the sum can lag enqueued by up to the capacity.
    EXPECT_LE(delivered + depth + dropped, enqueued) << line;
    EXPECT_GE(delivered + depth + dropped, enqueued - 4) << line;
  }
  EXPECT_TRUE(found_sub);

  // The slow reader wakes up and still receives a coherent (newest-first
  // retained) suffix of the stream.
  auto event = slow.NextEvent(kTimeout);
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  producer.Quit();
  slow.Close();
}

TEST_F(NetTest, PipelinedResponsesSurviveResponsePathBackpressure) {
  // A client that fires hundreds of commands before reading anything
  // parks the server's execution behind the write high-water (bounding
  // server memory) and must still receive every response once it drains.
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  options.so_sndbuf = 4096;
  options.write_high_water = 2048;
  StartServer(options);
  LineClient client = Connect();

  // The burst must fit the client->server socket buffers unread: once the
  // server parks past the high-water mark it stops reading, and a client
  // that only sends would block mid-burst — which is precisely the
  // flow-control contract, but this test wants to get to the drain phase.
  // (100 one-line sends ≈ 77KB of af_unix skb accounting < the default
  // 208KB sndbuf; their ~25KB of responses still dwarf the 2KB
  // high-water, so the park/resume path genuinely engages.)
  constexpr int kCommands = 100;
  for (int i = 0; i < kCommands; ++i) {
    ASSERT_TRUE(client.SendLine("STATS").ok());
  }
  int terminators = 0;
  while (terminators < kCommands) {
    auto line = client.ReadLine(kTimeout);
    ASSERT_TRUE(line.ok()) << "after " << terminators << " responses: "
                           << line.status().ToString();
    if (*line == ".") ++terminators;
  }
  client.Quit();
}

TEST_F(NetTest, BlockPolicyIsAutoStreamedSoItCannotWedgeTheServer) {
  // Regression: a kBlock subscription that is never STREAMed or POLLed
  // used to have no consumer at all — its first overflowing delivery
  // blocked the poll thread (or, via FLUSH, parked it behind a blocked
  // worker) and three protocol lines from one tenant froze every
  // connection including SIGTERM. The server now auto-upgrades kBlock
  // submissions to push streaming, making the socket the consumer.
  StartServer();
  LineClient careless = Connect();
  RunScript(careless, std::string(kDefinePing) +
                          "\nSESSION careless\n"
                          "SUBMIT careless s ping CAP 1 POLICY block");
  LineClient other = Connect();
  // More matches than capacity; without a consumer this FLUSH deadlocked.
  const std::vector<std::string> fed = RunScript(
      other, FeedPing(1, 2, 1) + "\n" + FeedPing(3, 4, 2) + "\n" +
                 FeedPing(5, 6, 3) + "\nFLUSH");
  EXPECT_TRUE(Contains(fed, "OK flush"));
  // Every tenant still gets service...
  EXPECT_FALSE(Run(other, "STATS").empty());
  // ...and the kBlock matches reach their subscriber as pushed events.
  for (int i = 0; i < 3; ++i) {
    auto event = careless.NextEvent(kTimeout);
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    EXPECT_TRUE(StartsWith(*event, "EVENT MATCH careless.s")) << *event;
  }
  // Opting out of the only consumer is refused while attached...
  const std::vector<std::string> unstream =
      Run(careless, "UNSTREAM careless s");
  ASSERT_EQ(unstream.size(), 1u);
  EXPECT_TRUE(StartsWith(unstream[0], "ERR ")) << unstream[0];
  EXPECT_NE(unstream[0].find("must stay streamed"), std::string::npos);
  // ...while DETACH remains the clean exit (stream ENDs).
  EXPECT_TRUE(Contains(Run(careless, "DETACH careless s"),
                       "OK DETACH careless.s"));
  auto end = careless.NextEvent(kTimeout);
  ASSERT_TRUE(end.ok()) << end.status().ToString();
  EXPECT_EQ(*end, "EVENT END careless.s");
  careless.Quit();
  other.Quit();
}

TEST_F(NetTest, StopUnwedgesABlockedStreamBehindASlowReader) {
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  options.so_sndbuf = 4096;
  options.write_high_water = 1024;  // wedge well within the 200-feed burst
  StartServer(options);

  // A kBlock subscription whose reader never reads: once the socket
  // buffer + write high-water fill, the pump parks, the queue fills, and
  // the next delivery blocks the producer — here the poll thread itself
  // (single-engine backend executes callbacks inside FEED).
  LineClient slow = Connect();
  RunScript(slow, std::string(kDefinePing) +
                      "\nSESSION slow\n"
                      "SUBMIT slow live ping CAP 2 POLICY block\n"
                      "STREAM slow live");
  LineClient producer = Connect();
  // Fire-and-forget: waiting for responses would wedge this test the
  // moment the poll thread blocks in the kBlock Push. The burst must fit
  // the client->server kernel buffers unread (~208KB of af_unix skb
  // accounting, ~768B per one-line send), because once the server wedges
  // it stops reading and a blocking send past that budget would deadlock
  // the test itself before it ever calls Stop.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(producer.SendLine(FeedPing(2 * i, 2 * i + 1, i + 1)).ok());
  }
  // Let the wedge actually engage (server executing feeds, pump having
  // pushed at least something) before pulling the plug — otherwise Stop
  // could win the race before the server even read the burst.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stats().events_pushed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(1));
  }

  // Stop must complete anyway: during shutdown every queue is closed and
  // the pump ignores the high-water valve, so the blocked producer frees
  // and the poll thread unparks to exit. (Before the two-phase stop this
  // join deadlocked.)
  server_->Stop();
  EXPECT_GT(server_->stats().events_pushed, 0u);
}

TEST_F(NetTest, ParallelBackendStreamsAcrossShardThreads) {
  // Same wire surface over a sharded group: deliveries originate on shard
  // worker threads and cross the pump into the socket (the TSan-relevant
  // path).
  Interner interner;
  ParallelEngineGroup group(&interner, /*num_shards=*/2, {},
                            ShardingMode::kPartitionedData);
  ParallelGroupBackend backend(&group);
  QueryService service(&backend);
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  SocketServer server(&service, &interner, options);
  ASSERT_TRUE(server.Start().ok());
  {
    auto connected = LineClient::ConnectUnix(options.unix_path);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    LineClient client = std::move(connected).value();
    const std::string script = std::string(kDefinePing) +
                               "\nSESSION p\nSUBMIT p live ping\nSTREAM p "
                               "live";
    for (std::string_view line : Split(script, '\n')) {
      auto payload = client.Command(std::string(line), kTimeout);
      ASSERT_TRUE(payload.ok()) << payload.status().ToString();
      for (const std::string& reply : *payload) {
        EXPECT_FALSE(StartsWith(reply, "ERR ")) << reply;
      }
    }
    for (int i = 0; i < 8; ++i) {
      auto payload =
          client.Command(FeedPing(2 * i, 2 * i + 1, i + 1), kTimeout);
      ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    }
    ASSERT_TRUE(client.Command("FLUSH", kTimeout).ok());
    for (int i = 0; i < 8; ++i) {
      auto event = client.NextEvent(kTimeout);
      ASSERT_TRUE(event.ok()) << event.status().ToString();
      EXPECT_TRUE(StartsWith(*event, "EVENT MATCH p.live"));
    }
    client.Quit();
  }
  server.Stop();
  group.Close();
}

TEST_F(NetTest, ServerFullRefusesPolitely) {
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  options.max_connections = 1;
  StartServer(options);
  LineClient first = Connect();
  Run(first, "STATS");  // the accepted one works

  auto second = LineClient::ConnectUnix(server_->unix_path());
  ASSERT_TRUE(second.ok());
  auto line = second->ReadLine(kTimeout);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(*line, "ERR server full");
  first.Quit();
}

TEST_F(NetTest, StopDisconnectsClientsAndUnlinksSocket) {
  StartServer();
  const std::string path = server_->unix_path();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION s\nSUBMIT s live ping");
  server_->Stop();
  // The client observes the close (EOF) rather than a hang.
  auto line = client.ReadLine(kTimeout);
  EXPECT_FALSE(line.ok());
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // socket file unlinked
  // Sessions were closed and compacted on the way down.
  const ServiceStatsSnapshot snap = service_->Snapshot();
  EXPECT_EQ(snap.reclaimed, 1u);
  EXPECT_TRUE(snap.sessions.empty());
}

// --- Binary FEEDB frames ---------------------------------------------------

/// The shared stream both wire modes must agree on: distinct ping edges,
/// each completing exactly one match.
EdgeBatch PingStream(Interner* interner, int n) {
  EdgeBatch batch;
  for (int i = 0; i < n; ++i) {
    StreamEdge e;
    e.src = 2 * static_cast<uint64_t>(i);
    e.dst = 2 * static_cast<uint64_t>(i) + 1;
    e.src_label = interner->Intern("V");
    e.dst_label = interner->Intern("V");
    e.edge_label = interner->Intern("ping");
    e.ts = 10 + i;
    batch.push_back(e);
  }
  return batch;
}

TEST_F(NetTest, BinaryFeedbMatchesTextFeedByteForByte) {
  // Two servers over two fresh engines, one fed the stream as text FEED
  // lines, one as FEEDB frames: the polled MATCH lines must be the same
  // multiset, byte for byte.
  const int kEdges = 37;
  const auto run = [&](bool binary) -> std::vector<std::string> {
    Interner interner;
    StreamWorksEngine engine(&interner);
    SingleEngineBackend backend(&engine);
    QueryService service(&backend);
    ServerOptions options;
    options.unix_path = UniqueSocketPath();
    SocketServer server(&service, &interner, options);
    EXPECT_TRUE(server.Start().ok());
    auto connected = LineClient::ConnectUnix(options.unix_path);
    EXPECT_TRUE(connected.ok());
    LineClient client = std::move(connected).value();
    for (std::string_view line : Split(kDefinePing, '\n')) {
      client.Command(std::string(line), kTimeout).value();
    }
    client.Command("SESSION s", kTimeout).value();
    client
        .Command("SUBMIT s live ping CAP " + std::to_string(kEdges + 8),
                 kTimeout)
        .value();
    Interner wire_interner;
    const EdgeBatch stream = PingStream(&wire_interner, kEdges);
    if (binary) {
      // Uneven chunks on purpose: frame boundaries must not show up in
      // the match set.
      size_t at = 0;
      for (size_t chunk : {5u, 1u, 17u, 14u}) {
        EdgeBatch frame(stream.begin() + at, stream.begin() + at + chunk);
        auto counts = client.FeedBatch(frame, wire_interner, kTimeout);
        EXPECT_TRUE(counts.ok()) << counts.status().ToString();
        EXPECT_EQ(counts->first, chunk);
        EXPECT_EQ(counts->second, 0u);
        at += chunk;
      }
      EXPECT_EQ(at, stream.size());
    } else {
      for (const StreamEdge& e : stream) {
        client
            .Command("FEED " + std::to_string(e.src) + " V " +
                         std::to_string(e.dst) + " V ping " +
                         std::to_string(e.ts),
                     kTimeout)
            .value();
      }
    }
    auto flushed = client.Command("FLUSH", kTimeout);
    EXPECT_TRUE(flushed.ok());
    std::vector<std::string> polled =
        client.Command("POLL s live", kTimeout).value();
    std::vector<std::string> matches;
    for (std::string& line : polled) {
      if (StartsWith(line, "MATCH ")) matches.push_back(std::move(line));
    }
    client.Quit();
    server.Stop();
    std::sort(matches.begin(), matches.end());
    return matches;
  };
  const std::vector<std::string> text_matches = run(/*binary=*/false);
  const std::vector<std::string> binary_matches = run(/*binary=*/true);
  ASSERT_EQ(text_matches.size(), static_cast<size_t>(kEdges));
  EXPECT_EQ(text_matches, binary_matches);
}

TEST_F(NetTest, TornFramesAcrossArbitraryReadBoundaries) {
  StartServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION torn\nSUBMIT torn live ping CAP 64");
  Interner wire_interner;
  const EdgeBatch stream = PingStream(&wire_interner, 8);
  std::string bytes;
  bytes += EncodeFeedFrame(EdgeBatch(stream.begin(), stream.begin() + 3),
                           wire_interner)
               .value();
  bytes += EncodeFeedFrame(EdgeBatch(stream.begin() + 3, stream.end()),
                           wire_interner)
               .value();
  // Dribble the two frames out in prime-sized slivers with pauses, so
  // the server's reads observe boundaries inside the magic, the length
  // prefix, the string table, and edge records.
  for (size_t at = 0; at < bytes.size(); at += 7) {
    ASSERT_TRUE(
        client.SendRaw(std::string_view(bytes).substr(at, 7)).ok());
    if (at % 21 == 0) std::this_thread::sleep_for(milliseconds(1));
  }
  for (int frame = 0; frame < 2; ++frame) {
    // Each frame is answered exactly like a command: payload + ".".
    auto line = client.ReadLine(kTimeout);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_EQ(*line, frame == 0 ? "OK feedb 3 0" : "OK feedb 5 0");
    line = client.ReadLine(kTimeout);
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(*line, ".");
  }
  const std::vector<std::string> polled =
      RunScript(client, "FLUSH\nPOLL torn live");
  EXPECT_EQ(CountPrefix(polled, "MATCH torn.live"), 8u);
  client.Quit();
}

TEST_F(NetTest, TextLinesInterleaveWithBinaryFrames) {
  StartServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION mix\nSUBMIT mix live ping CAP 64");
  Interner wire_interner;
  const EdgeBatch stream = PingStream(&wire_interner, 6);
  // One write carrying: frame, text command, frame, text command.
  std::string bytes;
  bytes += EncodeFeedFrame(EdgeBatch(stream.begin(), stream.begin() + 2),
                           wire_interner)
               .value();
  bytes += "FLUSH\n";
  bytes += EncodeFeedFrame(EdgeBatch(stream.begin() + 2, stream.end()),
                           wire_interner)
               .value();
  bytes += "FLUSH\n";
  ASSERT_TRUE(client.SendRaw(bytes).ok());
  std::vector<std::string> replies;
  int terminators = 0;
  while (terminators < 4) {
    auto line = client.ReadLine(kTimeout);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    if (*line == ".") {
      ++terminators;
    } else {
      replies.push_back(std::move(*line));
    }
  }
  // Responses come back in stream order.
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0], "OK feedb 2 0");
  EXPECT_EQ(replies[1], "OK flush");
  EXPECT_EQ(replies[2], "OK feedb 4 0");
  EXPECT_EQ(replies[3], "OK flush");
  const std::vector<std::string> polled =
      RunScript(client, "POLL mix live");
  EXPECT_EQ(CountPrefix(polled, "MATCH mix.live"), 6u);
  client.Quit();
}

TEST_F(NetTest, OversizedFrameIsRefusedWithoutDesyncOrDisconnect) {
  ServerOptions options;
  options.unix_path = UniqueSocketPath();
  options.max_frame_body_bytes = 256;
  StartServer(options);
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION big\nSUBMIT big live ping CAP 64");
  Interner wire_interner;
  // ~40 edges * 36B > 256B body limit.
  const std::string oversized =
      EncodeFeedFrame(PingStream(&wire_interner, 40), wire_interner).value();
  ASSERT_GT(oversized.size(), 256u + 8u);
  // Send the refused frame, a valid small frame, and a text command in
  // one burst: the declared length lets the server skip the oversized
  // body exactly, so everything after it still executes.
  std::string bytes = oversized;
  const EdgeBatch small = PingStream(&wire_interner, 2);
  bytes += EncodeFeedFrame(small, wire_interner).value();
  bytes += "FLUSH\n";
  ASSERT_TRUE(client.SendRaw(bytes).ok());
  std::vector<std::string> replies;
  int terminators = 0;
  while (terminators < 3) {
    auto line = client.ReadLine(kTimeout);
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    if (*line == ".") {
      ++terminators;
    } else {
      replies.push_back(std::move(*line));
    }
  }
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_TRUE(StartsWith(replies[0], "ERR ")) << replies[0];
  EXPECT_NE(replies[0].find("exceeds"), std::string::npos) << replies[0];
  EXPECT_EQ(replies[1], "OK feedb 2 0");
  EXPECT_EQ(replies[2], "OK flush");
  const std::vector<std::string> polled =
      RunScript(client, "POLL big live");
  EXPECT_EQ(CountPrefix(polled, "MATCH big.live"), 2u);
  client.Quit();
  server_->Stop();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetTest, TruncatedFrameAtEofReportsAndCloses) {
  StartServer();
  // Raw fd client: we need a half-close (shutdown(WR)) after a partial
  // frame, which LineClient doesn't model.
  auto fd = ConnectUnix(server_->unix_path());
  ASSERT_TRUE(fd.ok());
  Interner wire_interner;
  const std::string frame =
      EncodeFeedFrame(PingStream(&wire_interner, 4), wire_interner).value();
  const std::string partial = frame.substr(0, frame.size() - 5);
  ASSERT_EQ(::send(fd->get(), partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  ASSERT_EQ(::shutdown(fd->get(), SHUT_WR), 0);
  // The server answers ERR (the frame can never complete) and closes.
  std::string response;
  char buf[256];
  while (true) {
    const ssize_t n = ::read(fd->get(), buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  EXPECT_NE(response.find("ERR truncated binary frame at EOF"),
            std::string::npos)
      << response;
  AwaitConnections(0);
  server_->Stop();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetTest, CorruptMagicClosesTheConnection) {
  StartServer();
  LineClient client = Connect();
  Run(client, "STATS");  // session works first
  // Lead byte promises a frame, magic lies: position is unrecoverable.
  ASSERT_TRUE(client.SendRaw("\xFBXXX garbage\n").ok());
  auto line = client.ReadLine(kTimeout);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_TRUE(StartsWith(*line, "ERR ")) << *line;
  // Terminator then EOF.
  while (line.ok()) line = client.ReadLine(kTimeout);
  AwaitConnections(0);
}

TEST_F(NetTest, StreamedDeliveryCoalescesAcrossFrames) {
  // FEEDB + STREAM: a batch's worth of matches arrives as EVENT lines
  // and the server reports coalesced pump flushes, not one write per
  // event.
  StartServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION c\nSUBMIT c live ping CAP 600\n"
                        "STREAM c live");
  Interner wire_interner;
  auto counts =
      client.FeedBatch(PingStream(&wire_interner, 500), wire_interner,
                       kTimeout);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_EQ(counts->first, 500u);
  Run(client, "FLUSH");
  for (int i = 0; i < 500; ++i) {
    auto event = client.NextEvent(kTimeout);
    ASSERT_TRUE(event.ok()) << "event " << i << ": "
                            << event.status().ToString();
    EXPECT_TRUE(StartsWith(*event, "EVENT MATCH c.live"));
  }
  client.Quit();
  server_->Stop();
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.frames_executed, 1u);
  EXPECT_EQ(stats.batch_edges_in, 500u);
  EXPECT_EQ(stats.events_pushed, 500u);
  // Coalescing: far fewer drain-pass flushes than events.
  EXPECT_GT(stats.pump_flushes, 0u);
  EXPECT_LT(stats.pump_flushes, 250u);
}

TEST_F(NetTest, ByeIsAcknowledgedThenDisconnects) {
  StartServer();
  LineClient client = Connect();
  auto payload = client.Command("BYE", kTimeout);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  ASSERT_EQ(payload->size(), 1u);
  EXPECT_EQ((*payload)[0], "OK bye");
  auto after = client.ReadLine(kTimeout);
  EXPECT_FALSE(after.ok());  // EOF after the farewell
  AwaitConnections(0);
}

// --- Crash recovery through the socket frontend ----------------------------

/// One durable deployment generation: service -> DurableBackend ->
/// (engine | partition4 group), recovered from `dir` and served on a
/// socket — the full service_demo --data-dir stack, in-process.
struct DurableServer {
  Interner interner;
  std::unique_ptr<StreamWorksEngine> engine;
  std::unique_ptr<ParallelEngineGroup> group;
  std::unique_ptr<QueryBackend> inner;
  std::unique_ptr<DurableBackend> durable;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<DurabilityManager> manager;
  std::unique_ptr<SocketServer> server;
  RecoveryReport recovered;

  static std::unique_ptr<DurableServer> Start(const std::string& dir,
                                              const std::string& sock,
                                              bool partitioned) {
    auto s = std::make_unique<DurableServer>();
    if (partitioned) {
      s->group = std::make_unique<ParallelEngineGroup>(
          &s->interner, 4, EngineOptions{},
          ShardingMode::kPartitionedData);
      s->inner = std::make_unique<ParallelGroupBackend>(s->group.get());
    } else {
      s->engine = std::make_unique<StreamWorksEngine>(&s->interner);
      s->inner = std::make_unique<SingleEngineBackend>(s->engine.get());
    }
    s->durable = std::make_unique<DurableBackend>(s->inner.get());
    s->service = std::make_unique<QueryService>(s->durable.get());
    DurabilityOptions options;
    options.data_dir = dir;
    s->manager = std::make_unique<DurabilityManager>(
        options, s->service.get(), s->durable.get(), &s->interner);
    auto recovered = s->manager->Start();
    EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
    if (recovered.ok()) s->recovered = *recovered;

    ServerOptions server_options;
    server_options.unix_path = sock;
    DurabilityManager* manager = s->manager.get();
    server_options.snapshot_hook = [manager]() -> StatusOr<std::string> {
      SW_ASSIGN_OR_RETURN(const SnapshotInfo info, manager->SnapshotNow());
      return "wal_seq=" + std::to_string(info.wal_seq);
    };
    // The durable deployment shape: Stop leaves connected tenants'
    // sessions open for the shutdown snapshot.
    server_options.preserve_sessions_on_stop = true;
    s->server = std::make_unique<SocketServer>(s->service.get(),
                                               &s->interner,
                                               server_options);
    EXPECT_TRUE(s->server->Start().ok());
    return s;
  }

  /// Simulated kill -9: tear the frontend down without any shutdown
  /// snapshot — only the WAL and mid-stream snapshots survive.
  void Crash() { server->Stop(); }
};

void RunSocketCrashRecovery(bool partitioned) {
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) /
      ("sw_net_recovery_" + std::to_string(::getpid()) +
       (partitioned ? "_p" : "_s"));
  std::filesystem::remove_all(dir);
  const std::string sock = "/tmp/sw_net_recov_" +
                           std::to_string(::getpid()) +
                           (partitioned ? "_p" : "_s") + ".sock";
  // Internal vertex ids are per-shard artifacts, and in partitioned mode
  // their first-sight assignment on the delivering shard races between
  // forwarded-match localization and direct ingest — both orders are
  // valid. The durable identity of a match is its query-edge -> global
  // data-edge bindings (+ timestamps), so the partitioned comparison
  // strips the vertex-mapping segment; the single-engine one stays
  // byte-for-byte raw.
  const auto stable_identity = [partitioned](const std::string& line) {
    if (!partitioned) return line;
    const size_t open = line.find('{');
    const size_t bar = line.find('|');
    if (open == std::string::npos || bar == std::string::npos ||
        bar < open) {
      return line;
    }
    return line.substr(0, open + 1) + line.substr(bar);
  };
  const auto match_lines =
      [&stable_identity](const std::vector<std::string>& payload) {
        std::multiset<std::string> matches;
        for (const std::string& line : payload) {
          if (line.starts_with("MATCH ")) {
            matches.insert(stable_identity(line));
          }
        }
        return matches;
      };
  const auto feed_all = [](LineClient& client, int from, int n) {
    for (int i = 0; i < n; ++i) {
      auto reply = client.Command(FeedPing(100 + from + i, 7, from + i),
                                  kTimeout);
      ASSERT_TRUE(reply.ok());
    }
  };
  const auto subscribe = [](LineClient& client) {
    const std::string script = std::string(kDefinePing) +
                               "\nSESSION w\nSUBMIT w live ping CAP 4096";
    for (std::string_view line : Split(script, '\n')) {
      auto reply = client.Command(std::string(line), kTimeout);
      ASSERT_TRUE(reply.ok()) << line;
    }
  };

  // Reference: uninterrupted durable run over the same 8 edges.
  std::multiset<std::string> expected;
  {
    auto ref = DurableServer::Start(dir + "_ref", sock + ".ref",
                                    partitioned);
    auto client = LineClient::ConnectUnix(sock + ".ref").value();
    subscribe(client);
    feed_all(client, 0, 8);
    ASSERT_TRUE(client.Command("FLUSH", kTimeout).ok());
    expected = match_lines(client.Command("POLL w live", kTimeout).value());
    ASSERT_EQ(expected.size(), 8u);
    client.Quit();
    ref->Crash();
  }

  // Crash run: subscribe, feed 4, SNAPSHOT over the wire, feed 2 (the
  // WAL tail), drain what was delivered, then die hard.
  std::multiset<std::string> observed;
  {
    auto gen1 = DurableServer::Start(dir, sock, partitioned);
    auto client = LineClient::ConnectUnix(sock).value();
    subscribe(client);
    feed_all(client, 0, 4);
    const auto snap = client.Command("SNAPSHOT", kTimeout).value();
    ASSERT_FALSE(snap.empty());
    EXPECT_EQ(snap[0], "OK snapshot wal_seq=4");
    feed_all(client, 4, 2);
    ASSERT_TRUE(client.Command("FLUSH", kTimeout).ok());
    auto polled = match_lines(
        client.Command("POLL w live", kTimeout).value());
    EXPECT_EQ(polled.size(), 6u);
    observed.insert(polled.begin(), polled.end());
    client.Close();  // vanish mid-session, like the process about to
    gen1->Crash();   // kill -9
  }

  // Recovered generation: the tenant re-attaches by name, the stream
  // resumes, and the union of everything observed equals the
  // uninterrupted run byte for byte.
  {
    auto gen2 = DurableServer::Start(dir, sock, partitioned);
    EXPECT_TRUE(gen2->recovered.snapshot_loaded);
    EXPECT_EQ(gen2->recovered.snapshot_wal_seq, 4u);
    EXPECT_EQ(gen2->recovered.replayed_edges, 2u);
    EXPECT_EQ(gen2->recovered.sessions, 1u);
    EXPECT_EQ(gen2->recovered.subscriptions, 1u);

    auto client = LineClient::ConnectUnix(sock).value();
    const auto attach = client.Command("ATTACH w", kTimeout).value();
    ASSERT_FALSE(attach.empty());
    EXPECT_EQ(attach[0], "OK attach w id=0 subs=live:active");
    feed_all(client, 6, 2);
    ASSERT_TRUE(client.Command("FLUSH", kTimeout).ok());
    auto polled = match_lines(
        client.Command("POLL w live", kTimeout).value());
    EXPECT_EQ(polled.size(), 2u);
    observed.insert(polled.begin(), polled.end());
    client.Quit();
    gen2->Crash();
  }
  EXPECT_EQ(observed, expected);
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir + "_ref");
}

TEST(NetRecoveryTest, GracefulShutdownSnapshotKeepsConnectedSessions) {
  // SIGTERM while a tenant is still connected: Stop() must not close
  // its sessions before the shutdown snapshot, or a *graceful* restart
  // would lose exactly the re-attachable state a kill -9 preserves.
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) /
      ("sw_net_graceful_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const std::string sock =
      "/tmp/sw_net_graceful_" + std::to_string(::getpid()) + ".sock";
  {
    auto gen1 = DurableServer::Start(dir, sock, /*partitioned=*/false);
    auto client = LineClient::ConnectUnix(sock).value();
    const std::string script =
        std::string(kDefinePing) + "\nSESSION w\nSUBMIT w live ping";
    for (std::string_view line : Split(script, '\n')) {
      ASSERT_TRUE(client.Command(std::string(line), kTimeout).ok());
    }
    // No BYE: the tenant is still connected when the operator stops the
    // daemon. Stop, then the shutdown snapshot (the service_demo
    // SIGTERM sequence).
    gen1->server->Stop();
    ASSERT_TRUE(gen1->manager->SnapshotNow().ok());
  }
  auto gen2 = DurableServer::Start(dir, sock, /*partitioned=*/false);
  EXPECT_EQ(gen2->recovered.sessions, 1u);
  EXPECT_EQ(gen2->recovered.subscriptions, 1u);
  EXPECT_EQ(gen2->recovered.replayed_edges, 0u);  // snapshot is final
  auto client = LineClient::ConnectUnix(sock).value();
  const auto attach = client.Command("ATTACH w", kTimeout).value();
  ASSERT_FALSE(attach.empty());
  EXPECT_EQ(attach[0], "OK attach w id=0 subs=live:active");
  client.Quit();
  gen2->Crash();
  std::filesystem::remove_all(dir);
}

TEST(NetRecoveryTest, RecoveredBlockSubscriptionResumesWithoutWedging) {
  // The PR 3 invariant — every kBlock queue on the socket frontend has
  // the pump as its consumer — must survive crash recovery: a restored
  // kBlock subscription comes back paused, ATTACH auto-streams it (the
  // attach hook mirrors the submit hook), and RESUME + feeding more
  // matches than its tiny capacity must push events instead of wedging
  // the poll thread.
  const std::string dir =
      std::filesystem::path(::testing::TempDir()) /
      ("sw_net_block_recovery_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const std::string sock =
      "/tmp/sw_net_blockrec_" + std::to_string(::getpid()) + ".sock";
  {
    auto gen1 = DurableServer::Start(dir, sock, /*partitioned=*/false);
    auto client = LineClient::ConnectUnix(sock).value();
    const std::string script =
        std::string(kDefinePing) +
        "\nSESSION t\nSUBMIT t strict ping CAP 2 POLICY block";
    for (std::string_view line : Split(script, '\n')) {
      ASSERT_TRUE(client.Command(std::string(line), kTimeout).ok());
    }
    ASSERT_TRUE(client.Command("SNAPSHOT", kTimeout).ok());
    client.Close();
    gen1->Crash();
  }
  auto gen2 = DurableServer::Start(dir, sock, /*partitioned=*/false);
  auto watcher = LineClient::ConnectUnix(sock).value();
  const auto attach = watcher.Command("ATTACH t", kTimeout).value();
  ASSERT_FALSE(attach.empty());
  EXPECT_EQ(attach[0], "OK attach t id=0 subs=strict:paused");
  ASSERT_TRUE(watcher.Command("RESUME t strict", kTimeout).ok());

  auto feeder = LineClient::ConnectUnix(sock).value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(feeder.Command(FeedPing(10 + i, 7, i), kTimeout).ok());
  }
  // FLUSH returning proves the control thread never blocked on the full
  // kBlock queue; the watcher then receives every pushed match.
  ASSERT_TRUE(feeder.Command("FLUSH", kTimeout).ok());
  for (int i = 0; i < 5; ++i) {
    auto event = watcher.NextEvent(kTimeout);
    ASSERT_TRUE(event.ok()) << "event " << i << ": "
                            << event.status().ToString();
    EXPECT_TRUE(event->starts_with("EVENT MATCH t.strict"));
  }
  watcher.Quit();
  feeder.Quit();
  gen2->Crash();
  std::filesystem::remove_all(dir);
}

TEST(NetRecoveryTest, SingleEngineCrashRecoveryOverTheWire) {
  RunSocketCrashRecovery(/*partitioned=*/false);
}

TEST(NetRecoveryTest, Partition4CrashRecoveryOverTheWire) {
  RunSocketCrashRecovery(/*partitioned=*/true);
}

// ---------------------------------------------------------------------------
// Observability endpoint: the HTTP listener rides the same poll loop as the
// line protocol, so scrapes see exactly the state the control thread sees.

/// Minimal blocking HTTP/1.1 GET over loopback, returning the raw response
/// (head + body). The endpoint closes after one response, so read-to-EOF is
/// the framing.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpBody(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

class HttpObsTest : public NetTest {
 protected:
  /// TCP + HTTP listeners on ephemeral ports, with the registry wired the
  /// way service_demo wires it: service + pipeline collectors render at
  /// scrape time on the poll (= control) thread.
  void StartObservableServer() {
    ServerOptions options;
    options.tcp_port = 0;
    options.http_port = 0;
    options.registry = &registry_;
    options.pipeline = &pipeline_;
    // The service-level stage hooks are the owner's wiring (the server only
    // owns frontend stages), so set them before the poll thread exists.
    service_ = std::make_unique<QueryService>(&backend_, limits_);
    service_->set_pipeline_metrics(&pipeline_);
    RegisterServiceCollector(&registry_,
                             [this] { return service_->Snapshot(); });
    RegisterPipelineCollector(&registry_, &pipeline_);
    server_ = std::make_unique<SocketServer>(service_.get(), &interner_,
                                             options);
    ASSERT_TRUE(server_->Start().ok());
  }

  MetricRegistry registry_;
  PipelineMetrics pipeline_;
};

TEST_F(HttpObsTest, ScrapeAgreesWithStatsOverTheLineProtocol) {
  StartObservableServer();
  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) + "\nSESSION s\nSUBMIT s q ping");
  for (int i = 0; i < 5; ++i) {
    Run(client, FeedPing(100 + i, 7, i));
  }
  Run(client, "FLUSH");

  const std::vector<std::string> stats = Run(client, "STATS");
  uint64_t edges_fed = 0;
  for (const std::string& line : stats) {
    if (line.find("edges_fed=") != std::string::npos) {
      edges_fed = Counter(line, "edges_fed");
    }
  }
  EXPECT_EQ(edges_fed, 5u);
  EXPECT_TRUE(Contains(stats, "frontend: accepted="));
  EXPECT_TRUE(Contains(stats, "pump_flushes="));

  const std::string metrics =
      HttpGet(server_->http_port(), "/metrics");
  EXPECT_TRUE(metrics.starts_with("HTTP/1.1 200 OK"));
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = HttpBody(metrics);
  // The scrape and the STATS verb must tell the same story.
  EXPECT_NE(body.find("# TYPE streamworks_edges_fed_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("streamworks_edges_fed_total " +
                      std::to_string(edges_fed)),
            std::string::npos);
  EXPECT_NE(body.find("streamworks_matches_total{event=\"enqueued\"} 5"),
            std::string::npos);
  // Stage hooks recorded every admission and engine apply.
  EXPECT_NE(body.find("streamworks_stage_duration_us_count{stage=\"admission"
                      "\"} 5"),
            std::string::npos);
  EXPECT_NE(
      body.find("streamworks_stage_duration_us_count{stage=\"engine_apply"
                "\"} 5"),
      std::string::npos);
  // Frontend counters flow through the probe into the same scrape.
  EXPECT_NE(body.find("streamworks_frontend_frames_executed_total"),
            std::string::npos);
  EXPECT_NE(body.find("streamworks_frontend_http_requests_total"),
            std::string::npos);
  // Exposition-format invariants: every histogram closes with +Inf.
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);

  const std::string stats_json =
      HttpGet(server_->http_port(), "/stats.json");
  EXPECT_TRUE(stats_json.starts_with("HTTP/1.1 200 OK"));
  EXPECT_NE(stats_json.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(HttpBody(stats_json).find("\"edges_fed\":5"), std::string::npos);

  const std::string queries =
      HttpGet(server_->http_port(), "/queries.json");
  EXPECT_NE(HttpBody(queries).find("\"query_name\":\"ping\""),
            std::string::npos);
  EXPECT_NE(HttpBody(queries).find("\"matches_inserted\":5"),
            std::string::npos);

  const std::string health = HttpGet(server_->http_port(), "/healthz");
  EXPECT_TRUE(health.starts_with("HTTP/1.1 200 OK"));
  EXPECT_NE(HttpBody(health).find("\"status\":\"ok\""), std::string::npos);

  const std::string trace = HttpGet(server_->http_port(), "/trace.json");
  EXPECT_NE(HttpBody(trace).find("\"slow_threshold_us\""), std::string::npos);

  // A later STATS sees the scrapes themselves in http_requests.
  const std::vector<std::string> stats2 = Run(client, "STATS");
  bool counted = false;
  for (const std::string& line : stats2) {
    if (line.find("http_requests=") != std::string::npos) {
      counted = Counter(line, "http_requests") >= 5;
    }
  }
  EXPECT_TRUE(counted);
  client.Quit();
}

TEST_F(HttpObsTest, TraceVerbAndHttpErrorsBehave) {
  StartObservableServer();
  LineClient client = Connect();
  // TRACE over the wire: no slow ops yet, so just the summary line.
  const std::vector<std::string> trace = Run(client, "TRACE");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.back(), "OK trace n=0");

  EXPECT_TRUE(HttpGet(server_->http_port(), "/nope")
                  .starts_with("HTTP/1.1 404"));
  // The listener survives errors and keeps serving.
  EXPECT_TRUE(HttpGet(server_->http_port(), "/healthz")
                  .starts_with("HTTP/1.1 200"));
  client.Quit();
}

}  // namespace
}  // namespace streamworks
