// Tests for DistinctSubgraphFilter: automorphic mappings collapse to one
// event per data subgraph, distinct subgraphs all pass, and the filter's
// per-completing-edge memory model is sound end-to-end.

#include <gtest/gtest.h>

#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/core/dedup.h"
#include "streamworks/core/engine.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("Host");
  e.dst_label = interner->Intern("Host");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

TEST(MatchMaxDataEdgeIdTest, ReturnsLargestBoundEdge) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "y");
  const QueryGraph q = builder.Build().value();
  Match m(q);
  m.BindVertex(0, 1);
  m.BindVertex(1, 2);
  m.BindVertex(2, 3);
  m.BindEdge(0, 42, 5);
  m.BindEdge(1, 17, 9);  // later ts but smaller id
  EXPECT_EQ(m.MaxDataEdgeId(), 42u);
}

TEST(DistinctSubgraphFilterTest, CollapsesScanAutomorphisms) {
  Interner interner;
  // A 3-target port scan: 3! = 6 automorphic mappings per scan instance.
  const QueryGraph q = BuildPortScanQuery(&interner, 3);
  StreamWorksEngine engine(&interner);
  int events = 0;
  uint64_t mappings = 0;
  ASSERT_TRUE(
      engine
          .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder, 100,
                         DistinctSubgraphs([&](const CompleteMatch&) {
                           ++events;
                         }))
          .ok());
  ASSERT_TRUE(engine
                  .RegisterQuery(
                      q, DecompositionStrategy::kLeftDeepEdgeOrder, 100,
                      [&](const CompleteMatch&) { ++mappings; })
                  .ok());

  // Two scan instances from different scanners.
  Timestamp ts = 0;
  for (const uint64_t scanner : {1u, 50u}) {
    for (int t = 0; t < 3; ++t) {
      ASSERT_TRUE(engine
                      .ProcessEdge(MakeEdge(&interner, scanner,
                                            scanner + 10 + t, "synProbe",
                                            ts++))
                      .ok());
    }
  }
  EXPECT_EQ(mappings, 12u);  // 2 instances x 3! mappings
  EXPECT_EQ(events, 2);      // 2 distinct subgraphs
}

TEST(DistinctSubgraphFilterTest, DistinctSubgraphsOnSameEdgeAllPass) {
  Interner interner;
  // One completing edge can finish matches over *different* edge sets:
  // y completes two paths through different x edges.
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("Host");
  const auto v1 = builder.AddVertex("Host");
  const auto v2 = builder.AddVertex("Host");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "y");
  const QueryGraph q = builder.Build().value();

  StreamWorksEngine engine(&interner);
  int events = 0;
  ASSERT_TRUE(
      engine
          .RegisterQuery(q, DecompositionStrategy::kLeftDeepEdgeOrder, 100,
                         DistinctSubgraphs([&](const CompleteMatch&) {
                           ++events;
                         }))
          .ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 5, "x", 0)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 5, "x", 1)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 5, 9, "y", 2)).ok());
  EXPECT_EQ(events, 2);
}

TEST(DistinctSubgraphFilterTest, MemoryResetsAcrossCompletingEdges) {
  Interner interner;
  const QueryGraph q = BuildPortScanQuery(&interner, 2);
  DistinctSubgraphFilter filter([](const CompleteMatch&) {});
  // Feed synthetic matches directly: two mappings of one subgraph on edge
  // 7, then one on edge 9, then another batch on edge 12.
  auto feed = [&](EdgeId e1, EdgeId e2) {
    CompleteMatch cm;
    cm.match = Match(q);
    cm.match.BindVertex(0, 1);
    cm.match.BindVertex(1, 2);
    cm.match.BindVertex(2, 3);
    cm.match.BindEdge(0, e1, 0);
    cm.match.BindEdge(1, e2, 1);
    filter(cm);
  };
  feed(5, 7);
  feed(7, 5);  // automorphic image, same edge set -> suppressed
  EXPECT_EQ(filter.distinct_forwarded(), 1u);
  feed(6, 9);
  EXPECT_EQ(filter.distinct_forwarded(), 2u);
  feed(6, 12);
  feed(12, 6);
  EXPECT_EQ(filter.distinct_forwarded(), 3u);
}

TEST(DistinctSubgraphFilterTest, EndToEndOnInjectedAttackStream) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 404;
  opt.background_edges = 5000;
  opt.attack_label_noise = false;
  NetflowGenerator gen(opt, &interner);
  gen.InjectSmurf(50, 3);
  gen.InjectSmurf(150, 3);
  const QueryGraph q = BuildSmurfQuery(&interner, 3);

  StreamWorksEngine engine(&interner);
  int events = 0;
  ASSERT_TRUE(
      engine
          .RegisterQuery(q, DecompositionStrategy::kPrimitivePairs, 40,
                         DistinctSubgraphs([&](const CompleteMatch&) {
                           ++events;
                         }))
          .ok());
  for (const StreamEdge& e : gen.Generate()) {
    ASSERT_TRUE(engine.ProcessEdge(e).ok());
  }
  EXPECT_EQ(events, 2);  // one event per injected attack, 6 mappings each
}

}  // namespace
}  // namespace streamworks
