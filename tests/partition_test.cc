// Tests for vertex-partitioned data-graph sharding: the partitioned
// ParallelEngineGroup must produce exactly a single engine's match sets on
// randomized streams (including window-expiry boundaries, mid-stream
// registration backfill, and unregister), while retaining strictly fewer
// edges per shard than broadcast mode, with the cross-shard exchange doing
// real forwarding.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/core/parallel.h"
#include "streamworks/graph/partition.h"
#include "streamworks/graph/random_graphs.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

std::vector<StreamEdge> RandomStream(Interner* interner, uint64_t seed,
                                     int num_vertices, int num_edges) {
  RandomStreamOptions opt;
  opt.seed = seed;
  opt.num_vertices = num_vertices;
  opt.num_edges = num_edges;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 3;
  return GenerateUniformStream(opt, interner);
}

std::vector<QueryGraph> RandomQueries(Interner* interner, uint64_t seed,
                                      int count) {
  Rng rng(seed);
  std::vector<QueryGraph> queries;
  for (int i = 0; i < count; ++i) {
    const int nv = 3 + i % 2;
    const int ne = nv - 1 + i % 3;
    queries.push_back(
        GenerateRandomConnectedQuery(rng, nv, ne, 2, 3, interner).value());
  }
  return queries;
}

/// Shard-independent identity of one delivered match: external-id mapping
/// signature (vertices by external id, edges by global ingest id).
uint64_t Signature(const CompleteMatch& cm) {
  return cm.match.ExternalMappingSignature(*cm.graph);
}

/// Runs every query against a single engine and returns per-query
/// completion signature multisets.
std::vector<std::multiset<uint64_t>> SingleEngineReference(
    Interner* interner, const std::vector<QueryGraph>& queries,
    Timestamp window, const std::vector<StreamEdge>& edges) {
  std::vector<std::multiset<uint64_t>> expected(queries.size());
  StreamWorksEngine engine(interner);
  for (size_t i = 0; i < queries.size(); ++i) {
    SW_CHECK_OK(engine
                    .RegisterQuery(queries[i],
                                   DecompositionStrategy::kLeftDeepEdgeOrder,
                                   window,
                                   [&expected, i](const CompleteMatch& cm) {
                                     expected[i].insert(Signature(cm));
                                   })
                    .status());
  }
  for (const StreamEdge& e : edges) engine.ProcessEdge(e).ok();
  return expected;
}

TEST(PartitionerTest, HashModuloIsDeterministicInRangeAndSeedSensitive) {
  HashModuloPartitioner p;
  HashModuloPartitioner seeded(1234);
  std::map<int, int> load;
  bool any_seed_difference = false;
  for (uint64_t v = 0; v < 1000; ++v) {
    const int owner = p.OwnerShard(v, 7);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 7);
    EXPECT_EQ(owner, p.OwnerShard(v, 7));  // deterministic
    any_seed_difference =
        any_seed_difference || owner != seeded.OwnerShard(v, 7);
    ++load[owner];
  }
  EXPECT_TRUE(any_seed_difference);
  // Mixed hash: every shard gets a non-trivial share of a dense id space.
  for (int s = 0; s < 7; ++s) {
    EXPECT_GT(load[s], 1000 / 7 / 2) << "shard " << s << " starved";
  }
}

TEST(PartitionTest, MatchesSingleEngineAcrossShardCounts) {
  Interner interner;
  const auto edges = RandomStream(&interner, 2026, 20, 800);
  const auto queries = RandomQueries(&interner, 88, 6);
  const Timestamp window = 18;
  const auto expected =
      SingleEngineReference(&interner, queries, window, edges);

  for (const int shards : {1, 2, 3, 5}) {
    std::vector<std::multiset<uint64_t>> actual(queries.size());
    ParallelEngineGroup group(&interner, shards, {},
                              ShardingMode::kPartitionedData);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(group
                      .RegisterQuery(
                          queries[i],
                          DecompositionStrategy::kLeftDeepEdgeOrder, window,
                          [&actual, i](const CompleteMatch& cm) {
                            actual[i].insert(Signature(cm));
                          })
                      .ok());
    }
    for (const StreamEdge& e : edges) group.ProcessEdge(e);
    group.Flush();
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << "shards=" << shards << " query " << i;
    }
    uint64_t expected_total = 0;
    for (const auto& sigs : expected) expected_total += sigs.size();
    EXPECT_EQ(group.total_completions(), expected_total);
  }
}

TEST(PartitionTest, MatchesSingleEngineOnBatchedIngestWithTightWindow) {
  // Tight window + batched ingest: epoch flushes land right on expiry
  // boundaries, and partial matches must die identically on every shard.
  Interner interner;
  const auto edges = RandomStream(&interner, 97, 14, 1200);
  const auto queries = RandomQueries(&interner, 5, 4);
  const Timestamp window = 4;
  const auto expected =
      SingleEngineReference(&interner, queries, window, edges);

  std::vector<std::multiset<uint64_t>> actual(queries.size());
  ParallelEngineGroup group(&interner, 4, {},
                            ShardingMode::kPartitionedData);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(group
                    .RegisterQuery(queries[i],
                                   DecompositionStrategy::kLeftDeepEdgeOrder,
                                   window,
                                   [&actual, i](const CompleteMatch& cm) {
                                     actual[i].insert(Signature(cm));
                                   })
                    .ok());
  }
  EdgeBatch batch;
  for (const StreamEdge& e : edges) {
    batch.push_back(e);
    if (batch.size() == 97) {
      group.ProcessBatch(batch);
      batch.clear();
    }
  }
  group.ProcessBatch(batch);
  group.Flush();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }

  // Epoch-driven expiry must actually run: with a 4-tick window over a
  // 120-tick stream, every shard's graph retains a small recent suffix.
  for (const ShardStatsSnapshot& s : group.ShardStats()) {
    EXPECT_GT(s.evicted_edges, 0u) << "shard " << s.shard;
    EXPECT_LT(s.retained_edges, edges.size() / 2) << "shard " << s.shard;
  }
}

TEST(PartitionTest, ExchangeForwardsAcrossShardsAndCountersBalance) {
  Interner interner;
  const auto edges = RandomStream(&interner, 11, 16, 600);
  const auto queries = RandomQueries(&interner, 42, 3);
  ParallelEngineGroup group(&interner, 3, {},
                            ShardingMode::kPartitionedData);
  for (const QueryGraph& q : queries) {
    ASSERT_TRUE(group
                    .RegisterQuery(q,
                                   DecompositionStrategy::kLeftDeepEdgeOrder,
                                   20, nullptr)
                    .ok());
  }
  for (const StreamEdge& e : edges) group.ProcessEdge(e);
  group.Flush();

  uint64_t sent = 0, received = 0;
  for (const ShardStatsSnapshot& s : group.ShardStats()) {
    sent += s.exchange.total_sent();
    received += s.exchange.total_received();
  }
  // Multi-edge queries on a 16-vertex graph over 3 shards: cross-shard
  // work is unavoidable, and after Flush nothing is in flight.
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);
}

TEST(PartitionTest, ShardsRetainFewerEdgesThanBroadcast) {
  Interner interner;
  const auto edges = RandomStream(&interner, 7, 64, 4000);
  const auto queries = RandomQueries(&interner, 3, 2);
  const Timestamp window = 30;
  const int shards = 4;

  auto run = [&](ShardingMode mode) {
    ParallelEngineGroup group(&interner, shards, {}, mode);
    for (const QueryGraph& q : queries) {
      SW_CHECK(group
                   .RegisterQuery(q,
                                  DecompositionStrategy::kLeftDeepEdgeOrder,
                                  window, nullptr)
                   .ok());
    }
    for (const StreamEdge& e : edges) group.ProcessEdge(e);
    group.Flush();
    return group.ShardStats();
  };

  const auto broadcast = run(ShardingMode::kBroadcastData);
  const auto partitioned = run(ShardingMode::kPartitionedData);

  // Broadcast: every shard retains the whole window. Partitioned: each
  // shard retains only edges incident to its owned vertices — strictly
  // below every broadcast shard (the acceptance criterion).
  uint64_t partitioned_total = 0;
  for (int s = 0; s < shards; ++s) {
    EXPECT_LT(partitioned[s].retained_edges, broadcast[s].retained_edges)
        << "shard " << s;
    partitioned_total += partitioned[s].retained_edges;
  }
  // Each edge lives on at most two shards (its endpoint owners), and at
  // least one, so the group-wide total is bounded by one broadcast shard's
  // retention on both sides.
  EXPECT_GE(partitioned_total, broadcast[0].retained_edges);
  EXPECT_LE(partitioned_total, 2 * broadcast[0].retained_edges);
}

TEST(PartitionTest, MidStreamRegistrationBackfillsAcrossShards) {
  Interner interner;
  const auto edges = RandomStream(&interner, 55, 18, 900);
  const auto queries = RandomQueries(&interner, 21, 4);
  const Timestamp window = 25;
  const size_t split = edges.size() / 2;

  // Reference: single engine registering query 0 up front and the rest
  // mid-stream.
  std::vector<std::multiset<uint64_t>> expected(queries.size());
  {
    StreamWorksEngine engine(&interner);
    auto subscribe = [&](size_t i) {
      SW_CHECK_OK(
          engine
              .RegisterQuery(queries[i],
                             DecompositionStrategy::kLeftDeepEdgeOrder,
                             window,
                             [&expected, i](const CompleteMatch& cm) {
                               expected[i].insert(Signature(cm));
                             })
              .status());
    };
    subscribe(0);
    for (size_t k = 0; k < split; ++k) engine.ProcessEdge(edges[k]).ok();
    for (size_t i = 1; i < queries.size(); ++i) subscribe(i);
    for (size_t k = split; k < edges.size(); ++k) {
      engine.ProcessEdge(edges[k]).ok();
    }
  }

  std::vector<std::multiset<uint64_t>> actual(queries.size());
  ParallelEngineGroup group(&interner, 3, {},
                            ShardingMode::kPartitionedData);
  auto subscribe = [&](size_t i) {
    ASSERT_TRUE(group
                    .RegisterQuery(queries[i],
                                   DecompositionStrategy::kLeftDeepEdgeOrder,
                                   window,
                                   [&actual, i](const CompleteMatch& cm) {
                                     actual[i].insert(Signature(cm));
                                   })
                    .ok());
  };
  subscribe(0);
  for (size_t k = 0; k < split; ++k) group.ProcessEdge(edges[k]);
  for (size_t i = 1; i < queries.size(); ++i) subscribe(i);
  for (size_t k = split; k < edges.size(); ++k) group.ProcessEdge(edges[k]);
  group.Flush();

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
}

TEST(PartitionTest, UnregisterStopsDeliveryGroupWide) {
  Interner interner;
  const auto edges = RandomStream(&interner, 31, 15, 600);
  const auto queries = RandomQueries(&interner, 13, 2);
  const Timestamp window = 20;
  const size_t split = edges.size() / 2;

  std::vector<std::multiset<uint64_t>> expected(queries.size());
  {
    StreamWorksEngine engine(&interner);
    std::vector<int> ids;
    for (size_t i = 0; i < queries.size(); ++i) {
      ids.push_back(
          engine
              .RegisterQuery(queries[i],
                             DecompositionStrategy::kLeftDeepEdgeOrder,
                             window,
                             [&expected, i](const CompleteMatch& cm) {
                               expected[i].insert(Signature(cm));
                             })
              .value());
    }
    for (size_t k = 0; k < split; ++k) engine.ProcessEdge(edges[k]).ok();
    SW_CHECK_OK(engine.UnregisterQuery(ids[0]));
    for (size_t k = split; k < edges.size(); ++k) {
      engine.ProcessEdge(edges[k]).ok();
    }
  }

  std::vector<std::multiset<uint64_t>> actual(queries.size());
  ParallelEngineGroup group(&interner, 4, {},
                            ShardingMode::kPartitionedData);
  std::vector<int> ids;
  for (size_t i = 0; i < queries.size(); ++i) {
    ids.push_back(group
                      .RegisterQuery(
                          queries[i],
                          DecompositionStrategy::kLeftDeepEdgeOrder, window,
                          [&actual, i](const CompleteMatch& cm) {
                            actual[i].insert(Signature(cm));
                          })
                      .value());
  }
  for (size_t k = 0; k < split; ++k) group.ProcessEdge(edges[k]);
  ASSERT_TRUE(group.UnregisterQuery(ids[0]).ok());
  EXPECT_FALSE(group.UnregisterQuery(ids[0]).ok());  // idempotence = error
  for (size_t k = split; k < edges.size(); ++k) group.ProcessEdge(edges[k]);
  group.Flush();

  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
  EXPECT_FALSE(group.query_info(ids[0]).ok());
  const auto info = group.query_info(ids[1]);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().completions, expected[1].size());
}

TEST(PartitionTest, InvalidEdgesRejectedOnceAtGroupAdmission) {
  Interner interner;
  ParallelEngineGroup group(&interner, 3, {},
                            ShardingMode::kPartitionedData);
  int hits = 0;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  ASSERT_TRUE(group
                  .RegisterQuery(builder.Build().value(),
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());

  group.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 10));
  group.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 5));  // ts regression
  group.ProcessEdge(
      MakeEdge(&interner, 1, 3, "x", 11, "W", "V"));  // label clash on src
  group.Flush();

  // Unlike broadcast mode (each shard rejects its own copy), admission
  // rejects once — the same count a single engine reports.
  EXPECT_EQ(group.total_rejected(), 2u);
  EXPECT_EQ(hits, 1);
}

TEST(PartitionTest, CustomPartitionerIsUsedAndResultsHold) {
  // A deliberately lopsided partitioner (everything on shard 1 except one
  // vertex) still yields exact results — the seam only moves work around.
  class LopsidedPartitioner final : public Partitioner {
   public:
    int OwnerShard(ExternalVertexId v, int num_shards) const override {
      if (num_shards == 1) return 0;
      return v == 0 ? 0 : 1 % num_shards;
    }
    std::string name() const override { return "lopsided"; }
  };

  Interner interner;
  const auto edges = RandomStream(&interner, 77, 12, 500);
  const auto queries = RandomQueries(&interner, 9, 3);
  const Timestamp window = 15;
  const auto expected =
      SingleEngineReference(&interner, queries, window, edges);

  LopsidedPartitioner lopsided;
  std::vector<std::multiset<uint64_t>> actual(queries.size());
  ParallelEngineGroup group(&interner, 3, {},
                            ShardingMode::kPartitionedData, &lopsided);
  EXPECT_EQ(group.partitioner().name(), "lopsided");
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(group
                    .RegisterQuery(queries[i],
                                   DecompositionStrategy::kLeftDeepEdgeOrder,
                                   window,
                                   [&actual, i](const CompleteMatch& cm) {
                                     actual[i].insert(Signature(cm));
                                   })
                    .ok());
  }
  for (const StreamEdge& e : edges) group.ProcessEdge(e);
  group.Flush();
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "query " << i;
  }
  // Shard 2 owns nothing under this policy.
  const auto stats = group.ShardStats();
  EXPECT_EQ(stats[2].retained_edges, 0u);
}

}  // namespace
}  // namespace streamworks
