// Tests for adaptive re-planning (the paper's §4.3 future work implemented
// in StreamWorksEngine): swapping a query's SJ-Tree mid-stream from live
// statistics must preserve exactly-once match delivery, and must actually
// adapt the plan when the stream's label distribution drifts.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/baseline/naive.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/random_graphs.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "a");
  builder.AddEdge(vb, vc, "b");
  return builder.Build("drift_path").value();
}

TEST(ReplanTest, ExplicitDecompositionNeedsStrategyArgument) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  StreamWorksEngine engine(&interner, options);
  const QueryGraph q = PathQuery(&interner);
  const auto leaves = std::vector<Bitset64>{Bitset64::Single(0),
                                            Bitset64::Single(1)};
  const int id =
      engine
          .RegisterQuery(q, Decomposition::MakeLeftDeep(q, leaves).value(),
                         100, nullptr)
          .value();
  auto result = engine.ReplanQuery(id);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // Passing a strategy explicitly makes it re-plannable.
  EXPECT_TRUE(
      engine.ReplanQuery(id, DecompositionStrategy::kSelectivityLeftDeep)
          .ok());
}

TEST(ReplanTest, UnknownQueryIdIsRejected) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  StreamWorksEngine engine(&interner, options);
  EXPECT_FALSE(engine.ReplanQuery(0).ok());
  EXPECT_FALSE(engine.ReplanQuery(-1).ok());
}

TEST(ReplanTest, UnchangedStatsYieldNoOpSwap) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  StreamWorksEngine engine(&interner, options);
  const QueryGraph q = PathQuery(&interner);
  const int id = engine
                     .RegisterQuery(
                         q, DecompositionStrategy::kSelectivityLeftDeep,
                         100, nullptr)
                     .value();
  // Re-planning immediately sees the same statistics: same plan, no swap.
  EXPECT_FALSE(engine.ReplanQuery(id).value());
  EXPECT_EQ(engine.replans_performed(), 0u);
}

TEST(ReplanTest, AdaptsToLabelDistributionDrift) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  options.wedge_sample_rate = 1.0;
  StreamWorksEngine engine(&interner, options);

  // Phase 1: "a" edges are rare, "b" edges common.
  Timestamp ts = 0;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        engine.ProcessEdge(MakeEdge(&interner, 500 + i, 600 + i, "b", ts++))
            .ok());
  }
  ASSERT_TRUE(
      engine.ProcessEdge(MakeEdge(&interner, 1, 2, "a", ts++)).ok());

  const QueryGraph q = PathQuery(&interner);
  const int id = engine
                     .RegisterQuery(
                         q, DecompositionStrategy::kSelectivityLeftDeep,
                         1000, nullptr)
                     .value();
  // The plan seeds with the rare "a" edge (query edge 0).
  const Decomposition& before = engine.sjtree(id).decomposition();
  EXPECT_TRUE(before.node(before.leaves()[0]).edges.Contains(0));

  // Phase 2: flood of "a" edges makes "b" the selective one.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        engine.ProcessEdge(MakeEdge(&interner, 700 + i, 800 + i, "a", ts++))
            .ok());
  }
  ASSERT_TRUE(engine.ReplanQuery(id).value());
  EXPECT_EQ(engine.replans_performed(), 1u);
  const Decomposition& after = engine.sjtree(id).decomposition();
  EXPECT_TRUE(after.node(after.leaves()[0]).edges.Contains(1));
}

TEST(ReplanTest, SwapPreservesPendingPartialMatches) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  StreamWorksEngine engine(&interner, options);
  const QueryGraph q = PathQuery(&interner);
  int hits = 0;
  const int id = engine
                     .RegisterQuery(
                         q, DecompositionStrategy::kSelectivityLeftDeep,
                         100,
                         [&](const CompleteMatch&) { ++hits; })
                     .value();
  // Half a match arrives, then a forced swap, then the other half: the
  // backfill must carry the pending partial across the swap.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "a", 0)).ok());
  ASSERT_TRUE(
      engine.ReplanQuery(id, DecompositionStrategy::kLeftDeepEdgeOrder)
          .ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "b", 1)).ok());
  EXPECT_EQ(hits, 1);
}

TEST(ReplanTest, SwapDoesNotReemitCompletedMatches) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  StreamWorksEngine engine(&interner, options);
  const QueryGraph q = PathQuery(&interner);
  int hits = 0;
  const int id = engine
                     .RegisterQuery(
                         q, DecompositionStrategy::kSelectivityLeftDeep,
                         100,
                         [&](const CompleteMatch&) { ++hits; })
                     .value();
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "a", 0)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "b", 1)).ok());
  EXPECT_EQ(hits, 1);
  // Force swaps with both strategies; the completed match must not fire
  // again even though the backfill re-derives it inside the new tree.
  ASSERT_TRUE(
      engine.ReplanQuery(id, DecompositionStrategy::kLeftDeepEdgeOrder)
          .ok());
  ASSERT_TRUE(
      engine.ReplanQuery(id, DecompositionStrategy::kBalancedBisection)
          .ok());
  EXPECT_EQ(hits, 1);
  // And a fresh completion still works after the swaps.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 4, "b", 2)).ok());
  EXPECT_EQ(hits, 2);
}

/// The decisive property: an auto-replanning engine emits exactly the same
/// match multiset as a static engine and as the naive oracle, across
/// random workloads.
struct AutoReplanCase {
  uint64_t seed;
  int query_vertices;
  int query_edges;
  Timestamp window;
  int replan_interval;
};

class AutoReplanEquivalenceTest
    : public testing::TestWithParam<AutoReplanCase> {};

TEST_P(AutoReplanEquivalenceTest, MatchesStaticEngineAndOracle) {
  const auto& c = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = c.seed;
  opt.num_vertices = 16;
  opt.num_edges = 400;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 3;
  const auto edges = GenerateUniformStream(opt, &interner);

  Rng rng(c.seed * 31 + 7);
  const QueryGraph q =
      GenerateRandomConnectedQuery(rng, c.query_vertices, c.query_edges, 2,
                                   3, &interner)
          .value();

  EngineOptions adaptive_options;
  adaptive_options.collect_statistics = true;
  adaptive_options.wedge_sample_rate = 1.0;
  adaptive_options.replan_interval = c.replan_interval;
  StreamWorksEngine adaptive(&interner, adaptive_options);
  std::multiset<uint64_t> adaptive_sigs;
  ASSERT_TRUE(adaptive
                  .RegisterQuery(
                      q, DecompositionStrategy::kSelectivityLeftDeep,
                      c.window,
                      [&](const CompleteMatch& cm) {
                        adaptive_sigs.insert(cm.match.MappingSignature());
                      })
                  .ok());

  StreamWorksEngine static_engine(&interner);
  std::multiset<uint64_t> static_sigs;
  ASSERT_TRUE(static_engine
                  .RegisterQuery(
                      q, DecompositionStrategy::kLeftDeepEdgeOrder,
                      c.window,
                      [&](const CompleteMatch& cm) {
                        static_sigs.insert(cm.match.MappingSignature());
                      })
                  .ok());

  NaiveIncrementalMatcher naive(&q, c.window, &interner);
  std::multiset<uint64_t> naive_sigs;
  for (const StreamEdge& e : edges) {
    ASSERT_TRUE(adaptive.ProcessEdge(e).ok());
    ASSERT_TRUE(static_engine.ProcessEdge(e).ok());
    const std::vector<Match> found = naive.ProcessEdge(e).value();
    for (const Match& m : found) naive_sigs.insert(m.MappingSignature());
  }

  EXPECT_EQ(adaptive_sigs, static_sigs) << q.ToString(interner);
  EXPECT_EQ(adaptive_sigs, naive_sigs) << q.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AutoReplanEquivalenceTest,
    testing::Values(AutoReplanCase{21, 3, 2, 12, 32},
                    AutoReplanCase{22, 3, 3, 15, 64},
                    AutoReplanCase{23, 4, 3, 10, 16},
                    AutoReplanCase{24, 4, 4, 20, 48},
                    AutoReplanCase{25, 5, 4, 25, 100},
                    AutoReplanCase{26, 4, 5, 30, 24}));

}  // namespace
}  // namespace streamworks
