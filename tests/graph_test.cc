// Unit tests for streamworks/graph: QueryGraph + builder + DSL parser,
// DynamicGraph ingest/window/eviction, edge-stream IO, random generators.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/graph_io.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/graph/stream_edge.h"

namespace streamworks {
namespace {

// --- QueryGraph construction -------------------------------------------------

TEST(QueryGraphBuilderTest, BuildsTriangle) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  const auto v2 = b.AddVertex("C");
  b.AddEdge(v0, v1, "x");
  b.AddEdge(v1, v2, "y");
  b.AddEdge(v2, v0, "z");
  auto result = b.Build("triangle");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryGraph& q = result.value();
  EXPECT_EQ(q.num_vertices(), 3);
  EXPECT_EQ(q.num_edges(), 3);
  EXPECT_EQ(q.name(), "triangle");
  EXPECT_EQ(q.edge(0).src, v0);
  EXPECT_EQ(q.edge(0).dst, v1);
  EXPECT_EQ(interner.Name(q.vertex_label(v1)), "B");
}

TEST(QueryGraphBuilderTest, RejectsEmpty) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  b.AddVertex("A");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryGraphBuilderTest, RejectsDisconnected) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  const auto v2 = b.AddVertex("C");
  const auto v3 = b.AddVertex("D");
  b.AddEdge(v0, v1, "x");
  b.AddEdge(v2, v3, "x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryGraphBuilderTest, RejectsIsolatedVertex) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  b.AddVertex("Lonely");
  b.AddEdge(v0, v1, "x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryGraphBuilderTest, RejectsOutOfRangeEndpoint) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  b.AddVertex("A");
  b.AddEdge(0, 5, "x");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryGraphBuilderTest, AllowsSelfLoopAndParallelEdges) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  b.AddEdge(v0, v1, "x");
  b.AddEdge(v0, v1, "x");  // parallel
  b.AddEdge(v0, v0, "loop");
  auto result = b.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_edges(), 3);
  // Self-loop appears once in the incidence list of v0, not twice.
  int loop_entries = 0;
  for (const QueryIncidence& inc : result->incident(v0)) {
    if (inc.edge == 2) ++loop_entries;
  }
  EXPECT_EQ(loop_entries, 1);
}

TEST(QueryGraphTest, IncidenceListsAreComplete) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  const auto v2 = b.AddVertex("C");
  b.AddEdge(v0, v1, "x");
  b.AddEdge(v2, v1, "y");
  const QueryGraph q = b.Build().value();
  ASSERT_EQ(q.incident(v1).size(), 2u);
  EXPECT_FALSE(q.incident(v1)[0].out);  // v1 is the target of edge 0
  EXPECT_EQ(q.incident(v1)[0].other, v0);
  EXPECT_FALSE(q.incident(v1)[1].out);
  EXPECT_EQ(q.incident(v1)[1].other, v2);
  EXPECT_TRUE(q.incident(v0)[0].out);
}

TEST(QueryGraphTest, VerticesOfEdgesAndConnectivity) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("A");
  const auto v1 = b.AddVertex("B");
  const auto v2 = b.AddVertex("C");
  const auto v3 = b.AddVertex("D");
  b.AddEdge(v0, v1, "x");  // e0
  b.AddEdge(v1, v2, "x");  // e1
  b.AddEdge(v2, v3, "x");  // e2
  const QueryGraph q = b.Build().value();

  const Bitset64 e02 = Bitset64::Single(0) | Bitset64::Single(2);
  EXPECT_FALSE(q.IsEdgeSetConnected(e02));
  EXPECT_TRUE(q.IsEdgeSetConnected(Bitset64::Single(0) | Bitset64::Single(1)));
  EXPECT_TRUE(q.IsEdgeSetConnected(q.AllEdges()));
  EXPECT_TRUE(q.IsEdgeSetConnected(Bitset64()));

  const Bitset64 verts = q.VerticesOfEdges(e02);
  EXPECT_EQ(verts.Count(), 4);
  EXPECT_EQ(q.VerticesOfEdges(Bitset64::Single(1)).Count(), 2);
  EXPECT_TRUE(q.EdgesTouchingVertices(Bitset64::Single(v1))
                  .Contains(0));
  EXPECT_TRUE(q.EdgesTouchingVertices(Bitset64::Single(v1)).Contains(1));
  EXPECT_FALSE(q.EdgesTouchingVertices(Bitset64::Single(v1)).Contains(2));
}

TEST(QueryGraphTest, ToStringMentionsLabelsAndShape) {
  Interner interner;
  QueryGraphBuilder b(&interner);
  const auto v0 = b.AddVertex("Host");
  const auto v1 = b.AddVertex("IP");
  b.AddEdge(v0, v1, "hasIP");
  const QueryGraph q = b.Build("probe").value();
  const std::string s = q.ToString(interner);
  EXPECT_NE(s.find("probe"), std::string::npos);
  EXPECT_NE(s.find("Host"), std::string::npos);
  EXPECT_NE(s.find("hasIP"), std::string::npos);
}

// --- Query DSL ---------------------------------------------------------------

TEST(ParseQueryTextTest, ParsesFullQuery) {
  Interner interner;
  auto parsed = ParseQueryText(R"(
    # Smurf reflector
    query smurf
    node a Attacker
    node amp Amplifier
    node v Victim
    edge a amp icmpEchoReq
    edge amp v icmpEchoReply
    window 3600
  )",
                               &interner);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph.name(), "smurf");
  EXPECT_EQ(parsed->graph.num_vertices(), 3);
  EXPECT_EQ(parsed->graph.num_edges(), 2);
  EXPECT_EQ(parsed->window, 3600);
  EXPECT_NE(interner.Find("icmpEchoReq"), kInvalidLabelId);
}

TEST(ParseQueryTextTest, WindowDefaultsToUnbounded) {
  Interner interner;
  auto parsed = ParseQueryText("node a A\nnode b B\nedge a b x\n", &interner);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->window, kMaxTimestamp);
}

TEST(ParseQueryTextTest, RejectsMalformedLines) {
  Interner interner;
  EXPECT_FALSE(ParseQueryText("node a\n", &interner).ok());
  EXPECT_FALSE(ParseQueryText("frobnicate a b\n", &interner).ok());
  EXPECT_FALSE(
      ParseQueryText("node a A\nnode b B\nedge a missing x\n", &interner)
          .ok());
  EXPECT_FALSE(
      ParseQueryText("node a A\nnode a B\nedge a a x\n", &interner).ok());
  EXPECT_FALSE(ParseQueryText("node a A\nnode b B\nedge a b x\nwindow -5\n",
                              &interner)
                   .ok());
  EXPECT_FALSE(ParseQueryText(
                   "node a A\nnode b B\nedge a b x\nwindow 5\nwindow 6\n",
                   &interner)
                   .ok());
}

TEST(ParseQueryTextTest, ErrorsIncludeLineNumber) {
  Interner interner;
  auto result = ParseQueryText("node a A\nbogus\n", &interner);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ParseQueryLibraryTest, ParsesMultipleBlocks) {
  Interner interner;
  auto result = ParseQueryLibrary(R"(
    # shared library of watch patterns
    query scan
    node s Host
    node t Host
    edge s t synProbe
    window 30

    query exfil
    node a Host
    node b Host
    edge a b copy
  )",
                                  &interner);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].graph.name(), "scan");
  EXPECT_EQ((*result)[0].window, 30);
  EXPECT_EQ((*result)[1].graph.name(), "exfil");
  EXPECT_EQ((*result)[1].window, kMaxTimestamp);
}

TEST(ParseQueryLibraryTest, NodeIdsAreLocalToTheirBlock) {
  Interner interner;
  auto result = ParseQueryLibrary(
      "query q1\nnode a A\nnode b B\nedge a b x\n"
      "query q2\nnode a C\nnode b D\nedge a b y\n",
      &interner);
  ASSERT_TRUE(result.ok());
  // The second block's "a" is a fresh vertex with its own label.
  EXPECT_EQ((*result)[1].graph.vertex_label(0), interner.Find("C"));
}

TEST(ParseQueryLibraryTest, ErrorsCarryFileGlobalLineNumbers) {
  Interner interner;
  auto result = ParseQueryLibrary(
      "query ok\nnode a A\nnode b B\nedge a b x\n"  // lines 1-4
      "query broken\nnode a A\nbogus directive here\n",
      &interner);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 7"), std::string::npos);
}

TEST(ParseQueryLibraryTest, RejectsContentBeforeFirstBlockAndEmpty) {
  Interner interner;
  EXPECT_FALSE(
      ParseQueryLibrary("node a A\nquery q\n", &interner).ok());
  EXPECT_FALSE(ParseQueryLibrary("# only comments\n", &interner).ok());
  // Comments/blank lines before the first block are fine.
  EXPECT_TRUE(ParseQueryLibrary(
                  "# header\n\nquery q\nnode a A\nnode b B\nedge a b x\n",
                  &interner)
                  .ok());
}

// --- DynamicGraph ------------------------------------------------------------

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

TEST(DynamicGraphTest, IngestCreatesVerticesOnFirstSight) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 10, 20, "e", 0, "A", "B")).ok());
  EXPECT_EQ(g.num_vertices(), 2u);
  const VertexId a = g.FindVertex(10);
  const VertexId b = g.FindVertex(20);
  ASSERT_NE(a, kInvalidVertexId);
  ASSERT_NE(b, kInvalidVertexId);
  EXPECT_EQ(interner.Name(g.vertex_label(a)), "A");
  EXPECT_EQ(interner.Name(g.vertex_label(b)), "B");
  EXPECT_EQ(g.external_id(a), 10u);
  EXPECT_EQ(g.FindVertex(999), kInvalidVertexId);
}

TEST(DynamicGraphTest, EdgeRecordsAndAdjacency) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 = g.AddEdge(MakeEdge(&interner, 1, 2, "x", 5)).value();
  const EdgeId e1 = g.AddEdge(MakeEdge(&interner, 2, 3, "y", 6)).value();
  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(g.num_stored_edges(), 2u);
  EXPECT_EQ(g.watermark(), 6);

  const VertexId v2 = g.FindVertex(2);
  ASSERT_EQ(g.OutEdges(v2).size(), 1u);
  ASSERT_EQ(g.InEdges(v2).size(), 1u);
  EXPECT_EQ(g.OutEdges(v2)[0].edge, e1);
  EXPECT_EQ(g.InEdges(v2)[0].edge, e0);
  EXPECT_EQ(g.edge_record(e0).ts, 5);
  EXPECT_EQ(interner.Name(g.edge_record(e1).label), "y");
}

TEST(DynamicGraphTest, RejectsDecreasingTimestamps) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 10)).ok());
  EXPECT_FALSE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 9)).ok());
  EXPECT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 10)).ok());
  EXPECT_FALSE(g.AddEdge(MakeEdge(&interner, 3, 4, "x", -1)).ok());
}

TEST(DynamicGraphTest, RejectsVertexLabelMismatch) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0, "A", "B")).ok());
  auto bad = g.AddEdge(MakeEdge(&interner, 1, 3, "x", 1, "C", "B"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(DynamicGraphTest, EvictsBeyondRetention) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(10);
  for (Timestamp t = 0; t < 30; ++t) {
    ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, t % 5, (t + 1) % 5, "x", t))
                    .ok());
  }
  // watermark = 29, retention 10 -> live ts in [20, 29].
  EXPECT_EQ(g.MinLiveTs(), 20);
  EXPECT_EQ(g.num_stored_edges(), 10u);
  EXPECT_EQ(g.first_stored_edge_id(), 20u);
  EXPECT_EQ(g.num_evicted_edges(), 20u);
  EXPECT_FALSE(g.IsStored(19));
  EXPECT_TRUE(g.IsStored(20));
  // Adjacency spans contain only live edges, ascending by ts.
  for (uint64_t ext = 0; ext < 5; ++ext) {
    const VertexId v = g.FindVertex(ext);
    Timestamp prev = -1;
    for (const AdjEntry& entry : g.OutEdges(v)) {
      EXPECT_GE(entry.ts, 20);
      EXPECT_GE(entry.ts, prev);
      prev = entry.ts;
    }
  }
}

TEST(DynamicGraphTest, StrictWindowBoundary) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(5);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "x", 4)).ok());
  // span(0,4) = 4 < 5: both live.
  EXPECT_EQ(g.num_stored_edges(), 2u);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 3, 4, "x", 5)).ok());
  // Edge at ts=0 now has watermark - ts == 5 >= retention: dead.
  EXPECT_EQ(g.num_stored_edges(), 2u);
  EXPECT_EQ(g.MinLiveTs(), 1);
  EXPECT_FALSE(g.IsStored(0));
}

TEST(DynamicGraphTest, UnboundedRetentionNeverEvicts) {
  Interner interner;
  DynamicGraph g(&interner);
  for (Timestamp t = 0; t < 100; ++t) {
    ASSERT_TRUE(
        g.AddEdge(MakeEdge(&interner, t % 7, (t + 3) % 7, "x", t * 1000))
            .ok());
  }
  EXPECT_EQ(g.num_stored_edges(), 100u);
  EXPECT_EQ(g.MinLiveTs(), 0);
}

TEST(DynamicGraphTest, SelfLoopsAndParallelEdges) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 1, "loop", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 1)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 2)).ok());
  const VertexId v1 = g.FindVertex(1);
  EXPECT_EQ(g.OutEdges(v1).size(), 3u);
  EXPECT_EQ(g.InEdges(v1).size(), 1u);  // the self loop
  EXPECT_EQ(g.num_stored_edges(), 3u);
}

TEST(DynamicGraphTest, EvictionWithSelfLoops) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(3);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 1, "loop", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 10)).ok());
  EXPECT_EQ(g.num_stored_edges(), 1u);
  const VertexId v1 = g.FindVertex(1);
  EXPECT_EQ(g.OutEdges(v1).size(), 1u);
  EXPECT_EQ(g.InEdges(v1).size(), 0u);
}

TEST(DynamicGraphTest, AdjacencyCompactionPreservesLiveEdges) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(50);
  // Hammer one hub vertex so its adjacency list is compacted repeatedly.
  for (Timestamp t = 0; t < 2000; ++t) {
    ASSERT_TRUE(
        g.AddEdge(MakeEdge(&interner, 0, 1 + (t % 9), "x", t)).ok());
  }
  const VertexId hub = g.FindVertex(0);
  EXPECT_EQ(g.OutEdges(hub).size(), 50u);
  for (const AdjEntry& entry : g.OutEdges(hub)) {
    EXPECT_GE(entry.ts, g.MinLiveTs());
    EXPECT_TRUE(g.IsStored(entry.edge));
  }
}

// --- Edge stream IO ------------------------------------------------------------

TEST(GraphIoTest, SerializeParseRoundTrip) {
  Interner interner;
  std::vector<StreamEdge> edges;
  edges.push_back(MakeEdge(&interner, 1, 2, "flow", 100, "Host", "Host"));
  edges.push_back(MakeEdge(&interner, 2, 3, "login", 101, "Host", "User"));
  const std::string text = SerializeEdgeStream(edges, interner);

  Interner interner2;
  auto parsed = ParseEdgeStream(text, &interner2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].src, 1u);
  EXPECT_EQ((*parsed)[0].ts, 100);
  EXPECT_EQ(interner2.Name((*parsed)[1].edge_label), "login");
}

TEST(GraphIoTest, ParseRejectsMalformedLines) {
  Interner interner;
  EXPECT_FALSE(ParseEdgeStream("1,2,A\n", &interner).ok());
  EXPECT_FALSE(ParseEdgeStream("x,1,A,2,B,e\n", &interner).ok());
  auto err = ParseEdgeStream("# ok\n1,1,A,2,B,e\nbogus line\n", &interner);
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 3"), std::string::npos);
}

TEST(GraphIoTest, FileRoundTrip) {
  Interner interner;
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 20; ++i) {
    edges.push_back(MakeEdge(&interner, i, i + 1, "e", i));
  }
  const std::string path = testing::TempDir() + "/stream_io_test.csv";
  ASSERT_TRUE(WriteEdgeStreamFile(path, edges, interner).ok());
  auto loaded = ReadEdgeStreamFile(path, &interner);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, edges);
}

TEST(GraphIoTest, ReadMissingFileIsIoError) {
  Interner interner;
  auto result = ReadEdgeStreamFile("/nonexistent/nowhere.csv", &interner);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// --- Random generators ----------------------------------------------------------

TEST(RandomGraphsTest, UniformStreamShapeAndDeterminism) {
  RandomStreamOptions opt;
  opt.seed = 42;
  opt.num_vertices = 50;
  opt.num_edges = 500;
  Interner interner;
  const auto a = GenerateUniformStream(opt, &interner);
  const auto b = GenerateUniformStream(opt, &interner);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 500u);
  Timestamp prev = 0;
  for (const StreamEdge& e : a) {
    EXPECT_LT(e.src, 50u);
    EXPECT_LT(e.dst, 50u);
    EXPECT_GE(e.ts, prev);
    prev = e.ts;
  }
  // 500 edges at 10/tick -> ts spans [0, 49].
  EXPECT_EQ(a.back().ts, 49);
}

TEST(RandomGraphsTest, VertexLabelsAreStablePerVertex) {
  RandomStreamOptions opt;
  opt.seed = 7;
  opt.num_vertices = 20;
  opt.num_edges = 400;
  Interner interner;
  const auto edges = GenerateUniformStream(opt, &interner);
  std::unordered_map<uint64_t, LabelId> label_of;
  for (const StreamEdge& e : edges) {
    auto [it, inserted] = label_of.try_emplace(e.src, e.src_label);
    EXPECT_EQ(it->second, e.src_label);
    auto [it2, inserted2] = label_of.try_emplace(e.dst, e.dst_label);
    EXPECT_EQ(it2->second, e.dst_label);
  }
}

TEST(RandomGraphsTest, StreamsIngestCleanly) {
  RandomStreamOptions opt;
  opt.seed = 9;
  opt.num_vertices = 64;
  opt.num_edges = 1000;
  Interner interner;
  for (const auto& edges :
       {GenerateUniformStream(opt, &interner),
        GeneratePreferentialStream(opt, &interner),
        GenerateRMatStream(opt, RMatParams{}, &interner)}) {
    DynamicGraph g(&interner);
    g.set_retention(25);
    for (const StreamEdge& e : edges) {
      ASSERT_TRUE(g.AddEdge(e).ok());
    }
    EXPECT_GT(g.num_vertices(), 0u);
  }
}

TEST(RandomGraphsTest, PreferentialStreamIsMoreSkewedThanUniform) {
  RandomStreamOptions opt;
  opt.seed = 11;
  opt.num_vertices = 200;
  opt.num_edges = 4000;
  Interner interner;
  auto max_degree = [](const std::vector<StreamEdge>& edges) {
    std::unordered_map<uint64_t, int> deg;
    for (const StreamEdge& e : edges) {
      ++deg[e.src];
      ++deg[e.dst];
    }
    int best = 0;
    for (const auto& [v, d] : deg) best = std::max(best, d);
    return best;
  };
  const int uniform_max = max_degree(GenerateUniformStream(opt, &interner));
  const int pref_max = max_degree(GeneratePreferentialStream(opt, &interner));
  EXPECT_GT(pref_max, uniform_max);
}

TEST(RandomGraphsTest, RMatIdsWithinRangeForNonPowerOfTwo) {
  RandomStreamOptions opt;
  opt.seed = 13;
  opt.num_vertices = 100;  // not a power of two: exercises rejection
  opt.num_edges = 2000;
  Interner interner;
  for (const StreamEdge& e : GenerateRMatStream(opt, RMatParams{}, &interner)) {
    EXPECT_LT(e.src, 100u);
    EXPECT_LT(e.dst, 100u);
  }
}

TEST(RandomGraphsTest, RandomConnectedQueryIsValid) {
  Interner interner;
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const int nv = 2 + static_cast<int>(rng.NextBounded(5));
    const int ne = nv - 1 + static_cast<int>(rng.NextBounded(4));
    auto q = GenerateRandomConnectedQuery(rng, nv, ne, 3, 3, &interner);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_EQ(q->num_vertices(), nv);
    EXPECT_EQ(q->num_edges(), ne);
    EXPECT_TRUE(q->IsEdgeSetConnected(q->AllEdges()));
  }
}

TEST(RandomGraphsTest, RandomQueryRejectsImpossibleShape) {
  Interner interner;
  Rng rng(19);
  EXPECT_FALSE(GenerateRandomConnectedQuery(rng, 1, 0, 2, 2, &interner).ok());
  EXPECT_FALSE(GenerateRandomConnectedQuery(rng, 5, 2, 2, 2, &interner).ok());
}

}  // namespace
}  // namespace streamworks
