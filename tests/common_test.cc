// Unit tests for streamworks/common: Status, StatusOr, hashing, Rng,
// ZipfSampler, Interner, string utilities, Bitset64.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "streamworks/common/bitset64.h"
#include "streamworks/common/hash.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/common/status.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/str_util.h"

namespace streamworks {
namespace {

// --- Status / StatusOr ----------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_NE(s.ToString().find("invalid_argument"), std::string::npos);
  EXPECT_NE(s.ToString().find("bad window"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  SW_RETURN_IF_ERROR(FailsIfNegative(x));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(3).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

StatusOr<int> DoublePositive(int x) {
  SW_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  EXPECT_EQ(*ok, 21);

  StatusOr<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(-7), -7);
}

TEST(StatusOrTest, AssignOrReturnUnwraps) {
  EXPECT_EQ(DoublePositive(5).value(), 10);
  EXPECT_FALSE(DoublePositive(-5).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> s = std::make_unique<int>(9);
  ASSERT_TRUE(s.ok());
  std::unique_ptr<int> v = std::move(s).value();
  EXPECT_EQ(*v, 9);
}

// --- Hashing ----------------------------------------------------------------

TEST(HashTest, Mix64AvalanchesAndIsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t a = Mix64(0x1234);
  const uint64_t b = Mix64(0x1235);
  const int differing = std::popcount(a ^ b);
  EXPECT_GT(differing, 16);
  EXPECT_LT(differing, 48);
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, HashStringMatchesBytesAndDiffers) {
  EXPECT_EQ(HashString("abc"), HashBytes("abc", 3));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

// --- Rng -------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.2);
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(19);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

// --- ZipfSampler -------------------------------------------------------------

TEST(ZipfTest, RankZeroMostPopular) {
  Rng rng(23);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[25]);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(29);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(31);
  ZipfSampler zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
}

// --- Interner ----------------------------------------------------------------

TEST(InternerTest, AssignsDenseIdsInOrder) {
  Interner interner;
  EXPECT_EQ(interner.Intern("Host"), 0u);
  EXPECT_EQ(interner.Intern("IP"), 1u);
  EXPECT_EQ(interner.Intern("Host"), 0u);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, FindDoesNotIntern) {
  Interner interner;
  EXPECT_EQ(interner.Find("missing"), kInvalidLabelId);
  EXPECT_EQ(interner.size(), 0u);
  interner.Intern("x");
  EXPECT_EQ(interner.Find("x"), 0u);
}

TEST(InternerTest, NameRoundTrips) {
  Interner interner;
  const LabelId id = interner.Intern("connectsTo");
  EXPECT_EQ(interner.Name(id), "connectsTo");
  EXPECT_TRUE(interner.Contains(id));
  EXPECT_FALSE(interner.Contains(5));
}

// --- String utilities ---------------------------------------------------------

TEST(StrUtilTest, SplitPreservesEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StrUtilTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(StartsWith("streamworks", "stream"));
  EXPECT_FALSE(StartsWith("str", "stream"));
}

TEST(StrUtilTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));
}

TEST(StrUtilTest, ParseUint64Strict) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("1.5", &v));
}

TEST(StrUtilTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("2.5e3", &v));
  EXPECT_DOUBLE_EQ(v, 2500.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.0junk", &v));
}

TEST(StrUtilTest, StrCatAndFormat) {
  EXPECT_EQ(StrCat("x=", 3, ", y=", 4.5), "x=3, y=4.5");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(0), "0");
}

// --- Bitset64 -----------------------------------------------------------------

TEST(Bitset64Test, BasicSetOperations) {
  Bitset64 s;
  EXPECT_TRUE(s.Empty());
  s.Add(3);
  s.Add(40);
  EXPECT_EQ(s.Count(), 2);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(40));
  EXPECT_FALSE(s.Contains(4));
  s.Remove(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.First(), 40);
}

TEST(Bitset64Test, AlgebraAndOrdering) {
  const Bitset64 a = Bitset64::Single(1) | Bitset64::Single(5);
  const Bitset64 b = Bitset64::Single(5) | Bitset64::Single(9);
  EXPECT_EQ((a & b), Bitset64::Single(5));
  EXPECT_EQ((a | b).Count(), 3);
  EXPECT_EQ((a - b), Bitset64::Single(1));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(Bitset64::Single(5).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
}

TEST(Bitset64Test, FirstNAndIteration) {
  const Bitset64 s = Bitset64::FirstN(4);
  EXPECT_EQ(s.Count(), 4);
  std::vector<int> elems;
  for (int i : s) elems.push_back(i);
  EXPECT_EQ(elems, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(Bitset64::FirstN(64).Count(), 64);
  EXPECT_EQ(Bitset64::FirstN(0).Count(), 0);
}

TEST(Bitset64Test, IterationSkipsGaps) {
  Bitset64 s;
  s.Add(0);
  s.Add(17);
  s.Add(63);
  std::vector<int> elems;
  for (int i : s) elems.push_back(i);
  EXPECT_EQ(elems, (std::vector<int>{0, 17, 63}));
}

}  // namespace
}  // namespace streamworks
