// Tests for the multi-loop (epoll) frontend: round-robin sharding of
// connections across IO loops, per-loop stream pumps, slow-consumer
// isolation, per-loop stats in STATS / /stats.json / /metrics, and the
// server-wide invariants (admission cap, kBlock auto-streaming, graceful
// Stop) holding with io_loops > 1. Every control-plane call during a
// server's lifetime goes through the wire, keeping the suite race-clean
// under TSan.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/engine.h"
#include "streamworks/net/client.h"
#include "streamworks/net/server.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks {
namespace {

using std::chrono::milliseconds;

constexpr milliseconds kTimeout{5000};

const char* const kDefinePing =
    "DEFINE ping\n"
    "  node a V\n"
    "  node b V\n"
    "  edge a b ping\n"
    "  window 1000000\n"
    "END";

std::string FeedPing(uint64_t src, uint64_t dst, int64_t ts) {
  return "FEED " + std::to_string(src) + " V " + std::to_string(dst) +
         " V ping " + std::to_string(ts);
}

/// Minimal blocking HTTP/1.1 GET over loopback (the endpoint closes after
/// one response, so read-to-EOF is the framing).
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class NetFanoutTest : public ::testing::Test {
 protected:
  NetFanoutTest() : engine_(&interner_), backend_(&engine_) {}

  ~NetFanoutTest() override {
    if (server_ != nullptr) server_->Stop();
  }

  /// TCP on an ephemeral port; callers set io_loops (and any isolation
  /// knobs) before starting.
  void StartServer(ServerOptions options) {
    if (options.tcp_port < 0) options.tcp_port = 0;
    service_ = std::make_unique<QueryService>(&backend_, limits_);
    server_ = std::make_unique<SocketServer>(service_.get(), &interner_,
                                             options);
    ASSERT_TRUE(server_->Start().ok());
  }

  LineClient Connect() {
    auto client = LineClient::ConnectTcp("127.0.0.1", server_->tcp_port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::vector<std::string> Run(LineClient& client, const std::string& line) {
    auto payload = client.Command(line, kTimeout);
    EXPECT_TRUE(payload.ok()) << line << ": " << payload.status().ToString();
    return payload.ok() ? *payload : std::vector<std::string>{};
  }

  void RunScript(LineClient& client, const std::string& script) {
    for (std::string_view line : Split(script, '\n')) {
      Run(client, std::string(line));
    }
  }

  static bool Contains(const std::vector<std::string>& lines,
                       std::string_view needle) {
    for (const std::string& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  /// "key=<number>" extractor for STATS lines (0 when absent).
  static uint64_t Counter(const std::string& line, std::string_view key) {
    const std::string needle = std::string(key) + "=";
    const size_t pos = line.find(needle);
    if (pos == std::string::npos) return 0;
    size_t end = pos + needle.size();
    while (end < line.size() && std::isdigit(line[end])) ++end;
    uint64_t value = 0;
    ParseUint64(line.substr(pos + needle.size(), end - pos - needle.size()),
                &value);
    return value;
  }

  Interner interner_;
  StreamWorksEngine engine_;
  SingleEngineBackend backend_;
  ServiceLimits limits_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<SocketServer> server_;
};

TEST_F(NetFanoutTest, RoundRobinShardsConnectionsAcrossLoops) {
  ServerOptions options;
  options.io_loops = 4;
  StartServer(options);
  EXPECT_EQ(server_->io_loops(), 4);

  // 8 tenants land 2 per loop; every one gets a correct round trip
  // through its own loop's interpreter.
  std::vector<LineClient> clients;
  for (int i = 0; i < 8; ++i) clients.push_back(Connect());
  for (int i = 0; i < 8; ++i) {
    const std::string idx = std::to_string(i);
    const std::string name = "t" + idx;
    RunScript(clients[i], std::string(kDefinePing) + "\nSESSION " + name +
                              "\nSUBMIT " + name + " live ping");
  }
  for (int i = 0; i < 8; ++i) {
    Run(clients[i], FeedPing(100 + i, 7, i));
  }
  Run(clients[0], "FLUSH");
  for (int i = 0; i < 8; ++i) {
    const std::string idx = std::to_string(i);
    const std::string name = "t" + idx;
    const auto polled = Run(clients[i], "POLL " + name + " live");
    // Every tenant sees all 8 matches (shared engine, per-tenant query).
    size_t matches = 0;
    for (const std::string& line : polled) {
      if (line.starts_with("MATCH ")) ++matches;
    }
    EXPECT_EQ(matches, 8u) << "tenant " << i;
  }

  // The per-loop split is visible over the wire and sums to the total.
  const auto stats = Run(clients[0], "STATS");
  uint64_t sum = 0;
  for (int loop = 0; loop < 4; ++loop) {
    const std::string idx = std::to_string(loop);
    const std::string prefix = "io_loop " + idx + ":";
    EXPECT_TRUE(Contains(stats, prefix)) << prefix;
    for (const std::string& line : stats) {
      if (!line.starts_with(prefix)) continue;
      const uint64_t v = Counter(line, "connections");
      sum += v;
      // Round-robin over 8 connections and 4 loops: exactly 2 each.
      EXPECT_EQ(v, 2u) << line;
    }
  }
  EXPECT_EQ(sum, 8u);
  for (auto& client : clients) client.Quit();
}

TEST_F(NetFanoutTest, SlowConsumerDegradesOnlyItsOwnLoop) {
  ServerOptions options;
  options.io_loops = 2;
  // Tiny socket buffer + low high-water so the stalled reader's wbuf
  // fills after kilobytes, throttling its pump immediately.
  options.so_sndbuf = 4096;
  options.write_high_water = 2048;
  StartServer(options);

  // Round-robin: connection 0 (stalled watcher) lands on loop 0,
  // connection 1 (healthy watcher) on loop 1, feeder back on loop 0.
  LineClient stalled = Connect();
  LineClient healthy = Connect();
  LineClient feeder = Connect();

  RunScript(stalled,
            std::string(kDefinePing) +
                "\nSESSION slow\nSUBMIT slow live ping CAP 4 POLICY "
                "drop_oldest\n"
                "STREAM slow live");
  RunScript(healthy, std::string(kDefinePing) +
                         "\nSESSION fast\nSUBMIT fast live ping CAP 4096\n"
                         "STREAM fast live");
  RunScript(feeder, "SESSION pump");

  // The stalled client never reads. Feed enough that its socket buffer,
  // write buffer, and queue all fill; the healthy watcher on the other
  // loop must still receive every match promptly.
  constexpr int kEdges = 2000;
  for (int i = 0; i < kEdges; ++i) {
    Run(feeder, FeedPing(1000 + i, 7, i));
  }
  Run(feeder, "FLUSH");

  int healthy_events = 0;
  while (healthy_events < kEdges) {
    auto event = healthy.NextEvent(kTimeout);
    ASSERT_TRUE(event.ok()) << "after " << healthy_events << " events: "
                            << event.status().ToString();
    if (event->find("EVENT MATCH fast.live") != std::string::npos) {
      ++healthy_events;
    }
  }
  EXPECT_EQ(healthy_events, kEdges);

  // STATS (via the feeder) shows the throttling localized: the stalled
  // subscription dropped matches, the healthy one dropped none.
  const auto stats = Run(feeder, "STATS");
  uint64_t slow_dropped = 0, fast_dropped = 0;
  bool in_slow = false, in_fast = false;
  for (const std::string& line : stats) {
    if (line.starts_with("session ")) {
      in_slow = line.find("'slow'") != std::string::npos;
      in_fast = line.find("'fast'") != std::string::npos;
      continue;
    }
    if (line.find("dropped=") == std::string::npos) continue;
    if (in_slow) slow_dropped += Counter(line, "dropped");
    if (in_fast) fast_dropped += Counter(line, "dropped");
  }
  EXPECT_GT(slow_dropped, 0u);
  EXPECT_EQ(fast_dropped, 0u);

  stalled.Close();
  healthy.Quit();
  feeder.Quit();
}

TEST_F(NetFanoutTest, AdmissionCapHoldsAcrossLoops) {
  ServerOptions options;
  options.io_loops = 4;
  options.max_connections = 3;
  StartServer(options);

  std::vector<LineClient> admitted;
  for (int i = 0; i < 3; ++i) {
    admitted.push_back(Connect());
    Run(admitted.back(), "SESSION s" + std::to_string(i));
  }
  // The 4th connect is refused politely no matter which loop would have
  // owned it — the cap is server-wide, not per-loop.
  auto refused = LineClient::ConnectTcp("127.0.0.1", server_->tcp_port());
  ASSERT_TRUE(refused.ok());
  auto line = refused->ReadLine(kTimeout);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "ERR server full");
  for (auto& client : admitted) client.Quit();
}

TEST_F(NetFanoutTest, BlockPolicyStopUnwedgesWithMultipleLoops) {
  ServerOptions options;
  options.io_loops = 4;
  options.so_sndbuf = 4096;
  options.write_high_water = 8 * 1024;
  StartServer(options);

  // A kBlock subscription whose reader never drains: the producing FEED
  // parks its loop thread under the control mutex, wedging every other
  // loop's control-plane calls — exactly the worst case for Stop().
  LineClient blocker = Connect();
  RunScript(blocker, std::string(kDefinePing) +
                         "\nSESSION b\nSUBMIT b live ping CAP 2 POLICY block");
  LineClient feeder = Connect();
  Run(feeder, "SESSION f");
  for (int i = 0; i < 64; ++i) {
    // Fire-and-forget: some of these FEEDs will park behind the full
    // kBlock queue once the blocker's wbuf passes high-water.
    ASSERT_TRUE(feeder.SendLine(FeedPing(2000 + i, 7, i)).ok());
  }
  // Stop must complete even with a loop thread wedged mid-FEED.
  server_->Stop();
  SUCCEED();
}

TEST_F(NetFanoutTest, HttpRidesItsOwningLoopAndReportsPerLoopStats) {
  MetricRegistry registry;
  ServerOptions options;
  options.io_loops = 4;
  options.http_port = 0;
  options.registry = &registry;
  RegisterServiceCollector(&registry,
                           [this] { return service_->Snapshot(); });
  StartServer(options);

  LineClient client = Connect();
  RunScript(client, std::string(kDefinePing) +
                        "\nSESSION w\nSUBMIT w live ping\nSTREAM w live");
  Run(client, FeedPing(1, 7, 1));
  auto event = client.NextEvent(kTimeout);
  ASSERT_TRUE(event.ok());

  // Several sequential scrapes land on different loops (round-robin);
  // each must see the same consistent control-plane state.
  for (int i = 0; i < 5; ++i) {
    const std::string response = HttpGet(server_->http_port(), "/stats.json");
    ASSERT_TRUE(response.starts_with("HTTP/1.1 200 OK")) << response;
    EXPECT_NE(response.find("\"io_loops\":["), std::string::npos);
    EXPECT_NE(response.find("\"loop\":3"), std::string::npos);
    EXPECT_NE(response.find("\"pump_flushes\""), std::string::npos);
  }
  const std::string metrics = HttpGet(server_->http_port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE streamworks_io_loop_connections gauge"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("# TYPE streamworks_io_loop_pump_flushes counter"),
      std::string::npos);
  EXPECT_NE(metrics.find("streamworks_io_loop_connections{loop=\"0\"}"),
            std::string::npos);
  client.Quit();
}

TEST_F(NetFanoutTest, ManyStreamingWatchersAllDeliver) {
  ServerOptions options;
  options.io_loops = 4;
  options.max_connections = 128;
  StartServer(options);

  constexpr int kWatchers = 32;
  std::vector<LineClient> watchers;
  watchers.reserve(kWatchers);
  for (int i = 0; i < kWatchers; ++i) watchers.push_back(Connect());
  for (int i = 0; i < kWatchers; ++i) {
    const std::string idx = std::to_string(i);
    const std::string name = "w" + idx;
    RunScript(watchers[i], std::string(kDefinePing) + "\nSESSION " + name +
                               "\nSUBMIT " + name + " live ping CAP 256\n" +
                               "STREAM " + name + " live");
  }
  LineClient feeder = Connect();
  RunScript(feeder, "SESSION feed");
  constexpr int kEdges = 16;
  for (int i = 0; i < kEdges; ++i) {
    Run(feeder, FeedPing(3000 + i, 7, i));
  }
  Run(feeder, "FLUSH");
  for (int i = 0; i < kWatchers; ++i) {
    int events = 0;
    while (events < kEdges) {
      auto event = watchers[i].NextEvent(kTimeout);
      ASSERT_TRUE(event.ok())
          << "watcher " << i << ": " << event.status().ToString();
      if (event->find("EVENT MATCH") != std::string::npos) ++events;
    }
  }
  for (auto& client : watchers) client.Quit();
  feeder.Quit();
}

}  // namespace
}  // namespace streamworks
