// Tests for streamworks/viz: DOT exports, the Fig. 6 grid view, and the
// Fig. 5 event table.

#include <gtest/gtest.h>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/sjtree/sj_tree.h"
#include "streamworks/viz/dot_export.h"
#include "streamworks/viz/event_table.h"
#include "streamworks/viz/gexf_export.h"
#include "streamworks/viz/grid_view.h"
#include "streamworks/viz/match_format.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build("viz_path").value();
}

TEST(DotExportTest, QueryGraphDotHasVerticesAndEdges) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  const std::string dot = QueryGraphToDot(q, interner);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("viz_path"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"x\""), std::string::npos);
}

TEST(DotExportTest, DataGraphDotColorsHighlightedEdges) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 = g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value();
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  EdgeColorMap colors;
  colors[e0] = "red";
  const std::string dot = DataGraphToDot(g, interner, colors);
  EXPECT_NE(dot.find("color=\"red\""), std::string::npos);
  EXPECT_NE(dot.find("x@0"), std::string::npos);
  EXPECT_NE(dot.find("y@1"), std::string::npos);
}

TEST(DotExportTest, DataGraphDotTruncatesLargeWindows) {
  Interner interner;
  DynamicGraph g(&interner);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, i, i + 1, "x", i)).ok());
  }
  const std::string dot =
      DataGraphToDot(g, interner, {}, /*max_edges=*/10);
  EXPECT_NE(dot.find("+40 more edges"), std::string::npos);
}

TEST(DotExportTest, ColorMatchesMapsEveryBoundEdge) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match m(q);
  m.BindVertex(0, 1);
  m.BindVertex(1, 2);
  m.BindEdge(0, 17, 5);
  const EdgeColorMap colors = ColorMatches({m}, "blue");
  ASSERT_EQ(colors.size(), 1u);
  EXPECT_EQ(colors.at(17), "blue");
}

TEST(DotExportTest, SjTreeDotShowsOccupancy) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  std::vector<Bitset64> leaves = {Bitset64::Single(0), Bitset64::Single(1)};
  SjTree tree(&q, Decomposition::MakeLeftDeep(q, leaves).value(), 100);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value(),
                   &completed);
  const std::string dot = SjTreeToDot(tree, interner);
  EXPECT_NE(dot.find("live=1"), std::string::npos);
  EXPECT_NE(dot.find("cut:"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t0"), std::string::npos);
}

TEST(GexfExportTest, EmitsValidStructureWithColors) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 = g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value();
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "y", 5)).ok());
  EdgeColorMap colors;
  colors[e0] = "red";
  const std::string gexf = DataGraphToGexf(g, interner, colors);
  EXPECT_NE(gexf.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(gexf.find("<gexf"), std::string::npos);
  EXPECT_NE(gexf.find("mode=\"dynamic\""), std::string::npos);
  EXPECT_NE(gexf.find("start=\"5\""), std::string::npos);  // edge ts
  EXPECT_NE(gexf.find("<viz:color r=\"220\""), std::string::npos);
  EXPECT_NE(gexf.find("value=\"y\""), std::string::npos);
  // Two edges, three nodes.
  size_t node_count = 0;
  for (size_t pos = gexf.find("<node id="); pos != std::string::npos;
       pos = gexf.find("<node id=", pos + 1)) {
    ++node_count;
  }
  EXPECT_EQ(node_count, 3u);
}

TEST(GexfExportTest, EscapesXmlSpecialsInLabels) {
  Interner interner;
  DynamicGraph g(&interner);
  StreamEdge e = MakeEdge(&interner, 1, 2, "a<b>&\"c", 0);
  ASSERT_TRUE(g.AddEdge(e).ok());
  const std::string gexf = DataGraphToGexf(g, interner);
  EXPECT_NE(gexf.find("a&lt;b&gt;&amp;&quot;c"), std::string::npos);
  EXPECT_EQ(gexf.find("value=\"a<b"), std::string::npos);
}

TEST(GexfExportTest, RespectsMaxEdgesCap) {
  Interner interner;
  DynamicGraph g(&interner);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, i, i + 1, "x", i)).ok());
  }
  const std::string gexf = DataGraphToGexf(g, interner, {}, 5);
  size_t edge_count = 0;
  for (size_t pos = gexf.find("<edge id="); pos != std::string::npos;
       pos = gexf.find("<edge id=", pos + 1)) {
    ++edge_count;
  }
  EXPECT_EQ(edge_count, 5u);
}

TEST(MatchFormatTest, RendersExternalIdsAndLabels) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  DynamicGraph g(&interner);
  const EdgeId e0 =
      g.AddEdge(MakeEdge(&interner, 100, 200, "x", 3)).value();
  const EdgeId e1 =
      g.AddEdge(MakeEdge(&interner, 200, 300, "y", 7)).value();
  Match m(q);
  m.BindVertex(0, g.FindVertex(100));
  m.BindVertex(1, g.FindVertex(200));
  m.BindVertex(2, g.FindVertex(300));
  m.BindEdge(0, e0, 3);
  m.BindEdge(1, e1, 7);
  const std::string text = FormatMatch(m, q, g, interner);
  EXPECT_NE(text.find("viz_path @ [3, 7]"), std::string::npos);
  EXPECT_NE(text.find("=100 -[x @3]-> "), std::string::npos);
  EXPECT_NE(text.find("=300"), std::string::npos);
  EXPECT_NE(text.find("v1:V"), std::string::npos);
}

TEST(GridViewTest, CellsAccumulateAndSliceCorrectly) {
  GridView grid(10);
  grid.Add("subnet_0", 5);
  grid.Add("subnet_0", 9);
  grid.Add("subnet_0", 15);
  grid.Add("subnet_1", 25, 3);
  EXPECT_EQ(grid.CellCount("subnet_0", 0), 2u);
  EXPECT_EQ(grid.CellCount("subnet_0", 1), 1u);
  EXPECT_EQ(grid.CellCount("subnet_1", 2), 3u);
  EXPECT_EQ(grid.CellCount("subnet_1", 0), 0u);
  EXPECT_EQ(grid.CellCount("missing", 0), 0u);
  EXPECT_EQ(grid.num_slices(), 3);
  EXPECT_EQ(grid.num_rows(), 2u);
}

TEST(GridViewTest, AsciiRenderingShowsHeatAndCsvRoundTrips) {
  GridView grid(10);
  grid.Add("alpha", 0, 1);
  grid.Add("beta", 10, 100);
  const std::string ascii = grid.RenderAscii();
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("beta"), std::string::npos);
  EXPECT_NE(ascii.find("@"), std::string::npos);  // hot cell

  const std::string csv = grid.RenderCsv();
  EXPECT_NE(csv.find("row,slice_0,slice_1"), std::string::npos);
  EXPECT_NE(csv.find("alpha,1,0"), std::string::npos);
  EXPECT_NE(csv.find("beta,0,100"), std::string::npos);
}

TEST(EventTableTest, RowsAndCountByKey) {
  EventTable table;
  table.Add(10, "smurf", "subnet_3", "victim=42");
  table.Add(12, "smurf", "subnet_3", "victim=42");
  table.Add(15, "news_event", "Paris", "keyword=politics");
  EXPECT_EQ(table.size(), 3u);
  const auto by_key = table.CountByKey();
  ASSERT_EQ(by_key.size(), 2u);
  EXPECT_EQ(by_key[0].first, "subnet_3");
  EXPECT_EQ(by_key[0].second, 2u);

  const std::string ascii = table.RenderAscii();
  EXPECT_NE(ascii.find("time"), std::string::npos);
  EXPECT_NE(ascii.find("subnet_3"), std::string::npos);
  const std::string csv = table.RenderCsv();
  EXPECT_NE(csv.find("15,news_event,Paris,keyword=politics"),
            std::string::npos);
}

}  // namespace
}  // namespace streamworks
