// Tests for streamworks/sjtree: decomposition construction and validation
// (SJ-Tree Properties 1-4), the hash-indexed MatchStore with lazy expiry,
// and the SjTree incremental matcher, including a three-way equivalence
// property sweep against the naive incremental matcher and the batch
// oracle.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/local_search.h"
#include "streamworks/match/subgraph_iso.h"
#include "streamworks/sjtree/decomposition.h"
#include "streamworks/sjtree/match_store.h"
#include "streamworks/sjtree/sj_tree.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

/// Path query v0 -[x]-> v1 -[y]-> v2.
QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build("path2").value();
}

/// Path query with 4 edges, all distinct labels a,b,c,d.
QueryGraph Path4Query(Interner* interner) {
  QueryGraphBuilder builder(interner);
  QueryVertexId v[5];
  for (auto& vi : v) vi = builder.AddVertex("V");
  builder.AddEdge(v[0], v[1], "a");
  builder.AddEdge(v[1], v[2], "b");
  builder.AddEdge(v[2], v[3], "c");
  builder.AddEdge(v[3], v[4], "d");
  return builder.Build("path4").value();
}

QueryGraph TriangleQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "x");
  builder.AddEdge(v2, v0, "x");
  return builder.Build("triangle").value();
}

/// Single-edge leaves in a connected expansion order — the simplest valid
/// left-deep plan (the planner module layers smarter orders on top).
std::vector<Bitset64> SingleEdgeLeaves(const QueryGraph& q) {
  std::vector<Bitset64> leaves;
  for (QueryEdgeId e : ConnectedEdgeOrder(q, q.AllEdges(), 0)) {
    leaves.push_back(Bitset64::Single(e));
  }
  return leaves;
}

// --- Decomposition -------------------------------------------------------------

TEST(DecompositionTest, LeftDeepPathShapeAndProperties) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  auto d = Decomposition::MakeLeftDeep(q, SingleEdgeLeaves(q));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_nodes(), 3);  // 2 leaves + 1 join
  EXPECT_EQ(d->leaves().size(), 2u);
  EXPECT_EQ(d->Height(), 2);
  const DecompositionNode& root = d->node(d->root());
  EXPECT_EQ(root.edges, q.AllEdges());        // Property 1
  EXPECT_EQ(root.cut_vertices.Count(), 1);    // shared middle vertex
  EXPECT_TRUE(root.cut_vertices.Contains(1));
  EXPECT_TRUE(d->Validate(q).ok());
}

TEST(DecompositionTest, SiblingPointers) {
  Interner interner;
  const QueryGraph q = Path4Query(&interner);
  const Decomposition d =
      Decomposition::MakeLeftDeep(q, SingleEdgeLeaves(q)).value();
  for (int leaf : d.leaves()) {
    const int sib = d.Sibling(leaf);
    EXPECT_NE(sib, leaf);
    EXPECT_EQ(d.node(sib).parent, d.node(leaf).parent);
  }
}

TEST(DecompositionTest, LeftDeepRejectsDisconnectedOrder) {
  Interner interner;
  const QueryGraph q = Path4Query(&interner);
  // Leaf order e0, e2: no shared vertex between {v0,v1} and {v2,v3}.
  std::vector<Bitset64> leaves = {
      Bitset64::Single(0), Bitset64::Single(2), Bitset64::Single(1),
      Bitset64::Single(3)};
  EXPECT_FALSE(Decomposition::MakeLeftDeep(q, leaves).ok());
}

TEST(DecompositionTest, RejectsNonPartitionLeaves) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  // Missing edge 1.
  EXPECT_FALSE(
      Decomposition::MakeLeftDeep(q, {Bitset64::Single(0)}).ok());
  // Overlapping leaves.
  const Bitset64 both = Bitset64::Single(0) | Bitset64::Single(1);
  EXPECT_FALSE(
      Decomposition::MakeLeftDeep(q, {both, Bitset64::Single(1)}).ok());
}

TEST(DecompositionTest, RejectsDisconnectedLeafSubgraph) {
  Interner interner;
  const QueryGraph q = Path4Query(&interner);
  // Leaf {e0, e3} is internally disconnected.
  const Bitset64 bad = Bitset64::Single(0) | Bitset64::Single(3);
  const Bitset64 mid = Bitset64::Single(1) | Bitset64::Single(2);
  EXPECT_FALSE(Decomposition::MakeLeftDeep(q, {bad, mid}).ok());
}

TEST(DecompositionTest, BalancedFourLeavesIsShallower) {
  Interner interner;
  const QueryGraph q = Path4Query(&interner);
  const auto leaves = SingleEdgeLeaves(q);
  const Decomposition left_deep =
      Decomposition::MakeLeftDeep(q, leaves).value();
  const Decomposition balanced =
      Decomposition::MakeBalanced(q, leaves).value();
  EXPECT_EQ(left_deep.Height(), 4);
  EXPECT_EQ(balanced.Height(), 3);
  EXPECT_TRUE(balanced.Validate(q).ok());
  EXPECT_EQ(balanced.node(balanced.root()).edges, q.AllEdges());
}

TEST(DecompositionTest, BalancedRejectsEmptyCut) {
  Interner interner;
  const QueryGraph q = Path4Query(&interner);
  // Order e0,e2,e1,e3: the first bisection pairs e0 with e2 (no shared
  // vertex).
  std::vector<Bitset64> leaves = {
      Bitset64::Single(0), Bitset64::Single(2), Bitset64::Single(1),
      Bitset64::Single(3)};
  EXPECT_FALSE(Decomposition::MakeBalanced(q, leaves).ok());
}

TEST(DecompositionTest, SingleLeafDegenerateForm) {
  Interner interner;
  const QueryGraph q = TriangleQuery(&interner);
  const Decomposition d = Decomposition::MakeSingleLeaf(q).value();
  EXPECT_EQ(d.num_nodes(), 1);
  EXPECT_TRUE(d.IsLeaf(d.root()));
  EXPECT_EQ(d.node(d.root()).edges, q.AllEdges());
  EXPECT_EQ(d.Height(), 1);
}

TEST(DecompositionTest, ValidateRejectsForeignQuery) {
  Interner interner;
  const QueryGraph q2 = PathQuery(&interner);
  const QueryGraph q4 = Path4Query(&interner);
  const Decomposition d =
      Decomposition::MakeLeftDeep(q2, SingleEdgeLeaves(q2)).value();
  EXPECT_FALSE(d.Validate(q4).ok());
}

TEST(DecompositionTest, ToStringShowsCutsAndLabels) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  const Decomposition d =
      Decomposition::MakeLeftDeep(q, SingleEdgeLeaves(q)).value();
  const std::string s = d.ToString(q, interner);
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("leaf"), std::string::npos);
  EXPECT_NE(s.find("cut="), std::string::npos);
  EXPECT_NE(s.find("[x]"), std::string::npos);
}

// --- MatchStore ------------------------------------------------------------------

Match MakeStoredMatch(const QueryGraph& q, VertexId v0, VertexId v1,
                      EdgeId de, Timestamp ts) {
  Match m(q);
  m.BindVertex(0, v0);
  m.BindVertex(1, v1);
  m.BindEdge(0, de, ts);
  return m;
}

TEST(MatchStoreTest, ProbeFindsOnlyMatchingKey) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  MatchStore store;
  store.Insert(111, MakeStoredMatch(q, 1, 2, 10, 5));
  store.Insert(222, MakeStoredMatch(q, 3, 4, 11, 6));
  int visited = 0;
  store.ProbeKey(111, 0, [&](const Match&) { ++visited; });
  EXPECT_EQ(visited, 1);
  visited = 0;
  store.ProbeKey(999, 0, [&](const Match&) { ++visited; });
  EXPECT_EQ(visited, 0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.total_inserted(), 2u);
}

TEST(MatchStoreTest, ProbeErasesDeadEntries) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  MatchStore store;
  store.Insert(7, MakeStoredMatch(q, 1, 2, 10, 5));    // min_ts 5
  store.Insert(7, MakeStoredMatch(q, 3, 4, 11, 50));   // min_ts 50
  int visited = 0;
  store.ProbeKey(7, /*cutoff=*/10, [&](const Match& m) {
    ++visited;
    EXPECT_EQ(m.min_ts(), 50);
  });
  EXPECT_EQ(visited, 1);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.total_expired(), 1u);
}

TEST(MatchStoreTest, ExpireSweepsEverything) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  MatchStore store;
  for (int i = 0; i < 10; ++i) {
    store.Insert(i % 3, MakeStoredMatch(q, i, i + 1, i, i));
  }
  EXPECT_EQ(store.peak_size(), 10u);
  store.Expire(/*cutoff=*/5);
  EXPECT_EQ(store.size(), 5u);
  store.Expire(/*cutoff=*/100);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_expired(), 10u);
  EXPECT_EQ(store.peak_size(), 10u);  // peak survives expiry
}

// --- SjTree: hand-built scenarios ---------------------------------------------

SjTree MakeLeftDeepTree(const QueryGraph* q, Timestamp window) {
  return SjTree(q, Decomposition::MakeLeftDeep(*q, SingleEdgeLeaves(*q))
                       .value(),
                window);
}

TEST(SjTreeTest, TwoLeafPathMatchesInEitherArrivalOrder) {
  for (bool x_first : {true, false}) {
    Interner interner;
    const QueryGraph q = PathQuery(&interner);
    SjTree tree = MakeLeftDeepTree(&q, 100);
    DynamicGraph g(&interner);
    std::vector<Match> completed;

    // Arrival order varies; timestamps always increase.
    std::vector<StreamEdge> arrival =
        x_first ? std::vector<StreamEdge>{MakeEdge(&interner, 1, 2, "x", 0),
                                          MakeEdge(&interner, 2, 3, "y", 1)}
                : std::vector<StreamEdge>{MakeEdge(&interner, 2, 3, "y", 0),
                                          MakeEdge(&interner, 1, 2, "x", 1)};
    const EdgeId first = g.AddEdge(arrival[0]).value();
    tree.ProcessEdge(g, first, &completed);
    EXPECT_TRUE(completed.empty());
    EXPECT_EQ(tree.TotalPartialMatches(), 1u);
    EXPECT_DOUBLE_EQ(tree.MaxMatchedFraction(), 0.5);

    const EdgeId second = g.AddEdge(arrival[1]).value();
    tree.ProcessEdge(g, second, &completed);
    ASSERT_EQ(completed.size(), 1u) << "x_first=" << x_first;
    EXPECT_EQ(completed[0].bound_edges().Count(), 2);
    EXPECT_EQ(tree.num_completed(), 1u);
    EXPECT_DOUBLE_EQ(tree.MaxMatchedFraction(), 1.0);
  }
}

TEST(SjTreeTest, JoinStatsAreRecorded) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 100);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value(),
                   &completed);
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 2, 3, "y", 1)).value(),
                   &completed);
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t inserted = 0;
  for (int n = 0; n < tree.decomposition().num_nodes(); ++n) {
    attempts += tree.node_stats(n).join_attempts;
    successes += tree.node_stats(n).joins_succeeded;
    inserted += tree.node_stats(n).matches_inserted;
  }
  EXPECT_EQ(successes, 1u);
  EXPECT_GE(attempts, 1u);
  EXPECT_EQ(inserted, 3u);  // two leaf matches + one root completion
}

TEST(SjTreeTest, NonJoinableMatchesDoNotCombine) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 100);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  // x edge 1->2 and y edge 5->6: no shared middle vertex.
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value(),
                   &completed);
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 5, 6, "y", 1)).value(),
                   &completed);
  EXPECT_TRUE(completed.empty());
  EXPECT_EQ(tree.TotalPartialMatches(), 2u);
}

TEST(SjTreeTest, WindowExcludesSlowCompletions) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 10);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value(),
                   &completed);
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 2, 3, "y", 10)).value(),
                   &completed);
  EXPECT_TRUE(completed.empty());  // span 10, not < 10
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 15)).value(),
                   &completed);
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 2, 3, "y", 19)).value(),
                   &completed);
  // Two completions fit the window: (x@15, y@19) span 4 and (x@15, y@10)
  // span 5 — the match-span constraint is on timestamps, not arrival order.
  // (x@0, y@10) span 10 and (x@0, y@19) span 19 are both excluded.
  EXPECT_EQ(completed.size(), 2u);
}

TEST(SjTreeTest, ExpireOldMatchesDropsStalePartials) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 10);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  tree.ProcessEdge(g, g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value(),
                   &completed);
  EXPECT_EQ(tree.TotalPartialMatches(), 1u);
  // Advance the watermark far beyond the window with an unrelated edge.
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 8, 9, "zz", 1000)).ok());
  tree.ExpireOldMatches(g.watermark());
  EXPECT_EQ(tree.TotalPartialMatches(), 0u);
}

TEST(SjTreeTest, TriangleFindsAllRotations) {
  Interner interner;
  const QueryGraph q = TriangleQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 100);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  for (const auto& [s, d] :
       std::vector<std::pair<int, int>>{{1, 2}, {2, 3}, {3, 1}}) {
    tree.ProcessEdge(
        g,
        g.AddEdge(MakeEdge(&interner, s, d, "x", 0)).value(),
        &completed);
  }
  EXPECT_EQ(completed.size(), 3u);  // three rotational automorphisms
  std::set<uint64_t> sigs;
  for (const Match& m : completed) sigs.insert(m.MappingSignature());
  EXPECT_EQ(sigs.size(), 3u);
}

TEST(SjTreeTest, SingleLeafDecompositionActsAsNaiveMatcher) {
  Interner interner;
  const QueryGraph q = TriangleQuery(&interner);
  SjTree tree(&q, Decomposition::MakeSingleLeaf(q).value(), 100);
  DynamicGraph g(&interner);
  std::vector<Match> completed;
  for (const auto& [s, d] :
       std::vector<std::pair<int, int>>{{1, 2}, {2, 3}, {3, 1}}) {
    tree.ProcessEdge(
        g, g.AddEdge(MakeEdge(&interner, s, d, "x", 0)).value(),
        &completed);
  }
  EXPECT_EQ(completed.size(), 3u);
  EXPECT_EQ(tree.TotalPartialMatches(), 0u);  // no intermediate storage
}

TEST(SjTreeTest, DebugStringSummarisesNodes) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  SjTree tree = MakeLeftDeepTree(&q, 100);
  const std::string s = tree.DebugString();
  EXPECT_NE(s.find("leaf"), std::string::npos);
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("completed=0"), std::string::npos);
}

// --- Anchor-plan structural properties -----------------------------------------

TEST(SjTreeStructureTest, AnchorPlansCoverEveryLeafEdgeExactlyOnce) {
  Interner interner;
  Rng rng(555);
  for (int trial = 0; trial < 30; ++trial) {
    const int nv = 3 + static_cast<int>(rng.NextBounded(4));
    const int ne = nv - 1 + static_cast<int>(rng.NextBounded(4));
    const QueryGraph q =
        GenerateRandomConnectedQuery(rng, nv, ne, 2, 2, &interner).value();
    SjTree tree = MakeLeftDeepTree(&q, 100);

    // One plan per (leaf, edge-of-leaf); order[0] is the anchor; the
    // order covers exactly the leaf's edges; anchor labels match the
    // anchor query edge.
    std::multiset<std::pair<int, QueryEdgeId>> seen;
    for (const AnchorPlan& plan : tree.anchor_plans()) {
      seen.insert({plan.leaf, plan.anchor});
      ASSERT_FALSE(plan.order.empty());
      EXPECT_EQ(plan.order[0], plan.anchor);
      Bitset64 covered;
      for (QueryEdgeId e : plan.order) covered.Add(e);
      EXPECT_EQ(covered, tree.decomposition().node(plan.leaf).edges);
      const QueryEdge& qe = q.edge(plan.anchor);
      EXPECT_EQ(plan.edge_label, qe.label);
      EXPECT_EQ(plan.src_label, q.vertex_label(qe.src));
      EXPECT_EQ(plan.dst_label, q.vertex_label(qe.dst));
    }
    // Each (leaf, edge) pair appears exactly once, and the total anchor
    // count equals the query edge count (leaves partition the edges).
    const std::set<std::pair<int, QueryEdgeId>> unique(seen.begin(),
                                                       seen.end());
    EXPECT_EQ(seen.size(), unique.size());
    EXPECT_EQ(static_cast<int>(tree.anchor_plans().size()), q.num_edges());
  }
}

TEST(SjTreeStructureTest, PrimitivePairLeavesGetMultiEdgeOrders) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  QueryVertexId v[5];
  for (auto& vi : v) vi = builder.AddVertex("V");
  builder.AddEdge(v[0], v[1], "a");
  builder.AddEdge(v[1], v[2], "b");
  builder.AddEdge(v[2], v[3], "c");
  builder.AddEdge(v[3], v[4], "d");
  const QueryGraph q = builder.Build().value();
  const std::vector<Bitset64> leaves = {
      Bitset64::Single(0) | Bitset64::Single(1),
      Bitset64::Single(2) | Bitset64::Single(3)};
  SjTree tree(&q, Decomposition::MakeLeftDeep(q, leaves).value(), 100);
  EXPECT_EQ(tree.anchor_plans().size(), 4u);  // 2 leaves x 2 anchor slots
  for (const AnchorPlan& plan : tree.anchor_plans()) {
    EXPECT_EQ(plan.order.size(), 2u);
  }
}

// --- Equivalence property sweep ---------------------------------------------------

struct SjTreeEquivalenceCase {
  uint64_t seed;
  int stream_vertices;
  int stream_edges;
  int query_vertices;
  int query_edges;
  Timestamp window;
  bool balanced;  ///< Balanced tree shape (falls back to left-deep).
};

class SjTreeEquivalenceTest
    : public testing::TestWithParam<SjTreeEquivalenceCase> {};

TEST_P(SjTreeEquivalenceTest, AgreesWithBothOracles) {
  const auto& c = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = c.seed;
  opt.num_vertices = c.stream_vertices;
  opt.num_edges = c.stream_edges;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  opt.edges_per_tick = 4;
  const auto edges = GenerateUniformStream(opt, &interner);

  Rng rng(c.seed * 2654435761u + 99);
  const QueryGraph q =
      GenerateRandomConnectedQuery(rng, c.query_vertices, c.query_edges, 2,
                                   2, &interner)
          .value();

  const auto leaves = SingleEdgeLeaves(q);
  auto decomp = c.balanced ? Decomposition::MakeBalanced(q, leaves)
                           : Decomposition::MakeLeftDeep(q, leaves);
  if (!decomp.ok()) decomp = Decomposition::MakeLeftDeep(q, leaves);
  SjTree tree(&q, std::move(decomp).value(), c.window);

  // Run the SJ-Tree and the naive incremental matcher on one pass.
  DynamicGraph g(&interner);
  std::multiset<uint64_t> sjtree_sigs;
  std::multiset<uint64_t> naive_sigs;
  int step = 0;
  for (const StreamEdge& e : edges) {
    const EdgeId id = g.AddEdge(e).value();
    std::vector<Match> completed;
    tree.ProcessEdge(g, id, &completed);
    for (const Match& m : completed) {
      sjtree_sigs.insert(m.MappingSignature());
    }
    for (const Match& m : FindLeafMatches(g, q, q.AllEdges(), id,
                                          c.window)) {
      naive_sigs.insert(m.MappingSignature());
    }
    if (++step % 64 == 0) tree.ExpireOldMatches(g.watermark());
  }

  // Batch oracle over the full (unevicted) graph.
  IsoOptions iso;
  iso.window = c.window;
  std::multiset<uint64_t> batch_sigs;
  for (const Match& m : FindAllMatches(g, q, iso)) {
    batch_sigs.insert(m.MappingSignature());
  }

  // Multiset equality: same matches, each exactly once.
  EXPECT_EQ(sjtree_sigs, naive_sigs) << q.ToString(interner);
  EXPECT_EQ(sjtree_sigs, batch_sigs) << q.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SjTreeEquivalenceTest,
    testing::Values(
        SjTreeEquivalenceCase{101, 20, 200, 2, 1, 10, false},
        SjTreeEquivalenceCase{102, 20, 200, 3, 2, 10, false},
        SjTreeEquivalenceCase{103, 15, 250, 3, 3, 15, false},
        SjTreeEquivalenceCase{104, 15, 250, 4, 3, 20, true},
        SjTreeEquivalenceCase{105, 12, 300, 4, 4, 12, true},
        SjTreeEquivalenceCase{106, 10, 200, 4, 5, 25, false},
        SjTreeEquivalenceCase{107, 25, 350, 3, 2, 5, true},
        SjTreeEquivalenceCase{108, 25, 300, 3, 2, kMaxTimestamp, false},
        SjTreeEquivalenceCase{109, 8, 150, 5, 5, 30, true},
        SjTreeEquivalenceCase{110, 10, 250, 5, 4, 40, true},
        SjTreeEquivalenceCase{111, 30, 400, 2, 1, 3, false},
        SjTreeEquivalenceCase{112, 12, 300, 4, 4, 8, false}));

}  // namespace
}  // namespace streamworks
