// Checked-precondition (death) tests and randomized structural-invariant
// stress tests: the SW_CHECK contracts on public APIs must fire, and the
// dynamic graph's internal structures must stay mutually consistent under
// long random workloads with eviction.

#include <gtest/gtest.h>

#include <unordered_map>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/sjtree/decomposition.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

// --- Death tests: SW_CHECK contracts ----------------------------------------------

using InvariantDeathTest = testing::Test;

TEST(InvariantDeathTest, InternerNameOnUnknownIdAborts) {
  Interner interner;
  interner.Intern("only");
  EXPECT_DEATH(interner.Name(5), "unknown label id");
}

TEST(InvariantDeathTest, EvictedEdgeRecordAborts) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(2);
  SW_CHECK_OK(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).status());
  SW_CHECK_OK(g.AddEdge(MakeEdge(&interner, 2, 3, "x", 10)).status());
  EXPECT_DEATH(g.edge_record(0), "not stored");
}

TEST(InvariantDeathTest, EngineSjtreeOnUnknownIdAborts) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  EXPECT_DEATH(engine.sjtree(3), "unknown query id");
}

TEST(InvariantDeathTest, NegativeRetentionAborts) {
  Interner interner;
  DynamicGraph g(&interner);
  EXPECT_DEATH(g.set_retention(0), "retention must be positive");
}

TEST(InvariantDeathTest, ReplanWithoutStatisticsAborts) {
  Interner interner;
  EngineOptions options;
  options.replan_interval = 10;  // without collect_statistics
  EXPECT_DEATH(StreamWorksEngine engine(&interner, options),
               "statistics collection");
}

TEST(InvariantDeathTest, DecompositionSiblingOfRootAborts) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  const QueryGraph q = builder.Build().value();
  const Decomposition d = Decomposition::MakeSingleLeaf(q).value();
  EXPECT_DEATH(d.Sibling(d.root()), "root has no sibling");
}

// --- Randomized structural consistency ------------------------------------------------

TEST(GraphConsistencyStressTest, AdjacencyAndEdgeStoreStayConsistent) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Interner interner;
    DynamicGraph g(&interner);
    g.set_retention(64);
    Rng rng(seed);
    Timestamp ts = 0;
    for (int step = 0; step < 4000; ++step) {
      ts += rng.NextBounded(3);
      SW_CHECK_OK(g.AddEdge(MakeEdge(&interner, rng.NextBounded(40),
                                     rng.NextBounded(40), "x", ts))
                      .status());
      if (step % 512 != 0) continue;

      // Invariant sweep: every stored edge appears exactly once in its
      // source's out-list and its target's in-list; every adjacency entry
      // points at a stored edge with consistent fields; lists are
      // ts-sorted.
      std::unordered_map<EdgeId, int> out_seen;
      std::unordered_map<EdgeId, int> in_seen;
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        Timestamp prev = kMinTimestamp;
        for (const AdjEntry& entry : g.OutEdges(v)) {
          ASSERT_TRUE(g.IsStored(entry.edge));
          const EdgeRecord& rec = g.edge_record(entry.edge);
          ASSERT_EQ(rec.src, v);
          ASSERT_EQ(rec.dst, entry.other);
          ASSERT_EQ(rec.ts, entry.ts);
          ASSERT_EQ(rec.label, entry.label);
          ASSERT_GE(entry.ts, prev);
          prev = entry.ts;
          ++out_seen[entry.edge];
        }
        prev = kMinTimestamp;
        for (const AdjEntry& entry : g.InEdges(v)) {
          ASSERT_TRUE(g.IsStored(entry.edge));
          ASSERT_GE(entry.ts, prev);
          prev = entry.ts;
          ++in_seen[entry.edge];
        }
      }
      for (EdgeId id = g.first_stored_edge_id(); id < g.next_edge_id();
           ++id) {
        ASSERT_EQ(out_seen[id], 1) << "edge " << id;
        ASSERT_EQ(in_seen[id], 1) << "edge " << id;
        ASSERT_GE(g.edge_record(id).ts, g.MinLiveTs());
      }
    }
  }
}

TEST(GraphConsistencyStressTest, ExternalIdMappingIsStableUnderEviction) {
  Interner interner;
  DynamicGraph g(&interner);
  g.set_retention(16);
  Rng rng(9);
  Timestamp ts = 0;
  std::unordered_map<ExternalVertexId, VertexId> first_mapping;
  for (int step = 0; step < 2000; ++step) {
    ts += rng.NextBounded(2);
    const ExternalVertexId a = rng.NextBounded(25);
    const ExternalVertexId b = rng.NextBounded(25);
    SW_CHECK_OK(g.AddEdge(MakeEdge(&interner, a, b, "x", ts)).status());
    for (const ExternalVertexId ext : {a, b}) {
      const VertexId v = g.FindVertex(ext);
      ASSERT_NE(v, kInvalidVertexId);
      auto [it, inserted] = first_mapping.try_emplace(ext, v);
      ASSERT_EQ(it->second, v) << "dense id changed for " << ext;
      ASSERT_EQ(g.external_id(v), ext);
    }
  }
}

}  // namespace
}  // namespace streamworks
