// Tests for streamworks/persist: the write-ahead EdgeLog (framing, CRC,
// rotation, torn-tail tolerance, pruning), snapshot encode/decode with
// corruption fallback, and full crash-recovery equivalence — a killed
// service restarted from its data dir must produce exactly the match
// multiset of an uninterrupted run, for the single-engine and the
// vertex-partitioned backends alike.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "streamworks/common/binio.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/core/parallel.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/persist/crc32.h"
#include "streamworks/persist/durable_backend.h"
#include "streamworks/persist/edge_log.h"
#include "streamworks/persist/manager.h"
#include "streamworks/persist/snapshot.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the test tmpdir.
std::string TempDir(std::string_view name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("streamworks_persist_" + std::string(name) + "_" +
       std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

EdgeBatch SomeBatch(Interner* interner, int n, Timestamp base_ts) {
  EdgeBatch batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(MakeEdge(interner, 10 + static_cast<uint64_t>(i),
                             20 + static_cast<uint64_t>(i), "ping",
                             base_ts + i));
  }
  return batch;
}

/// Flips one byte in a file (corruption injection).
void CorruptFileByte(const std::string& path, size_t offset) {
  std::fstream f(path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte;
  f.read(&byte, 1);
  byte ^= 0x5A;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

std::string ReadWhole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32Test, KnownAnswerAndChaining) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chained == one-shot.
  const uint32_t head = Crc32("12345");
  EXPECT_EQ(Crc32(std::string_view("6789"), head), 0xCBF43926u);
}

// --- EdgeLog ---------------------------------------------------------------

TEST(EdgeLogTest, AppendReplayRoundTrip) {
  const std::string dir = TempDir("wal_roundtrip");
  Interner interner;
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    EXPECT_EQ(log->next_seq(), 0u);
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 3, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
    ASSERT_TRUE(log->Append({}).ok());  // no-op
    EXPECT_EQ(log->next_seq(), 5u);
    EXPECT_EQ(log->stats().records_appended, 2u);
    EXPECT_EQ(log->stats().edges_appended, 5u);
  }
  Interner replay_side;
  std::vector<std::pair<uint64_t, size_t>> seen;
  EdgeBatch all;
  auto stats = EdgeLog::Replay(
                   dir, 0, &replay_side,
                   [&](const EdgeBatch& batch, uint64_t first_seq) {
                     seen.emplace_back(first_seq, batch.size());
                     all.insert(all.end(), batch.begin(), batch.end());
                   })
                   .value();
  EXPECT_EQ(stats.edges_replayed, 5u);
  EXPECT_EQ(stats.next_seq, 5u);
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, size_t>{0, 3}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, size_t>{3, 2}));
  // Labels crossed as strings and re-interned.
  EXPECT_EQ(replay_side.Name(all[0].edge_label), "ping");
  EXPECT_EQ(all[3].ts, 10);
}

TEST(EdgeLogTest, ReplayFromMidRecordTrimsTheStraddler) {
  const std::string dir = TempDir("wal_trim");
  Interner interner;
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 4, 0)).ok());  // [0,4)
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());  // [4,6)
  }
  EdgeBatch all;
  auto stats =
      EdgeLog::Replay(dir, /*from_seq=*/2, &interner,
                      [&](const EdgeBatch& batch, uint64_t first_seq) {
                        EXPECT_GE(first_seq, 2u);
                        all.insert(all.end(), batch.begin(), batch.end());
                      })
          .value();
  EXPECT_EQ(stats.edges_replayed, 4u);  // edges 2,3 of record 1 + record 2
  EXPECT_EQ(all.front().ts, 2);         // the straddling record trimmed
}

TEST(EdgeLogTest, RotationSplitsSegmentsAndPrunes) {
  const std::string dir = TempDir("wal_rotate");
  Interner interner;
  EdgeLogOptions options;
  options.segment_bytes = 128;  // force rotation nearly every record
  uint64_t appended = 0;
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(log->Append(SomeBatch(&interner, 3, i * 10)).ok());
      appended += 3;
    }
    EXPECT_GT(log->num_segments(), 2u);
  }
  Interner replay_side;
  uint64_t replayed = 0;
  auto stats = EdgeLog::Replay(dir, 0, &replay_side,
                               [&](const EdgeBatch& batch, uint64_t) {
                                 replayed += batch.size();
                               })
                   .value();
  EXPECT_EQ(replayed, appended);
  EXPECT_EQ(stats.next_seq, appended);

  // Prune below a mid-log snapshot point: the covered prefix disappears,
  // everything at or past the point still replays.
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    EXPECT_EQ(log->next_seq(), appended);
    const int deleted = log->PruneSegmentsBelow(12).value();
    EXPECT_GT(deleted, 0);
  }
  uint64_t tail = 0;
  uint64_t min_seq = UINT64_MAX;
  EdgeLog::Replay(dir, 12, &replay_side,
                  [&](const EdgeBatch& batch, uint64_t first_seq) {
                    tail += batch.size();
                    min_seq = std::min(min_seq, first_seq);
                  })
      .value();
  EXPECT_EQ(tail, appended - 12);
  EXPECT_GE(min_seq, 12u);
}

TEST(EdgeLogTest, TornTailIsToleratedAndTruncatedOnReopen) {
  const std::string dir = TempDir("wal_torn");
  Interner interner;
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 3, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 3, 10)).ok());
  }
  // Tear the last record: chop bytes off the file end (a crash mid-write).
  const auto segment =
      (fs::path(dir) / "wal-0000000000000000.log").string();
  const size_t full = fs::file_size(segment);
  fs::resize_file(segment, full - 7);

  uint64_t replayed = 0;
  auto stats = EdgeLog::Replay(dir, 0, &interner,
                               [&](const EdgeBatch& batch, uint64_t) {
                                 replayed += batch.size();
                               })
                   .value();
  EXPECT_EQ(replayed, 3u);  // first record survives, torn one dropped
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.next_seq, 3u);

  // Reopen truncates the tear and appends cleanly over it.
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    EXPECT_EQ(log->next_seq(), 3u);
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 20)).ok());
  }
  replayed = 0;
  stats = EdgeLog::Replay(dir, 0, &interner,
                          [&](const EdgeBatch& batch, uint64_t) {
                            replayed += batch.size();
                          })
              .value();
  EXPECT_EQ(replayed, 5u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(EdgeLogTest, CrcCorruptionStopsReplayAtTheTear) {
  const std::string dir = TempDir("wal_crc");
  Interner interner;
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 20)).ok());
  }
  const auto segment =
      (fs::path(dir) / "wal-0000000000000000.log").string();
  // Clobber a byte inside the *second* record's payload: replay keeps
  // record one, drops the corrupt record and — sequence continuity gone —
  // everything after it.
  const size_t record_bytes = (fs::file_size(segment) - 20) / 3;
  CorruptFileByte(segment, 20 + record_bytes + record_bytes / 2);

  uint64_t replayed = 0;
  auto stats = EdgeLog::Replay(dir, 0, &interner,
                               [&](const EdgeBatch& batch, uint64_t) {
                                 replayed += batch.size();
                               })
                   .value();
  EXPECT_EQ(replayed, 2u);
  EXPECT_TRUE(stats.tail_truncated);
}

TEST(EdgeLogTest, CorruptionInASealedSegmentIsDataLoss) {
  const std::string dir = TempDir("wal_sealed");
  Interner interner;
  EdgeLogOptions options;
  options.segment_bytes = 64;  // every record rotates
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
    ASSERT_GE(log->num_segments(), 2u);
  }
  const auto first =
      (fs::path(dir) / "wal-0000000000000000.log").string();
  CorruptFileByte(first, fs::file_size(first) - 3);

  auto replay = EdgeLog::Replay(dir, 0, &interner,
                                [](const EdgeBatch&, uint64_t) {});
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
}

TEST(EdgeLogTest, TornHeaderOfTheLastSegmentNeverWedgesReopen) {
  const std::string dir = TempDir("wal_torn_header");
  Interner interner;
  EdgeLogOptions options;
  options.segment_bytes = 64;  // every record rotates
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
  }
  // Simulate a crash inside OpenNewSegment: the freshly rotated last
  // segment exists but its 20-byte header is short/garbled.
  auto segments = std::vector<fs::path>();
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") segments.push_back(entry.path());
  }
  std::sort(segments.begin(), segments.end());
  ASSERT_GE(segments.size(), 2u);
  fs::resize_file(segments.back(), 7);

  // Replay tolerates it...
  uint64_t replayed = 0;
  auto stats = EdgeLog::Replay(dir, 0, &interner,
                               [&](const EdgeBatch& batch, uint64_t) {
                                 replayed += batch.size();
                               },
                               options)
                   .value();
  EXPECT_EQ(replayed, 2u);
  EXPECT_TRUE(stats.tail_truncated);
  // ...and Open must too — the daemon restarting after that crash drops
  // the headerless debris and appends on: recovery is never wedged by
  // the crash it exists to absorb.
  auto log = EdgeLog::Open(dir, &interner, options).value();
  EXPECT_EQ(log->next_seq(), 2u);
  ASSERT_TRUE(log->Append(SomeBatch(&interner, 3, 20)).ok());
  replayed = 0;
  EdgeLog::Replay(dir, 0, &interner,
                  [&](const EdgeBatch& batch, uint64_t) {
                    replayed += batch.size();
                  },
                  options)
      .value();
  EXPECT_EQ(replayed, 5u);
}

TEST(EdgeLogTest, MissingMiddleSegmentIsDataLossNotSilence) {
  const std::string dir = TempDir("wal_gap");
  Interner interner;
  EdgeLogOptions options;
  options.segment_bytes = 64;  // every record rotates
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 20)).ok());
  }
  // Lose the middle sealed segment (operator mishap, partial restore).
  fs::remove(fs::path(dir) / "wal-0000000000000002.log");
  auto replay = EdgeLog::Replay(dir, 0, &interner,
                                [](const EdgeBatch&, uint64_t) {},
                                options);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(replay.status().message().find("WAL gap"), std::string::npos);
}

TEST(EdgeLogTest, SecondWriterOnTheSameDirIsRefused) {
  const std::string dir = TempDir("wal_lock");
  Interner interner;
  auto first = EdgeLog::Open(dir, &interner).value();
  ASSERT_TRUE(first->Append(SomeBatch(&interner, 1, 0)).ok());
  // A second writer (an operator double-starting the daemon) would
  // interleave appends and destroy record framing for both.
  auto second = EdgeLog::Open(dir, &interner);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // The lock dies with the holder; a restart takes over cleanly.
  first.reset();
  EXPECT_TRUE(EdgeLog::Open(dir, &interner).ok());
}

TEST(EdgeLogTest, OversizedBatchesAreChunkedToStayReplayable) {
  const std::string dir = TempDir("wal_chunk");
  Interner interner;
  EdgeLogOptions options;
  options.max_frame_body_bytes = 256;  // a handful of edges per record
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    // One giant append: must be split into several records, never
    // written as a record replay would reject (valid CRC + oversized
    // frame = unrecoverable DataLoss, not a tolerable torn tail).
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 40, 0)).ok());
    EXPECT_EQ(log->next_seq(), 40u);
    EXPECT_GT(log->stats().records_appended, 1u);
  }
  uint64_t replayed = 0;
  auto stats = EdgeLog::Replay(dir, 0, &interner,
                               [&](const EdgeBatch& batch, uint64_t) {
                                 replayed += batch.size();
                               },
                               options)
                   .value();
  EXPECT_EQ(replayed, 40u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(EdgeLogTest, OpenFastForwardsPastAPrunedOrLostWal) {
  const std::string dir = TempDir("wal_ff");
  Interner interner;
  // A snapshot at seq 40 outlived its WAL (operator deleted it): the log
  // must resume at 40, not restart at 0 — snapshot filenames sort by
  // sequence, so a cursor reset would shadow every future snapshot.
  {
    auto log = EdgeLog::Open(dir, &interner, {}, /*min_seq=*/40).value();
    EXPECT_EQ(log->next_seq(), 40u);
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    EXPECT_EQ(log->next_seq(), 42u);
  }
  uint64_t first = 0;
  EdgeLog::Replay(dir, 40, &interner,
                  [&](const EdgeBatch&, uint64_t seq) { first = seq; })
      .value();
  EXPECT_EQ(first, 40u);
}

// --- Snapshot format -------------------------------------------------------

QueryGraph PathQuery(Interner* interner, std::string_view name = "path_q") {
  QueryGraphBuilder b(interner);
  const auto u = b.AddVertex("V");
  const auto h = b.AddVertex("V");
  const auto x = b.AddVertex("V");
  b.AddEdge(u, h, "login");
  b.AddEdge(h, x, "connect");
  return b.Build(name).value();
}

SnapshotContents SampleContents(Interner* interner) {
  SnapshotContents contents;
  contents.wal_seq = 77;
  contents.window.next_edge_id = 12;
  contents.window.watermark = 99;
  for (int i = 0; i < 5; ++i) {
    PersistedEdge pe;
    pe.edge = MakeEdge(interner, 1 + static_cast<uint64_t>(i), 2, "ping",
                       90 + i);
    pe.id = 6 + static_cast<EdgeId>(i);
    contents.window.edges.push_back(pe);
  }
  PersistedSession session;
  session.name = "tenant_a";
  PersistedSubscription sub;
  sub.tag = "hunt";
  sub.query = PathQuery(interner);
  sub.window = 50;
  sub.strategy = DecompositionStrategy::kLeftDeepEdgeOrder;
  sub.queue_capacity = 32;
  sub.policy = OverflowPolicy::kDropNewest;
  sub.paused = true;
  session.subscriptions.push_back(sub);
  contents.service.sessions.push_back(session);
  return contents;
}

TEST(SnapshotTest, EncodeDecodeRoundTripsAcrossInterners) {
  Interner encode_side;
  const SnapshotContents contents = SampleContents(&encode_side);
  const std::string blob =
      EncodeSnapshot(contents, encode_side).value();

  Interner decode_side;
  decode_side.Intern("skew");  // id spaces must not need to line up
  const SnapshotContents decoded =
      DecodeSnapshot(blob, &decode_side).value();
  EXPECT_EQ(decoded.wal_seq, 77u);
  EXPECT_EQ(decoded.window.next_edge_id, 12u);
  EXPECT_EQ(decoded.window.watermark, 99);
  ASSERT_EQ(decoded.window.edges.size(), 5u);
  EXPECT_EQ(decoded.window.edges[0].id, 6u);
  EXPECT_EQ(decode_side.Name(decoded.window.edges[0].edge.edge_label),
            "ping");
  ASSERT_EQ(decoded.service.sessions.size(), 1u);
  const PersistedSession& session = decoded.service.sessions[0];
  EXPECT_EQ(session.name, "tenant_a");
  ASSERT_EQ(session.subscriptions.size(), 1u);
  const PersistedSubscription& sub = session.subscriptions[0];
  EXPECT_EQ(sub.tag, "hunt");
  EXPECT_EQ(sub.query.name(), "path_q");
  EXPECT_EQ(sub.query.num_vertices(), 3);
  EXPECT_EQ(sub.query.num_edges(), 2);
  EXPECT_EQ(decode_side.Name(sub.query.edge(0).label), "login");
  EXPECT_EQ(sub.window, 50);
  EXPECT_EQ(sub.strategy, DecompositionStrategy::kLeftDeepEdgeOrder);
  EXPECT_EQ(sub.queue_capacity, 32u);
  EXPECT_EQ(sub.policy, OverflowPolicy::kDropNewest);
  EXPECT_TRUE(sub.paused);
}

TEST(SnapshotTest, EveryFlippedByteIsRejected) {
  Interner interner;
  const std::string blob =
      EncodeSnapshot(SampleContents(&interner), interner).value();
  // Any single-byte corruption must fail the CRC (or the magic check).
  for (size_t i = 0; i < blob.size(); i += 7) {
    std::string bad = blob;
    bad[i] ^= 0x40;
    Interner scratch;
    EXPECT_FALSE(DecodeSnapshot(bad, &scratch).ok()) << "offset " << i;
  }
  // Truncations at every length are rejected too, never crash.
  for (size_t len = 0; len < blob.size(); len += 11) {
    Interner scratch;
    EXPECT_FALSE(DecodeSnapshot(blob.substr(0, len), &scratch).ok())
        << "prefix " << len;
  }
}

TEST(SnapshotTest, LyingStringLengthWithForgedCrcIsRejected) {
  Interner interner;
  std::string blob =
      EncodeSnapshot(SampleContents(&interner), interner).value();
  // First string-table entry's u16 length sits right after the fixed
  // header + table count. Lie about it, then *re-forge the CRC* so only
  // the structural bounds checks stand between the lie and a crash.
  const size_t len_at = 4 + 4 + 8 + 8 + 8 + 4;
  blob[len_at] = '\xFF';
  blob[len_at + 1] = '\xFF';
  const uint32_t crc =
      Crc32(std::string_view(blob).substr(0, blob.size() - 4));
  for (int i = 0; i < 4; ++i) {
    blob[blob.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  Interner scratch;
  auto decoded = DecodeSnapshot(blob, &scratch);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(SnapshotTest, HostileStringLengthsFailTheSnapshotNotTheProcess) {
  // Session names / tags are tenant-chosen; one past the u16 format
  // limit must fail encoding with a Status (a snapshot_failure), never
  // abort the daemon.
  Interner interner;
  SnapshotContents contents = SampleContents(&interner);
  contents.service.sessions[0].name = std::string(70000, 'x');
  auto encoded = EncodeSnapshot(contents, interner);
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, LoaderFallsBackToPreviousValidSnapshot) {
  const std::string dir = TempDir("snap_fallback");
  Interner interner;
  SnapshotContents old_contents = SampleContents(&interner);
  old_contents.wal_seq = 10;
  SnapshotContents new_contents = SampleContents(&interner);
  new_contents.wal_seq = 20;
  WriteSnapshotFile(dir, old_contents, interner).value();
  const std::string newest =
      WriteSnapshotFile(dir, new_contents, interner).value();

  // Corrupt the newest: the loader must fall back, not fail (and not
  // leak half-decoded labels into the interner).
  CorruptFileByte(newest, ReadWhole(newest).size() / 2);
  Interner load_side;
  auto loaded = LoadLatestSnapshot(dir, &load_side).value();
  EXPECT_EQ(loaded.contents.wal_seq, 10u);
  EXPECT_EQ(loaded.invalid_skipped, 1);

  // Both corrupt -> NotFound (fresh start), never a crash.
  const std::string oldest = loaded.path;
  CorruptFileByte(oldest, 40);
  Interner empty_side;
  auto none = LoadLatestSnapshot(dir, &empty_side);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, MissingDirectoryIsNotFound) {
  Interner interner;
  auto loaded =
      LoadLatestSnapshot(TempDir("snap_missing") + "/nope", &interner);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- Crash-recovery equivalence -------------------------------------------

/// One full durable deployment, assembled the way service_demo does it:
/// service -> DurableBackend -> (single engine | partitioned group).
struct DurableStack {
  Interner interner;
  std::unique_ptr<StreamWorksEngine> engine;
  std::unique_ptr<ParallelEngineGroup> group;
  std::unique_ptr<QueryBackend> inner;
  std::unique_ptr<DurableBackend> durable;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<DurabilityManager> manager;
  RecoveryReport recovered;

  static DurableStack Make(const std::string& dir, int partitioned_shards,
                           uint64_t snapshot_every) {
    DurableStack s;
    if (partitioned_shards > 0) {
      s.group = std::make_unique<ParallelEngineGroup>(
          &s.interner, partitioned_shards, EngineOptions{},
          ShardingMode::kPartitionedData);
      s.inner = std::make_unique<ParallelGroupBackend>(s.group.get());
    } else {
      s.engine = std::make_unique<StreamWorksEngine>(&s.interner);
      s.inner = std::make_unique<SingleEngineBackend>(s.engine.get());
    }
    s.durable = std::make_unique<DurableBackend>(s.inner.get());
    s.service = std::make_unique<QueryService>(s.durable.get());
    DurabilityOptions options;
    options.data_dir = dir;
    options.snapshot_every_edges = snapshot_every;
    s.manager = std::make_unique<DurabilityManager>(
        options, s.service.get(), s.durable.get(), &s.interner);
    s.recovered = s.manager->Start().value();
    return s;
  }
};

uint64_t Signature(const CompleteMatch& cm) {
  return cm.match.ExternalMappingSignature(*cm.graph);
}

/// Two standing queries over the random-stream label universe
/// ("VLi"/"ELi"): a single-edge trigger and a two-hop join. Fills
/// `subs_out` with tag -> subscription id (the ids a live frontend would
/// track itself; only a *recovered* incarnation resolves them via
/// AttachSession).
void SubmitStandingQueries(QueryService* service, Interner* interner,
                           int session_id,
                           std::map<std::string, int>* subs_out) {
  QueryGraphBuilder single(interner);
  {
    const auto a = single.AddVertex("VL0");
    const auto b = single.AddVertex("VL1");
    single.AddEdge(a, b, "EL0");
  }
  SubmitOptions opt1;
  opt1.window = 12;
  opt1.queue_capacity = 1u << 16;
  opt1.tag = "trigger";
  auto trigger =
      service->Submit(session_id, single.Build("trigger_q").value(), opt1);
  ASSERT_TRUE(trigger.ok());
  (*subs_out)["trigger"] = trigger.value();

  QueryGraphBuilder hop(interner);
  {
    const auto a = hop.AddVertex("VL0");
    const auto b = hop.AddVertex("VL1");
    const auto c = hop.AddVertex("VL0");
    hop.AddEdge(a, b, "EL1");
    hop.AddEdge(b, c, "EL2");
  }
  SubmitOptions opt2;
  opt2.window = 9;
  opt2.queue_capacity = 1u << 16;
  opt2.tag = "hop";
  auto hop_sub =
      service->Submit(session_id, hop.Build("hop_q").value(), opt2);
  ASSERT_TRUE(hop_sub.ok());
  (*subs_out)["hop"] = hop_sub.value();
}

std::vector<StreamEdge> EquivalenceStream(Interner* interner) {
  RandomStreamOptions opt;
  opt.seed = 4242;
  opt.num_vertices = 24;
  opt.num_edges = 600;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 3;
  return GenerateUniformStream(opt, interner);
}

/// Drains a subscription into a signature multiset (after Flush, so the
/// graph pointers are safe to dereference).
void DrainInto(QueryService* service, int session_id, int sub_id,
               std::multiset<uint64_t>* out) {
  ResultQueue* queue = service->queue(session_id, sub_id);
  ASSERT_NE(queue, nullptr);
  std::vector<CompleteMatch> matches;
  queue->Drain(&matches);
  for (const CompleteMatch& cm : matches) out->insert(Signature(cm));
}

/// The equivalence scenario: feed all edges uninterrupted vs. crash after
/// `cut` edges (snapshot cadence well before the cut, so a real WAL tail
/// replays) and resume. The union of matches observed before the crash
/// and after recovery must equal the uninterrupted run's multiset.
void RunCrashEquivalence(int partitioned_shards) {
  const std::string suffix = std::to_string(partitioned_shards);
  const std::string dir = TempDir("equiv_crash_" + suffix);

  // Reference: one uninterrupted durable run (durability on, so the two
  // runs take identical code paths; it just never crashes).
  std::map<std::string, std::multiset<uint64_t>> expected;
  {
    DurableStack ref = DurableStack::Make(TempDir("equiv_ref_" + suffix),
                                          partitioned_shards, 0);
    const auto edges = EquivalenceStream(&ref.interner);
    const int session = ref.service->OpenSession("tenant").value();
    std::map<std::string, int> subs;
    SubmitStandingQueries(ref.service.get(), &ref.interner, session,
                          &subs);
    for (const StreamEdge& e : edges) ref.service->Feed(e).ok();
    ref.service->Flush();
    for (const auto& [tag, sub_id] : subs) {
      DrainInto(ref.service.get(), session, sub_id, &expected[tag]);
    }
    ASSERT_FALSE(expected["trigger"].empty());
    ASSERT_FALSE(expected["hop"].empty());
  }

  // Crash run, phase 1: feed 60%, drain what was delivered, then die
  // without any shutdown snapshot (the stack just goes out of scope —
  // state survives only as WAL + the automatic mid-stream snapshots).
  std::map<std::string, std::multiset<uint64_t>> observed;
  size_t cut = 0;
  uint64_t wal_at_crash = 0;
  {
    DurableStack a = DurableStack::Make(dir, partitioned_shards,
                                        /*snapshot_every=*/150);
    const auto edges = EquivalenceStream(&a.interner);
    cut = edges.size() * 6 / 10;
    const int session = a.service->OpenSession("tenant").value();
    std::map<std::string, int> subs;
    SubmitStandingQueries(a.service.get(), &a.interner, session, &subs);
    for (size_t i = 0; i < cut; ++i) a.service->Feed(edges[i]).ok();
    a.service->Flush();
    for (const auto& [tag, sub_id] : subs) {
      DrainInto(a.service.get(), session, sub_id, &observed[tag]);
    }
    wal_at_crash = a.manager->counters().wal_seq;
  }
  ASSERT_EQ(wal_at_crash, cut);

  // Phase 2: recover from the data dir and resume the stream.
  {
    DurableStack b =
        DurableStack::Make(dir, partitioned_shards, /*snapshot_every=*/0);
    EXPECT_TRUE(b.recovered.snapshot_loaded);
    EXPECT_EQ(b.recovered.sessions, 1u);
    EXPECT_EQ(b.recovered.subscriptions, 2u);
    // The cut deliberately missed the snapshot cadence: a genuine WAL
    // tail had to replay.
    EXPECT_GT(b.recovered.replayed_edges, 0u);
    EXPECT_EQ(b.recovered.wal_seq, cut);

    const auto edges = EquivalenceStream(&b.interner);
    const AttachedSession attached =
        b.service->AttachSession("tenant").value();
    ASSERT_EQ(attached.subscriptions.size(), 2u);
    for (size_t i = cut; i < edges.size(); ++i) {
      b.service->Feed(edges[i]).ok();
    }
    b.service->Flush();
    for (const AttachedSubscription& sub : attached.subscriptions) {
      DrainInto(b.service.get(), attached.session_id, sub.subscription_id,
                &observed[sub.tag]);
    }
  }

  // Byte-identical multisets: nothing lost, nothing duplicated.
  EXPECT_EQ(observed["trigger"], expected["trigger"]);
  EXPECT_EQ(observed["hop"], expected["hop"]);
}

TEST(CrashRecoveryTest, SingleEngineMatchMultisetIsByteIdentical) {
  RunCrashEquivalence(/*partitioned_shards=*/0);
}

TEST(CrashRecoveryTest, Partition4MatchMultisetIsByteIdentical) {
  RunCrashEquivalence(/*partitioned_shards=*/4);
}

TEST(CrashRecoveryTest, PausedSubscriptionRecoversPaused) {
  const std::string dir = TempDir("recover_paused");
  {
    DurableStack a = DurableStack::Make(dir, 0, 0);
    const int session = a.service->OpenSession("t").value();
    QueryGraphBuilder b(&a.interner);
    const auto u = b.AddVertex("V");
    const auto v = b.AddVertex("V");
    b.AddEdge(u, v, "ping");
    SubmitOptions opt;
    opt.tag = "muted";
    opt.window = 100;
    const int sub =
        a.service->Submit(session, b.Build("q").value(), opt).value();
    ASSERT_TRUE(a.service->Pause(session, sub).ok());
    ASSERT_TRUE(a.manager->SnapshotNow().ok());
  }
  {
    DurableStack b = DurableStack::Make(dir, 0, 0);
    const AttachedSession attached =
        b.service->AttachSession("t").value();
    ASSERT_EQ(attached.subscriptions.size(), 1u);
    EXPECT_EQ(attached.subscriptions[0].state, SubscriptionState::kPaused);
    // Still suppressing: a completing match is counted, not queued.
    b.service->Feed(MakeEdge(&b.interner, 1, 2, "ping", 5)).ok();
    b.service->Flush();
    const ServiceStatsSnapshot stats = b.service->Snapshot();
    EXPECT_EQ(stats.matches_enqueued, 0u);
    EXPECT_EQ(stats.matches_suppressed, 1u);
  }
}

TEST(CrashRecoveryTest, RestoredBlockSubscriptionComesBackPaused) {
  // A kBlock queue is only sound with a live consumer (the socket
  // frontend auto-streams such submissions for exactly that reason). A
  // restored one has no consumer until its owner re-attaches, so it
  // must come back paused — an active restored kBlock queue would let
  // any tenant's feed fill it and block delivery on the control thread
  // before the owner can even ATTACH.
  const std::string dir = TempDir("recover_block");
  {
    DurableStack a = DurableStack::Make(dir, 0, 0);
    const int session = a.service->OpenSession("t").value();
    QueryGraphBuilder b(&a.interner);
    const auto u = b.AddVertex("V");
    const auto v = b.AddVertex("V");
    b.AddEdge(u, v, "ping");
    SubmitOptions opt;
    opt.tag = "strict";
    opt.window = 100;
    opt.policy = OverflowPolicy::kBlock;
    opt.queue_capacity = 2;
    ASSERT_TRUE(a.service->Submit(session, b.Build("q").value(), opt).ok());
    ASSERT_TRUE(a.manager->SnapshotNow().ok());
  }
  DurableStack b = DurableStack::Make(dir, 0, 0);
  // Feeding more matches than the tiny capacity must not wedge: the
  // restored subscription suppresses instead of blocking.
  for (int i = 0; i < 5; ++i) {
    b.service->Feed(MakeEdge(&b.interner, 1, 2, "ping", i)).ok();
  }
  b.service->Flush();
  const AttachedSession attached = b.service->AttachSession("t").value();
  ASSERT_EQ(attached.subscriptions.size(), 1u);
  EXPECT_EQ(attached.subscriptions[0].state, SubscriptionState::kPaused);
  // The owner resumes once its delivery path is in place.
  ASSERT_TRUE(
      b.service
          ->Resume(attached.session_id,
                   attached.subscriptions[0].subscription_id)
          .ok());
}

TEST(CrashRecoveryTest, SnapshotCadenceWritesAndPrunes) {
  const std::string dir = TempDir("cadence");
  DurableStack stack = DurableStack::Make(dir, 0, /*snapshot_every=*/10);
  for (int i = 0; i < 25; ++i) {
    stack.service->Feed(MakeEdge(&stack.interner, 1, 2, "ping", i)).ok();
  }
  const PersistCounters counters = stack.manager->counters();
  EXPECT_TRUE(counters.enabled);
  EXPECT_EQ(counters.snapshots_written, 2u);
  EXPECT_EQ(counters.last_snapshot_wal_seq, 20u);
  EXPECT_EQ(counters.wal_seq, 25u);
  // The probe surfaces through the service snapshot (STATS).
  const ServiceStatsSnapshot stats = stack.service->Snapshot();
  EXPECT_TRUE(stats.persist.enabled);
  EXPECT_EQ(stats.persist.snapshots_written, 2u);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("persist: wal_seq=25"), std::string::npos);

  int snap_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") ++snap_files;
  }
  EXPECT_EQ(snap_files, 2);
}

TEST(CrashRecoveryTest, SnapshotRetentionBoundsTheDataDir) {
  const std::string dir = TempDir("retention");
  DurableStack stack = DurableStack::Make(dir, 0, /*snapshot_every=*/2);
  for (int i = 0; i < 20; ++i) {
    stack.service->Feed(MakeEdge(&stack.interner, 1, 2, "ping", i)).ok();
  }
  EXPECT_EQ(stack.manager->counters().snapshots_written, 10u);
  // Only the fallback budget (default 4) stays on disk, newest last.
  std::vector<std::string> snaps;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") {
      snaps.push_back(entry.path().filename().string());
    }
  }
  std::sort(snaps.begin(), snaps.end());
  ASSERT_EQ(snaps.size(), 4u);
  EXPECT_EQ(snaps.back(), "snap-0000000000000014.snap");  // seq 20
  // And the loader still recovers from the newest survivor.
  EXPECT_EQ(PruneSnapshots(dir, 0).ok(), false);  // 0 keepers refused
  Interner load_side;
  EXPECT_EQ(LoadLatestSnapshot(dir, &load_side).value().contents.wal_seq,
            20u);
}

TEST(CrashRecoveryTest, RecoveryToleratesACorruptNewestSnapshot) {
  const std::string dir = TempDir("recover_fallback");
  size_t fed = 0;
  {
    DurableStack a = DurableStack::Make(dir, 0, 0);
    const int session = a.service->OpenSession("t").value();
    QueryGraphBuilder b(&a.interner);
    const auto u = b.AddVertex("V");
    const auto v = b.AddVertex("V");
    b.AddEdge(u, v, "ping");
    SubmitOptions opt;
    opt.tag = "live";
    opt.window = 1000;
    opt.queue_capacity = 1u << 12;
    ASSERT_TRUE(a.service->Submit(session, b.Build("q").value(), opt).ok());
    for (; fed < 10; ++fed) {
      a.service->Feed(MakeEdge(&a.interner, fed, fed + 1, "ping",
                               static_cast<Timestamp>(fed)))
          .ok();
    }
    ASSERT_TRUE(a.manager->SnapshotNow().ok());   // snap @ 10
    for (; fed < 15; ++fed) {
      a.service->Feed(MakeEdge(&a.interner, fed, fed + 1, "ping",
                               static_cast<Timestamp>(fed)))
          .ok();
    }
    ASSERT_TRUE(a.manager->SnapshotNow().ok());   // snap @ 15
    for (; fed < 18; ++fed) {
      a.service->Feed(MakeEdge(&a.interner, fed, fed + 1, "ping",
                               static_cast<Timestamp>(fed)))
          .ok();
    }
  }
  // Corrupt the newest snapshot; recovery must fall back to @10 and
  // replay the longer WAL tail (edges 10..18) — but the first snapshot
  // pruned nothing before @15 existed, so the tail is fully present.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string() ==
        "snap-000000000000000f.snap") {
      CorruptFileByte(entry.path().string(), 30);
    }
  }
  DurableStack b = DurableStack::Make(dir, 0, 0);
  EXPECT_TRUE(b.recovered.snapshot_loaded);
  EXPECT_EQ(b.recovered.snapshot_wal_seq, 10u);
  EXPECT_EQ(b.recovered.replayed_edges, 8u);
  EXPECT_EQ(b.recovered.wal_seq, 18u);
  // All 18 edges are back in the window (unbounded retention survives).
  const AttachedSession attached = b.service->AttachSession("t").value();
  ASSERT_EQ(attached.subscriptions.size(), 1u);
}

TEST(CrashRecoveryTest, RecoverySweepsOrphanedSnapshotTempFiles) {
  const std::string dir = TempDir("tmp_sweep");
  {
    DurableStack a = DurableStack::Make(dir, 0, 0);
    a.service->Feed(MakeEdge(&a.interner, 1, 2, "ping", 1)).ok();
    ASSERT_TRUE(a.manager->SnapshotNow().ok());
  }
  // A crashed (or ENOSPC'd) writer leaves a half-written temp behind;
  // recovery must sweep it, and it must never count as a snapshot.
  std::ofstream(fs::path(dir) / "snap-00000000000000ff.snap.tmp")
      << "garbage";
  DurableStack b = DurableStack::Make(dir, 0, 0);
  EXPECT_TRUE(b.recovered.snapshot_loaded);
  EXPECT_EQ(b.recovered.snapshot_wal_seq, 1u);
  EXPECT_FALSE(
      fs::exists(fs::path(dir) / "snap-00000000000000ff.snap.tmp"));
}

TEST(CrashRecoveryTest, SnapshotNowAfterFailedStartReturnsStatus) {
  const std::string dir = TempDir("failed_start");
  Interner interner;
  // A corrupt *sealed* WAL segment makes recovery fail loudly...
  EdgeLogOptions options;
  options.segment_bytes = 64;  // every record rotates
  {
    auto log = EdgeLog::Open(dir, &interner, options).value();
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 0)).ok());
    ASSERT_TRUE(log->Append(SomeBatch(&interner, 2, 10)).ok());
  }
  const auto first = (fs::path(dir) / "wal-0000000000000000.log").string();
  CorruptFileByte(first, fs::file_size(first) - 3);

  StreamWorksEngine engine(&interner);
  SingleEngineBackend inner(&engine);
  DurableBackend durable(&inner);
  QueryService service(&durable);
  DurabilityOptions dopts;
  dopts.data_dir = dir;
  DurabilityManager manager(dopts, &service, &durable, &interner);
  ASSERT_FALSE(manager.Start().ok());
  // ...and a later SnapshotNow (a stale hook, an embedder ignoring the
  // failure) gets a status, not a crash.
  auto snap = manager.SnapshotNow();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CrashRecoveryTest, FreshDirectoryIsAFreshStart) {
  DurableStack stack = DurableStack::Make(TempDir("fresh"), 0, 0);
  EXPECT_FALSE(stack.recovered.snapshot_loaded);
  EXPECT_EQ(stack.recovered.wal_seq, 0u);
  EXPECT_EQ(stack.recovered.replayed_edges, 0u);
  // And it serves normally.
  EXPECT_TRUE(stack.service->OpenSession("t").ok());
}

TEST(CrashRecoveryTest, ReplayedTailIsNotRelogged) {
  const std::string dir = TempDir("no_double_log");
  {
    DurableStack a = DurableStack::Make(dir, 0, 0);
    for (int i = 0; i < 7; ++i) {
      a.service->Feed(MakeEdge(&a.interner, 1, 2, "ping", i)).ok();
    }
  }
  {
    DurableStack b = DurableStack::Make(dir, 0, 0);
    EXPECT_EQ(b.recovered.replayed_edges, 7u);
    EXPECT_EQ(b.recovered.wal_seq, 7u);  // replay appended nothing
    b.service->Feed(MakeEdge(&b.interner, 1, 2, "ping", 10)).ok();
    EXPECT_EQ(b.manager->counters().wal_seq, 8u);
  }
  // Third incarnation sees exactly 8 edges.
  DurableStack c = DurableStack::Make(dir, 0, 0);
  EXPECT_EQ(c.recovered.replayed_edges, 8u);
}

}  // namespace
}  // namespace streamworks
