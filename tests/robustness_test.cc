// Robustness and failure-injection tests: malformed input streams, fuzzed
// DSL text, eviction-policy equivalence, window boundary cases, and
// long-stream memory soak. These exercise the failure paths a production
// deployment hits, not the happy paths the other suites cover.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/graph_io.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build("robust_path").value();
}

// --- Failure injection: malformed records --------------------------------------

TEST(FailureInjectionTest, BadRecordsDoNotPerturbResults) {
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 77;
  opt.num_vertices = 14;
  opt.num_edges = 300;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto clean = GenerateUniformStream(opt, &interner);

  // Corrupt copy: sprinkle timestamp regressions and vertex-label clashes
  // between the clean records.
  std::vector<StreamEdge> dirty;
  Rng rng(5);
  const LabelId clash_label = interner.Intern("ClashLabel");
  for (const StreamEdge& e : clean) {
    dirty.push_back(e);
    if (rng.NextBool(0.10)) {
      StreamEdge bad = e;
      bad.ts = e.ts - 1 - static_cast<Timestamp>(rng.NextBounded(100));
      dirty.push_back(bad);  // time regression
    }
    if (rng.NextBool(0.10)) {
      StreamEdge bad = e;
      bad.src_label = clash_label;  // contradicts the recorded label
      dirty.push_back(bad);
    }
  }

  Rng qrng(99);
  const QueryGraph q =
      GenerateRandomConnectedQuery(qrng, 3, 3, 2, 2, &interner).value();

  auto run = [&](const std::vector<StreamEdge>& stream, uint64_t* rejected) {
    StreamWorksEngine engine(&interner);
    std::multiset<uint64_t> sigs;
    SW_CHECK_OK(engine
                    .RegisterQuery(
                        q, DecompositionStrategy::kLeftDeepEdgeOrder, 20,
                        [&](const CompleteMatch& cm) {
                          sigs.insert(cm.match.MappingSignature());
                        })
                    .status());
    for (const StreamEdge& e : stream) {
      engine.ProcessEdge(e).ok();  // bad records rejected, not fatal
    }
    *rejected = engine.metrics().edges_rejected;
    return sigs;
  };

  uint64_t clean_rejected = 0;
  uint64_t dirty_rejected = 0;
  const auto clean_sigs = run(clean, &clean_rejected);
  const auto dirty_sigs = run(dirty, &dirty_rejected);
  EXPECT_EQ(clean_rejected, 0u);
  EXPECT_GT(dirty_rejected, 0u);
  EXPECT_EQ(clean_sigs, dirty_sigs);
}

TEST(FailureInjectionTest, CorruptStreamFileReportsLineNumbers) {
  Interner interner;
  const std::string text =
      "1,10,Host,20,Host,flow\n"
      "2,11,Host\n";  // truncated record
  auto result = ParseEdgeStream(text, &interner);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

// --- DSL fuzzing -------------------------------------------------------------------

TEST(DslFuzzTest, RandomGarbageNeverCrashes) {
  Interner interner;
  Rng rng(123);
  const std::string tokens[] = {"node",  "edge",  "query", "window",
                                "a",     "b",     "Host",  "42",
                                "-7",    "#x",    "",      "\t",
                                "edge edge", "node node node node"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.NextBounded(8));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.NextBounded(5));
      for (int w = 0; w < words; ++w) {
        text += tokens[rng.NextBounded(std::size(tokens))];
        text += ' ';
      }
      text += '\n';
    }
    // Must either parse or fail cleanly; never abort.
    auto result = ParseQueryText(text, &interner);
    if (result.ok()) {
      EXPECT_GT(result->graph.num_edges(), 0);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(DslFuzzTest, ValidQueriesSurviveWhitespaceNoise) {
  Interner interner;
  auto result = ParseQueryText(
      "   query   padded\n\n\n  node   a   Host \n node b Host\n"
      "\t edge a b flow \n   window   7  \n# trailing comment",
      &interner);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.name(), "padded");
  EXPECT_EQ(result->window, 7);
}

// --- Stream IO fuzz round-trip -------------------------------------------------------

TEST(StreamIoFuzzTest, SerializeParseRoundTripOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Interner interner;
    RandomStreamOptions opt;
    opt.seed = seed;
    opt.num_vertices = 20;
    opt.num_edges = 100;
    opt.num_vertex_labels = 3;
    opt.num_edge_labels = 3;
    const auto edges = GenerateUniformStream(opt, &interner);
    auto parsed =
        ParseEdgeStream(SerializeEdgeStream(edges, interner), &interner);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, edges);
  }
}

// --- Eviction-policy equivalence -----------------------------------------------------

TEST(EvictionEquivalenceTest, TightRetentionMatchesUnboundedRetention) {
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 31;
  opt.num_vertices = 16;
  opt.num_edges = 500;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto edges = GenerateUniformStream(opt, &interner);
  Rng qrng(17);
  const QueryGraph q =
      GenerateRandomConnectedQuery(qrng, 3, 3, 2, 2, &interner).value();
  const Timestamp window = 12;

  // Engine A: retention pinned to the query window (aggressive eviction).
  StreamWorksEngine tight(&interner);
  std::multiset<uint64_t> tight_sigs;
  SW_CHECK_OK(tight
                  .RegisterQuery(
                      q, DecompositionStrategy::kLeftDeepEdgeOrder, window,
                      [&](const CompleteMatch& cm) {
                        tight_sigs.insert(cm.match.MappingSignature());
                      })
                  .status());

  // Engine B: an extra unbounded-window query (on a label that never
  // occurs) forces the shared graph to retain everything.
  StreamWorksEngine unbounded(&interner);
  QueryGraphBuilder nb(&interner);
  const auto n0 = nb.AddVertex("NeverSeen");
  const auto n1 = nb.AddVertex("NeverSeen");
  nb.AddEdge(n0, n1, "neverLabel");
  SW_CHECK_OK(unbounded
                  .RegisterQuery(nb.Build().value(),
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 kMaxTimestamp, nullptr)
                  .status());
  std::multiset<uint64_t> unbounded_sigs;
  SW_CHECK_OK(unbounded
                  .RegisterQuery(
                      q, DecompositionStrategy::kLeftDeepEdgeOrder, window,
                      [&](const CompleteMatch& cm) {
                        unbounded_sigs.insert(cm.match.MappingSignature());
                      })
                  .status());

  for (const StreamEdge& e : edges) {
    ASSERT_TRUE(tight.ProcessEdge(e).ok());
    ASSERT_TRUE(unbounded.ProcessEdge(e).ok());
  }
  EXPECT_EQ(tight_sigs, unbounded_sigs);
  EXPECT_LT(tight.graph().num_stored_edges(),
            unbounded.graph().num_stored_edges());
  EXPECT_EQ(unbounded.graph().num_stored_edges(), edges.size());
}

// --- Window boundary cases --------------------------------------------------------------

TEST(WindowBoundaryTest, WindowOneMatchesOnlyWithinOneTick) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  int hits = 0;
  SW_CHECK_OK(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 /*window=*/1,
                                 [&](const CompleteMatch&) { ++hits; })
                  .status());
  // Same tick: span 0 < 1 -> match.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 5)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 5)).ok());
  EXPECT_EQ(hits, 1);
  // Adjacent ticks: span 1, not < 1 -> no match.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 4, 5, "x", 6)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 5, 6, "y", 7)).ok());
  EXPECT_EQ(hits, 1);
}

TEST(WindowBoundaryTest, AllEdgesAtOneTimestamp) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = BuildPortScanQuery(&interner, 3);
  int hits = 0;
  SW_CHECK_OK(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kPrimitivePairs,
                                 /*window=*/1,
                                 [&](const CompleteMatch&) { ++hits; })
                  .status());
  for (int t = 0; t < 3; ++t) {
    ASSERT_TRUE(engine
                    .ProcessEdge(MakeEdge(&interner, 1, 10 + t, "synProbe",
                                          0, "Host", "Host"))
                    .ok());
  }
  EXPECT_EQ(hits, 6);  // 3! automorphisms, all at span 0
}

// --- Backfill property: mid-stream registration ---------------------------------------------

/// A query registered after a prefix of the stream must emit exactly the
/// matches whose completing (maximal) data edge arrives post-registration
/// — no more (past completions are suppressed by the backfill) and no less
/// (pre-registration edges still join via the backfilled partials).
struct MidStreamCase {
  uint64_t seed;
  double register_at_fraction;
  Timestamp window;
};

class MidStreamRegistrationTest
    : public testing::TestWithParam<MidStreamCase> {};

TEST_P(MidStreamRegistrationTest, EmitsExactlyPostRegistrationCompletions) {
  const auto& c = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = c.seed;
  opt.num_vertices = 14;
  opt.num_edges = 320;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto edges = GenerateUniformStream(opt, &interner);
  Rng qrng(c.seed + 5000);
  const QueryGraph q =
      GenerateRandomConnectedQuery(qrng, 3, 3, 2, 2, &interner).value();

  // Reference: register from the start; record each match with its
  // completing edge id.
  StreamWorksEngine full(&interner);
  std::multiset<uint64_t> expected;
  const size_t cutoff =
      static_cast<size_t>(edges.size() * c.register_at_fraction);
  SW_CHECK_OK(full
                  .RegisterQuery(
                      q, DecompositionStrategy::kLeftDeepEdgeOrder,
                      c.window,
                      [&](const CompleteMatch& cm) {
                        if (cm.match.MaxDataEdgeId() >= cutoff) {
                          expected.insert(cm.match.MappingSignature());
                        }
                      })
                  .status());

  // Under test: same stream, query registered at the cutoff point.
  StreamWorksEngine mid(&interner);
  std::multiset<uint64_t> actual;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i == cutoff) {
      SW_CHECK_OK(mid.RegisterQuery(
                         q, DecompositionStrategy::kLeftDeepEdgeOrder,
                         c.window,
                         [&](const CompleteMatch& cm) {
                           actual.insert(cm.match.MappingSignature());
                         })
                      .status());
    }
    ASSERT_TRUE(mid.ProcessEdge(edges[i]).ok());
    ASSERT_TRUE(full.ProcessEdge(edges[i]).ok());
  }
  EXPECT_EQ(actual, expected) << q.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MidStreamRegistrationTest,
    testing::Values(MidStreamCase{61, 0.25, 15},
                    MidStreamCase{62, 0.5, 10},
                    MidStreamCase{63, 0.75, 25},
                    MidStreamCase{64, 0.5, kMaxTimestamp},
                    MidStreamCase{65, 0.1, 8},
                    MidStreamCase{66, 0.9, 40}));

// --- Long-stream soak: memory stays bounded -----------------------------------------------

TEST(SoakTest, PartialMatchesAndWindowStayBounded) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 11;
  opt.num_hosts = 64;
  opt.background_edges = 60000;
  opt.edges_per_tick = 20;
  opt.attack_label_noise = true;
  NetflowGenerator gen(opt, &interner);
  const auto edges = gen.Generate();

  EngineOptions eopt;
  eopt.expiry_sweep_interval = 256;
  StreamWorksEngine engine(&interner, eopt);
  const QueryGraph q = BuildSmurfQuery(&interner, 2);
  const Timestamp window = 25;
  const int id =
      engine
          .RegisterQuery(q, DecompositionStrategy::kPrimitivePairs, window,
                         nullptr)
          .value();

  size_t max_live = 0;
  size_t max_stored = 0;
  for (const StreamEdge& e : edges) {
    ASSERT_TRUE(engine.ProcessEdge(e).ok());
    max_live = std::max(max_live,
                        engine.query_info(id).live_partial_matches);
    max_stored = std::max(max_stored, engine.graph().num_stored_edges());
  }
  // The stored window can never exceed window-ticks x edges-per-tick.
  EXPECT_LE(max_stored,
            static_cast<size_t>(window) * opt.edges_per_tick);
  // Live partials are bounded by what one window of icmp noise can hold;
  // the bound here is loose but catches leaks (unbounded growth would be
  // in the tens of thousands).
  EXPECT_LT(max_live, 5000u);
  EXPECT_GT(engine.graph().num_evicted_edges(), 0u);
}

}  // namespace
}  // namespace streamworks
