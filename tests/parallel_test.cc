// Tests for ParallelEngineGroup: sharded multi-query execution must
// produce exactly the results of a single engine, queue backpressure and
// flush must behave, and rejected edges must be surfaced.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/core/parallel.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

TEST(ParallelEngineGroupTest, MatchesSingleEngineAcrossShardCounts) {
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 2024;
  opt.num_vertices = 20;
  opt.num_edges = 800;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 3;
  const auto edges = GenerateUniformStream(opt, &interner);

  // A small library of random queries.
  Rng rng(88);
  std::vector<QueryGraph> queries;
  for (int i = 0; i < 6; ++i) {
    const int nv = 3 + i % 2;
    const int ne = nv - 1 + i % 3;
    queries.push_back(
        GenerateRandomConnectedQuery(rng, nv, ne, 2, 3, &interner).value());
  }
  const Timestamp window = 18;

  // Reference: one engine with every query.
  std::vector<std::multiset<uint64_t>> expected(queries.size());
  {
    StreamWorksEngine engine(&interner);
    for (size_t i = 0; i < queries.size(); ++i) {
      SW_CHECK_OK(engine
                      .RegisterQuery(
                          queries[i],
                          DecompositionStrategy::kLeftDeepEdgeOrder, window,
                          [&expected, i](const CompleteMatch& cm) {
                            expected[i].insert(
                                cm.match.MappingSignature());
                          })
                      .status());
    }
    for (const StreamEdge& e : edges) {
      ASSERT_TRUE(engine.ProcessEdge(e).ok());
    }
  }

  for (const int shards : {1, 2, 3, 5}) {
    // Each query lives on exactly one shard, so its result vector is only
    // touched by that shard's worker thread.
    std::vector<std::multiset<uint64_t>> actual(queries.size());
    ParallelEngineGroup group(&interner, shards);
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_TRUE(group
                      .RegisterQuery(
                          queries[i],
                          DecompositionStrategy::kLeftDeepEdgeOrder, window,
                          [&actual, i](const CompleteMatch& cm) {
                            actual[i].insert(cm.match.MappingSignature());
                          })
                      .ok());
    }
    for (const StreamEdge& e : edges) group.ProcessEdge(e);
    group.Flush();
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << "shards=" << shards << " query " << i;
    }
    uint64_t expected_total = 0;
    for (const auto& sigs : expected) expected_total += sigs.size();
    EXPECT_EQ(group.total_completions(), expected_total);
  }
}

TEST(ParallelEngineGroupTest, FlushIsIdempotentAndGroupReusable) {
  Interner interner;
  ParallelEngineGroup group(&interner, 2);
  int hits = 0;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  ASSERT_TRUE(group
                  .RegisterQuery(builder.Build().value(),
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());
  group.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0));
  group.Flush();
  EXPECT_EQ(hits, 1);
  group.Flush();  // idempotent
  group.ProcessEdge(MakeEdge(&interner, 3, 4, "x", 1));
  group.Flush();
  EXPECT_EQ(hits, 2);
}

TEST(ParallelEngineGroupTest, RejectedEdgesAreCountedPerShard) {
  Interner interner;
  ParallelEngineGroup group(&interner, 3);
  group.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 10));
  group.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 5));  // regression
  group.Flush();
  EXPECT_EQ(group.total_rejected(), 3u);  // every shard saw the bad edge
}

TEST(ParallelEngineGroupTest, BackpressureSurvivesFastProducer) {
  Interner interner;
  ParallelEngineGroup group(&interner, 2);
  const QueryGraph q = BuildPortScanQuery(&interner, 2);
  uint64_t hits = 0;
  ASSERT_TRUE(group
                  .RegisterQuery(q, DecompositionStrategy::kPrimitivePairs,
                                 20,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());
  NetflowGenerator::Options opt;
  opt.seed = 9;
  opt.background_edges = 30000;  // far beyond the queue bound
  opt.attack_label_noise = true;
  NetflowGenerator gen(opt, &interner);
  for (const StreamEdge& e : gen.Generate()) group.ProcessEdge(e);
  group.Flush();
  EXPECT_EQ(group.total_rejected(), 0u);
  EXPECT_EQ(group.total_completions(), hits);
}

}  // namespace
}  // namespace streamworks
