// Tests for streamworks/cluster: the multi-process sharding protocol run
// in-process — real worker daemons on real localhost TCP sockets, driven
// by a real DistributedBackend — asserted byte-identical (external-id
// match rendering) against a single StreamWorksEngine fed the same
// stream. The crash tests stop a worker daemon without any graceful
// drain, restart a fresh one on the same frame log, and require the
// recovered cluster to deliver exactly the reference multiset: nothing
// lost, nothing repeated.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "streamworks/cluster/coordinator.h"
#include "streamworks/cluster/worker.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/stream/netflow_gen.h"

namespace streamworks {
namespace {

namespace fs = std::filesystem;

/// One worker daemon on its own thread, with an abrupt-stop story: Kill()
/// stops the serve loop and joins, but (like a kill -9) performs no
/// protocol goodbye — the coordinator discovers the death as a link
/// failure. A fresh WorkerHarness on the same data_dir is the restart.
class WorkerHarness {
 public:
  explicit WorkerHarness(std::string data_dir) {
    WorkerOptions options;
    options.data_dir = std::move(data_dir);
    options.poll_interval_ms = 20;
    daemon_ = std::make_unique<WorkerDaemon>(std::move(options));
  }

  ~WorkerHarness() { Kill(); }

  Status Start() {
    Status status = daemon_->Start();
    if (!status.ok()) return status;
    thread_ = std::thread([this] { serve_status_ = daemon_->Serve(stop_); });
    return OkStatus();
  }

  void Kill() {
    if (!thread_.joinable()) return;
    stop_.store(true);
    thread_.join();
  }

  int port() const { return daemon_->port(); }
  const Status& serve_status() const { return serve_status_; }
  const WorkerCounters& counters() const { return daemon_->counters(); }
  MetricRegistry* registry() { return daemon_->registry(); }

 private:
  std::unique_ptr<WorkerDaemon> daemon_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  Status serve_status_;
};

/// Thread-safe sink for delivered matches in deployment-invariant text
/// form. Callbacks run under the coordinator's cluster mutex (or on the
/// single engine's feeding thread), where dereferencing cm.graph is safe.
class MatchSink {
 public:
  MatchCallback Callback() {
    return [this](const CompleteMatch& cm) {
      std::lock_guard<std::mutex> lock(mu_);
      rendered_.push_back(cm.match.ToExternalString(*cm.graph));
    };
  }

  std::vector<std::string> Sorted() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out = rendered_;
    std::sort(out.begin(), out.end());
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rendered_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> rendered_;
};

/// Two-hop exploit chain — the worm motif the generator injects, and a
/// multi-edge pattern whose partial matches genuinely cross shards (the
/// chain's middle host rarely owns both edges).
QueryGraph BuildWormChain(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto a = b.AddVertex("Host");
  const auto h = b.AddVertex("Host");
  const auto x = b.AddVertex("Host");
  b.AddEdge(a, h, "exploit");
  b.AddEdge(h, x, "exploit");
  auto built = b.Build("worm_chain");
  EXPECT_TRUE(built.ok());
  return *built;
}

QueryGraph BuildProbe(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto s = b.AddVertex("Host");
  const auto t = b.AddVertex("Host");
  b.AddEdge(s, t, "synProbe");
  auto built = b.Build("probe");
  EXPECT_TRUE(built.ok());
  return *built;
}

/// A deterministic netflow stream with planted attacks: the generator
/// uses fixed seeds, so cluster and reference see identical bytes.
EdgeBatch TestStream(Interner* interner, int background) {
  NetflowGenerator::Options opt;
  opt.seed = 1234;
  opt.background_edges = background;
  NetflowGenerator gen(opt, interner);
  gen.InjectWorm(40, 2);
  gen.InjectWorm(background / 2, 2);
  return gen.Generate();
}

/// Reference run: one engine, same queries, same stream.
std::vector<std::string> SingleEngineReference(
    Interner* interner, const std::vector<std::pair<QueryGraph, Timestamp>>&
                            queries,
    const EdgeBatch& edges) {
  StreamWorksEngine engine(interner, EngineOptions{});
  MatchSink sink;
  for (const auto& [query, window] : queries) {
    auto id = engine.RegisterQuery(
        query, DecompositionStrategy::kLeftDeepEdgeOrder, window,
        sink.Callback());
    EXPECT_TRUE(id.ok());
  }
  for (const StreamEdge& edge : edges) {
    engine.ProcessEdge(edge).ok();  // rejects match cluster admission
  }
  return sink.Sorted();
}

struct ClusterFixture {
  /// Check `ok` (ASSERT_TRUE) before using; gtest fatal asserts cannot
  /// run inside a constructor.
  explicit ClusterFixture(int num_workers, const std::string& dir_prefix = "") {
    for (int i = 0; i < num_workers; ++i) {
      std::string dir;
      if (!dir_prefix.empty()) {
        dir = dir_prefix + "/worker" + std::to_string(i);
        fs::create_directories(dir);
      }
      workers.push_back(std::make_unique<WorkerHarness>(dir));
      if (!workers.back()->Start().ok()) return;
    }
    DistributedBackendOptions options;
    for (const auto& w : workers) {
      options.workers.push_back("127.0.0.1:" + std::to_string(w->port()));
    }
    options.epoch_edges = 64;  // small epochs: many barriers, more traffic
    options.reconnect_deadline_ms = 10000;
    // Federate worker metrics into a fixture-owned registry; cache 0 so
    // every scrape pulls fresh reports, which is what exactness tests need.
    options.registry = &registry;
    options.pipeline = &pipeline;
    options.metrics_cache_ms = 0;
    backend = std::make_unique<DistributedBackend>(options, &interner);
    ok = backend->Start().ok();
  }

  bool ok = false;
  Interner interner;
  MetricRegistry registry;
  PipelineMetrics pipeline;
  std::vector<std::unique_ptr<WorkerHarness>> workers;
  std::unique_ptr<DistributedBackend> backend;
};

TEST(ClusterTest, MatchesByteIdenticalToSingleEngine) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph worm_chain = BuildWormChain(&cluster.interner);
  const QueryGraph probe = BuildProbe(&cluster.interner);
  auto id0 = cluster.backend->Register(
      worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder, 50, sink.Callback());
  ASSERT_TRUE(id0.ok());
  EXPECT_EQ(*id0, 0);
  auto id1 = cluster.backend->Register(
      probe, DecompositionStrategy::kLeftDeepEdgeOrder, 100, sink.Callback());
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 1);

  const EdgeBatch edges = TestStream(&cluster.interner, 400);
  ASSERT_TRUE(cluster.backend->FeedBatch(edges, nullptr).ok());
  cluster.backend->Flush();

  const std::vector<std::string> expected = SingleEngineReference(
      &cluster.interner, {{worm_chain, 50}, {probe, 100}}, edges);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(sink.Sorted(), expected);
  cluster.backend->Stop();
}

TEST(ClusterTest, ThreeWorkersAgreeWithSingleEngine) {
  ClusterFixture cluster(3);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph worm_chain = BuildWormChain(&cluster.interner);
  ASSERT_TRUE(cluster.backend
                  ->Register(worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder,
                             60, sink.Callback())
                  .ok());
  const EdgeBatch edges = TestStream(&cluster.interner, 300);
  ASSERT_TRUE(cluster.backend->FeedBatch(edges, nullptr).ok());
  cluster.backend->Flush();
  EXPECT_EQ(sink.Sorted(),
            SingleEngineReference(&cluster.interner, {{worm_chain, 60}}, edges));
  cluster.backend->Stop();
}

TEST(ClusterTest, MidStreamRegistrationBackfillsAcrossShards) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph worm_chain = BuildWormChain(&cluster.interner);
  const EdgeBatch edges = TestStream(&cluster.interner, 200);
  const size_t half = edges.size() / 2;
  const EdgeBatch first(edges.begin(), edges.begin() + half);
  const EdgeBatch second(edges.begin() + half, edges.end());

  ASSERT_TRUE(cluster.backend->FeedBatch(first, nullptr).ok());
  // Register mid-stream: the distributed backfill seeds the new trees
  // from every shard's stored window before live flow resumes.
  ASSERT_TRUE(cluster.backend
                  ->Register(worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder,
                             80, sink.Callback())
                  .ok());
  ASSERT_TRUE(cluster.backend->FeedBatch(second, nullptr).ok());
  cluster.backend->Flush();

  // Reference: one engine, same mid-stream registration point.
  StreamWorksEngine engine(&cluster.interner, EngineOptions{});
  MatchSink ref;
  for (const StreamEdge& e : first) engine.ProcessEdge(e).ok();
  ASSERT_TRUE(engine
                  .RegisterQuery(worm_chain,
                                 DecompositionStrategy::kLeftDeepEdgeOrder, 80,
                                 ref.Callback())
                  .ok());
  for (const StreamEdge& e : second) engine.ProcessEdge(e).ok();

  EXPECT_EQ(sink.Sorted(), ref.Sorted());
  EXPECT_FALSE(sink.Sorted().empty());
  cluster.backend->Stop();
}

TEST(ClusterTest, InfoAggregatesAcrossWorkers) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph probe = BuildProbe(&cluster.interner);
  auto id = cluster.backend->Register(
      probe, DecompositionStrategy::kLeftDeepEdgeOrder, 100, sink.Callback());
  ASSERT_TRUE(id.ok());
  const EdgeBatch edges = TestStream(&cluster.interner, 200);
  ASSERT_TRUE(cluster.backend->FeedBatch(edges, nullptr).ok());
  cluster.backend->Flush();

  auto info = cluster.backend->Info(*id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "probe");
  EXPECT_EQ(info->window, 100);
  EXPECT_EQ(info->completions, sink.size());
  EXPECT_FALSE(info->nodes.empty());

  const auto loads = cluster.backend->ShardLoads();
  ASSERT_EQ(loads.size(), 2u);
  uint64_t processed = 0;
  for (const auto& load : loads) {
    EXPECT_EQ(load.sharding, "distributed");
    processed += load.edges_processed;
  }
  // Every admitted edge lands on one or two owner shards.
  EXPECT_GE(processed, edges.size() - cluster.backend->rejected_edges());
  cluster.backend->Stop();
}

/// Value of one exposition line, e.g. `name{labels} 42`.
uint64_t SeriesValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  const size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << series << " missing in:\n" << text;
  if (pos == std::string::npos) return 0;
  return std::stoull(text.substr(pos + needle.size()));
}

TEST(ClusterTest, FederatedMetricsMatchWorkerLocalScrapes) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph worm_chain = BuildWormChain(&cluster.interner);
  ASSERT_TRUE(cluster.backend
                  ->Register(worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder,
                             60, sink.Callback())
                  .ok());
  const EdgeBatch edges = TestStream(&cluster.interner, 300);
  ASSERT_TRUE(cluster.backend->FeedBatch(edges, nullptr).ok());
  cluster.backend->Flush();

  // The coordinator scrape must answer exactly the sum of the workers'
  // own registries — federation adds no edges and loses none.
  const std::string series = "streamworks_edges_fed_total{role=\"worker\"}";
  const uint64_t federated =
      SeriesValue(cluster.registry.RenderPrometheus(), series);
  uint64_t local_sum = 0;
  for (auto& w : cluster.workers) {
    local_sum += SeriesValue(w->registry()->RenderPrometheus(), series);
  }
  EXPECT_EQ(federated, local_sum);
  // Every admitted edge is applied by at least its owner shard.
  EXPECT_GE(federated, edges.size() - cluster.backend->rejected_edges());

  // The coordinator contributes its own families alongside the workers'.
  const std::string merged = cluster.registry.RenderPrometheus();
  EXPECT_NE(merged.find("streamworks_epochs_total "), std::string::npos);
  EXPECT_NE(merged.find("streamworks_epoch_phase_us_bucket{phase=\"barrier\""),
            std::string::npos);

  cluster.backend->Stop();
}

TEST(ClusterTest, EpochTimelineAndHealthTrackTheCluster) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph probe = BuildProbe(&cluster.interner);
  ASSERT_TRUE(cluster.backend
                  ->Register(probe, DecompositionStrategy::kLeftDeepEdgeOrder,
                             100, sink.Callback())
                  .ok());
  const EdgeBatch edges = TestStream(&cluster.interner, 300);
  ASSERT_TRUE(cluster.backend->FeedBatch(edges, nullptr).ok());
  cluster.backend->Flush();

  // Epoch timeline: every fed edge shows up in exactly one traced epoch
  // (admission rejects happen inside the epoch, after the take), and
  // phase durations are populated.
  ASSERT_GT(cluster.backend->epochs_completed(), 0u);
  const std::vector<EpochTraceEntry> epochs = cluster.backend->EpochTrace();
  ASSERT_FALSE(epochs.empty());
  uint64_t traced_edges = 0;
  for (const EpochTraceEntry& e : epochs) {
    EXPECT_GT(e.epoch, 0u);
    EXPECT_GT(e.edges, 0u);
    EXPECT_GT(e.total_us, 0u);
    EXPECT_GE(e.total_us, e.apply_us);
    traced_edges += e.edges;
  }
  EXPECT_EQ(traced_edges, edges.size());
  const std::string epochs_json = RenderEpochsJson(
      epochs, cluster.backend->epochs_completed(), PipelineMetrics::NowMicros());
  EXPECT_NE(epochs_json.find("\"barrier_us\""), std::string::npos);

  // Healthy cluster: both workers connected with fresh reports.
  ClusterObsSnapshot healthy = cluster.backend->ObsSnapshot(/*refresh=*/true);
  EXPECT_TRUE(healthy.healthy);
  ASSERT_EQ(healthy.workers.size(), 2u);
  for (const WorkerObsSnapshot& w : healthy.workers) {
    EXPECT_TRUE(w.connected);
    EXPECT_TRUE(w.has_report);
    EXPECT_GT(w.wal_seq, 0u);
  }
  EXPECT_NE(RenderClusterJson(healthy).find("\"wal_seq\""), std::string::npos);
  EXPECT_NE(RenderClusterHealthJson(healthy).find("\"ok\""), std::string::npos);

  // Kill one worker: the next refreshing scrape discovers the dead link
  // (the pull fails fast) and degrades without waiting out staleness.
  cluster.workers[0]->Kill();
  ClusterObsSnapshot degraded = cluster.backend->ObsSnapshot(/*refresh=*/true);
  EXPECT_FALSE(degraded.healthy);
  EXPECT_FALSE(degraded.workers[0].connected);
  EXPECT_TRUE(degraded.workers[1].connected);
  EXPECT_NE(RenderClusterHealthJson(degraded).find("\"degraded\""),
            std::string::npos);
  cluster.backend->Stop();
}

TEST(ClusterTest, UnregisterStopsDeliveriesAndFreesNothingElse) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink keep_sink;
  MatchSink drop_sink;
  const QueryGraph probe = BuildProbe(&cluster.interner);
  const QueryGraph worm_chain = BuildWormChain(&cluster.interner);
  auto keep = cluster.backend->Register(
      probe, DecompositionStrategy::kLeftDeepEdgeOrder, 100,
      keep_sink.Callback());
  auto drop = cluster.backend->Register(
      worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder, 100,
      drop_sink.Callback());
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(drop.ok());

  const EdgeBatch edges = TestStream(&cluster.interner, 200);
  const size_t half = edges.size() / 2;
  ASSERT_TRUE(cluster.backend
                  ->FeedBatch(EdgeBatch(edges.begin(), edges.begin() + half),
                              nullptr)
                  .ok());
  ASSERT_TRUE(cluster.backend->Unregister(*drop).ok());
  const size_t dropped_at = drop_sink.size();
  ASSERT_TRUE(cluster.backend
                  ->FeedBatch(EdgeBatch(edges.begin() + half, edges.end()),
                              nullptr)
                  .ok());
  cluster.backend->Flush();
  EXPECT_EQ(drop_sink.size(), dropped_at) << "delivery after Unregister";
  EXPECT_GT(keep_sink.size(), 0u);
  EXPECT_FALSE(cluster.backend->Unregister(*drop).ok()) << "double unregister";
  cluster.backend->Stop();
}

TEST(ClusterTest, RegistrationValidationFailsCleanly) {
  ClusterFixture cluster(2);
  ASSERT_TRUE(cluster.ok);
  MatchSink sink;
  const QueryGraph probe = BuildProbe(&cluster.interner);
  // Non-positive window: every worker refuses identically, no id burned.
  EXPECT_FALSE(cluster.backend
                   ->Register(probe, DecompositionStrategy::kLeftDeepEdgeOrder,
                              0, sink.Callback())
                   .ok());
  auto id = cluster.backend->Register(
      probe, DecompositionStrategy::kLeftDeepEdgeOrder, 100, sink.Callback());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0) << "failed registration must not consume an id";
  cluster.backend->Stop();
}

TEST(ClusterTest, FreshCoordinatorRefusesWorkersWithPriorState) {
  const std::string root =
      (fs::temp_directory_path() / "sw_cluster_refuse_test").string();
  fs::remove_all(root);
  {
    ClusterFixture cluster(2, root);
  ASSERT_TRUE(cluster.ok);
    MatchSink sink;
    const QueryGraph probe = BuildProbe(&cluster.interner);
    ASSERT_TRUE(cluster.backend
                    ->Register(probe,
                               DecompositionStrategy::kLeftDeepEdgeOrder, 100,
                               sink.Callback())
                    .ok());
    ASSERT_TRUE(
        cluster.backend->FeedBatch(TestStream(&cluster.interner, 100), nullptr)
            .ok());
    cluster.backend->Flush();
    cluster.backend->Stop();
  }
  // The daemons died with frame logs on disk. Restart them (same
  // topology); a *fresh* coordinator (cursors at zero) must refuse:
  // silently adopting a stateful worker would replay a window the new
  // coordinator never fed.
  WorkerHarness restarted0(root + "/worker0");
  WorkerHarness restarted1(root + "/worker1");
  ASSERT_TRUE(restarted0.Start().ok());
  ASSERT_TRUE(restarted1.Start().ok());
  Interner interner;
  DistributedBackendOptions options;
  options.workers = {"127.0.0.1:" + std::to_string(restarted0.port()),
                     "127.0.0.1:" + std::to_string(restarted1.port())};
  DistributedBackend fresh(options, &interner);
  const Status refused = fresh.Start();
  EXPECT_FALSE(refused.ok());
  EXPECT_NE(refused.ToString().find("previous cluster run"),
            std::string::npos);
  fs::remove_all(root);
}

TEST(ClusterTest, WorkerKillAndRestartContinuesExactlyOnce) {
  const std::string root =
      (fs::temp_directory_path() / "sw_cluster_restart_test").string();
  fs::remove_all(root);

  // Workers on *fixed* ports so the coordinator's reconnect finds the
  // restarted daemon at the address it already knows.
  auto start_worker = [&](int index, int port) {
    WorkerOptions options;
    options.port = port;
    options.data_dir = root + "/worker" + std::to_string(index);
    fs::create_directories(options.data_dir);
    options.poll_interval_ms = 20;
    auto daemon = std::make_unique<WorkerDaemon>(std::move(options));
    return daemon;
  };

  Interner interner;
  auto w0 = start_worker(0, 0);
  ASSERT_TRUE(w0->Start().ok());
  const int port0 = w0->port();
  auto w1 = start_worker(1, 0);
  ASSERT_TRUE(w1->Start().ok());
  const int port1 = w1->port();
  std::atomic<bool> stop0{false};
  std::atomic<bool> stop1{false};
  std::thread t0([&] { w0->Serve(stop0); });
  std::thread t1([&] { w1->Serve(stop1); });

  DistributedBackendOptions options;
  options.workers = {"127.0.0.1:" + std::to_string(port0),
                     "127.0.0.1:" + std::to_string(port1)};
  options.epoch_edges = 64;
  options.reconnect_deadline_ms = 15000;
  DistributedBackend backend(options, &interner);
  ASSERT_TRUE(backend.Start().ok());

  MatchSink sink;
  const QueryGraph worm_chain = BuildWormChain(&interner);
  const QueryGraph probe = BuildProbe(&interner);
  ASSERT_TRUE(backend
                  .Register(worm_chain, DecompositionStrategy::kLeftDeepEdgeOrder,
                            50, sink.Callback())
                  .ok());
  ASSERT_TRUE(backend
                  .Register(probe, DecompositionStrategy::kLeftDeepEdgeOrder,
                            100, sink.Callback())
                  .ok());

  const EdgeBatch edges = TestStream(&interner, 400);
  const size_t half = edges.size() / 2;
  ASSERT_TRUE(
      backend.FeedBatch(EdgeBatch(edges.begin(), edges.begin() + half), nullptr)
          .ok());
  backend.Flush();

  // Kill worker 0 abruptly and restart it on the same port + frame log.
  // The daemon thread performs no drain or goodbye; the restarted daemon
  // replays the log when the coordinator's recovery Hello arrives.
  stop0.store(true);
  t0.join();
  w0.reset();  // releases the frame-log flock and the listen socket
  w0 = start_worker(0, port0);
  ASSERT_TRUE(w0->Start().ok());
  stop0.store(false);
  std::thread t0b([&] { w0->Serve(stop0); });

  ASSERT_TRUE(
      backend.FeedBatch(EdgeBatch(edges.begin() + half, edges.end()), nullptr)
          .ok());
  backend.Flush();
  EXPECT_GT(w0->counters().replayed_frames, 0u)
      << "restart must have replayed the frame log";

  const std::vector<std::string> expected = SingleEngineReference(
      &interner, {{worm_chain, 50}, {probe, 100}}, edges);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(sink.Sorted(), expected)
      << "crash + recovery must deliver exactly the reference multiset";

  backend.Stop();
  stop0.store(true);
  stop1.store(true);
  t0b.join();
  t1.join();
  fs::remove_all(root);
}

TEST(ClusterTest, ParseHostPortAcceptsValidRejectsJunk) {
  auto ok = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->first, "127.0.0.1");
  EXPECT_EQ(ok->second, 8080);
  EXPECT_FALSE(ParseHostPort("nohost").ok());
  EXPECT_FALSE(ParseHostPort(":90").ok());
  EXPECT_FALSE(ParseHostPort("h:").ok());
  EXPECT_FALSE(ParseHostPort("h:abc").ok());
  EXPECT_FALSE(ParseHostPort("h:70000").ok());
}

}  // namespace
}  // namespace streamworks
