// Unit and property tests for streamworks/match: Match bindings and
// signatures, join compatibility, connected expansion orders, the batch
// isomorphism oracle, and the anchored local search (incremental
// exactly-once discovery).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/local_search.h"
#include "streamworks/match/match.h"
#include "streamworks/match/subgraph_iso.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

/// Two-vertex, one-edge query A -[x]-> B.
QueryGraph OneEdgeQuery(Interner* interner, std::string_view a = "V",
                        std::string_view b = "V",
                        std::string_view label = "x") {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex(a);
  const auto vb = builder.AddVertex(b);
  builder.AddEdge(va, vb, label);
  return builder.Build("one_edge").value();
}

/// Path query A -[x]-> B -[y]-> C.
QueryGraph PathQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build("path2").value();
}

/// Directed triangle with all "x" labels.
QueryGraph TriangleQuery(Interner* interner) {
  QueryGraphBuilder builder(interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "x");
  builder.AddEdge(v2, v0, "x");
  return builder.Build("triangle").value();
}

// --- Match data structure ----------------------------------------------------

TEST(MatchTest, BindAndUnbindMaintainSpan) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match m(q);
  EXPECT_TRUE(m.bound_edges().Empty());
  m.BindVertex(0, 100);
  m.BindVertex(1, 101);
  m.BindEdge(0, 7, 50);
  EXPECT_EQ(m.min_ts(), 50);
  EXPECT_EQ(m.max_ts(), 50);
  EXPECT_EQ(m.Span(), 0);
  m.BindVertex(2, 102);
  m.BindEdge(1, 9, 80);
  EXPECT_EQ(m.Span(), 30);
  EXPECT_TRUE(m.UsesDataEdge(7));
  EXPECT_TRUE(m.UsesDataVertex(101));
  EXPECT_FALSE(m.UsesDataVertex(999));

  m.UnbindEdge(1);
  EXPECT_EQ(m.Span(), 0);
  EXPECT_EQ(m.max_ts(), 50);
  EXPECT_FALSE(m.UsesDataEdge(9));
}

TEST(MatchTest, FitsWindowWithStrictBoundary) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match m(q);
  EXPECT_TRUE(m.FitsWindowWith(123, 1));  // empty match always fits
  m.BindVertex(0, 1);
  m.BindVertex(1, 2);
  m.BindEdge(0, 0, 100);
  EXPECT_TRUE(m.FitsWindowWith(104, 5));   // span 4 < 5
  EXPECT_FALSE(m.FitsWindowWith(105, 5));  // span 5 is not < 5
  EXPECT_TRUE(m.FitsWindowWith(96, 5));
  EXPECT_FALSE(m.FitsWindowWith(95, 5));
}

TEST(MatchTest, SignaturesDistinguishMappings) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b = a;
  EXPECT_EQ(a.MappingSignature(), b.MappingSignature());
  EXPECT_EQ(a.EdgeSetSignature(), b.EdgeSetSignature());
  EXPECT_TRUE(a == b);

  Match c(q);
  c.BindVertex(0, 1);
  c.BindVertex(1, 3);  // different data vertex
  c.BindEdge(0, 10, 5);
  EXPECT_NE(a.MappingSignature(), c.MappingSignature());
  EXPECT_EQ(a.EdgeSetSignature(), c.EdgeSetSignature());  // same edge set
  EXPECT_FALSE(a == c);
}

TEST(MatchTest, UnionMergesBindings) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(q);
  b.BindVertex(1, 2);
  b.BindVertex(2, 3);
  b.BindEdge(1, 11, 9);
  const Match u = Match::Union(a, b);
  EXPECT_EQ(u.vertex(0), 1u);
  EXPECT_EQ(u.vertex(2), 3u);
  EXPECT_EQ(u.edge(1), 11u);
  EXPECT_EQ(u.min_ts(), 5);
  EXPECT_EQ(u.max_ts(), 9);
  EXPECT_EQ(u.bound_edges().Count(), 2);
}

TEST(MatchTest, JoinCompatibleAcceptsConsistentPair) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(q);
  b.BindVertex(1, 2);
  b.BindVertex(2, 3);
  b.BindEdge(1, 11, 9);
  EXPECT_TRUE(JoinCompatible(a, b, 100));
  EXPECT_TRUE(JoinCompatible(b, a, 100));
}

TEST(MatchTest, JoinCompatibleRejectsCutDisagreement) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(q);
  b.BindVertex(1, 99);  // disagrees with a on shared query vertex 1
  b.BindVertex(2, 3);
  b.BindEdge(1, 11, 9);
  EXPECT_FALSE(JoinCompatible(a, b, 100));
}

TEST(MatchTest, JoinCompatibleRejectsVertexInjectivityViolation) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(q);
  b.BindVertex(1, 2);
  b.BindVertex(2, 1);  // data vertex 1 already used for query vertex 0
  b.BindEdge(1, 11, 9);
  EXPECT_FALSE(JoinCompatible(a, b, 100));
}

TEST(MatchTest, JoinCompatibleRejectsSharedDataEdge) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v0, v1, "x");  // parallel query edges
  const QueryGraph q = builder.Build().value();
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(q);
  b.BindVertex(0, 1);
  b.BindVertex(1, 2);
  b.BindEdge(1, 10, 5);  // same data edge for the other query edge
  EXPECT_FALSE(JoinCompatible(a, b, 100));
}

TEST(MatchTest, JoinCompatibleRejectsWindowViolation) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 0);
  Match b(q);
  b.BindVertex(1, 2);
  b.BindVertex(2, 3);
  b.BindEdge(1, 11, 10);
  EXPECT_TRUE(JoinCompatible(a, b, 11));   // span 10 < 11
  EXPECT_FALSE(JoinCompatible(a, b, 10));  // span 10 not < 10
}

TEST(MatchTest, JoinCompatibleRejectsOverlappingQueryEdges) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  Match a(q);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  EXPECT_FALSE(JoinCompatible(a, a, 100));
}

// --- ConnectedEdgeOrder --------------------------------------------------------

TEST(ConnectedEdgeOrderTest, EveryPrefixIsConnected) {
  Interner interner;
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    const int nv = 3 + static_cast<int>(rng.NextBounded(4));
    const int ne = nv - 1 + static_cast<int>(rng.NextBounded(4));
    const QueryGraph q =
        GenerateRandomConnectedQuery(rng, nv, ne, 2, 2, &interner).value();
    for (int first = 0; first < q.num_edges(); ++first) {
      const auto order = ConnectedEdgeOrder(
          q, q.AllEdges(), static_cast<QueryEdgeId>(first));
      ASSERT_EQ(order.size(), static_cast<size_t>(q.num_edges()));
      EXPECT_EQ(order[0], first);
      Bitset64 prefix;
      std::set<QueryEdgeId> unique(order.begin(), order.end());
      EXPECT_EQ(unique.size(), order.size());
      for (QueryEdgeId e : order) {
        prefix.Add(e);
        EXPECT_TRUE(q.IsEdgeSetConnected(prefix));
      }
    }
  }
}

TEST(ConnectedEdgeOrderTest, SubsetOrder) {
  Interner interner;
  const QueryGraph q = TriangleQuery(&interner);
  const Bitset64 two = Bitset64::Single(0) | Bitset64::Single(2);
  const auto order = ConnectedEdgeOrder(q, two, 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 0);
}

// --- TryBindEdge ---------------------------------------------------------------

TEST(TryBindEdgeTest, BindsAndUndoes) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 = g.AddEdge(MakeEdge(&interner, 1, 2, "x", 5)).value();
  const QueryGraph q = OneEdgeQuery(&interner);
  Match m(q);
  BindUndo undo;
  ASSERT_TRUE(TryBindEdge(g, q, 0, e0, g.edge_record(e0), 100, &m, &undo));
  EXPECT_TRUE(m.HasEdge(0));
  EXPECT_TRUE(undo.bound_src);
  EXPECT_TRUE(undo.bound_dst);
  UndoBindEdge(q, 0, undo, &m);
  EXPECT_FALSE(m.HasEdge(0));
  EXPECT_TRUE(m.bound_vertices().Empty());
}

TEST(TryBindEdgeTest, RejectsLabelMismatch) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 =
      g.AddEdge(MakeEdge(&interner, 1, 2, "y", 5)).value();  // label y
  const QueryGraph q = OneEdgeQuery(&interner);               // wants x
  Match m(q);
  BindUndo undo;
  EXPECT_FALSE(TryBindEdge(g, q, 0, e0, g.edge_record(e0), 100, &m, &undo));
}

TEST(TryBindEdgeTest, RejectsVertexLabelMismatch) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId e0 =
      g.AddEdge(MakeEdge(&interner, 1, 2, "x", 5, "Host", "User")).value();
  const QueryGraph q = OneEdgeQuery(&interner, "Host", "Host");
  Match m(q);
  BindUndo undo;
  EXPECT_FALSE(TryBindEdge(g, q, 0, e0, g.edge_record(e0), 100, &m, &undo));
}

TEST(TryBindEdgeTest, SelfLoopQueryEdgeNeedsSelfLoopDataEdge) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId plain = g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).value();
  const EdgeId loop = g.AddEdge(MakeEdge(&interner, 3, 3, "x", 1)).value();
  QueryGraphBuilder builder(&interner);
  const auto v = builder.AddVertex("V");
  builder.AddEdge(v, v, "x");
  const QueryGraph q = builder.Build().value();

  Match m(q);
  BindUndo undo;
  EXPECT_FALSE(
      TryBindEdge(g, q, 0, plain, g.edge_record(plain), 100, &m, &undo));
  ASSERT_TRUE(
      TryBindEdge(g, q, 0, loop, g.edge_record(loop), 100, &m, &undo));
  EXPECT_TRUE(undo.bound_src);
  EXPECT_FALSE(undo.bound_dst);  // single vertex bound once
}

TEST(TryBindEdgeTest, RejectsDataSelfLoopForTwoDistinctQueryVertices) {
  Interner interner;
  DynamicGraph g(&interner);
  const EdgeId loop = g.AddEdge(MakeEdge(&interner, 3, 3, "x", 1)).value();
  const QueryGraph q = OneEdgeQuery(&interner);
  Match m(q);
  BindUndo undo;
  EXPECT_FALSE(
      TryBindEdge(g, q, 0, loop, g.edge_record(loop), 100, &m, &undo));
}

// --- Batch oracle ---------------------------------------------------------------

TEST(SubgraphIsoTest, FindsSingleEdgeMatches) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 3, 4, "x", 2)).ok());
  const QueryGraph q = OneEdgeQuery(&interner);
  const auto matches = FindAllMatches(g, q);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(SubgraphIsoTest, FindsPathMatchesAcrossSharedVertex) {
  Interner interner;
  DynamicGraph g(&interner);
  // 1 -x-> 2 -y-> 3 and 1 -x-> 2 -y-> 4: two matches sharing the first edge.
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 4, "y", 2)).ok());
  const QueryGraph q = PathQuery(&interner);
  const auto matches = FindAllMatches(g, q);
  ASSERT_EQ(matches.size(), 2u);
  for (const Match& m : matches) {
    EXPECT_EQ(m.bound_edges().Count(), 2);
    EXPECT_EQ(m.vertex(0), g.FindVertex(1));
  }
}

TEST(SubgraphIsoTest, PathRequiresDistinctEndpoints) {
  Interner interner;
  DynamicGraph g(&interner);
  // 1 -x-> 2 -y-> 1 would map query vertices 0 and 2 to the same data
  // vertex; isomorphism forbids that.
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 1, "y", 1)).ok());
  const QueryGraph q = PathQuery(&interner);
  EXPECT_TRUE(FindAllMatches(g, q).empty());
}

TEST(SubgraphIsoTest, TriangleAutomorphismsAreDistinctMappings) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "x", 1)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 3, 1, "x", 2)).ok());
  const QueryGraph q = TriangleQuery(&interner);
  // The directed triangle has 3 rotational automorphisms.
  const auto matches = FindAllMatches(g, q);
  EXPECT_EQ(matches.size(), 3u);
  std::set<uint64_t> mapping_sigs;
  std::set<uint64_t> edge_sigs;
  for (const Match& m : matches) {
    mapping_sigs.insert(m.MappingSignature());
    edge_sigs.insert(m.EdgeSetSignature());
  }
  EXPECT_EQ(mapping_sigs.size(), 3u);  // distinct mappings
  EXPECT_EQ(edge_sigs.size(), 1u);     // one underlying data subgraph
}

TEST(SubgraphIsoTest, ParallelDataEdgesYieldDistinctMatches) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 1)).ok());
  const QueryGraph q = OneEdgeQuery(&interner);
  EXPECT_EQ(FindAllMatches(g, q).size(), 2u);

  // A 2-parallel-edge query on 2 parallel data edges: 2 bijections.
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v0, v1, "x");
  const QueryGraph q2 = builder.Build().value();
  EXPECT_EQ(FindAllMatches(g, q2).size(), 2u);
}

TEST(SubgraphIsoTest, WindowConstraintFiltersMatches) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 2, 3, "y", 7)).ok());
  const QueryGraph q = PathQuery(&interner);
  IsoOptions opt;
  opt.window = 8;  // span 7 < 8: ok
  EXPECT_EQ(FindAllMatches(g, q, opt).size(), 1u);
  opt.window = 7;  // span 7 not < 7: rejected
  EXPECT_TRUE(FindAllMatches(g, q, opt).empty());
}

TEST(SubgraphIsoTest, MinTsAndMaxEdgeIdRestrictTheSearch) {
  Interner interner;
  DynamicGraph g(&interner);
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 3, 4, "x", 5)).ok());
  ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, 5, 6, "x", 9)).ok());
  const QueryGraph q = OneEdgeQuery(&interner);
  IsoOptions opt;
  opt.min_ts = 5;
  EXPECT_EQ(FindAllMatches(g, q, opt).size(), 2u);
  opt.min_ts = kMinTimestamp;
  opt.max_edge_id = 1;  // exclusive: only edge 0
  EXPECT_EQ(FindAllMatches(g, q, opt).size(), 1u);
}

TEST(SubgraphIsoTest, MaxMatchesStopsEarly) {
  Interner interner;
  DynamicGraph g(&interner);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(g.AddEdge(MakeEdge(&interner, i, i + 100, "x", i)).ok());
  }
  const QueryGraph q = OneEdgeQuery(&interner);
  IsoOptions opt;
  opt.max_matches = 7;
  EXPECT_EQ(FindAllMatches(g, q, opt).size(), 7u);
}

TEST(SubgraphIsoTest, EmptyGraphHasNoMatches) {
  Interner interner;
  DynamicGraph g(&interner);
  const QueryGraph q = OneEdgeQuery(&interner);
  EXPECT_TRUE(FindAllMatches(g, q).empty());
}

// --- Local search: incremental exactly-once discovery ---------------------------

/// Replays `edges` one at a time; after each insertion runs the anchored
/// local search with the whole query as one leaf (the §3.1 "simplistic"
/// incremental strategy) and collects every discovered mapping signature.
/// Returns (signatures, number of duplicate discoveries).
std::pair<std::set<uint64_t>, int> ReplayIncrementally(
    const std::vector<StreamEdge>& edges, const QueryGraph& q,
    Interner* interner, Timestamp window) {
  DynamicGraph g(interner);
  std::set<uint64_t> sigs;
  int duplicates = 0;
  for (const StreamEdge& e : edges) {
    const EdgeId id = g.AddEdge(e).value();
    for (const Match& m : FindLeafMatches(g, q, q.AllEdges(), id, window)) {
      if (!sigs.insert(m.MappingSignature()).second) ++duplicates;
    }
  }
  return {sigs, duplicates};
}

std::set<uint64_t> BatchSignatures(const std::vector<StreamEdge>& edges,
                                   const QueryGraph& q, Interner* interner,
                                   Timestamp window) {
  DynamicGraph g(interner);
  for (const StreamEdge& e : edges) SW_CHECK_OK(g.AddEdge(e).status());
  IsoOptions opt;
  opt.window = window;
  std::set<uint64_t> sigs;
  for (const Match& m : FindAllMatches(g, q, opt)) {
    sigs.insert(m.MappingSignature());
  }
  return sigs;
}

TEST(LocalSearchTest, AnchoredSearchFindsMatchWhenLastEdgeArrives) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  std::vector<StreamEdge> edges = {
      MakeEdge(&interner, 1, 2, "x", 0),
      MakeEdge(&interner, 2, 3, "y", 1),
  };
  DynamicGraph g(&interner);
  const EdgeId e0 = g.AddEdge(edges[0]).value();
  EXPECT_TRUE(FindLeafMatches(g, q, q.AllEdges(), e0, 100).empty());
  const EdgeId e1 = g.AddEdge(edges[1]).value();
  const auto found = FindLeafMatches(g, q, q.AllEdges(), e1, 100);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].edge(0), e0);
  EXPECT_EQ(found[0].edge(1), e1);
}

TEST(LocalSearchTest, OutOfOrderQueryEdgeArrivalStillFound) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  // The "y" edge arrives before the "x" edge.
  std::vector<StreamEdge> edges = {
      MakeEdge(&interner, 2, 3, "y", 0),
      MakeEdge(&interner, 1, 2, "x", 1),
  };
  auto [sigs, dups] = ReplayIncrementally(edges, q, &interner, 100);
  EXPECT_EQ(sigs.size(), 1u);
  EXPECT_EQ(dups, 0);
}

TEST(LocalSearchTest, NoDuplicateDiscoveriesOnDenseStream) {
  Interner interner;
  const QueryGraph q = TriangleQuery(&interner);
  std::vector<StreamEdge> edges;
  // A K5-ish dense pattern of "x" edges in both directions.
  Timestamp ts = 0;
  for (int a = 1; a <= 5; ++a) {
    for (int b = 1; b <= 5; ++b) {
      if (a != b) edges.push_back(MakeEdge(&interner, a, b, "x", ts++));
    }
  }
  auto [sigs, dups] = ReplayIncrementally(edges, q, &interner, 1000);
  EXPECT_EQ(dups, 0);
  EXPECT_EQ(sigs, BatchSignatures(edges, q, &interner, 1000));
  EXPECT_GT(sigs.size(), 10u);
}

TEST(LocalSearchTest, WindowExcludesStaleCombinations) {
  Interner interner;
  const QueryGraph q = PathQuery(&interner);
  std::vector<StreamEdge> edges = {
      MakeEdge(&interner, 1, 2, "x", 0),
      MakeEdge(&interner, 2, 3, "y", 50),  // span 50 >= window 10: no match
      MakeEdge(&interner, 1, 2, "x", 60),  // with y@50: span 10, still >= 10
      MakeEdge(&interner, 2, 3, "y", 65),  // with x@60: span 5 < 10: match
  };
  auto [sigs, dups] = ReplayIncrementally(edges, q, &interner, 10);
  EXPECT_EQ(sigs.size(), 1u);
  EXPECT_EQ(dups, 0);
  EXPECT_EQ(sigs, BatchSignatures(edges, q, &interner, 10));
}

/// Property sweep: on random streams and random connected queries, the
/// incremental anchored search discovers exactly the batch-oracle match
/// set, with zero duplicates, across window sizes.
struct IncrementalEquivalenceCase {
  uint64_t seed;
  int num_vertices;
  int num_edges;
  int query_vertices;
  int query_edges;
  Timestamp window;
};

class IncrementalEquivalenceTest
    : public testing::TestWithParam<IncrementalEquivalenceCase> {};

TEST_P(IncrementalEquivalenceTest, MatchesBatchOracle) {
  const IncrementalEquivalenceCase& c = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = c.seed;
  opt.num_vertices = c.num_vertices;
  opt.num_edges = c.num_edges;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  opt.edges_per_tick = 4;
  const auto edges = GenerateUniformStream(opt, &interner);

  Rng rng(c.seed * 7919 + 13);
  const QueryGraph q =
      GenerateRandomConnectedQuery(rng, c.query_vertices, c.query_edges, 2,
                                   2, &interner)
          .value();

  auto [incremental, dups] = ReplayIncrementally(edges, q, &interner,
                                                 c.window);
  EXPECT_EQ(dups, 0) << q.ToString(interner);
  EXPECT_EQ(incremental, BatchSignatures(edges, q, &interner, c.window))
      << q.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalEquivalenceTest,
    testing::Values(
        IncrementalEquivalenceCase{1, 20, 150, 2, 1, 10},
        IncrementalEquivalenceCase{2, 20, 150, 3, 2, 10},
        IncrementalEquivalenceCase{3, 15, 200, 3, 3, 15},
        IncrementalEquivalenceCase{4, 15, 200, 4, 3, 20},
        IncrementalEquivalenceCase{5, 12, 250, 4, 4, 12},
        IncrementalEquivalenceCase{6, 10, 200, 4, 5, 25},
        IncrementalEquivalenceCase{7, 25, 300, 3, 2, 5},
        IncrementalEquivalenceCase{8, 25, 300, 3, 2, kMaxTimestamp},
        IncrementalEquivalenceCase{9, 8, 150, 5, 5, 30},
        IncrementalEquivalenceCase{10, 30, 400, 2, 1, 3}));

}  // namespace
}  // namespace streamworks
