// Tests for streamworks/planner: summary statistics (degree/type/triad
// distributions), selectivity estimation, and the four decomposition
// strategies — including equivalence of all strategies' SJ-Trees against
// the batch oracle.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/match/subgraph_iso.h"
#include "streamworks/planner/planner.h"
#include "streamworks/planner/selectivity.h"
#include "streamworks/planner/stats.h"
#include "streamworks/sjtree/sj_tree.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

/// Ingests edges into a fresh graph while feeding the statistics collector.
void IngestWithStats(const std::vector<StreamEdge>& edges,
                     Interner* /*interner*/, DynamicGraph* g,
                     SummaryStatistics* stats) {
  for (const StreamEdge& e : edges) {
    const EdgeId id = g->AddEdge(e).value();
    stats->Observe(*g, id);
  }
}

// --- SummaryStatistics --------------------------------------------------------

TEST(SummaryStatisticsTest, LabelAndTypedEdgeCounts) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  IngestWithStats(
      {
          MakeEdge(&interner, 1, 2, "flow", 0, "Host", "Host"),
          MakeEdge(&interner, 1, 3, "flow", 1, "Host", "Host"),
          MakeEdge(&interner, 2, 9, "login", 2, "Host", "User"),
      },
      &interner, &g, &stats);

  EXPECT_EQ(stats.num_edges_observed(), 3u);
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("flow")), 2u);
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("login")), 1u);
  EXPECT_EQ(stats.EdgeLabelCount(12345), 0u);
  EXPECT_EQ(stats.VertexLabelCount(interner.Find("Host")), 3u);
  EXPECT_EQ(stats.VertexLabelCount(interner.Find("User")), 1u);
  EXPECT_EQ(stats.TypedEdgeCount(interner.Find("Host"),
                                 interner.Find("flow"),
                                 interner.Find("Host")),
            2u);
  EXPECT_EQ(stats.TypedEdgeCount(interner.Find("Host"),
                                 interner.Find("login"),
                                 interner.Find("User")),
            1u);
  EXPECT_EQ(stats.TypedEdgeCount(interner.Find("User"),
                                 interner.Find("login"),
                                 interner.Find("Host")),
            0u);
}

TEST(SummaryStatisticsTest, DegreeHistogramBuckets) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  std::vector<StreamEdge> edges;
  // Vertex 0 gets out-degree 5; vertices 1..5 get in-degree 1 each.
  for (int i = 1; i <= 5; ++i) {
    edges.push_back(MakeEdge(&interner, 0, i, "e", i));
  }
  IngestWithStats(edges, &interner, &g, &stats);
  const auto out_hist = stats.DegreeHistogram(true);
  // Degree 5 lands in bucket 2 ([4, 8)); it's the only out-vertex.
  ASSERT_EQ(out_hist.size(), 3u);
  EXPECT_EQ(out_hist[2], 1u);
  EXPECT_EQ(out_hist[0], 0u);
  const auto in_hist = stats.DegreeHistogram(false);
  // Five vertices with in-degree 1 -> bucket 0.
  ASSERT_GE(in_hist.size(), 1u);
  EXPECT_EQ(in_hist[0], 5u);
}

TEST(SummaryStatisticsTest, WedgeCensusOnStar) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  // c --x--> a1, c --x--> a2, a3 --y--> c   (c has label "C").
  IngestWithStats(
      {
          MakeEdge(&interner, 0, 1, "x", 0, "C", "A"),
          MakeEdge(&interner, 0, 2, "x", 1, "C", "A"),
          MakeEdge(&interner, 3, 0, "y", 2, "A", "C"),
      },
      &interner, &g, &stats);
  ASSERT_TRUE(stats.has_wedge_counts());

  WedgeKey xx;
  xx.center_vertex_label = interner.Find("C");
  xx.leg1_out = true;
  xx.leg1_label = interner.Find("x");
  xx.leg2_out = true;
  xx.leg2_label = interner.Find("x");
  EXPECT_DOUBLE_EQ(stats.WedgeCount(xx), 1.0);

  WedgeKey xy;
  xy.center_vertex_label = interner.Find("C");
  xy.leg1_out = false;  // y leg: centre is the destination
  xy.leg1_label = interner.Find("y");
  xy.leg2_out = true;
  xy.leg2_label = interner.Find("x");
  EXPECT_DOUBLE_EQ(stats.WedgeCount(xy), 2.0);

  // Canonicalisation: swapping the legs finds the same bucket.
  WedgeKey yx = xy;
  std::swap(yx.leg1_out, yx.leg2_out);
  std::swap(yx.leg1_label, yx.leg2_label);
  EXPECT_DOUBLE_EQ(stats.WedgeCount(yx), 2.0);

  // A key that never occurred.
  WedgeKey none = xx;
  none.leg2_label = interner.Intern("z");
  EXPECT_DOUBLE_EQ(stats.WedgeCount(none), 0.0);
}

TEST(SummaryStatisticsTest, SampledWedgeCountsAreScaledEstimates) {
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 31;
  opt.num_vertices = 30;
  opt.num_edges = 3000;
  opt.num_vertex_labels = 1;
  opt.num_edge_labels = 1;
  const auto edges = GenerateUniformStream(opt, &interner);

  DynamicGraph g_full(&interner);
  SummaryStatistics full(1.0);
  IngestWithStats(edges, &interner, &g_full, &full);

  DynamicGraph g_sampled(&interner);
  SummaryStatistics sampled(0.25, /*seed=*/7);
  IngestWithStats(edges, &interner, &g_sampled, &sampled);

  WedgeKey key;
  key.center_vertex_label = interner.Find("VL0");
  key.leg1_out = true;
  key.leg1_label = interner.Find("EL0");
  key.leg2_out = false;
  key.leg2_label = interner.Find("EL0");
  const double exact = full.WedgeCount(key);
  const double estimate = sampled.WedgeCount(key);
  ASSERT_GT(exact, 0.0);
  EXPECT_NEAR(estimate / exact, 1.0, 0.25);  // 25% sampling, generous bound
}

TEST(SummaryStatisticsTest, WedgeCensusCanBeDisabled) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  stats.set_wedge_census_enabled(false);
  IngestWithStats(
      {
          MakeEdge(&interner, 0, 1, "x", 0),
          MakeEdge(&interner, 0, 2, "x", 1),
      },
      &interner, &g, &stats);
  EXPECT_FALSE(stats.has_wedge_counts());
  // Typed-edge counts are unaffected.
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("x")), 2u);
}

TEST(SummaryStatisticsTest, DecayHalvesCountsAtHalfLife) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  stats.set_decay_half_life(10);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 10; ++i) {
    edges.push_back(MakeEdge(&interner, i, 100 + i, "x", i));
  }
  IngestWithStats(edges, &interner, &g, &stats);
  // Exactly one decay fired at the 10th observation: 10 -> 5.
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("x")), 5u);
  EXPECT_EQ(stats.num_edges_observed(), 10u);  // raw total is undecayed
}

TEST(SummaryStatisticsTest, DecayForgetsOldDistribution) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  stats.set_decay_half_life(32);
  std::vector<StreamEdge> edges;
  Timestamp ts = 0;
  // Old regime: 64 "old" edges; new regime: 64 "new" edges.
  for (int i = 0; i < 64; ++i) {
    edges.push_back(MakeEdge(&interner, i, 500 + i, "old", ts++));
  }
  for (int i = 0; i < 64; ++i) {
    edges.push_back(MakeEdge(&interner, i, 700 + i, "new", ts++));
  }
  IngestWithStats(edges, &interner, &g, &stats);
  // After two half-lives of pure "new" traffic, "new" dominates even
  // though the raw totals are equal.
  EXPECT_GT(stats.EdgeLabelCount(interner.Find("new")),
            2 * stats.EdgeLabelCount(interner.Find("old")));
}

TEST(SummaryStatisticsTest, DecayErasesZeroedEntries) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  stats.set_decay_half_life(4);
  IngestWithStats(
      {
          MakeEdge(&interner, 1, 2, "rare", 0),
          MakeEdge(&interner, 3, 4, "x", 1),
          MakeEdge(&interner, 5, 6, "x", 2),
          MakeEdge(&interner, 7, 8, "x", 3),  // decay: rare 1 -> 0, gone
      },
      &interner, &g, &stats);
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("rare")), 0u);
  EXPECT_EQ(stats.EdgeLabelCount(interner.Find("x")), 1u);  // 3 -> 1
}

TEST(SummaryStatisticsTest, ReportTableMentionsAllSections) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  IngestWithStats({MakeEdge(&interner, 1, 2, "flow", 0, "Host", "Host")},
                  &interner, &g, &stats);
  const std::string report = stats.ReportTable(interner);
  EXPECT_NE(report.find("degree distribution"), std::string::npos);
  EXPECT_NE(report.find("vertex type distribution"), std::string::npos);
  EXPECT_NE(report.find("edge type distribution"), std::string::npos);
  EXPECT_NE(report.find("triad census"), std::string::npos);
  EXPECT_NE(report.find("Host"), std::string::npos);
  EXPECT_NE(report.find("flow"), std::string::npos);
}

// --- SelectivityEstimator --------------------------------------------------------

TEST(SelectivityEstimatorTest, EdgeCardinalityIsTypedCount) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 10; ++i) {
    edges.push_back(MakeEdge(&interner, i, i + 50, "common", i));
  }
  edges.push_back(MakeEdge(&interner, 1, 99, "rare", 20));
  IngestWithStats(edges, &interner, &g, &stats);

  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "common");
  builder.AddEdge(v1, v2, "rare");
  const QueryGraph q = builder.Build().value();

  SelectivityEstimator est(&stats);
  EXPECT_DOUBLE_EQ(est.EdgeCardinality(q, 0), 10.0);
  EXPECT_DOUBLE_EQ(est.EdgeCardinality(q, 1), 1.0);
}

TEST(SelectivityEstimatorTest, NullStatsGivesConstantEstimates) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "e");
  const QueryGraph q = builder.Build().value();
  SelectivityEstimator est(nullptr);
  EXPECT_FALSE(est.has_stats());
  EXPECT_DOUBLE_EQ(est.EdgeCardinality(q, 0), 1.0);
  EXPECT_DOUBLE_EQ(est.SubgraphCardinality(q, q.AllEdges()), 1.0);
}

TEST(SelectivityEstimatorTest, WedgeCardinalityUsesTriadCensus) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  // Build 4 wedges a_i -> c -> b_j (2x2) plus unrelated edges.
  IngestWithStats(
      {
          MakeEdge(&interner, 10, 0, "in", 0, "A", "C"),
          MakeEdge(&interner, 11, 0, "in", 1, "A", "C"),
          MakeEdge(&interner, 0, 20, "out", 2, "C", "B"),
          MakeEdge(&interner, 0, 21, "out", 3, "C", "B"),
      },
      &interner, &g, &stats);

  QueryGraphBuilder builder(&interner);
  const auto a = builder.AddVertex("A");
  const auto c = builder.AddVertex("C");
  const auto b = builder.AddVertex("B");
  builder.AddEdge(a, c, "in");
  builder.AddEdge(c, b, "out");
  const QueryGraph q = builder.Build().value();

  SelectivityEstimator est(&stats);
  EXPECT_DOUBLE_EQ(est.SubgraphCardinality(q, q.AllEdges()), 4.0);
}

TEST(SelectivityEstimatorTest, ChainRuleForLargerSubgraphs) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 8; ++i) {
    edges.push_back(
        MakeEdge(&interner, i, 100 + i, "e", i, "V", "V"));
  }
  IngestWithStats(edges, &interner, &g, &stats);

  QueryGraphBuilder builder(&interner);
  QueryVertexId v[4];
  for (auto& vi : v) vi = builder.AddVertex("V");
  builder.AddEdge(v[0], v[1], "e");
  builder.AddEdge(v[1], v[2], "e");
  builder.AddEdge(v[2], v[3], "e");
  const QueryGraph q = builder.Build().value();

  SelectivityEstimator est(&stats);
  const double card = est.SubgraphCardinality(q, q.AllEdges());
  // 8 edges, 16 "V" vertices: 8^3 / 16^2 = 2.
  EXPECT_DOUBLE_EQ(card, 2.0);
}

// --- QueryPlanner -----------------------------------------------------------------

TEST(QueryPlannerTest, AllStrategiesProduceValidPlans) {
  Interner interner;
  Rng rng(7);
  QueryPlanner planner(nullptr);
  for (int trial = 0; trial < 25; ++trial) {
    const int nv = 2 + static_cast<int>(rng.NextBounded(5));
    const int ne = nv - 1 + static_cast<int>(rng.NextBounded(4));
    const QueryGraph q =
        GenerateRandomConnectedQuery(rng, nv, ne, 3, 3, &interner).value();
    for (DecompositionStrategy s : kAllDecompositionStrategies) {
      auto d = planner.Plan(q, s);
      ASSERT_TRUE(d.ok()) << DecompositionStrategyName(s) << ": "
                          << d.status().ToString();
      EXPECT_TRUE(d->Validate(q).ok()) << DecompositionStrategyName(s);
    }
  }
}

TEST(QueryPlannerTest, SelectivityOrderPutsRareEdgeLowest) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 50; ++i) {
    edges.push_back(MakeEdge(&interner, i, 100 + i, "common", i));
  }
  edges.push_back(MakeEdge(&interner, 1, 200, "rare", 60));
  IngestWithStats(edges, &interner, &g, &stats);

  // Path: v0 -common-> v1 -rare-> v2  (rare is query edge 1).
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "common");
  builder.AddEdge(v1, v2, "rare");
  const QueryGraph q = builder.Build().value();

  SelectivityEstimator est(&stats);
  QueryPlanner planner(&est);
  const Decomposition d =
      planner.Plan(q, DecompositionStrategy::kSelectivityLeftDeep).value();
  // First leaf (lowest in the left-deep tree) holds the rare edge.
  EXPECT_TRUE(d.node(d.leaves()[0]).edges.Contains(1));

  // The uninformed structural order starts from edge 0 instead.
  const Decomposition uninformed =
      planner.Plan(q, DecompositionStrategy::kLeftDeepEdgeOrder).value();
  EXPECT_TRUE(uninformed.node(uninformed.leaves()[0]).edges.Contains(0));
}

TEST(QueryPlannerTest, PrimitivePairsMakesWedgeLeaves) {
  Interner interner;
  QueryPlanner planner(nullptr);
  // 4-edge path: expect two 2-edge leaves.
  QueryGraphBuilder builder(&interner);
  QueryVertexId v[5];
  for (auto& vi : v) vi = builder.AddVertex("V");
  builder.AddEdge(v[0], v[1], "a");
  builder.AddEdge(v[1], v[2], "b");
  builder.AddEdge(v[2], v[3], "c");
  builder.AddEdge(v[3], v[4], "d");
  const QueryGraph q = builder.Build().value();

  const Decomposition d =
      planner.Plan(q, DecompositionStrategy::kPrimitivePairs).value();
  ASSERT_EQ(d.leaves().size(), 2u);
  for (int leaf : d.leaves()) {
    EXPECT_EQ(d.node(leaf).edges.Count(), 2);
  }
}

TEST(QueryPlannerTest, PrimitivePairsLeftoverSingleEdge) {
  Interner interner;
  QueryPlanner planner(nullptr);
  // 3-edge path: one wedge pair + one single-edge leaf.
  QueryGraphBuilder builder(&interner);
  QueryVertexId v[4];
  for (auto& vi : v) vi = builder.AddVertex("V");
  builder.AddEdge(v[0], v[1], "a");
  builder.AddEdge(v[1], v[2], "b");
  builder.AddEdge(v[2], v[3], "c");
  const QueryGraph q = builder.Build().value();
  const Decomposition d =
      planner.Plan(q, DecompositionStrategy::kPrimitivePairs).value();
  ASSERT_EQ(d.leaves().size(), 2u);
  std::multiset<int> sizes;
  for (int leaf : d.leaves()) sizes.insert(d.node(leaf).edges.Count());
  EXPECT_EQ(sizes, (std::multiset<int>{1, 2}));
}

TEST(QueryPlannerTest, BalancedBisectionFallsBackWhenInvalid) {
  Interner interner;
  QueryPlanner planner(nullptr);
  Rng rng(11);
  // Star queries force the bisection fallback path often; whatever comes
  // back must validate.
  for (int trial = 0; trial < 20; ++trial) {
    const QueryGraph q =
        GenerateRandomConnectedQuery(rng, 5, 6, 2, 2, &interner).value();
    auto d = planner.Plan(q, DecompositionStrategy::kBalancedBisection);
    ASSERT_TRUE(d.ok());
    EXPECT_TRUE(d->Validate(q).ok());
  }
}

TEST(QueryPlannerTest, ExplainPlanShowsEstimates) {
  Interner interner;
  DynamicGraph g(&interner);
  SummaryStatistics stats;
  IngestWithStats({MakeEdge(&interner, 1, 2, "e", 0)}, &interner, &g,
                  &stats);
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "e");
  builder.AddEdge(v1, v2, "e");
  const QueryGraph q = builder.Build().value();
  SelectivityEstimator est(&stats);
  QueryPlanner planner(&est);
  const Decomposition d =
      planner.Plan(q, DecompositionStrategy::kSelectivityLeftDeep).value();
  const std::string plan = planner.ExplainPlan(q, d, interner);
  EXPECT_NE(plan.find("est="), std::string::npos);
  EXPECT_NE(plan.find("search primitive"), std::string::npos);
}

TEST(QueryPlannerTest, StrategyNamesAreStable) {
  std::set<std::string_view> names;
  for (DecompositionStrategy s : kAllDecompositionStrategies) {
    names.insert(DecompositionStrategyName(s));
  }
  EXPECT_EQ(names.size(), 4u);
  EXPECT_TRUE(names.count("selectivity_left_deep"));
}

// --- Strategy equivalence: every plan computes the same answer --------------------

class StrategyEquivalenceTest
    : public testing::TestWithParam<DecompositionStrategy> {};

TEST_P(StrategyEquivalenceTest, AgreesWithBatchOracle) {
  const DecompositionStrategy strategy = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = 777;
  opt.num_vertices = 16;
  opt.num_edges = 400;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto edges = GenerateUniformStream(opt, &interner);

  Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    const QueryGraph q =
        GenerateRandomConnectedQuery(rng, 3 + trial % 2, 3 + trial % 3, 2,
                                     2, &interner)
            .value();
    const Timestamp window = 10 + 7 * trial;

    // Plan with statistics collected from a prefix of the stream (the
    // paper's summarisation-then-register flow).
    DynamicGraph stats_graph(&interner);
    SummaryStatistics stats;
    for (size_t i = 0; i < edges.size() / 4; ++i) {
      stats.Observe(stats_graph, stats_graph.AddEdge(edges[i]).value());
    }
    SelectivityEstimator est(&stats);
    QueryPlanner planner(&est);
    SjTree tree(&q, planner.Plan(q, strategy).value(), window);

    DynamicGraph g(&interner);
    std::multiset<uint64_t> incremental;
    for (const StreamEdge& e : edges) {
      const EdgeId id = g.AddEdge(e).value();
      std::vector<Match> completed;
      tree.ProcessEdge(g, id, &completed);
      for (const Match& m : completed) {
        incremental.insert(m.MappingSignature());
      }
    }

    IsoOptions iso;
    iso.window = window;
    std::multiset<uint64_t> batch;
    for (const Match& m : FindAllMatches(g, q, iso)) {
      batch.insert(m.MappingSignature());
    }
    EXPECT_EQ(incremental, batch)
        << DecompositionStrategyName(strategy) << " trial " << trial << " "
        << q.ToString(interner);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyEquivalenceTest,
    testing::ValuesIn(kAllDecompositionStrategies),
    [](const testing::TestParamInfo<DecompositionStrategy>& info) {
      return std::string(DecompositionStrategyName(info.param));
    });

}  // namespace
}  // namespace streamworks
