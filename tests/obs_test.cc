// Tests for streamworks/obs and its foundations: the generalized
// power-of-two histogram (interpolated quantiles), the JSON writer's
// escaping guarantees, the metric registry's Prometheus exposition, the
// pipeline stage instrumentation + slow-op trace ring, the HTTP request
// parser/handler, and the service-level renderers (/stats.json,
// /queries.json, /healthz).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "streamworks/common/histogram.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/json_writer.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/obs/epoch_trace.h"
#include "streamworks/obs/http_endpoint.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks {
namespace {

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(HistogramTest, SingleSampleAnswersBucketLowerBoundAtEveryQuantile) {
  Histogram h;
  h.Record(100);  // bucket [64, 128)
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 64u) << "q=" << q;
  }
  EXPECT_EQ(h.sum(), 100u);
}

TEST(HistogramTest, ZeroValuesLandInBucketZero) {
  Histogram h;
  h.Record(0);
  h.Record(0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(HistogramTest, ExtremeQuantilesHitFirstAndLastSample) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1);          // bucket [1, 1]
  for (int i = 0; i < 50; ++i) h.Record(1u << 20);   // bucket [2^20, 2^21)
  // q=0 is the first sample; q=1 the last. Interpolation must not push
  // q=1 past the top bucket's range nor q=0 below the bottom one.
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_GE(h.Quantile(1.0), uint64_t{1} << 20);
  EXPECT_LT(h.Quantile(1.0), uint64_t{1} << 21);
}

TEST(HistogramTest, MergeOfDisjointRangesKeepsBothTails) {
  Histogram low;
  for (int i = 0; i < 90; ++i) low.Record(3);
  Histogram high;
  for (int i = 0; i < 10; ++i) high.Record(1u << 16);
  low.Merge(high);
  EXPECT_EQ(low.total_count(), 100u);
  EXPECT_EQ(low.sum(), 90u * 3 + 10u * (1u << 16));
  EXPECT_LT(low.Quantile(0.5), 4u);
  EXPECT_GE(low.Quantile(0.95), uint64_t{1} << 16);
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  // Federation merges worker histograms in whatever order reports arrive;
  // the merged digest must not depend on that order or grouping.
  Histogram a, b, c;
  for (int i = 0; i < 11; ++i) a.Record(3);
  for (int i = 0; i < 7; ++i) b.Record(900);
  b.Record(0);
  for (int i = 0; i < 29; ++i) c.Record(1u << 18);
  Histogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram right = c;  // (c + b) + a
  right.Merge(b);
  right.Merge(a);
  EXPECT_EQ(left.total_count(), right.total_count());
  EXPECT_EQ(left.sum(), right.sum());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(left.bucket_count(i), right.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.Quantile(0.5), right.Quantile(0.5));
  EXPECT_EQ(left.Quantile(0.99), right.Quantile(0.99));
}

TEST(HistogramTest, QuantileIsMonotonicInQ) {
  Histogram h;
  // Spread across several buckets with uneven counts so interpolation
  // does real work.
  for (int i = 0; i < 7; ++i) h.Record(10);
  for (int i = 0; i < 23; ++i) h.Record(100);
  for (int i = 0; i < 5; ++i) h.Record(5000);
  for (int i = 0; i < 65; ++i) h.Record(70000);
  uint64_t prev = 0;
  for (int step = 0; step <= 100; ++step) {
    const uint64_t v = h.Quantile(static_cast<double>(step) / 100.0);
    EXPECT_GE(v, prev) << "q=" << step / 100.0;
    prev = v;
  }
}

TEST(HistogramTest, InterpolationStaysInsideTheBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(100);  // all in [64, 127]
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const uint64_t v = h.Quantile(q);
    EXPECT_GE(v, 64u) << "q=" << q;
    EXPECT_LE(v, 127u) << "q=" << q;
  }
  // Uniform-spread assumption: the median of a full bucket sits near the
  // middle, not pinned to either bound (the pre-fix behavior answered the
  // upper bound for every q).
  EXPECT_GT(h.Quantile(0.5), 64u);
  EXPECT_LT(h.Quantile(0.5), 127u);
}

TEST(HistogramTest, FromBucketsRoundTripsAtomicSnapshot) {
  AtomicHistogram a;
  a.Record(0);
  a.Record(7);
  a.Record(4096);
  const Histogram h = a.Snapshot();
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.sum(), 0u + 7u + 4096u);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String(std::string("a\"b\\c\n\t\r\b\f") + '\x01' + "z");
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\\t\\r\\b\\f\\u0001z\"}");
}

TEST(JsonWriterTest, Utf8PassesThroughUntouched) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("héllo → wörld ✓");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"name\":\"héllo → wörld ✓\"}");
}

TEST(JsonWriterTest, HugeUint64IsLossless) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Uint(18446744073709551615ull);  // 2^64 - 1: a double would mangle it
  w.Key("neg");
  w.Int(-42);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"v\":18446744073709551615,\"neg\":-42}");
}

TEST(JsonWriterTest, CommasNestingAndSpecialDoubles) {
  JsonWriter w;
  w.BeginObject();
  w.Key("arr");
  w.BeginArray();
  w.Uint(1);
  w.BeginObject();
  w.Key("b");
  w.Bool(true);
  w.EndObject();
  w.Null();
  w.EndArray();
  w.Key("nan");
  w.Double(0.0 / 0.0);  // non-finite renders as null
  w.Key("half");
  w.Double(0.5);
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"arr\":[1,{\"b\":true},null],\"nan\":null,\"half\":0.5}");
}

// --- MetricRegistry / Prometheus exposition --------------------------------

TEST(MetricRegistryTest, RendersCounterGaugeAndLabels) {
  MetricRegistry registry;
  MetricCounter* c = registry.RegisterCounter(
      "sw_test_total", "A test counter.", {{"kind", "a\"b\\c\nd"}});
  MetricGauge* g = registry.RegisterGauge("sw_test_gauge", "A test gauge.");
  c->Increment(41);
  c->Increment();
  g->Set(2.5);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP sw_test_total A test counter.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sw_test_total counter\n"), std::string::npos);
  // Label value escaping: backslash, quote, newline.
  EXPECT_NE(text.find("sw_test_total{kind=\"a\\\"b\\\\c\\nd\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sw_test_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("sw_test_gauge 2.5\n"), std::string::npos);
}

TEST(MetricRegistryTest, HistogramExpositionIsCumulativeWithSumAndCount) {
  MetricRegistry registry;
  AtomicHistogram* h =
      registry.RegisterHistogram("sw_lat_us", "Latency.", {{"op", "x"}});
  h->Record(1);    // bucket [1,1], le=1
  h->Record(100);  // bucket [64,127], le=127
  h->Record(100);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE sw_lat_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("sw_lat_us_bucket{op=\"x\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sw_lat_us_bucket{op=\"x\",le=\"127\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sw_lat_us_bucket{op=\"x\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sw_lat_us_sum{op=\"x\"} 201\n"), std::string::npos);
  EXPECT_NE(text.find("sw_lat_us_count{op=\"x\"} 3\n"), std::string::npos);
}

TEST(MetricRegistryTest, CollectorsContributeAndRemoveCleanly) {
  MetricRegistry registry;
  const int token = registry.AddCollector([](MetricSnapshotBuilder* out) {
    out->EmitCounter("sw_collected_total", "From a collector.", {}, 7);
  });
  EXPECT_NE(registry.RenderPrometheus().find("sw_collected_total 7\n"),
            std::string::npos);
  registry.RemoveCollector(token);
  EXPECT_EQ(registry.RenderPrometheus().find("sw_collected_total"),
            std::string::npos);
}

TEST(MetricRegistryTest, SameNameSamplesShareOneFamilyHeader) {
  MetricRegistry registry;
  MetricSnapshotBuilder builder;
  builder.EmitCounter("sw_multi_total", "Multi.", {{"k", "a"}}, 1);
  builder.EmitCounter("sw_multi_total", "Multi.", {{"k", "b"}}, 2);
  const std::string text = builder.RenderPrometheus();
  size_t first = text.find("# TYPE sw_multi_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE sw_multi_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("sw_multi_total{k=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("sw_multi_total{k=\"b\"} 2\n"), std::string::npos);
}

TEST(MetricRegistryTest, ReEmittingSameSeriesMergesAdditively) {
  // The federation mechanism: coordinator series and every worker report
  // land in one builder; identical (name, labels) keys must fold into a
  // single cluster-wide series.
  MetricSnapshotBuilder builder;
  builder.EmitCounter("sw_fed_total", "Fed.", {{"role", "worker"}}, 10);
  builder.EmitCounter("sw_fed_total", "Fed.", {{"role", "worker"}}, 32);
  builder.EmitGauge("sw_fed_gauge", "Fed gauge.", {}, 1.5);
  builder.EmitGauge("sw_fed_gauge", "Fed gauge.", {}, 2.25);
  Histogram h1;
  h1.Record(1);
  Histogram h2;
  h2.Record(100);
  h2.Record(100);
  builder.EmitHistogram("sw_fed_us", "Fed hist.", {}, h1);
  builder.EmitHistogram("sw_fed_us", "Fed hist.", {}, h2);
  const std::string text = builder.RenderPrometheus();
  EXPECT_NE(text.find("sw_fed_total{role=\"worker\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("sw_fed_gauge 3.75\n"), std::string::npos);
  EXPECT_NE(text.find("sw_fed_us_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("sw_fed_us_sum 201\n"), std::string::npos);
  // Different labels stay distinct series.
  builder.EmitCounter("sw_fed_total", "Fed.", {{"role", "coord"}}, 1);
  EXPECT_NE(builder.RenderPrometheus().find("sw_fed_total{role=\"coord\"} 1\n"),
            std::string::npos);
}

TEST(MetricRegistryTest, ExportSamplesRoundTripsThroughEmitSample) {
  // A worker exports its registry as samples, ships them over the wire,
  // and the coordinator re-emits them sample by sample: the rendered
  // exposition must match a direct local render.
  MetricRegistry registry;
  registry.RegisterCounter("sw_rt_total", "RT.", {{"role", "worker"}})
      ->Increment(9);
  registry.RegisterGauge("sw_rt_gauge", "RT gauge.")->Set(-0.5);
  registry.RegisterHistogram("sw_rt_us", "RT hist.")->Record(77);
  const std::vector<MetricSample> samples = registry.ExportSamples();
  MetricSnapshotBuilder rebuilt;
  for (const MetricSample& s : samples) rebuilt.EmitSample(s);
  EXPECT_EQ(rebuilt.RenderPrometheus(), registry.RenderPrometheus());
}

// --- PipelineMetrics / TraceRing -------------------------------------------

TEST(PipelineMetricsTest, RecordsHistogramsAndOnlySlowOpsEnterTheRing) {
  PipelineMetrics pm(/*slow_threshold_us=*/1000, /*trace_capacity=*/8);
  pm.Record(PipelineStage::kEngineApply, 10);
  pm.Record(PipelineStage::kEngineApply, 2000, /*session_id=*/3,
            /*subscription_id=*/4, /*detail=*/512);
  const Histogram h =
      pm.stage_histogram(PipelineStage::kEngineApply).Snapshot();
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(pm.slow_ops_recorded(), 1u);
  const std::vector<TraceEntry> trace = pm.TraceSnapshot();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].stage, PipelineStage::kEngineApply);
  EXPECT_EQ(trace[0].session_id, 3);
  EXPECT_EQ(trace[0].subscription_id, 4);
  EXPECT_EQ(trace[0].duration_us, 2000u);
  EXPECT_EQ(trace[0].detail, 512u);
}

TEST(TraceRingTest, WrapsKeepingTheNewestEntriesOldestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    TraceEntry e;
    e.duration_us = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  const std::vector<TraceEntry> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].duration_us, 7 + i);  // 7, 8, 9, 10
  }
}

TEST(TraceRingTest, ConcurrentWritersNeverProduceTornEntries) {
  TraceRing ring(16);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        TraceEntry e;
        // Self-checking payload: duration and detail agree iff untorn.
        e.duration_us = t * kPerThread + i;
        e.detail = e.duration_us * 2;
        ring.Push(e);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const TraceEntry& e : ring.Snapshot()) {
    EXPECT_EQ(e.detail, e.duration_us * 2);
  }
  EXPECT_EQ(ring.total_pushed(), kThreads * kPerThread);
}

TEST(EpochTraceRingTest, WrapsKeepingNewestEpochsOldestFirst) {
  EpochTraceRing ring(4);
  for (uint64_t e = 1; e <= 10; ++e) {
    EpochTraceEntry entry;
    entry.epoch = e;
    entry.edges = e * 100;
    entry.batch_us = e;
    entry.total_us = e * 7;
    ring.Push(entry);
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  const std::vector<EpochTraceEntry> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].epoch, 7 + i);
    EXPECT_EQ(snap[i].edges, (7 + i) * 100);
    EXPECT_EQ(snap[i].total_us, (7 + i) * 7);
  }
}

TEST(PipelineMetricsTest, StageNamesAreStableSnakeCase) {
  EXPECT_EQ(PipelineStageName(PipelineStage::kFrameDecode), "frame_decode");
  EXPECT_EQ(PipelineStageName(PipelineStage::kAdmission), "admission");
  EXPECT_EQ(PipelineStageName(PipelineStage::kEngineApply), "engine_apply");
  EXPECT_EQ(PipelineStageName(PipelineStage::kSjTreeJoin), "sjtree_join");
  EXPECT_EQ(PipelineStageName(PipelineStage::kExchangeForward),
            "exchange_forward");
  EXPECT_EQ(PipelineStageName(PipelineStage::kEnqueue), "enqueue");
  EXPECT_EQ(PipelineStageName(PipelineStage::kDeliveryFlush),
            "delivery_flush");
}

// --- HTTP parsing / routing ------------------------------------------------

TEST(HttpParseTest, ParsesCrlfAndBareLfRequests) {
  HttpRequest req;
  size_t consumed = 0;
  const std::string crlf =
      "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\nleftover";
  EXPECT_EQ(ParseHttpRequest(crlf, &req, &consumed),
            HttpParseResult::kComplete);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/metrics");
  EXPECT_EQ(crlf.substr(consumed), "leftover");

  const std::string lf = "GET /healthz HTTP/1.0\n\n";
  EXPECT_EQ(ParseHttpRequest(lf, &req, &consumed),
            HttpParseResult::kComplete);
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(consumed, lf.size());
}

TEST(HttpParseTest, IncompleteHeadNeedsMore) {
  HttpRequest req;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("GET /met", &req, &consumed),
            HttpParseResult::kNeedMore);
  EXPECT_EQ(ParseHttpRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n", &req,
                             &consumed),
            HttpParseResult::kNeedMore);
}

TEST(HttpParseTest, MalformedRequestLinesAreBad) {
  HttpRequest req;
  size_t consumed = 0;
  for (const std::string bad :
       {"FEED 1 2 ping 3\r\n\r\n",        // line protocol on the HTTP port
        "GET/metrics HTTP/1.1\r\n\r\n",   // missing separator
        "GET metrics HTTP/1.1\r\n\r\n",   // target without leading slash
        "\r\n\r\n"}) {                    // empty request line
    EXPECT_EQ(ParseHttpRequest(bad, &req, &consumed), HttpParseResult::kBad)
        << bad;
  }
}

TEST(HttpEndpointTest, EncodeIncludesLengthAndClose) {
  HttpResponse r;
  r.body = "hello\n";
  const std::string wire = EncodeHttpResponse(r);
  EXPECT_EQ(wire.substr(0, 17), "HTTP/1.1 200 OK\r\n");
  EXPECT_NE(wire.find("Content-Length: 6\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 10), "\r\n\r\nhello\n");
}

TEST(HttpEndpointTest, RoutesMetricsStatsHealthAnd404s) {
  MetricRegistry registry;
  registry.RegisterCounter("sw_route_total", "Routing test.")->Increment(5);
  PipelineMetrics pipeline;
  HttpHandler::Providers providers;
  providers.registry = &registry;
  providers.pipeline = &pipeline;
  providers.stats = [] {
    ServiceStatsSnapshot snap;
    snap.edges_fed = 123;
    return snap;
  };
  providers.queries = [] { return std::vector<QueryObsSnapshot>{}; };
  HttpHandler handler(providers);

  HttpResponse r = handler.Handle({"GET", "/metrics"});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("sw_route_total 5\n"), std::string::npos);

  r = handler.Handle({"GET", "/stats.json"});
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_NE(r.body.find("\"edges_fed\":123"), std::string::npos);

  r = handler.Handle({"GET", "/healthz"});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\":\"ok\""), std::string::npos);

  r = handler.Handle({"GET", "/trace.json"});
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"slow_threshold_us\""), std::string::npos);

  // Query parameters are ignored for routing.
  EXPECT_EQ(handler.Handle({"GET", "/shards.json?pretty=1"}).status, 200);

  EXPECT_EQ(handler.Handle({"GET", "/nope"}).status, 404);
  EXPECT_EQ(handler.Handle({"POST", "/metrics"}).status, 405);
}

TEST(HttpEndpointTest, UnwiredProvidersAnswer503) {
  HttpHandler handler(HttpHandler::Providers{});
  EXPECT_EQ(handler.Handle({"GET", "/metrics"}).status, 503);
  EXPECT_EQ(handler.Handle({"GET", "/stats.json"}).status, 503);
  EXPECT_EQ(handler.Handle({"GET", "/trace.json"}).status, 503);
}

// --- Service renderers over a live service ---------------------------------

QueryGraph OnePingQuery(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto a = b.AddVertex("V");
  const auto c = b.AddVertex("V");
  b.AddEdge(a, c, "ping");
  auto built = b.Build("ping_q");
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return *built;
}

StreamEdge PingEdge(Interner* interner, uint64_t src, uint64_t dst,
                    Timestamp ts) {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern("ping");
  e.ts = ts;
  return e;
}

TEST(ObsServiceTest, MetricsAndJsonAgreeWithServiceCounters) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  PipelineMetrics pipeline;
  service.set_pipeline_metrics(&pipeline);

  MetricRegistry registry;
  RegisterServiceCollector(&registry,
                           [&service] { return service.Snapshot(); });
  RegisterPipelineCollector(&registry, &pipeline);

  auto session = service.OpenSession("tenant");
  ASSERT_TRUE(session.ok());
  auto sub = service.Submit(*session, OnePingQuery(&interner), {});
  ASSERT_TRUE(sub.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Feed(PingEdge(&interner, 1, 2, i)).ok());
  }
  service.Flush();

  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.edges_fed, 5u);
  EXPECT_EQ(snap.matches_enqueued, 5u);

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("streamworks_edges_fed_total 5\n"), std::string::npos);
  EXPECT_NE(prom.find("streamworks_matches_total{event=\"enqueued\"} 5\n"),
            std::string::npos);
  // Stage histograms observed the feeds (admission + engine apply).
  EXPECT_NE(
      prom.find("streamworks_stage_duration_us_count{stage=\"admission\"} 5"),
      std::string::npos);
  EXPECT_NE(prom.find(
                "streamworks_stage_duration_us_count{stage=\"engine_apply\"} "
                "5"),
            std::string::npos);

  const std::string stats_json = RenderStatsJson(snap);
  EXPECT_NE(stats_json.find("\"edges_fed\":5"), std::string::npos);
  EXPECT_NE(stats_json.find("\"query_name\":\"ping_q\""), std::string::npos);

  // /queries.json: the single-node SJ-Tree of the one-edge query inserted
  // five matches at its leaf.
  const std::vector<QueryObsSnapshot> queries = service.QueryInfos();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].query_name, "ping_q");
  ASSERT_FALSE(queries[0].info.nodes.empty());
  EXPECT_EQ(queries[0].info.nodes[0].matches_inserted, 5u);
  const std::string queries_json = RenderQueriesJson(queries);
  EXPECT_NE(queries_json.find("\"matches_inserted\":5"), std::string::npos);

  const std::string health = RenderHealthJson(snap, /*uptime_us=*/42);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"edges_fed\":5"), std::string::npos);
}

TEST(ObsServiceTest, SnapshotExportsMergedDeliveryLagHistogram) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  auto session = service.OpenSession("t");
  ASSERT_TRUE(session.ok());
  auto sub = service.Submit(*session, OnePingQuery(&interner), {});
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE(service.Feed(PingEdge(&interner, 1, 2, 1)).ok());
  service.Flush();
  // Popping the match records one delivery-lag sample.
  ResultQueue* queue = service.queue(*session, *sub);
  ASSERT_NE(queue, nullptr);
  CompleteMatch cm;
  ASSERT_TRUE(queue->TryPop(&cm));
  const ServiceStatsSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.delivery_lag.total_count(), 1u);
}

}  // namespace
}  // namespace streamworks
