// Tests for streamworks/core: query registration, label routing across
// concurrent queries, callback exactly-once delivery, metrics, retention
// management, and the full-engine equivalence property sweep against both
// baselines.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "streamworks/baseline/naive.h"
#include "streamworks/baseline/recompute.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

StreamEdge MakeEdge(Interner* interner, uint64_t src, uint64_t dst,
                    std::string_view elabel, Timestamp ts,
                    std::string_view src_label = "V",
                    std::string_view dst_label = "V") {
  StreamEdge e;
  e.src = src;
  e.dst = dst;
  e.src_label = interner->Intern(src_label);
  e.dst_label = interner->Intern(dst_label);
  e.edge_label = interner->Intern(elabel);
  e.ts = ts;
  return e;
}

QueryGraph PathQuery(Interner* interner, std::string_view name = "path2") {
  QueryGraphBuilder builder(interner);
  const auto va = builder.AddVertex("V");
  const auto vb = builder.AddVertex("V");
  const auto vc = builder.AddVertex("V");
  builder.AddEdge(va, vb, "x");
  builder.AddEdge(vb, vc, "y");
  return builder.Build(name).value();
}

TEST(EngineTest, RegisterRejectsBadWindow) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  auto result = engine.RegisterQuery(
      q, DecompositionStrategy::kLeftDeepEdgeOrder, 0, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, RegisterRejectsForeignDecomposition) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q2 = PathQuery(&interner);
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  const QueryGraph q1 = builder.Build().value();
  const Decomposition d = Decomposition::MakeSingleLeaf(q1).value();
  EXPECT_FALSE(engine.RegisterQuery(q2, d, 100, nullptr).ok());
}

TEST(EngineTest, SingleQueryEndToEnd) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  std::vector<CompleteMatch> results;
  const int id = engine
                     .RegisterQuery(q,
                                    DecompositionStrategy::kLeftDeepEdgeOrder,
                                    100,
                                    [&](const CompleteMatch& cm) {
                                      results.push_back(cm);
                                    })
                     .value();
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].query_id, id);
  EXPECT_EQ(results[0].completed_at, 1);
  EXPECT_EQ(results[0].match.bound_edges().Count(), 2);
  EXPECT_EQ(engine.metrics().edges_processed, 2u);
  EXPECT_EQ(engine.metrics().completions, 1u);
  EXPECT_EQ(engine.query_info(id).completions, 1u);
  EXPECT_EQ(engine.query_info(id).name, "path2");
}

TEST(EngineTest, MultiQueryRoutingIsolatesCallbacks) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph path = PathQuery(&interner, "path");
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "z");
  const QueryGraph zq = builder.Build("z_edge").value();

  int path_hits = 0;
  int z_hits = 0;
  ASSERT_TRUE(engine
                  .RegisterQuery(path,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++path_hits; })
                  .ok());
  ASSERT_TRUE(engine
                  .RegisterQuery(zq,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++z_hits; })
                  .ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 5, 6, "z", 2)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 9, 9, "w", 3)).ok());
  EXPECT_EQ(path_hits, 1);
  EXPECT_EQ(z_hits, 1);
  EXPECT_EQ(engine.num_queries(), 2u);
}

TEST(EngineTest, EndpointLabelsFilterRouting) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  QueryGraphBuilder builder(&interner);
  const auto host = builder.AddVertex("Host");
  const auto user = builder.AddVertex("User");
  builder.AddEdge(host, user, "login");
  const QueryGraph q = builder.Build().value();
  int hits = 0;
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());
  // Right edge label, wrong endpoint labels: must not match.
  ASSERT_TRUE(engine
                  .ProcessEdge(MakeEdge(&interner, 1, 2, "login", 0, "User",
                                        "User"))
                  .ok());
  EXPECT_EQ(hits, 0);
  ASSERT_TRUE(engine
                  .ProcessEdge(MakeEdge(&interner, 3, 4, "login", 1, "Host",
                                        "User"))
                  .ok());
  EXPECT_EQ(hits, 1);
}

TEST(EngineTest, RejectedEdgesAreCountedNotFatal) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 10)).ok());
  EXPECT_FALSE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 5)).ok());
  EXPECT_EQ(engine.metrics().edges_rejected, 1u);
  // The engine keeps working afterwards.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 11)).ok());
  EXPECT_EQ(engine.metrics().edges_processed, 2u);
}

TEST(EngineTest, RetentionFollowsLargestWindow) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 50, nullptr)
                  .ok());
  EXPECT_EQ(engine.graph().retention(), 50);
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 200, nullptr)
                  .ok());
  EXPECT_EQ(engine.graph().retention(), 200);
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100, nullptr)
                  .ok());
  EXPECT_EQ(engine.graph().retention(), 200);  // never shrinks
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 kMaxTimestamp, nullptr)
                  .ok());
  EXPECT_EQ(engine.graph().retention(), kMaxTimestamp);
}

TEST(EngineTest, MidStreamRegistrationBackfillsTheWindow) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  int hits = 0;
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());
  // The x edge predates registration; the backfill replays it into the new
  // tree's leaf stores, so the completion arriving now is found
  // (continuous-query semantics: results from registration time onward).
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  EXPECT_EQ(hits, 1);
}

TEST(EngineTest, MidStreamRegistrationSuppressesPastCompletions) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  const QueryGraph q = PathQuery(&interner);
  // A whole match exists before registration: it completed in the past,
  // so the callback must not fire for it.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 1, 2, "x", 0)).ok());
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 3, "y", 1)).ok());
  int hits = 0;
  ASSERT_TRUE(engine
                  .RegisterQuery(q,
                                 DecompositionStrategy::kLeftDeepEdgeOrder,
                                 100,
                                 [&](const CompleteMatch&) { ++hits; })
                  .ok());
  EXPECT_EQ(hits, 0);
  // A second y edge arriving now completes a *new* match with the old x.
  ASSERT_TRUE(engine.ProcessEdge(MakeEdge(&interner, 2, 4, "y", 2)).ok());
  EXPECT_EQ(hits, 1);
}

TEST(EngineTest, StatisticsCollectionFeedsPlanner) {
  Interner interner;
  EngineOptions options;
  options.collect_statistics = true;
  options.wedge_sample_rate = 1.0;
  StreamWorksEngine engine(&interner, options);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        engine.ProcessEdge(MakeEdge(&interner, i, 100 + i, "common", i))
            .ok());
  }
  ASSERT_TRUE(
      engine.ProcessEdge(MakeEdge(&interner, 1, 200, "rare", 30)).ok());
  EXPECT_EQ(engine.statistics().num_edges_observed(), 21u);

  // A selectivity-planned query registered now puts the rare edge lowest.
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "common");
  builder.AddEdge(v1, v2, "rare");
  const QueryGraph q = builder.Build().value();
  const int id =
      engine
          .RegisterQuery(q, DecompositionStrategy::kSelectivityLeftDeep,
                         100, nullptr)
          .value();
  const Decomposition& d = engine.sjtree(id).decomposition();
  EXPECT_TRUE(d.node(d.leaves()[0]).edges.Contains(1));
}

TEST(EngineTest, ProcessBatchCountsBatches) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  EdgeBatch batch = {MakeEdge(&interner, 1, 2, "x", 0),
                     MakeEdge(&interner, 2, 3, "y", 0)};
  ASSERT_TRUE(engine.ProcessBatch(batch).ok());
  EXPECT_EQ(engine.metrics().batches_processed, 1u);
  EXPECT_EQ(engine.metrics().edges_processed, 2u);
}

TEST(EngineTest, ExpirySweepBoundsPartialMatches) {
  Interner interner;
  EngineOptions options;
  options.expiry_sweep_interval = 16;
  StreamWorksEngine engine(&interner, options);
  const QueryGraph q = PathQuery(&interner);
  const int id = engine
                     .RegisterQuery(
                         q, DecompositionStrategy::kLeftDeepEdgeOrder, 10,
                         nullptr)
                     .value();
  // A drip of x edges that never complete; the sweep must keep the stores
  // from accumulating dead partials.
  for (Timestamp t = 0; t < 600; t += 3) {
    ASSERT_TRUE(
        engine.ProcessEdge(MakeEdge(&interner, t, t + 1, "x", t)).ok());
  }
  // Live partials can only come from the last window (10 ticks / 3 per
  // edge = at most ~4) plus one sweep interval of not-yet-swept entries.
  EXPECT_LE(engine.query_info(id).live_partial_matches, 24u);
  EXPECT_GT(engine.query_info(id).peak_partial_matches, 0u);
}

// --- Full-engine equivalence against both baselines --------------------------------

struct EngineEquivalenceCase {
  uint64_t seed;
  int query_vertices;
  int query_edges;
  Timestamp window;
  DecompositionStrategy strategy;
};

class EngineEquivalenceTest
    : public testing::TestWithParam<EngineEquivalenceCase> {};

TEST_P(EngineEquivalenceTest, EngineNaiveAndRecomputeAgree) {
  const auto& c = GetParam();
  Interner interner;
  RandomStreamOptions opt;
  opt.seed = c.seed;
  opt.num_vertices = 18;
  opt.num_edges = 350;
  opt.num_vertex_labels = 2;
  opt.num_edge_labels = 2;
  const auto edges = GenerateUniformStream(opt, &interner);

  Rng rng(c.seed ^ 0xabcdef);
  const QueryGraph q =
      GenerateRandomConnectedQuery(rng, c.query_vertices, c.query_edges, 2,
                                   2, &interner)
          .value();

  StreamWorksEngine engine(&interner);
  std::multiset<uint64_t> engine_sigs;
  ASSERT_TRUE(engine
                  .RegisterQuery(q, c.strategy, c.window,
                                 [&](const CompleteMatch& cm) {
                                   engine_sigs.insert(
                                       cm.match.MappingSignature());
                                 })
                  .ok());

  NaiveIncrementalMatcher naive(&q, c.window, &interner);
  RecomputeMatcher recompute(&q, c.window, &interner);
  std::multiset<uint64_t> naive_sigs;
  std::multiset<uint64_t> recompute_sigs;

  for (const EdgeBatch& batch : BatchByTick(edges)) {
    ASSERT_TRUE(engine.ProcessBatch(batch).ok());
    const std::vector<Match> found_919 = naive.ProcessBatch(batch).value();
    for (const Match& m : found_919) {
      naive_sigs.insert(m.MappingSignature());
    }
    const std::vector<Match> found_623 = recompute.ProcessBatch(batch).value();
    for (const Match& m : found_623) {
      recompute_sigs.insert(m.MappingSignature());
    }
  }
  EXPECT_EQ(engine_sigs, naive_sigs) << q.ToString(interner);
  EXPECT_EQ(engine_sigs, recompute_sigs) << q.ToString(interner);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalenceTest,
    testing::Values(
        EngineEquivalenceCase{11, 2, 1, 8,
                              DecompositionStrategy::kLeftDeepEdgeOrder},
        EngineEquivalenceCase{12, 3, 2, 12,
                              DecompositionStrategy::kSelectivityLeftDeep},
        EngineEquivalenceCase{13, 3, 3, 15,
                              DecompositionStrategy::kPrimitivePairs},
        EngineEquivalenceCase{14, 4, 3, 10,
                              DecompositionStrategy::kBalancedBisection},
        EngineEquivalenceCase{15, 4, 4, 20,
                              DecompositionStrategy::kPrimitivePairs},
        EngineEquivalenceCase{16, 5, 4, 25,
                              DecompositionStrategy::kSelectivityLeftDeep},
        EngineEquivalenceCase{17, 4, 5, 18,
                              DecompositionStrategy::kLeftDeepEdgeOrder},
        EngineEquivalenceCase{18, 5, 5, 30,
                              DecompositionStrategy::kBalancedBisection}));

TEST(EngineEquivalenceOnAttackStreamTest, SmurfAgreesAcrossAllMatchers) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 99;
  opt.background_edges = 3000;
  opt.attack_label_noise = true;  // noise makes partial matches non-trivial
  NetflowGenerator gen(opt, &interner);
  gen.InjectSmurf(30, 3);
  gen.InjectSmurf(90, 3);
  const auto edges = gen.Generate();
  const QueryGraph q = BuildSmurfQuery(&interner, 2);
  const Timestamp window = 40;

  StreamWorksEngine engine(&interner);
  std::multiset<uint64_t> engine_sigs;
  ASSERT_TRUE(engine
                  .RegisterQuery(q, DecompositionStrategy::kPrimitivePairs,
                                 window,
                                 [&](const CompleteMatch& cm) {
                                   engine_sigs.insert(
                                       cm.match.MappingSignature());
                                 })
                  .ok());
  NaiveIncrementalMatcher naive(&q, window, &interner);
  std::multiset<uint64_t> naive_sigs;
  for (const EdgeBatch& batch : BatchByTick(edges)) {
    ASSERT_TRUE(engine.ProcessBatch(batch).ok());
    const std::vector<Match> found_919 = naive.ProcessBatch(batch).value();
    for (const Match& m : found_919) {
      naive_sigs.insert(m.MappingSignature());
    }
  }
  EXPECT_EQ(engine_sigs, naive_sigs);
  EXPECT_GT(engine_sigs.size(), 0u);
}

}  // namespace
}  // namespace streamworks
