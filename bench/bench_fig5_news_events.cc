// Experiment F5 (paper Fig. 5): a collection of topic-specialised news
// event queries running concurrently; output is the per-location event
// table behind the demo's map visualisation. Each query is the Fig. 2
// pattern with the keyword vertex constrained to one topic label.

#include <iostream>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/dedup.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/workload_queries.h"
#include "streamworks/viz/event_table.h"

namespace streamworks {
namespace {

void Run() {
  bench::Banner("F5", "concurrent topic queries with per-location events");
  Interner interner;

  NewsGenerator::Options opt;
  opt.seed = 55;
  opt.num_articles = 30000;
  opt.entity_skew = 0.8;
  NewsGenerator generator(opt, &interner);
  const Timestamp span = opt.num_articles / opt.articles_per_tick;
  // A scripted burst of events across topics and times.
  generator.InjectEvent(span / 6, "politics", 3);
  generator.InjectEvent(span / 4, "accident", 3);
  generator.InjectEvent(span / 3, "politics", 3);
  generator.InjectEvent(span / 2, "sports", 3);
  generator.InjectEvent(2 * span / 3, "health", 3);
  generator.InjectEvent(5 * span / 6, "accident", 3);
  const auto edges = generator.Generate();

  StreamWorksEngine engine(&interner);
  EventTable events;
  const char* topics[] = {"politics", "sports",  "business",
                          "accident", "science", "health"};
  for (const char* topic : topics) {
    const QueryGraph q = BuildNewsEventQuery(&interner, topic, 3);
    SW_CHECK_OK(engine
                    .RegisterQuery(
                        q, DecompositionStrategy::kSelectivityLeftDeep,
                        /*window=*/50,
                        DistinctSubgraphs([&, topic](
                                              const CompleteMatch& cm) {
                          events.Add(
                              cm.completed_at, StrCat("event_", topic),
                              StrCat("location_",
                                     engine.graph().external_id(
                                         cm.match.vertex(1)) -
                                         NewsGenerator::kLocationBase),
                              "articles=3");
                        }))
                    .status());
  }

  const double seconds = bench::Replay(engine, edges);

  std::cout << "-- event stream (first 12 rows) --\n";
  EventTable head;
  for (size_t i = 0; i < std::min<size_t>(12, events.rows().size()); ++i) {
    const auto& row = events.rows()[i];
    head.Add(row.time, row.query, row.key, row.detail);
  }
  std::cout << head.RenderAscii();

  std::cout << "\n-- events by location (map view substitute) --\n";
  for (const auto& [key, count] : events.CountByKey()) {
    std::cout << "  " << key << ": " << count << "\n";
  }
  std::cout << "\n-- per-query completions --\n";
  bench::Table table({22, 14, 16});
  table.Row({"query", "mappings", "peak partials"});
  table.Separator();
  for (size_t qid = 0; qid < engine.num_queries(); ++qid) {
    const QueryRuntimeInfo info = engine.query_info(static_cast<int>(qid));
    table.Row({info.name, FormatCount(info.completions),
               FormatCount(info.peak_partial_matches)});
  }
  std::cout << "\ndistinct events: " << events.size()
            << " (6 injected; extras are organic co-occurrences)\n"
            << "stream: " << FormatCount(edges.size()) << " edges, 6 "
            << "concurrent queries, " << FormatDouble(seconds, 3) << "s ("
            << bench::Rate(edges.size(), seconds) << " edges/s)\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
