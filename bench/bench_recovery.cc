// Prices the durability subsystem: WAL append/replay throughput, snapshot
// write/load throughput, and the end-to-end crash-recovery path (restore
// window -> re-register -> replay WAL tail) against in-memory ingest.
//
//   $ ./build/bench/bench_recovery [num_edges] [--json PATH]
//
// Machine-readable results land in bench-results/bench_recovery.json (or
// the --json path); the committed baseline is
// bench-results/BENCH_recovery.json. Run on an idle machine for stable
// numbers — everything here is I/O-bound by design.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/persist/durable_backend.h"
#include "streamworks/persist/edge_log.h"
#include "streamworks/persist/manager.h"
#include "streamworks/persist/snapshot.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks::bench {
namespace {

namespace fs = std::filesystem;

struct Result {
  std::string scenario;
  uint64_t edges = 0;
  double seconds = 0;
  uint64_t bytes = 0;  ///< On-disk footprint, when meaningful.

  double eps() const { return seconds > 0 ? edges / seconds : 0; }
};

std::string ScratchDir(std::string_view leg) {
  const fs::path dir = fs::temp_directory_path() /
                       ("sw_bench_recovery_" + std::string(leg));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<StreamEdge> BenchStream(Interner* interner, int num_edges) {
  RandomStreamOptions opt;
  opt.seed = 7;
  opt.num_vertices = 2000;
  opt.num_edges = num_edges;
  opt.num_vertex_labels = 3;
  opt.num_edge_labels = 4;
  return GenerateUniformStream(opt, interner);
}

Result BenchWalAppend(const std::vector<StreamEdge>& edges,
                      const Interner& interner, int fsync_every,
                      size_t batch_size) {
  const std::string dir = ScratchDir(
      "wal_append_f" + std::to_string(fsync_every));
  EdgeLogOptions options;
  options.fsync_every_records = fsync_every;
  auto log = EdgeLog::Open(dir, &interner, options).value();
  Timer timer;
  for (size_t i = 0; i < edges.size(); i += batch_size) {
    const size_t n = std::min(batch_size, edges.size() - i);
    EdgeBatch batch(edges.begin() + static_cast<ptrdiff_t>(i),
                    edges.begin() + static_cast<ptrdiff_t>(i + n));
    if (!log->Append(batch).ok()) break;
  }
  log->Sync().ok();
  Result result{fsync_every > 0
                    ? "wal append fsync" + std::to_string(fsync_every)
                    : "wal append",
                edges.size(), timer.ElapsedSeconds(),
                log->stats().bytes_appended};
  fs::remove_all(dir);
  return result;
}

Result BenchWalReplay(const std::vector<StreamEdge>& edges,
                      const Interner& interner, size_t batch_size) {
  const std::string dir = ScratchDir("wal_replay");
  {
    auto log = EdgeLog::Open(dir, &interner).value();
    for (size_t i = 0; i < edges.size(); i += batch_size) {
      const size_t n = std::min(batch_size, edges.size() - i);
      EdgeBatch batch(edges.begin() + static_cast<ptrdiff_t>(i),
                      edges.begin() + static_cast<ptrdiff_t>(i + n));
      log->Append(batch).ok();
    }
  }
  Interner replay_side;
  uint64_t replayed = 0;
  Timer timer;
  EdgeLog::Replay(dir, 0, &replay_side,
                  [&](const EdgeBatch& batch, uint64_t) {
                    replayed += batch.size();
                  })
      .value();
  Result result{"wal replay", replayed, timer.ElapsedSeconds(), 0};
  fs::remove_all(dir);
  return result;
}

/// Snapshot write + load over a real engine window of `edges`.
std::pair<Result, Result> BenchSnapshot(
    const std::vector<StreamEdge>& edges, Interner* interner) {
  const std::string dir = ScratchDir("snapshot");
  StreamWorksEngine engine(interner);
  for (const StreamEdge& e : edges) engine.ProcessEdge(e).ok();

  SnapshotContents contents;
  contents.wal_seq = edges.size();
  Timer write_timer;
  contents.window = engine.ExportWindow();
  const std::string path =
      WriteSnapshotFile(dir, contents, *interner).value();
  Result write{"snapshot write", contents.window.edges.size(),
               write_timer.ElapsedSeconds(), fs::file_size(path)};

  Interner load_side;
  Timer load_timer;
  auto loaded = LoadLatestSnapshot(dir, &load_side).value();
  StreamWorksEngine restored(&load_side);
  for (const PersistedEdge& pe : loaded.contents.window.edges) {
    restored.RestoreWindowEdge(pe.edge, pe.id).ok();
  }
  restored.FinishWindowRestore(loaded.contents.window.next_edge_id,
                               loaded.contents.window.watermark);
  Result load{"snapshot load+restore", loaded.contents.window.edges.size(),
              load_timer.ElapsedSeconds(), write.bytes};
  fs::remove_all(dir);
  return {write, load};
}

/// End-to-end: a durable service crashes mid-stream (snapshot at half,
/// WAL tail for the rest); time DurabilityManager::Start() of the next
/// incarnation.
Result BenchEndToEndRecovery(const std::vector<StreamEdge>& ref_edges,
                             int num_edges) {
  const std::string dir = ScratchDir("recover");
  (void)ref_edges;  // regenerated per stack: interners are per-process
  {
    Interner interner;
    const auto edges = BenchStream(&interner, num_edges);
    StreamWorksEngine engine(&interner);
    SingleEngineBackend inner(&engine);
    DurableBackend durable(&inner);
    QueryService service(&durable);
    DurabilityOptions options;
    options.data_dir = dir;
    DurabilityManager manager(options, &service, &durable, &interner);
    manager.Start().value();
    const int session = service.OpenSession("bench").value();
    QueryGraphBuilder b(&interner);
    const auto u = b.AddVertex("VL0");
    const auto v = b.AddVertex("VL1");
    b.AddEdge(u, v, "EL0");
    SubmitOptions opt;
    opt.window = 64;
    opt.tag = "q";
    opt.queue_capacity = 1u << 18;
    service.Submit(session, b.Build("bench_q").value(), opt).value();
    for (size_t i = 0; i < edges.size(); ++i) {
      service.Feed(edges[i]).ok();
      if (i + 1 == edges.size() / 2) manager.SnapshotNow().value();
    }
  }
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend inner(&engine);
  DurableBackend durable(&inner);
  QueryService service(&durable);
  DurabilityOptions options;
  options.data_dir = dir;
  DurabilityManager manager(options, &service, &durable, &interner);
  Timer timer;
  const RecoveryReport report = manager.Start().value();
  Result result{"end-to-end recovery",
                report.window_edges + report.replayed_edges,
                timer.ElapsedSeconds(), 0};
  fs::remove_all(dir);
  return result;
}

void WriteJson(const std::vector<Result>& rows, const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"recovery\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Result& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"edges\": "
        << r.edges << ", \"seconds\": " << FormatDouble(r.seconds, 4)
        << ", \"eps\": " << FormatDouble(r.eps(), 1)
        << ", \"bytes\": " << r.bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

void RunAll(int num_edges, const std::string& json_path) {
  Banner("recovery", "WAL + snapshot + crash-recovery throughput");
  Interner interner;
  const auto edges = BenchStream(&interner, num_edges);

  std::vector<Result> rows;
  rows.push_back(BenchWalAppend(edges, interner, /*fsync_every=*/0, 512));
  rows.push_back(BenchWalAppend(edges, interner, /*fsync_every=*/64, 512));
  rows.push_back(BenchWalReplay(edges, interner, 512));
  auto [snap_write, snap_load] = BenchSnapshot(edges, &interner);
  rows.push_back(snap_write);
  rows.push_back(snap_load);
  rows.push_back(BenchEndToEndRecovery(edges, num_edges));

  Table table({24, 10, 12, 14, 12});
  table.Row({"scenario", "edges", "seconds", "edges/s", "bytes"});
  table.Separator();
  for (const Result& r : rows) {
    table.Row({r.scenario, std::to_string(r.edges),
               FormatDouble(r.seconds, 4), FormatDouble(r.eps(), 0),
               std::to_string(r.bytes)});
  }
  WriteJson(rows, json_path);
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 50000;
  std::string json_path = "bench-results/bench_recovery.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    int64_t n = 0;
    if (!streamworks::ParseInt64(arg, &n) || n <= 0) {
      std::cerr << "usage: bench_recovery [num_edges] [--json PATH]\n";
      return 1;
    }
    num_edges = static_cast<int>(n);
  }
  streamworks::bench::RunAll(num_edges, json_path);
  return 0;
}
