// Experiment A3 (extension — the paper's §4.3 future work implemented):
// "continuously collecting the statistics information from the data stream
// and updating the query decomposition". A two-phase stream flips its
// label distribution mid-way; a statically planned query keeps the join
// order chosen for phase 1, while the adaptive engine re-plans from live
// statistics and swaps the SJ-Tree. Both emit identical matches; the
// adaptive engine's partial-match population tracks the drift.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/core/engine.h"

namespace streamworks {
namespace {

/// Two-phase stream over `hosts` vertices: in phase 1, "a" edges dominate
/// and "b" edges are rare; after the flip tick the rates swap. "c" edges
/// flow at a constant moderate rate. The query is the path
/// v0-a->v1-c->v2-b->v3 — the drifting labels sit on the *outside* with
/// the steady label in the middle, so a well-planned tree can always seed
/// its intermediate join from whichever outside edge is currently rare,
/// while a phase-1-optimal static plan materialises the wrong intermediate
/// join for the whole second phase.
std::vector<StreamEdge> DriftingStream(Interner* interner, int hosts,
                                       Timestamp ticks, int per_tick) {
  Rng rng(4242);
  const LabelId host = interner->Intern("V");
  const LabelId a = interner->Intern("a");
  const LabelId b = interner->Intern("b");
  const LabelId c = interner->Intern("c");
  std::vector<StreamEdge> edges;
  for (Timestamp t = 0; t < ticks; ++t) {
    const bool phase2 = t >= ticks / 2;
    for (int i = 0; i < per_tick; ++i) {
      StreamEdge e;
      e.src = rng.NextBounded(hosts);
      e.dst = rng.NextBounded(hosts);
      e.src_label = host;
      e.dst_label = host;
      if (i < 2) {
        e.edge_label = c;  // constant moderate rate
      } else if (i == 2) {
        e.edge_label = phase2 ? a : b;  // the rare one
      } else {
        e.edge_label = phase2 ? b : a;  // the common one
      }
      e.ts = t;
      edges.push_back(e);
    }
  }
  return edges;
}

struct Outcome {
  uint64_t mappings = 0;
  double phase1_avg_partials = 0;  ///< mean live partials before the flip
  double phase2_avg_partials = 0;  ///< mean live partials after the flip
  uint64_t replans = 0;
  double seconds = 0;
};

Outcome Run(const std::vector<StreamEdge>& edges, Interner* interner,
            Timestamp flip_tick, size_t warmup_edges,
            int replan_interval) {
  QueryGraphBuilder builder(interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  const auto v3 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "a");
  builder.AddEdge(v1, v2, "c");
  builder.AddEdge(v2, v3, "b");
  const QueryGraph query = builder.Build("drift_path3").value();

  EngineOptions options;
  options.collect_statistics = true;
  options.wedge_sample_rate = 0.25;
  options.replan_interval = replan_interval;
  options.expiry_sweep_interval = 128;
  // Recency-weighted statistics: without decay, cumulative counts average
  // the two phases and re-planning reacts a full stream too late.
  options.stats_half_life = 4000;
  StreamWorksEngine engine(interner, options);
  Outcome out;
  // Warm-up: both engines observe a phase-1 prefix before registering, so
  // the static plan is *informed* — optimal for phase 1 specifically.
  size_t next = 0;
  for (; next < warmup_edges; ++next) {
    SW_CHECK_OK(engine.ProcessEdge(edges[next]));
  }
  const int id =
      engine
          .RegisterQuery(query,
                         DecompositionStrategy::kSelectivityLeftDeep,
                         /*window=*/8,
                         [&](const CompleteMatch&) { ++out.mappings; })
          .value();
  Timer timer;
  double phase_sum[2] = {0, 0};
  uint64_t phase_count[2] = {0, 0};
  for (; next < edges.size(); ++next) {
    const StreamEdge& e = edges[next];
    SW_CHECK_OK(engine.ProcessEdge(e));
    const int phase = e.ts >= flip_tick ? 1 : 0;
    phase_sum[phase] += static_cast<double>(
        engine.query_info(id).live_partial_matches);
    ++phase_count[phase];
  }
  out.seconds = timer.ElapsedSeconds();
  out.replans = engine.replans_performed();
  out.phase1_avg_partials = phase_sum[0] / std::max<uint64_t>(1,
                                                              phase_count[0]);
  out.phase2_avg_partials = phase_sum[1] / std::max<uint64_t>(1,
                                                              phase_count[1]);
  return out;
}

void RunBench() {
  bench::Banner("A3",
                "adaptive re-planning under label-distribution drift");
  Interner interner;
  const auto edges =
      DriftingStream(&interner, /*hosts=*/96, /*ticks=*/4000,
                     /*per_tick=*/20);
  std::cout << "stream: " << FormatCount(edges.size())
            << " edges; the a:b rate flips from 19:1 to 1:19 at "
               "mid-stream\n\n";

  const Timestamp flip = 2000;
  const size_t warmup = 8000;  // 400 ticks of phase-1 statistics
  const Outcome static_run =
      Run(edges, &interner, flip, warmup, /*replan_interval=*/0);
  const Outcome adaptive_run =
      Run(edges, &interner, flip, warmup, /*replan_interval=*/2000);
  SW_CHECK_EQ(static_run.mappings, adaptive_run.mappings);

  bench::Table table({12, 12, 18, 18, 10, 10});
  table.Row({"engine", "mappings", "avg partials ph1", "avg partials ph2",
             "replans", "seconds"});
  table.Separator();
  table.Row({"static", FormatCount(static_run.mappings),
             FormatDouble(static_run.phase1_avg_partials, 1),
             FormatDouble(static_run.phase2_avg_partials, 1),
             FormatCount(static_run.replans),
             FormatDouble(static_run.seconds, 3)});
  table.Row({"adaptive", FormatCount(adaptive_run.mappings),
             FormatDouble(adaptive_run.phase1_avg_partials, 1),
             FormatDouble(adaptive_run.phase2_avg_partials, 1),
             FormatCount(adaptive_run.replans),
             FormatDouble(adaptive_run.seconds, 3)});
  std::cout << "\nexpected shape: identical mappings and matching phase-1 "
               "populations; after the flip the phase-1-optimal static "
               "plan materialises the now-common intermediate join, while "
               "the adaptive engine (recency-weighted statistics, >=1 "
               "replan) swaps trees and keeps its phase-2 population near "
               "the phase-1 level\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::RunBench(); }
