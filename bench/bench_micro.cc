// Experiment M1: google-benchmark micro-benchmarks for the engine's hot
// paths — window-graph ingest/eviction, anchored local search, match-store
// insert/probe, join validation, and the batch oracle (for scale context).

#include <benchmark/benchmark.h>

#include "streamworks/common/interner.h"
#include "streamworks/common/random.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/core/engine.h"
#include "streamworks/match/backtrack.h"
#include "streamworks/match/local_search.h"
#include "streamworks/match/subgraph_iso.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"
#include "streamworks/sjtree/match_store.h"
#include "streamworks/sjtree/sj_tree.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

std::vector<StreamEdge> SharedStream(Interner* interner, int n) {
  RandomStreamOptions opt;
  opt.seed = 99;
  opt.num_vertices = 512;
  opt.num_edges = n;
  opt.num_vertex_labels = 1;
  opt.num_edge_labels = 4;
  opt.edges_per_tick = 20;
  return GeneratePreferentialStream(opt, interner);
}

void BM_GraphInsertWithEviction(benchmark::State& state) {
  Interner interner;
  const auto edges = SharedStream(&interner, 100000);
  for (auto _ : state) {
    DynamicGraph graph(&interner);
    graph.set_retention(state.range(0));
    for (const StreamEdge& e : edges) {
      benchmark::DoNotOptimize(graph.AddEdge(e).value());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_GraphInsertWithEviction)->Arg(10)->Arg(100)->Arg(1000);

void BM_LocalSearchPerEdge(benchmark::State& state) {
  Interner interner;
  const auto edges = SharedStream(&interner, 20000);
  // 2-edge path over the most common random labels.
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("VL0");
  const auto v1 = builder.AddVertex("VL0");
  const auto v2 = builder.AddVertex("VL0");
  builder.AddEdge(v0, v1, "EL0");
  builder.AddEdge(v1, v2, "EL0");
  const QueryGraph query = builder.Build().value();
  const auto order = ConnectedEdgeOrder(query, query.AllEdges(), 0);

  DynamicGraph graph(&interner);
  graph.set_retention(50);
  std::vector<EdgeId> ids;
  for (const StreamEdge& e : edges) ids.push_back(graph.AddEdge(e).value());

  size_t found = 0;
  for (auto _ : state) {
    // Anchor on the most recent live edges.
    for (size_t i = 0; i < 256; ++i) {
      const EdgeId anchor = graph.next_edge_id() - 1 - i;
      FindAnchoredMatches(graph, query, order, anchor, /*window=*/50,
                          [&](const Match&) {
                            ++found;
                            return true;
                          });
    }
  }
  benchmark::DoNotOptimize(found);
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_LocalSearchPerEdge);

void BM_MatchStoreInsertProbe(benchmark::State& state) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "e");
  const QueryGraph query = builder.Build().value();
  Rng rng(7);
  for (auto _ : state) {
    MatchStore store;
    for (int i = 0; i < 4096; ++i) {
      Match m(query);
      m.BindVertex(0, static_cast<VertexId>(rng.NextBounded(512)));
      m.BindVertex(1, static_cast<VertexId>(rng.NextBounded(512)));
      m.BindEdge(0, i, i);
      store.Insert(rng.NextBounded(1024), m);
      size_t hits = 0;
      store.ProbeKey(rng.NextBounded(1024), /*cutoff=*/i - 512,
                     [&](const Match&) { ++hits; });
      benchmark::DoNotOptimize(hits);
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_MatchStoreInsertProbe);

void BM_JoinCompatible(benchmark::State& state) {
  Interner interner;
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("V");
  const auto v1 = builder.AddVertex("V");
  const auto v2 = builder.AddVertex("V");
  builder.AddEdge(v0, v1, "x");
  builder.AddEdge(v1, v2, "y");
  const QueryGraph query = builder.Build().value();
  Match a(query);
  a.BindVertex(0, 1);
  a.BindVertex(1, 2);
  a.BindEdge(0, 10, 5);
  Match b(query);
  b.BindVertex(1, 2);
  b.BindVertex(2, 3);
  b.BindEdge(1, 11, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinCompatible(a, b, 100));
  }
}
BENCHMARK(BM_JoinCompatible);

void BM_SjTreeProcessEdge(benchmark::State& state) {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 5;
  opt.background_edges = 50000;
  NetflowGenerator generator(opt, &interner);
  generator.InjectSmurf(100, 3);
  const auto edges = generator.Generate();
  const QueryGraph query = BuildSmurfQuery(&interner, 3);
  std::vector<Bitset64> leaves;
  for (QueryEdgeId e : ConnectedEdgeOrder(query, query.AllEdges(), 0)) {
    leaves.push_back(Bitset64::Single(e));
  }
  for (auto _ : state) {
    SjTree tree(&query,
                Decomposition::MakeLeftDeep(query, leaves).value(),
                /*window=*/60);
    DynamicGraph graph(&interner);
    graph.set_retention(60);
    std::vector<Match> completed;
    for (const StreamEdge& e : edges) {
      tree.ProcessEdge(graph, graph.AddEdge(e).value(), &completed);
    }
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_SjTreeProcessEdge);

void BM_ServiceFeedBatch(benchmark::State& state) {
  // The observability overhead gate: FeedBatch ingest through the full
  // service path with the pipeline-stage hooks off (Arg 0) vs on (Arg 1).
  // The two arms must stay within a few percent of each other.
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend, ServiceLimits{});
  PipelineMetrics pipeline;
  if (state.range(0) != 0) service.set_pipeline_metrics(&pipeline);

  const int session = service.OpenSession("bench").value();
  QueryGraphBuilder builder(&interner);
  const auto a = builder.AddVertex("V");
  const auto b = builder.AddVertex("V");
  builder.AddEdge(a, b, "ping");
  const QueryGraph query = builder.Build().value();
  SubmitOptions options;
  options.window = 1000;
  options.queue_capacity = 64;
  options.policy = OverflowPolicy::kDropOldest;
  service.Submit(session, query, options).value();

  // 512-edge batches, one matching edge per 16 so the join path runs but
  // the queue (drop-oldest) stays bounded.
  const LabelId v_label = interner.Intern("V");
  const LabelId ping = interner.Intern("ping");
  const LabelId bg = interner.Intern("bg");
  constexpr int kBatchSize = 512;
  constexpr int kBatches = 16;
  EdgeBatch batch(kBatchSize);
  Timestamp clock = 0;
  for (auto _ : state) {
    for (int bi = 0; bi < kBatches; ++bi) {
      for (int i = 0; i < kBatchSize; ++i) {
        StreamEdge& e = batch[i];
        e.src = 1000 + (i * 7) % 503;
        e.dst = 2000 + (i * 13) % 509;
        e.src_label = v_label;
        e.dst_label = v_label;
        e.edge_label = (i % 16 == 0) ? ping : bg;
        e.ts = ++clock;
      }
      service.FeedBatch(batch);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchSize) * kBatches);
  state.counters["hooks"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ServiceFeedBatch)->Arg(0)->Arg(1);

void BM_BatchIsoOracle(benchmark::State& state) {
  Interner interner;
  const auto edges = SharedStream(&interner, state.range(0));
  QueryGraphBuilder builder(&interner);
  const auto v0 = builder.AddVertex("VL0");
  const auto v1 = builder.AddVertex("VL0");
  const auto v2 = builder.AddVertex("VL0");
  builder.AddEdge(v0, v1, "EL0");
  builder.AddEdge(v1, v2, "EL1");
  const QueryGraph query = builder.Build().value();
  DynamicGraph graph(&interner);
  for (const StreamEdge& e : edges) graph.AddEdge(e).value();
  IsoOptions options;
  options.window = 100;
  for (auto _ : state) {
    size_t n = 0;
    ForEachMatch(graph, query, options, [&](const Match&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_BatchIsoOracle)->Arg(2000)->Arg(8000);

}  // namespace
}  // namespace streamworks

BENCHMARK_MAIN();
