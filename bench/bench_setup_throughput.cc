// Experiment S1 (paper §6.1 demonstration setup): sustained engine
// throughput on a CAIDA-like traffic stream — the paper streams 50-100M
// records/hour on a 48-core Opteron; this bench reports single-threaded
// laptop-scale edges/s and its scaling shape across (a) window size and
// (b) number of concurrent queries. Absolute numbers differ from the
// paper's testbed; the shape (graceful degradation with window size and
// query count) is the reproduction target.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/core/parallel.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

std::vector<StreamEdge> MakeStream(Interner* interner, int edges) {
  NetflowGenerator::Options opt;
  opt.seed = 601;
  opt.num_hosts = 1024;
  opt.num_subnets = 16;
  opt.background_edges = edges;
  opt.edges_per_tick = 50;
  opt.attack_label_noise = true;
  NetflowGenerator generator(opt, interner);
  const Timestamp span = edges / opt.edges_per_tick;
  for (Timestamp t = span / 8; t < span; t += span / 8) {
    generator.InjectSmurf(t, 3);
  }
  return generator.Generate();
}

void RegisterQueries(StreamWorksEngine& engine, Interner* interner,
                     int count, Timestamp window, uint64_t* completions) {
  std::vector<QueryGraph> library = {
      BuildSmurfQuery(interner, 3),
      BuildWormQuery(interner, 3),
      BuildPortScanQuery(interner, 4),
      BuildExfiltrationQuery(interner),
      BuildSmurfQuery(interner, 2),
      BuildWormQuery(interner, 2),
      BuildPortScanQuery(interner, 3),
      BuildExfiltrationQuery(interner),
  };
  for (int i = 0; i < count; ++i) {
    SW_CHECK_OK(engine
                    .RegisterQuery(library[i % library.size()],
                                   DecompositionStrategy::kPrimitivePairs,
                                   window,
                                   [completions](const CompleteMatch&) {
                                     ++*completions;
                                   })
                    .status());
  }
}

void Run() {
  bench::Banner("S1", "engine throughput vs window size and query count");
  constexpr int kEdges = 400000;

  std::cout << "-- (a) window sweep, 1 smurf query --\n";
  bench::Table wtable({10, 12, 12, 14, 14});
  wtable.Row({"window", "edges/s", "matches", "peak partials",
              "stored edges"});
  wtable.Separator();
  for (const Timestamp window : {10, 50, 250, 1000, 4000}) {
    Interner interner;
    const auto edges = MakeStream(&interner, kEdges);
    StreamWorksEngine engine(&interner);
    uint64_t completions = 0;
    RegisterQueries(engine, &interner, 1, window, &completions);
    const double seconds = bench::Replay(engine, edges);
    wtable.Row({StrCat(window), bench::Rate(edges.size(), seconds),
                FormatCount(completions),
                FormatCount(engine.query_info(0).peak_partial_matches),
                FormatCount(engine.graph().num_stored_edges())});
  }

  std::cout << "\n-- (b) concurrent-query sweep, window 100 --\n";
  bench::Table qtable({10, 12, 12, 14});
  qtable.Row({"queries", "edges/s", "matches", "s total"});
  qtable.Separator();
  for (const int count : {1, 2, 4, 8}) {
    Interner interner;
    const auto edges = MakeStream(&interner, kEdges);
    StreamWorksEngine engine(&interner);
    uint64_t completions = 0;
    RegisterQueries(engine, &interner, count, /*window=*/100, &completions);
    const double seconds = bench::Replay(engine, edges);
    qtable.Row({StrCat(count), bench::Rate(edges.size(), seconds),
                FormatCount(completions), FormatDouble(seconds, 3)});
  }
  std::cout << "\n-- (c) multi-core shards, 8 queries, window 100 (the "
               "paper's 48-core axis) --\n";
  bench::Table stable({10, 12, 12, 12});
  stable.Row({"shards", "edges/s", "matches", "s total"});
  stable.Separator();
  for (const int shards : {1, 2, 4, 8}) {
    Interner interner;
    const auto edges = MakeStream(&interner, kEdges / 2);
    ParallelEngineGroup group(&interner, shards);
    std::vector<QueryGraph> library = {
        BuildSmurfQuery(&interner, 3),    BuildWormQuery(&interner, 3),
        BuildPortScanQuery(&interner, 4), BuildExfiltrationQuery(&interner),
        BuildSmurfQuery(&interner, 2),    BuildWormQuery(&interner, 2),
        BuildPortScanQuery(&interner, 3), BuildExfiltrationQuery(&interner),
    };
    for (const QueryGraph& q : library) {
      SW_CHECK_OK(group
                      .RegisterQuery(q,
                                     DecompositionStrategy::kPrimitivePairs,
                                     /*window=*/100, nullptr)
                      .status());
    }
    Timer timer;
    // Broadcast in chunks: per-edge broadcast spends its time waking the
    // consumers rather than matching.
    for (const EdgeBatch& chunk : BatchBySize(edges, 512)) {
      group.ProcessBatch(chunk);
    }
    group.Flush();
    const double seconds = timer.ElapsedSeconds();
    stable.Row({StrCat(shards), bench::Rate(edges.size(), seconds),
                FormatCount(group.total_completions()),
                FormatDouble(seconds, 3)});
  }

  std::cout << "\nexpected shape: throughput degrades gracefully (sub-"
               "linearly) with window size and query count; matches grow "
               "with both; sharding queries across cores recovers "
               "single-query throughput until broadcast ingest dominates\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
