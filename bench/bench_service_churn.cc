// Service-layer churn bench: sustained ingest throughput while tenants
// continuously submit and detach continuous queries mid-stream.
//
//   $ ./build/bench/bench_service_churn
//
// Each scenario replays the same synthetic netflow stream through a
// QueryService with four tenant sessions. At a fixed churn cadence the
// oldest live subscription of a rotating session is detached and a fresh
// query (rotating over three patterns) is submitted in its place — the
// admission path, the routing-index rebuild, and the mid-stream backfill
// all sit on the hot path. churn=0 is the stable-subscriber baseline; the
// delta against it prices query churn. Run on both backends: the
// single-threaded engine pays the backfill inline, the sharded group only
// quiesces the one shard that owns the churned query.

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/core/parallel.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"
#include "streamworks/stream/netflow_gen.h"

namespace streamworks::bench {
namespace {

constexpr int kNumSessions = 4;
constexpr int kInitialQueriesPerSession = 2;

const char* const kQueryCatalogue[] = {
    R"(query probe
node s Host
node t Host
edge s t synProbe
window 200)",
    R"(query echo_wedge
node a Host
node b Host
node v Host
edge a b icmpEchoReq
edge b v icmpEchoReply
window 200)",
    R"(query exfil
node i Host
node s Host
node x Host
edge i s copy
edge s x upload
window 400)",
};

struct ChurnResult {
  double wall_seconds = 0;
  uint64_t admitted = 0;
  uint64_t detaches = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
};

ChurnResult RunScenario(const std::vector<StreamEdge>& stream,
                        QueryBackend* backend, Interner* interner,
                        int churn_every) {
  std::vector<ParsedQuery> catalogue;
  for (const char* text : kQueryCatalogue) {
    auto parsed = ParseQueryText(text, interner);
    SW_CHECK(parsed.ok()) << parsed.status().ToString();
    catalogue.push_back(std::move(parsed).value());
  }

  ServiceLimits limits;
  limits.max_queries_per_session = 8;
  QueryService service(backend, limits);

  std::vector<int> sessions;
  std::vector<std::deque<int>> live_subs(kNumSessions);
  size_t next_query = 0;
  const auto submit = [&](int slot) {
    const ParsedQuery& pq = catalogue[next_query++ % catalogue.size()];
    SubmitOptions options;
    options.window = pq.window;
    auto sub = service.Submit(sessions[slot], pq.graph, options);
    SW_CHECK(sub.ok()) << sub.status().ToString();
    live_subs[slot].push_back(sub.value());
  };
  for (int s = 0; s < kNumSessions; ++s) {
    sessions.push_back(
        service.OpenSession("tenant" + std::to_string(s)).value());
    for (int q = 0; q < kInitialQueriesPerSession; ++q) submit(s);
  }

  int churn_slot = 0;
  Timer timer;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (churn_every > 0 && i > 0 && i % churn_every == 0) {
      const int slot = churn_slot++ % kNumSessions;
      const int victim = live_subs[slot].front();
      live_subs[slot].pop_front();
      SW_CHECK(service.Detach(sessions[slot], victim).ok());
      submit(slot);
    }
    service.Feed(stream[i]).ok();
  }
  service.Flush();
  const double wall = timer.ElapsedSeconds();

  const ServiceStatsSnapshot snap = service.Snapshot();
  ChurnResult result;
  result.wall_seconds = wall;
  result.admitted = snap.admitted;
  result.detaches = snap.detaches;
  result.delivered = snap.matches_enqueued;
  result.dropped = snap.matches_dropped;
  return result;
}

void RunAll(int num_edges) {
  Banner("bench_service_churn",
         "ingest throughput under continuous query churn");

  Table table({10, 12, 8, 10, 10, 12, 10, 10});
  table.Row({"backend", "churn_every", "subs", "detaches", "edges/s",
             "rel_to_base", "matches", "dropped"});
  table.Separator();

  // single: one engine, backfill inline. parallel4: broadcast group,
  // churn quiesces one shard. partition4: vertex-partitioned group, churn
  // quiesces the whole group and backfills through the exchange — the
  // worst churn case, priced here on purpose.
  enum class Backend { kSingle, kBroadcast, kPartitioned };
  for (const Backend backend_kind :
       {Backend::kSingle, Backend::kBroadcast, Backend::kPartitioned}) {
    double baseline_rate = 0;
    for (const int churn_every : {0, 2000, 500}) {
      // Fresh interner + stream per run: each scenario starts cold.
      Interner interner;
      NetflowGenerator::Options gen_options;
      gen_options.background_edges = num_edges;
      gen_options.num_hosts = 512;
      NetflowGenerator gen(gen_options, &interner);
      gen.InjectSmurf(num_edges / 4, 8);
      gen.InjectPortScan(num_edges / 2, 12);
      gen.InjectExfiltration(3 * num_edges / 4);
      const std::vector<StreamEdge> stream = gen.Generate();

      ChurnResult result;
      if (backend_kind == Backend::kBroadcast) {
        ParallelEngineGroup group(&interner, 4);
        ParallelGroupBackend backend(&group);
        result = RunScenario(stream, &backend, &interner, churn_every);
        group.Close();
      } else if (backend_kind == Backend::kPartitioned) {
        ParallelEngineGroup group(&interner, 4, {},
                                  ShardingMode::kPartitionedData);
        ParallelGroupBackend backend(&group);
        result = RunScenario(stream, &backend, &interner, churn_every);
        group.Close();
      } else {
        StreamWorksEngine engine(&interner);
        SingleEngineBackend backend(&engine);
        result = RunScenario(stream, &backend, &interner, churn_every);
      }

      const double rate =
          static_cast<double>(stream.size()) / result.wall_seconds;
      if (churn_every == 0) baseline_rate = rate;
      table.Row({backend_kind == Backend::kSingle      ? "single"
                 : backend_kind == Backend::kBroadcast ? "parallel4"
                                                       : "partition4",
                 churn_every == 0 ? "off" : std::to_string(churn_every),
                 std::to_string(kNumSessions * kInitialQueriesPerSession),
                 std::to_string(result.detaches), FormatCount(
                     static_cast<uint64_t>(rate)),
                 FormatDouble(rate / baseline_rate, 2),
                 std::to_string(result.delivered),
                 std::to_string(result.dropped)});
    }
    table.Separator();
  }
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 40000;
  if (argc > 1) num_edges = std::atoi(argv[1]);
  streamworks::bench::RunAll(num_edges);
  return 0;
}
