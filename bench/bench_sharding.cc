// Data-graph sharding bench: broadcast vs vertex-partitioned groups on the
// same stream and query mix.
//
//   $ ./build/bench/bench_sharding [num_edges]
//
// The claim under test is the scale-out story: broadcast mode retains the
// whole window graph on every shard (per-shard memory O(total edges),
// memory grows with the shard count), while vertex partitioning retains
// only each shard's owned edges (O(owned) ~ 2/N of the window) and pays
// for it with cross-shard match-exchange traffic. Columns: per-shard
// retained edges (max across shards), the sum over shards, exchange items
// forwarded, ingest rate, and completions (which must not depend on the
// mode — the equivalence suite proves exact equality; the bench prints it
// as a sanity column).

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/core/parallel.h"
#include "streamworks/graph/random_graphs.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks::bench {
namespace {

struct ShardingResult {
  double wall_seconds = 0;
  uint64_t completions = 0;
  uint64_t max_retained = 0;
  uint64_t sum_retained = 0;
  uint64_t forwarded = 0;
};

ShardingResult RunMode(const std::vector<StreamEdge>& stream,
                       Interner* interner, int shards, ShardingMode mode,
                       Timestamp window) {
  ParallelEngineGroup group(interner, shards, {}, mode);
  const QueryGraph scan = BuildPortScanQuery(interner, 3);
  const QueryGraph exfil = BuildExfiltrationQuery(interner);
  for (const QueryGraph* q : {&scan, &exfil}) {
    SW_CHECK(group
                 .RegisterQuery(*q,
                                DecompositionStrategy::kSelectivityLeftDeep,
                                window, nullptr)
                 .ok());
  }

  Timer timer;
  // Batched ingest: the partitioned group's epoch barrier runs per batch.
  EdgeBatch batch;
  batch.reserve(512);
  for (const StreamEdge& e : stream) {
    batch.push_back(e);
    if (batch.size() == 512) {
      group.ProcessBatch(batch);
      batch.clear();
    }
  }
  group.ProcessBatch(batch);
  group.Flush();

  ShardingResult result;
  result.wall_seconds = timer.ElapsedSeconds();
  result.completions = group.total_completions();
  for (const ShardStatsSnapshot& s : group.ShardStats()) {
    result.max_retained = std::max(result.max_retained, s.retained_edges);
    result.sum_retained += s.retained_edges;
    result.forwarded += s.exchange.total_sent();
  }
  return result;
}

void RunAll(int num_edges) {
  Banner("bench_sharding",
         "broadcast vs vertex-partitioned data-graph sharding");

  Table table({12, 7, 13, 13, 11, 10, 12});
  table.Row({"mode", "shards", "max_edges/sh", "sum_edges", "forwarded",
             "edges/s", "completions"});
  table.Separator();

  for (const int shards : {2, 4, 8}) {
    for (const ShardingMode mode :
         {ShardingMode::kBroadcastData, ShardingMode::kPartitionedData}) {
      // Fresh interner + stream per run so every scenario starts cold.
      Interner interner;
      NetflowGenerator::Options gen_options;
      gen_options.seed = 17;
      gen_options.background_edges = num_edges;
      gen_options.num_hosts = 1024;
      NetflowGenerator gen(gen_options, &interner);
      // Injection positions are timestamps; background ticks span
      // [0, background_edges / edges_per_tick).
      const Timestamp ticks = num_edges / gen_options.edges_per_tick;
      gen.InjectPortScan(ticks / 3, 12);
      gen.InjectExfiltration(2 * ticks / 3);
      const std::vector<StreamEdge> stream = gen.Generate();

      // Window = a quarter of the stream's time range: the retained set is
      // big enough that per-shard memory is the dominant cost being
      // compared, while expiry still exercises the epoch path.
      const Timestamp window =
          std::max<Timestamp>(1,
                              (stream.back().ts - stream.front().ts) / 4);
      const ShardingResult r = RunMode(stream, &interner, shards, mode,
                                       window);
      table.Row(
          {mode == ShardingMode::kBroadcastData ? "broadcast"
                                                : "partitioned",
           std::to_string(shards), FormatCount(r.max_retained),
           FormatCount(r.sum_retained), FormatCount(r.forwarded),
           Rate(stream.size(), r.wall_seconds),
           std::to_string(r.completions)});
    }
    table.Separator();
  }
  std::cout << "broadcast: every shard retains the whole window "
               "(sum = shards x window).\n"
               "partitioned: a shard retains only owned edges "
               "(sum <= 2 x window; max ~ 2/N).\n";
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 60000;
  if (argc > 1) num_edges = std::atoi(argv[1]);
  streamworks::bench::RunAll(num_edges);
  return 0;
}
