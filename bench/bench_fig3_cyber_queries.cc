// Experiment F3 (paper Fig. 3): the cyber-attack query library — Smurf
// DDoS, worm propagation, port scan, exfiltration — detected concurrently
// on a flow stream with injected attacks. Reports, per query: injected
// instances, distinct detected subgraphs, raw mappings (automorphisms),
// recall of injections, and peak partial-match population.

#include <iostream>
#include <set>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

void Run() {
  bench::Banner("F3", "cyber-attack query library on an attack campaign");
  Interner interner;

  NetflowGenerator::Options opt;
  opt.seed = 303;
  opt.num_hosts = 512;
  opt.num_subnets = 8;
  opt.background_edges = 120000;
  opt.attack_label_noise = false;  // isolate recall measurement
  NetflowGenerator generator(opt, &interner);
  const Timestamp span = opt.background_edges / opt.edges_per_tick;

  int injected_smurf = 0, injected_worm = 0, injected_scan = 0,
      injected_exfil = 0;
  for (Timestamp t = span / 10; t < span; t += span / 5) {
    generator.InjectSmurf(t, 3);
    ++injected_smurf;
    generator.InjectWorm(t + 11, 3);
    ++injected_worm;
    generator.InjectPortScan(t + 23, 4);
    ++injected_scan;
    generator.InjectExfiltration(t + 37);
    ++injected_exfil;
  }
  const auto edges = generator.Generate();

  struct Entry {
    QueryGraph query;
    int injected;
    int automorphisms;  ///< mappings per attack instance
    std::set<uint64_t> subgraphs;
    uint64_t mappings = 0;
    int query_id = -1;
  };
  std::vector<Entry> entries;
  auto add_entry = [&](QueryGraph q, int injected, int automorphisms) {
    Entry entry;
    entry.query = std::move(q);
    entry.injected = injected;
    entry.automorphisms = automorphisms;
    entries.push_back(std::move(entry));
  };
  add_entry(BuildSmurfQuery(&interner, 3), injected_smurf, 6);
  add_entry(BuildWormQuery(&interner, 3), injected_worm, 1);
  add_entry(BuildPortScanQuery(&interner, 4), injected_scan, 24);
  add_entry(BuildExfiltrationQuery(&interner), injected_exfil, 1);

  StreamWorksEngine engine(&interner);
  for (Entry& entry : entries) {
    entry.query_id =
        engine
            .RegisterQuery(entry.query,
                           DecompositionStrategy::kPrimitivePairs,
                           /*window=*/50,
                           [&entry](const CompleteMatch& cm) {
                             ++entry.mappings;
                             entry.subgraphs.insert(
                                 cm.match.EdgeSetSignature());
                           })
            .value();
  }
  const double seconds = bench::Replay(engine, edges);

  bench::Table table({16, 10, 12, 12, 10, 14});
  table.Row({"query", "injected", "detected", "mappings", "recall",
             "peak partials"});
  table.Separator();
  for (const Entry& entry : entries) {
    const QueryRuntimeInfo info = engine.query_info(entry.query_id);
    table.Row({entry.query.name(), StrCat(entry.injected),
               StrCat(entry.subgraphs.size()),
               FormatCount(entry.mappings),
               StrCat(entry.subgraphs.size() >=
                          static_cast<size_t>(entry.injected)
                          ? "1.00"
                          : FormatDouble(
                                static_cast<double>(entry.subgraphs.size()) /
                                    entry.injected,
                                2)),
               FormatCount(info.peak_partial_matches)});
  }
  std::cout << "\nstream: " << FormatCount(edges.size()) << " edges, 4 "
            << "concurrent queries, " << FormatDouble(seconds, 3) << "s ("
            << bench::Rate(edges.size(), seconds) << " edges/s)\n"
            << "expected shape: every injected attack detected exactly "
               "(recall 1.00); mappings = detected x automorphisms\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
