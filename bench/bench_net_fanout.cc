// Frontend fan-out bench: how delivery scales with IO loops as the
// concurrent streaming-connection count grows, and how well a stalled
// consumer is isolated from healthy ones.
//
//   $ ./build/bench/bench_net_fanout [max_conns] [--edges N] [--json PATH]
//
// Sweep: io_loops in {1, 4} x connections in {100, 1000, 5000} (levels
// above max_conns are skipped — the CI smoke pass runs with 2000, and
// 10k+ needs a raised RLIMIT_NOFILE since the bench hosts both sides of
// every socket). Each scenario connects N watchers over loopback TCP,
// every one with its own ping subscription push-streaming (STREAM), then
// feeds E distinct edges: every edge matches every watcher's query, so
// N x E EVENT lines cross the wire. The drain multiplexes all watcher
// fds with poll(2) and records the instant each watcher has its last
// event; delivery p50/p99 are percentiles over watchers of that
// feed-start-relative completion time, and deliver_eps is aggregate
// events/s through the frontend.
//
// The slow-consumer scenario re-runs the densest fitting sweep point
// (io_loops=4) with one extra watcher that subscribes CAP 4 POLICY
// drop_oldest and never reads, under a tiny SO_SNDBUF and write
// high-water so its socket wedges within kilobytes. Isolation holds when
// the stalled subscription alone drops matches and the healthy p99 stays
// bounded.
//
// Machine-readable results land in bench-results/bench_net_fanout.json
// (or the --json path); the committed baseline is
// bench-results/BENCH_net_fanout.json and ci/bench_gate.py compares the
// deliver_eps columns.

#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/net/client.h"
#include "streamworks/net/server.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks::bench {
namespace {

constexpr std::chrono::milliseconds kTimeout{30000};

const char* const kPingDefine =
    "DEFINE ping\n"
    "node a V\n"
    "node b V\n"
    "edge a b ping\n"
    "window 1073741824\n"
    "END";

std::string FeedLine(int i) {
  return "FEED " + std::to_string(2 * i) + " V " + std::to_string(2 * i + 1) +
         " V ping " + std::to_string(i + 1);
}

void MustSend(LineClient& client, const std::string& line) {
  const Status status = client.SendLine(line);
  SW_CHECK(status.ok()) << status.ToString();
}

std::vector<std::string> MustCommand(LineClient& client,
                                     const std::string& line) {
  auto payload = client.Command(line, kTimeout);
  SW_CHECK(payload.ok()) << line << ": " << payload.status().ToString();
  return *payload;
}

/// Pipelines one watcher's whole setup script (DEFINE + SESSION + SUBMIT
/// [+ STREAM]) and swallows the responses in one pass — at thousands of
/// connections, per-line round trips would dominate the scenario's wall
/// clock without telling us anything about delivery.
void SetupWatcher(LineClient& client, const std::string& script) {
  size_t lines = 0;
  for (std::string_view line : Split(script, '\n')) {
    MustSend(client, std::string(line));
    ++lines;
  }
  size_t terminators = 0;
  while (terminators < lines) {
    auto line = client.ReadLine(kTimeout);
    SW_CHECK(line.ok()) << line.status().ToString();
    SW_CHECK(!StartsWith(*line, "ERR ")) << *line;
    if (*line == ".") ++terminators;
  }
}

struct Result {
  std::string scenario;
  int io_loops = 0;
  int connections = 0;  ///< Healthy streaming watchers.
  int edges = 0;
  double setup_seconds = 0;    ///< Connect + subscribe, all watchers.
  double deliver_seconds = 0;  ///< Feed start to last event anywhere.
  double p50_ms = 0;           ///< Per-watcher completion percentiles.
  double p99_ms = 0;
  uint64_t events = 0;           ///< EVENT lines drained (N x E when clean).
  uint64_t stalled_dropped = 0;  ///< Slow-consumer scenario only.
  uint64_t healthy_dropped = 0;

  double deliver_eps() const { return events / deliver_seconds; }
};

/// Drains pushed EVENT lines off every watcher with poll(2) until each
/// has `per_conn` of them (or `deadline_s` passes, which is fatal —
/// a lost event means the frontend broke, not that it is slow).
/// Returns per-watcher completion seconds since `timer`'s start.
std::vector<double> DrainAll(std::vector<LineClient>& watchers, int per_conn,
                             const Timer& timer, double deadline_s) {
  const size_t n = watchers.size();
  std::vector<pollfd> fds(n);
  std::vector<std::string> tail(n);  // partial trailing line per conn
  std::vector<int> counts(n, 0);
  std::vector<double> done(n, 0.0);
  size_t remaining = n;
  for (size_t i = 0; i < n; ++i) {
    fds[i] = {watchers[i].fd(), POLLIN, 0};
  }
  std::vector<char> buf(64 * 1024);
  while (remaining > 0) {
    SW_CHECK(timer.ElapsedSeconds() < deadline_s)
        << remaining << " watchers still waiting at the drain deadline";
    const int ready = ::poll(fds.data(), fds.size(), 1000);
    SW_CHECK(ready >= 0) << "poll failed";
    for (size_t i = 0; i < n && ready > 0; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const ssize_t got = ::read(fds[i].fd, buf.data(), buf.size());
      SW_CHECK(got > 0) << "watcher " << i << " hung up mid-drain";
      tail[i].append(buf.data(), static_cast<size_t>(got));
      size_t start = 0;
      for (size_t nl = tail[i].find('\n'); nl != std::string::npos;
           nl = tail[i].find('\n', start)) {
        if (tail[i].compare(start, 12, "EVENT MATCH ") == 0) ++counts[i];
        start = nl + 1;
      }
      tail[i].erase(0, start);
      if (counts[i] >= per_conn && done[i] == 0.0) {
        done[i] = timer.ElapsedSeconds();
        fds[i].fd = -1;  // poll ignores negative fds
        --remaining;
      }
    }
  }
  return done;
}

double PercentileMs(std::vector<double> seconds, double q) {
  SW_CHECK(!seconds.empty());
  std::sort(seconds.begin(), seconds.end());
  const size_t idx = static_cast<size_t>(q * (seconds.size() - 1));
  return seconds[idx] * 1e3;
}

Result RunScenario(int io_loops, int num_conns, int num_edges,
                   bool with_stalled) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  ServerOptions options;
  options.tcp_port = 0;
  options.io_loops = io_loops;
  options.max_connections = static_cast<size_t>(num_conns) + 16;
  if (with_stalled) {
    // Wedge the stalled socket within kilobytes so its pump throttles and
    // its CAP-4 queue overflows — the healthy majority must not notice.
    options.so_sndbuf = 4096;
    options.write_high_water = 2048;
  }
  SocketServer server(&service, &interner, options);
  SW_CHECK_OK(server.Start());
  const auto connect = [&]() -> LineClient {
    auto connected = LineClient::ConnectTcp("127.0.0.1", server.tcp_port());
    SW_CHECK(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  };

  Result result;
  const std::string loops_str = std::to_string(io_loops);
  result.scenario = std::string(with_stalled ? "stalled loops" : "loops") +
                    loops_str + " c" + std::to_string(num_conns);
  result.io_loops = io_loops;
  result.connections = num_conns;
  result.edges = num_edges;

  Timer setup_timer;
  std::vector<LineClient> watchers;
  watchers.reserve(static_cast<size_t>(num_conns));
  for (int i = 0; i < num_conns; ++i) {
    watchers.push_back(connect());
    const std::string name = "w" + std::to_string(i);
    SetupWatcher(watchers.back(),
                 std::string(kPingDefine) + "\nSESSION " + name + "\nSUBMIT " +
                     name + " live ping CAP " +
                     std::to_string(num_edges + 16) + "\nSTREAM " + name +
                     " live");
  }
  LineClient stalled = connect();  // unused unless with_stalled
  if (with_stalled) {
    SetupWatcher(stalled, std::string(kPingDefine) +
                              "\nSESSION slow\nSUBMIT slow live ping CAP 4 "
                              "POLICY drop_oldest\nSTREAM slow live");
    // From here on the stalled watcher never reads.
  }
  LineClient feeder = connect();
  MustCommand(feeder, "SESSION feed");
  result.setup_seconds = setup_timer.ElapsedSeconds();

  // Pipelined text feed, windowed so the feeder's unread responses can
  // never wedge the server against its own read throttling.
  Timer timer;
  uint64_t terminators = 0;
  const auto absorb = [&](std::chrono::milliseconds timeout) -> bool {
    auto line = feeder.ReadLine(timeout);
    if (!line.ok()) return false;
    if (*line == ".") ++terminators;
    return true;
  };
  const uint64_t window = 1024;
  for (int i = 0; i < num_edges; ++i) {
    while (static_cast<uint64_t>(i) - terminators >= window) {
      SW_CHECK(absorb(kTimeout)) << "timed out inside the send window";
    }
    MustSend(feeder, FeedLine(i));
    if (i % 64 == 0) {
      while (absorb(std::chrono::milliseconds(0))) {
      }
    }
  }
  MustSend(feeder, "FLUSH");
  while (terminators < static_cast<uint64_t>(num_edges) + 1) {
    SW_CHECK(absorb(kTimeout)) << "timed out awaiting ingest responses";
  }

  const std::vector<double> done =
      DrainAll(watchers, num_edges, timer, /*deadline_s=*/120.0);
  result.deliver_seconds = timer.ElapsedSeconds();
  result.events =
      static_cast<uint64_t>(num_conns) * static_cast<uint64_t>(num_edges);
  result.p50_ms = PercentileMs(done, 0.50);
  result.p99_ms = PercentileMs(done, 0.99);

  if (with_stalled) {
    // The throttling must be visible in STATS — and visible only on the
    // stalled subscription.
    bool in_slow = false, in_healthy = false;
    for (const std::string& line : MustCommand(feeder, "STATS")) {
      if (StartsWith(line, "session ")) {
        in_slow = line.find("'slow'") != std::string::npos;
        in_healthy = line.find("'w") != std::string::npos;
        continue;
      }
      const size_t pos = line.find("dropped=");
      if (pos == std::string::npos) continue;
      uint64_t dropped = 0;
      size_t end = pos + 8;
      while (end < line.size() && std::isdigit(line[end])) ++end;
      ParseUint64(line.substr(pos + 8, end - pos - 8), &dropped);
      if (in_slow) result.stalled_dropped += dropped;
      if (in_healthy) result.healthy_dropped += dropped;
    }
    SW_CHECK(result.stalled_dropped > 0)
        << "stalled subscription never overflowed — isolation untested";
    SW_CHECK(result.healthy_dropped == 0)
        << "healthy subscriptions dropped " << result.healthy_dropped;
    stalled.Close();
  }
  for (auto& watcher : watchers) watcher.Close();
  feeder.Quit();
  server.Stop();
  return result;
}

void Report(Table& table, const Result& result) {
  table.Row({result.scenario, FormatCount(result.connections),
             FormatCount(result.edges),
             FormatDouble(result.setup_seconds, 2),
             FormatDouble(result.deliver_eps() / 1e3, 1),
             FormatDouble(result.p50_ms, 1), FormatDouble(result.p99_ms, 1),
             result.stalled_dropped > 0
                 ? "dropped=" + std::to_string(result.stalled_dropped)
                 : ""});
}

void WriteJson(const std::vector<Result>& rows, const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;  // best effort; the open below reports failures
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "{\n  \"bench\": \"net_fanout\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Result& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario
        << "\", \"io_loops\": " << r.io_loops
        << ", \"connections\": " << r.connections << ", \"edges\": " << r.edges
        << ", \"setup_seconds\": " << FormatDouble(r.setup_seconds, 3)
        << ", \"deliver_eps\": " << FormatDouble(r.deliver_eps(), 1)
        << ", \"p50_ms\": " << FormatDouble(r.p50_ms, 2)
        << ", \"p99_ms\": " << FormatDouble(r.p99_ms, 2)
        << ", \"stalled_dropped\": " << r.stalled_dropped
        << ", \"healthy_dropped\": " << r.healthy_dropped << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

void RunAll(int max_conns, int num_edges, const std::string& json_path) {
  Banner("net_fanout", "streaming delivery vs IO loops and connection count");

  // Both sides of every socket live in this process: ~2 fds per watcher
  // plus slack for listeners, wake pipes, epoll fds, and the feeder.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    const rlim_t budget = nofile.rlim_cur > 256 ? nofile.rlim_cur - 256 : 0;
    if (static_cast<rlim_t>(max_conns) * 2 > budget) {
      max_conns = static_cast<int>(budget / 2);
      std::cout << "RLIMIT_NOFILE clips the sweep to " << max_conns
                << " connections\n";
    }
  }

  std::vector<Result> rows;
  int densest = 0;
  for (int conns : {100, 1000, 5000}) {
    if (conns > max_conns) continue;
    densest = conns;
    for (int loops : {1, 4}) {
      rows.push_back(RunScenario(loops, conns, num_edges,
                                 /*with_stalled=*/false));
    }
  }
  SW_CHECK(densest > 0) << "max_conns too small for any sweep level";
  // Isolation leg: many more edges than any queue cap, few enough
  // watchers that N x E stays comparable to the sweep's densest point.
  rows.push_back(RunScenario(/*io_loops=*/4, std::min(densest, 100),
                             /*num_edges=*/2000, /*with_stalled=*/true));

  Table table({18, 8, 8, 8, 14, 10, 10, 16});
  table.Row({"scenario", "conns", "edges", "setup s", "deliver ke/s",
             "p50 ms", "p99 ms", "stalled"});
  table.Separator();
  for (const Result& r : rows) Report(table, r);
  WriteJson(rows, json_path);
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int max_conns = 5000;
  int num_edges = 32;
  std::string json_path = "bench-results/bench_net_fanout.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    if (arg == "--edges") {
      int64_t n = 0;
      if (i + 1 >= argc || !streamworks::ParseInt64(argv[++i], &n) || n <= 0) {
        std::cerr << "--edges needs a positive count\n";
        return 1;
      }
      num_edges = static_cast<int>(n);
      continue;
    }
    // A typo'd flag must not silently shrink the sweep to nothing.
    int64_t n = 0;
    if (!streamworks::ParseInt64(arg, &n) || n <= 0) {
      std::cerr << "usage: bench_net_fanout [max_conns] [--edges N] "
                   "[--json PATH]\n";
      return 1;
    }
    max_conns = static_cast<int>(n);
  }
  streamworks::bench::RunAll(max_conns, num_edges, json_path);
  return 0;
}
