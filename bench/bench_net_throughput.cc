// Network-frontend throughput bench: what the socket path costs versus
// driving the QueryService in-process, and what the binary batched wire
// path (FEEDB frames) buys back.
//
//   $ ./build/bench/bench_net_throughput [num_edges] [--json PATH]
//
// Every scenario runs the same workload — one ping-pattern subscription,
// N distinct edges (one completed match each), full delivery — against a
// SingleEngineBackend, so the deltas price the frontend alone:
//
//   in-process       QueryService::Feed per edge, no sockets
//   in-process batch QueryService::FeedBatch, one call per 512 edges
//   unix rtt         one FEED command per edge, await each response
//   unix text pipe   all FEED lines written back-to-back, responses
//                    consumed in bulk (how a text ingest client batches)
//   tcp text pipe    same over loopback TCP
//   unix bin bN      FEEDB binary frames of N edges, pipelined
//   tcp bin b512     same over loopback TCP
//
// Matches are push-streamed (STREAM): the drain phase counts EVENT lines
// until every match arrived, so matches/s is end-to-end delivery through
// the wire, and the STATS delivery-lag percentiles ride along.
//
// Machine-readable results land in bench-results/bench_net.json (or the
// --json path): one row per scenario plus the headline ratios. The
// committed baseline lives at bench-results/BENCH_net.json.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/net/client.h"
#include "streamworks/net/server.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks::bench {
namespace {

constexpr std::chrono::milliseconds kTimeout{30000};

const char* const kPingDefine =
    "DEFINE ping\n"
    "node a V\n"
    "node b V\n"
    "edge a b ping\n"
    "window 1073741824\n"
    "END";

QueryGraph PingQuery(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto u = b.AddVertex("V");
  const auto v = b.AddVertex("V");
  b.AddEdge(u, v, "ping");
  return b.Build("ping").value();
}

StreamEdge PingEdge(Interner* interner, int i) {
  StreamEdge e;
  e.src = 2 * static_cast<uint64_t>(i);
  e.dst = 2 * static_cast<uint64_t>(i) + 1;
  e.src_label = interner->Intern("V");
  e.dst_label = interner->Intern("V");
  e.edge_label = interner->Intern("ping");
  e.ts = i + 1;
  return e;
}

std::string FeedLine(int i) {
  return "FEED " + std::to_string(2 * i) + " V " + std::to_string(2 * i + 1) +
         " V ping " + std::to_string(i + 1);
}

struct Result {
  std::string scenario;
  std::string transport;  ///< "none", "unix", "tcp".
  std::string mode;       ///< "feed", "feedbatch", "text", "binary".
  int batch = 0;          ///< Edges per frame/batch; 0 = per edge.
  int edges = 0;
  double ingest_seconds = 0;  ///< Last edge accepted (+ response in rtt).
  double total_seconds = 0;   ///< Every match in the consumer's hands.
  uint64_t matches = 0;
  std::string lag;  ///< "p50=..us p99=..us" from STATS where available.

  double ingest_eps() const { return edges / ingest_seconds; }
  double deliver_mps() const { return matches / total_seconds; }
};

Result RunInProcess(int num_edges, int batch_size) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  const int session = service.OpenSession("bench").value();
  SubmitOptions options;
  options.queue_capacity = static_cast<size_t>(num_edges) + 16;
  const int sub =
      service.Submit(session, PingQuery(&interner), options).value();

  Result result;
  result.scenario =
      batch_size > 0 ? "in-process b" + std::to_string(batch_size)
                     : "in-process";
  result.transport = "none";
  result.mode = batch_size > 0 ? "feedbatch" : "feed";
  result.batch = batch_size;
  result.edges = num_edges;
  Timer timer;
  if (batch_size > 0) {
    EdgeBatch batch;
    batch.reserve(batch_size);
    for (int i = 0; i < num_edges; ++i) {
      batch.push_back(PingEdge(&interner, i));
      if (static_cast<int>(batch.size()) == batch_size) {
        service.FeedBatch(batch).ok();
        batch.clear();
      }
    }
    if (!batch.empty()) service.FeedBatch(batch).ok();
  } else {
    for (int i = 0; i < num_edges; ++i) {
      service.Feed(PingEdge(&interner, i)).ok();
    }
  }
  service.Flush();
  result.ingest_seconds = timer.ElapsedSeconds();
  std::vector<CompleteMatch> matches;
  service.queue(session, sub)->Drain(&matches);
  result.total_seconds = timer.ElapsedSeconds();
  result.matches = matches.size();
  const ServiceStatsSnapshot snap = service.Snapshot();
  result.lag = "p50=" + std::to_string(snap.delivery_lag_p50_us) +
               "us p99=" + std::to_string(snap.delivery_lag_p99_us) + "us";
  return result;
}

/// Sends `line` and fails hard on transport errors (a bench mis-setup
/// should be loud, not a skewed number).
void MustSend(LineClient& client, const std::string& line) {
  const Status status = client.SendLine(line);
  SW_CHECK(status.ok()) << status.ToString();
}

std::vector<std::string> MustCommand(LineClient& client,
                                     const std::string& line) {
  auto payload = client.Command(line, kTimeout);
  SW_CHECK(payload.ok()) << line << ": " << payload.status().ToString();
  return *payload;
}

enum class WireMode { kRtt, kTextPipelined, kBinaryPipelined };

/// Two connections, the deployment shape the e2e gate drives: a watcher
/// that subscribes + push-streams, and a feeder that ingests. The ingest
/// timer brackets the feeder's side alone (its responses are per-command
/// terminators, not the event flood), so ingest edges/s prices the wire
/// path; the drain phase then reads every pushed EVENT off the watcher,
/// so matches/s stays end-to-end delivery through the socket.
Result RunSocket(bool tcp, WireMode mode, int num_edges, int batch_size) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  ServerOptions options;
  if (tcp) {
    options.tcp_port = 0;
  } else {
    options.unix_path =
        "/tmp/sw_bench_net_" + std::to_string(::getpid()) + ".sock";
  }
  // The watcher deliberately lags the ingest burst; its queue must hold
  // the full stream without tripping a drop policy.
  SocketServer server(&service, &interner, options);
  SW_CHECK_OK(server.Start());
  const auto connect = [&]() -> LineClient {
    auto connected = tcp ? LineClient::ConnectTcp("127.0.0.1",
                                                  server.tcp_port())
                         : LineClient::ConnectUnix(options.unix_path);
    SW_CHECK(connected.ok()) << connected.status().ToString();
    return std::move(connected).value();
  };
  LineClient watcher = connect();
  LineClient feeder = connect();

  for (std::string_view line : Split(kPingDefine, '\n')) {
    MustCommand(watcher, std::string(line));
  }
  MustCommand(watcher, "SESSION bench");
  MustCommand(watcher, "SUBMIT bench live ping CAP " +
                           std::to_string(num_edges + 16));
  MustCommand(watcher, "STREAM bench live");

  Result result;
  result.transport = tcp ? "tcp" : "unix";
  result.edges = num_edges;
  result.batch = mode == WireMode::kBinaryPipelined ? batch_size : 0;
  Timer timer;
  if (mode == WireMode::kRtt) {
    result.scenario = "unix rtt";
    result.mode = "text";
    for (int i = 0; i < num_edges; ++i) MustCommand(feeder, FeedLine(i));
    MustCommand(feeder, "FLUSH");
    result.ingest_seconds = timer.ElapsedSeconds();
  } else {
    // Fire the stream in bursts, absorbing whatever responses are
    // already readable between bursts — a sender that never reads would
    // eventually fill both kernel buffers against the server's
    // response-path read throttling and deadlock itself at large N.
    const bool binary = mode == WireMode::kBinaryPipelined;
    result.scenario =
        binary ? (std::string(tcp ? "tcp" : "unix") + " bin b" +
                  std::to_string(batch_size))
               : (std::string(tcp ? "tcp" : "unix") + " text pipe");
    result.mode = binary ? "binary" : "text";
    const uint64_t num_requests =
        binary ? static_cast<uint64_t>((num_edges + batch_size - 1) /
                                       batch_size)
               : static_cast<uint64_t>(num_edges);
    uint64_t terminators = 0;  // num_requests requests + the FLUSH frame
    const auto absorb = [&](std::chrono::milliseconds timeout) -> bool {
      auto line = feeder.ReadLine(timeout);
      if (!line.ok()) return false;  // nothing available (or timeout)
      if (*line == ".") ++terminators;
      return true;
    };
    // Sliding window: with at most kWindow un-acked requests
    // outstanding, the server's unsent responses stay far below its
    // write high-water, so it never parks reads and the feeder's
    // blocking sends can always complete.
    const uint64_t window = binary ? 32 : 1024;
    uint64_t requests_sent = 0;
    if (binary) {
      Interner wire_interner;
      EdgeBatch batch;
      batch.reserve(batch_size);
      for (int i = 0; i < num_edges; ++i) {
        batch.push_back(PingEdge(&wire_interner, i));
        if (static_cast<int>(batch.size()) < batch_size &&
            i + 1 < num_edges) {
          continue;
        }
        while (requests_sent - terminators >= window) {
          SW_CHECK(absorb(kTimeout)) << "timed out inside the send window";
        }
        SW_CHECK_OK(feeder.SendFrame(batch, wire_interner));
        batch.clear();
        ++requests_sent;
        if (requests_sent % 8 == 0) {
          while (absorb(std::chrono::milliseconds(0))) {
          }
        }
      }
    } else {
      for (int i = 0; i < num_edges; ++i) {
        while (requests_sent - terminators >= window) {
          SW_CHECK(absorb(kTimeout)) << "timed out inside the send window";
        }
        MustSend(feeder, FeedLine(i));
        ++requests_sent;
        if (i % 64 == 0) {
          while (absorb(std::chrono::milliseconds(0))) {
          }
        }
      }
    }
    MustSend(feeder, "FLUSH");
    while (terminators < num_requests + 1) {
      SW_CHECK(absorb(kTimeout)) << "timed out awaiting ingest responses";
    }
    result.ingest_seconds = timer.ElapsedSeconds();
  }
  // Drain phase: every match crosses the watcher's socket as a pushed
  // EVENT line.
  while (result.matches < static_cast<uint64_t>(num_edges)) {
    auto event = watcher.NextEvent(kTimeout);
    SW_CHECK(event.ok()) << event.status().ToString();
    SW_CHECK(StartsWith(*event, "EVENT MATCH ")) << *event;
    ++result.matches;
  }
  result.total_seconds = timer.ElapsedSeconds();

  for (const std::string& line : MustCommand(feeder, "STATS")) {
    const size_t pos = line.find("lag_p50_us=");
    if (pos != std::string::npos) {
      result.lag = line.substr(pos);
      break;
    }
  }
  watcher.Quit();
  feeder.Quit();
  server.Stop();
  return result;
}

void Report(Table& table, const Result& result) {
  table.Row({result.scenario, FormatCount(result.edges),
             FormatDouble(result.ingest_eps() / 1e3, 1),
             FormatCount(result.matches),
             FormatDouble(result.deliver_mps() / 1e3, 1), result.lag});
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void WriteJson(const std::vector<Result>& rows, const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;  // best effort; the open below reports failures
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  const auto find = [&](std::string_view scenario) -> const Result* {
    for (const Result& r : rows) {
      if (r.scenario == scenario) return &r;
    }
    return nullptr;
  };
  out << "{\n  \"bench\": \"net_throughput\",\n";
  out << "  \"edges\": " << (rows.empty() ? 0 : rows[0].edges) << ",\n";
  out << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Result& r = rows[i];
    out << "    {\"scenario\": \"" << JsonEscape(r.scenario)
        << "\", \"transport\": \"" << r.transport << "\", \"mode\": \""
        << r.mode << "\", \"batch\": " << r.batch
        << ", \"ingest_eps\": " << FormatDouble(r.ingest_eps(), 1)
        << ", \"matches\": " << r.matches
        << ", \"deliver_mps\": " << FormatDouble(r.deliver_mps(), 1)
        << ", \"lag\": \"" << JsonEscape(r.lag) << "\"}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ratios\": {";
  const Result* in_process = find("in-process");
  const Result* in_process_batch = find("in-process b512");
  const Result* text = find("unix text pipe");
  // The headline binary row is the sweep's best unix batch size — the
  // operator-facing number, since batch size is a client knob.
  const Result* binary = nullptr;
  for (const Result& r : rows) {
    if (r.transport != "unix" || r.mode != "binary") continue;
    if (binary == nullptr || r.ingest_eps() > binary->ingest_eps()) {
      binary = &r;
    }
  }
  bool first = true;
  const auto ratio = [&](std::string_view name, const Result* num,
                         const Result* den) {
    if (num == nullptr || den == nullptr) return;
    out << (first ? "" : ", ") << "\"" << name << "\": "
        << FormatDouble(num->ingest_eps() / den->ingest_eps(), 2);
    first = false;
  };
  ratio("text_cost_vs_inprocess", in_process, text);
  ratio("binary_cost_vs_inprocess", in_process, binary);
  ratio("binary_cost_vs_inprocess_batch", in_process_batch, binary);
  ratio("binary_speedup_vs_text", binary, text);
  out << "}\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

void RunAll(int num_edges, const std::string& json_path) {
  Banner("net", "socket frontend vs in-process service throughput");
  std::vector<Result> rows;
  rows.push_back(RunInProcess(num_edges, /*batch_size=*/0));
  rows.push_back(RunInProcess(num_edges, /*batch_size=*/512));
  rows.push_back(
      RunSocket(/*tcp=*/false, WireMode::kRtt, num_edges, 0));
  rows.push_back(
      RunSocket(/*tcp=*/false, WireMode::kTextPipelined, num_edges, 0));
  rows.push_back(
      RunSocket(/*tcp=*/true, WireMode::kTextPipelined, num_edges, 0));
  for (int batch_size : {64, 512, 4096}) {
    rows.push_back(RunSocket(/*tcp=*/false, WireMode::kBinaryPipelined,
                             num_edges, batch_size));
  }
  rows.push_back(RunSocket(/*tcp=*/true, WireMode::kBinaryPipelined,
                           num_edges, 512));

  Table table({16, 10, 14, 10, 16, 30});
  table.Row({"scenario", "edges", "ingest ke/s", "matches", "deliver km/s",
             "delivery lag"});
  table.Separator();
  for (const Result& r : rows) Report(table, r);
  WriteJson(rows, json_path);
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 20000;
  std::string json_path = "bench-results/bench_net.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    // A typo'd flag must not silently become num_edges=0 and bake NaN
    // ratios into the JSON baseline.
    int64_t n = 0;
    if (!streamworks::ParseInt64(arg, &n) || n <= 0) {
      std::cerr << "usage: bench_net_throughput [num_edges] [--json PATH]\n";
      return 1;
    }
    num_edges = static_cast<int>(n);
  }
  streamworks::bench::RunAll(num_edges, json_path);
  return 0;
}
