// Network-frontend throughput bench: what the socket path costs versus
// driving the QueryService in-process.
//
//   $ ./build/bench/bench_net_throughput [num_edges]
//
// Every scenario runs the same workload — one ping-pattern subscription,
// N distinct edges (one completed match each), full delivery — against a
// SingleEngineBackend, so the deltas price the frontend alone:
//
//   in-process      QueryService::Feed + queue drain, no sockets
//   unix rtt        one FEED command per edge, await each response
//   unix pipelined  all FEED lines written back-to-back, responses
//                   consumed in bulk (how a real ingest client batches)
//   tcp pipelined   same over loopback TCP
//
// Matches are push-streamed (STREAM): the drain phase counts EVENT lines
// until every match arrived, so matches/s is end-to-end delivery through
// the wire, and the STATS delivery-lag percentiles ride along.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/net/client.h"
#include "streamworks/net/server.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/query_service.h"

namespace streamworks::bench {
namespace {

constexpr std::chrono::milliseconds kTimeout{30000};

const char* const kPingDefine =
    "DEFINE ping\n"
    "node a V\n"
    "node b V\n"
    "edge a b ping\n"
    "window 1073741824\n"
    "END";

QueryGraph PingQuery(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto u = b.AddVertex("V");
  const auto v = b.AddVertex("V");
  b.AddEdge(u, v, "ping");
  return b.Build("ping").value();
}

std::string FeedLine(int i) {
  return "FEED " + std::to_string(2 * i) + " V " + std::to_string(2 * i + 1) +
         " V ping " + std::to_string(i + 1);
}

struct Result {
  double ingest_seconds = 0;  ///< Last edge accepted (+ response in rtt).
  double total_seconds = 0;   ///< Every match in the consumer's hands.
  uint64_t matches = 0;
  std::string lag;  ///< "p50=..us p99=..us" from STATS where available.
};

Result RunInProcess(int num_edges) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  const int session = service.OpenSession("bench").value();
  SubmitOptions options;
  options.queue_capacity = static_cast<size_t>(num_edges) + 16;
  const int sub =
      service.Submit(session, PingQuery(&interner), options).value();

  Result result;
  Timer timer;
  for (int i = 0; i < num_edges; ++i) {
    StreamEdge e;
    e.src = 2 * static_cast<uint64_t>(i);
    e.dst = 2 * static_cast<uint64_t>(i) + 1;
    e.src_label = interner.Intern("V");
    e.dst_label = interner.Intern("V");
    e.edge_label = interner.Intern("ping");
    e.ts = i + 1;
    service.Feed(e).ok();
  }
  service.Flush();
  result.ingest_seconds = timer.ElapsedSeconds();
  std::vector<CompleteMatch> matches;
  service.queue(session, sub)->Drain(&matches);
  result.total_seconds = timer.ElapsedSeconds();
  result.matches = matches.size();
  const ServiceStatsSnapshot snap = service.Snapshot();
  result.lag = "p50=" + std::to_string(snap.delivery_lag_p50_us) +
               "us p99=" + std::to_string(snap.delivery_lag_p99_us) + "us";
  return result;
}

/// Sends `line` and fails hard on transport errors (a bench mis-setup
/// should be loud, not a skewed number).
void MustSend(LineClient& client, const std::string& line) {
  const Status status = client.SendLine(line);
  SW_CHECK(status.ok()) << status.ToString();
}

std::vector<std::string> MustCommand(LineClient& client,
                                     const std::string& line) {
  auto payload = client.Command(line, kTimeout);
  SW_CHECK(payload.ok()) << line << ": " << payload.status().ToString();
  return *payload;
}

Result RunSocket(bool tcp, bool pipelined, int num_edges) {
  Interner interner;
  StreamWorksEngine engine(&interner);
  SingleEngineBackend backend(&engine);
  QueryService service(&backend);
  ServerOptions options;
  if (tcp) {
    options.tcp_port = 0;
  } else {
    options.unix_path =
        "/tmp/sw_bench_net_" + std::to_string(::getpid()) + ".sock";
  }
  SocketServer server(&service, &interner, options);
  SW_CHECK_OK(server.Start());
  auto connected = tcp ? LineClient::ConnectTcp("127.0.0.1",
                                                server.tcp_port())
                       : LineClient::ConnectUnix(options.unix_path);
  SW_CHECK(connected.ok()) << connected.status().ToString();
  LineClient client = std::move(connected).value();

  for (std::string_view line : Split(kPingDefine, '\n')) {
    MustCommand(client, std::string(line));
  }
  MustCommand(client, "SESSION bench");
  MustCommand(client, "SUBMIT bench live ping CAP " +
                          std::to_string(num_edges + 16));
  MustCommand(client, "STREAM bench live");

  Result result;
  Timer timer;
  if (pipelined) {
    // Fire FEEDs in bursts, absorbing whatever responses/events are
    // already readable between bursts — a sender that never reads would
    // eventually fill both kernel buffers against the server's
    // response-path read throttling and deadlock itself at large N.
    uint64_t terminators = 0;  // num_edges FEED frames + the FLUSH frame
    bool ingested = false;
    const auto absorb = [&](std::chrono::milliseconds timeout) -> bool {
      auto line = client.ReadLine(timeout);
      if (!line.ok()) return false;  // nothing available (or timeout)
      if (*line == ".") {
        if (++terminators == static_cast<uint64_t>(num_edges) + 1) {
          ingested = true;
          result.ingest_seconds = timer.ElapsedSeconds();
        }
      } else if (StartsWith(*line, "EVENT MATCH ")) {
        ++result.matches;
      }
      return true;
    };
    // Sliding window: with at most kWindow un-acked FEEDs outstanding,
    // the server's unsent responses (terminator + pushed event per edge,
    // ~100B) stay far below its write high-water, so it never parks
    // reads and the client's blocking sends can always complete.
    constexpr uint64_t kWindow = 1024;
    for (int i = 0; i < num_edges; ++i) {
      while (static_cast<uint64_t>(i) - terminators >= kWindow) {
        SW_CHECK(absorb(kTimeout)) << "timed out inside the send window";
      }
      MustSend(client, FeedLine(i));
      if (i % 64 == 0) {
        while (absorb(std::chrono::milliseconds(0))) {
        }
      }
    }
    MustSend(client, "FLUSH");
    while (result.matches < static_cast<uint64_t>(num_edges) || !ingested) {
      SW_CHECK(absorb(kTimeout)) << "timed out draining the socket";
    }
  } else {
    for (int i = 0; i < num_edges; ++i) MustCommand(client, FeedLine(i));
    MustCommand(client, "FLUSH");
    result.ingest_seconds = timer.ElapsedSeconds();
    while (result.matches < static_cast<uint64_t>(num_edges)) {
      auto event = client.NextEvent(kTimeout);
      SW_CHECK(event.ok()) << event.status().ToString();
      ++result.matches;
    }
  }
  result.total_seconds = timer.ElapsedSeconds();

  for (const std::string& line : MustCommand(client, "STATS")) {
    const size_t pos = line.find("lag_p50_us=");
    if (pos != std::string::npos) {
      result.lag = line.substr(pos);
      break;
    }
  }
  client.Quit();
  server.Stop();
  return result;
}

void Report(Table& table, std::string_view scenario, int num_edges,
            const Result& result) {
  table.Row({std::string(scenario), FormatCount(num_edges),
             FormatDouble(num_edges / result.ingest_seconds / 1e3, 1),
             FormatCount(result.matches),
             FormatDouble(result.matches / result.total_seconds / 1e3, 1),
             result.lag});
}

void RunAll(int num_edges) {
  Banner("net", "socket frontend vs in-process service throughput");
  Table table({16, 10, 14, 10, 16, 30});
  table.Row({"scenario", "edges", "ingest ke/s", "matches", "deliver km/s",
             "delivery lag"});
  table.Separator();
  Report(table, "in-process", num_edges, RunInProcess(num_edges));
  Report(table, "unix rtt", num_edges,
         RunSocket(/*tcp=*/false, /*pipelined=*/false, num_edges));
  Report(table, "unix pipelined", num_edges,
         RunSocket(/*tcp=*/false, /*pipelined=*/true, num_edges));
  Report(table, "tcp pipelined", num_edges,
         RunSocket(/*tcp=*/true, /*pipelined=*/true, num_edges));
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 20000;
  if (argc > 1) num_edges = std::atoi(argv[1]);
  streamworks::bench::RunAll(num_edges);
  return 0;
}
