// Experiment B1 (paper §2.2/§3.1 claims): the incremental SJ-Tree engine
// against (a) the repeated-search strategy (Fan et al. style: re-run the
// batch matcher per timestep and diff) and (b) the naive no-decomposition
// incremental matcher (§3.1's "simplistic approach"). All three compute
// identical match sets; the comparison is total runtime as the stream
// grows, plus a batch-size sweep showing how repeated search amortises
// (but never catches up).

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "streamworks/baseline/naive.h"
#include "streamworks/baseline/recompute.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/stream/batching.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

struct RunResult {
  double seconds = 0;
  uint64_t matches = 0;
};

RunResult RunEngine(const QueryGraph& query, Timestamp window,
                    const std::vector<StreamEdge>& edges,
                    Interner* interner) {
  StreamWorksEngine engine(interner);
  RunResult result;
  SW_CHECK_OK(engine
                  .RegisterQuery(query,
                                 DecompositionStrategy::kPrimitivePairs,
                                 window,
                                 [&](const CompleteMatch&) {
                                   ++result.matches;
                                 })
                  .status());
  result.seconds = bench::Replay(engine, edges);
  return result;
}

RunResult RunNaive(const QueryGraph& query, Timestamp window,
                   const std::vector<StreamEdge>& edges,
                   Interner* interner) {
  NaiveIncrementalMatcher matcher(&query, window, interner);
  RunResult result;
  Timer timer;
  for (const StreamEdge& e : edges) {
    result.matches += matcher.ProcessEdge(e).value().size();
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

/// Repeated search evaluated once per timestamp tick (its exact-oracle
/// configuration; see recompute.h on why larger batches lose matches).
RunResult RunRecompute(const QueryGraph& query, Timestamp window,
                       const std::vector<StreamEdge>& edges,
                       Interner* interner) {
  RecomputeMatcher matcher(&query, window, interner);
  RunResult result;
  Timer timer;
  for (const EdgeBatch& batch : BatchByTick(edges)) {
    result.matches += matcher.ProcessBatch(batch).value().size();
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<StreamEdge> NetflowStream(Interner* interner, int edges) {
  NetflowGenerator::Options opt;
  opt.seed = 2468;
  opt.num_hosts = 256;
  opt.background_edges = edges;
  opt.attack_label_noise = true;
  NetflowGenerator generator(opt, interner);
  const Timestamp span = edges / opt.edges_per_tick;
  for (Timestamp t = span / 6; t < span; t += span / 6) {
    generator.InjectSmurf(t, 2);
  }
  return generator.Generate();
}

void Run() {
  bench::Banner("B1", "incremental SJ-Tree vs repeated search vs naive");
  // Re-search cost is proportional to the window content (window ticks x
  // edges/tick), so a realistic monitoring window makes the asymptotic gap
  // visible even on laptop-scale streams.
  constexpr Timestamp kWindow = 200;

  std::cout << "-- (a) runtime vs stream length (netflow, smurf-2 query, "
               "window "
            << kWindow << ") --\n";
  bench::Table table({10, 12, 12, 14, 12, 10});
  table.Row({"edges", "sjtree s", "naive s", "recompute s", "matches",
             "speedup"});
  table.Separator();
  for (const int size : {2000, 8000, 32000, 96000}) {
    Interner interner;
    const auto edges = NetflowStream(&interner, size);
    const QueryGraph query = BuildSmurfQuery(&interner, 2);
    const RunResult engine = RunEngine(query, kWindow, edges, &interner);
    const RunResult naive = RunNaive(query, kWindow, edges, &interner);
    const RunResult recompute = RunRecompute(query, kWindow, edges,
                                             &interner);
    SW_CHECK_EQ(engine.matches, naive.matches);
    SW_CHECK_EQ(engine.matches, recompute.matches);
    table.Row({FormatCount(size), FormatDouble(engine.seconds, 3),
               FormatDouble(naive.seconds, 3),
               FormatDouble(recompute.seconds, 3),
               FormatCount(engine.matches),
               StrCat(FormatDouble(recompute.seconds /
                                       std::max(engine.seconds, 1e-9),
                                   1),
                      "x")});
  }

  std::cout << "\n-- (b) repeated search vs batch size (32k edges) --\n";
  std::cout << "(larger batches amortise the re-search but *miss* matches "
               "that complete and\n expire inside one evaluation interval "
               "— the completeness gap of periodic\n re-evaluation that "
               "motivates continuous processing)\n";
  bench::Table btable({12, 14, 16, 12, 10});
  btable.Row({"batch size", "recompute s", "re-enumerations", "matches",
              "missed"});
  btable.Separator();
  uint64_t exact_matches = 0;
  for (const size_t batch : {10u, 50u, 250u, 1000u, 4000u}) {
    Interner interner;
    const auto edges = NetflowStream(&interner, 32000);
    const QueryGraph query = BuildSmurfQuery(&interner, 2);
    if (exact_matches == 0) {
      exact_matches =
          RunRecompute(query, kWindow, edges, &interner).matches;
    }
    RecomputeMatcher matcher(&query, kWindow, &interner);
    Timer timer;
    uint64_t enumerated = 0;
    uint64_t matches = 0;
    for (const EdgeBatch& b : BatchBySize(edges, batch)) {
      matches += matcher.ProcessBatch(b).value().size();
      enumerated += matcher.last_enumerated();
    }
    btable.Row({FormatCount(batch), FormatDouble(timer.ElapsedSeconds(), 3),
                FormatCount(enumerated), FormatCount(matches),
                FormatCount(exact_matches - matches)});
  }

  std::cout << "\n-- (c) news workload (Fig. 2 query, 8k articles) --\n";
  {
    Interner interner;
    NewsGenerator::Options opt;
    opt.seed = 111;
    opt.num_articles = 8000;
    opt.entity_skew = 0.8;
    NewsGenerator generator(opt, &interner);
    generator.InjectEvent(500, "politics", 3);
    generator.InjectEvent(1500, "politics", 3);
    const auto edges = generator.Generate();
    const QueryGraph query = BuildNewsEventQuery(&interner, "politics", 3);
    const RunResult engine = RunEngine(query, 60, edges, &interner);
    const RunResult naive = RunNaive(query, 60, edges, &interner);
    const RunResult recompute = RunRecompute(query, 60, edges, &interner);
    SW_CHECK_EQ(engine.matches, naive.matches);
    SW_CHECK_EQ(engine.matches, recompute.matches);
    bench::Table ctable({12, 12, 12, 14});
    ctable.Row({"matches", "sjtree s", "naive s", "recompute s"});
    ctable.Separator();
    ctable.Row({FormatCount(engine.matches),
                FormatDouble(engine.seconds, 3),
                FormatDouble(naive.seconds, 3),
                FormatDouble(recompute.seconds, 3)});
  }

  std::cout << "\nexpected shape: identical match counts everywhere; "
               "repeated search is consistently slower and its gap grows "
               "with stream length and window content (it re-scans the "
               "whole window per tick); the SJ-Tree also beats the naive "
               "matcher as query size and neighbourhood density grow\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
