// Experiment F6 (paper Fig. 6): the cascading effect of a Smurf DDoS
// campaign across subnetworks, rendered as the grid view — rows are
// subnets, columns are time slices, cells are detection counts. The
// campaign stages attacks subnet-by-subnet, so the heat should march down
// the grid diagonally over time.

#include <iostream>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/core/dedup.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"
#include "streamworks/viz/grid_view.h"

namespace streamworks {
namespace {

void Run() {
  bench::Banner("F6", "cascading Smurf DDoS across subnetworks (grid view)");
  Interner interner;

  NetflowGenerator::Options opt;
  opt.seed = 66;
  opt.num_hosts = 512;
  opt.num_subnets = 8;
  opt.background_edges = 80000;
  opt.attack_label_noise = false;
  NetflowGenerator generator(opt, &interner);
  const Timestamp span = opt.background_edges / opt.edges_per_tick;

  // Staged campaign: the attack victim moves to the next subnet every
  // span/8 ticks — the cascade of Fig. 6.
  for (int subnet = 0; subnet < opt.num_subnets; ++subnet) {
    const Timestamp at = span / 10 + subnet * (span / 10);
    generator.InjectSmurf(at, /*num_amplifiers=*/3, /*attacker_subnet=*/0,
                          /*victim_subnet=*/subnet);
  }
  const auto edges = generator.Generate();

  const QueryGraph query = BuildSmurfQuery(&interner, 3);
  StreamWorksEngine engine(&interner);
  GridView grid(/*slice_width=*/span / 32);
  uint64_t distinct_attacks = 0;
  SW_CHECK_OK(
      engine
          .RegisterQuery(
              query, DecompositionStrategy::kPrimitivePairs, /*window=*/60,
              DistinctSubgraphs([&](const CompleteMatch& cm) {
                ++distinct_attacks;
                // Query vertex 1 is the victim (BuildSmurfQuery).
                const int subnet = generator.SubnetOf(
                    engine.graph().external_id(cm.match.vertex(1)));
                grid.Add(StrCat("subnet_", subnet), cm.completed_at);
              }))
          .status());

  const double seconds = bench::Replay(engine, edges);

  std::cout << "-- detections per subnet over time --\n"
            << grid.RenderAscii() << "\n-- same grid as CSV --\n"
            << grid.RenderCsv();
  std::cout << "\ndistinct attacks detected: " << distinct_attacks << " of "
            << generator.injections().size() << " injected\n"
            << "expected shape: one hot cell per subnet row, marching "
               "diagonally (the cascade)\n"
            << "stream: " << FormatCount(edges.size()) << " edges in "
            << FormatDouble(seconds, 3) << "s ("
            << bench::Rate(edges.size(), seconds) << " edges/s)\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
