// Experiment A2 (ablation of §4.3's triad statistics): primitive-pair
// plans chosen with the multi-relational triad census versus the same
// strategy forced onto the independence assumption (census disabled). The
// census knows which wedges are actually rare in the data — pairs that the
// independence model mis-ranks — so its plans hold fewer partial matches.

#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/planner/planner.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

struct Outcome {
  uint64_t matches = 0;
  size_t peak_partials = 0;
  uint64_t join_attempts = 0;
  double seconds = 0;
  std::string plan;
};

Outcome RunPlan(const QueryGraph& query, const Decomposition& decomposition,
                const std::vector<StreamEdge>& edges, Interner* interner,
                Timestamp window) {
  Outcome out;
  SjTree tree(&query, decomposition, window);
  DynamicGraph graph(interner);
  graph.set_retention(window);
  std::vector<Match> completed;
  Timer timer;
  int step = 0;
  for (const StreamEdge& e : edges) {
    completed.clear();
    tree.ProcessEdge(graph, graph.AddEdge(e).value(), &completed);
    out.matches += completed.size();
    if (++step % 512 == 0) tree.ExpireOldMatches(graph.watermark());
  }
  out.seconds = timer.ElapsedSeconds();
  out.peak_partials = tree.PeakTotalPartialMatches();
  for (int n = 0; n < tree.decomposition().num_nodes(); ++n) {
    out.join_attempts += tree.node_stats(n).join_attempts;
  }
  return out;
}

void Run() {
  bench::Banner("A2", "triad-informed vs independence-assumption planning");
  Interner interner;

  // Netflow with attack-label noise: icmpEchoReq and icmpEchoReply are
  // individually rare-ish, but (req@A, reply@A) wedges through one host
  // are much rarer than independence predicts, while (req, req) fan-out
  // wedges are much more common. The triad census sees that.
  NetflowGenerator::Options opt;
  opt.seed = 222;
  opt.num_hosts = 256;
  opt.background_edges = 60000;
  opt.attack_label_noise = true;
  NetflowGenerator generator(opt, &interner);
  const Timestamp span = opt.background_edges / opt.edges_per_tick;
  generator.InjectSmurf(span / 2, 3);
  const auto edges = generator.Generate();

  const QueryGraph query = BuildSmurfQuery(&interner, 3);

  // Two statistics collectors over the same prefix: one with the triad
  // census, one without (the ablation knob).
  DynamicGraph sample_a(&interner);
  SummaryStatistics with_triads(/*wedge_sample_rate=*/1.0);
  DynamicGraph sample_b(&interner);
  SummaryStatistics without_triads(/*wedge_sample_rate=*/1.0);
  without_triads.set_wedge_census_enabled(false);
  for (size_t i = 0; i < edges.size() / 4; ++i) {
    auto a = sample_a.AddEdge(edges[i]);
    if (a.ok()) with_triads.Observe(sample_a, a.value());
    auto b = sample_b.AddEdge(edges[i]);
    if (b.ok()) without_triads.Observe(sample_b, b.value());
  }

  SelectivityEstimator informed(&with_triads);
  SelectivityEstimator independent(&without_triads);
  const Decomposition plan_informed =
      QueryPlanner(&informed)
          .Plan(query, DecompositionStrategy::kPrimitivePairs)
          .value();
  const Decomposition plan_independent =
      QueryPlanner(&independent)
          .Plan(query, DecompositionStrategy::kPrimitivePairs)
          .value();

  const Outcome a =
      RunPlan(query, plan_informed, edges, &interner, /*window=*/60);
  const Outcome b =
      RunPlan(query, plan_independent, edges, &interner, /*window=*/60);
  SW_CHECK_EQ(a.matches, b.matches);

  bench::Table table({20, 12, 16, 16, 10});
  table.Row({"estimator", "mappings", "peak partials", "join attempts",
             "seconds"});
  table.Separator();
  table.Row({"triad census", FormatCount(a.matches),
             FormatCount(a.peak_partials), FormatCount(a.join_attempts),
             FormatDouble(a.seconds, 3)});
  table.Row({"independence", FormatCount(b.matches),
             FormatCount(b.peak_partials), FormatCount(b.join_attempts),
             FormatDouble(b.seconds, 3)});

  std::cout << "\nfirst primitive chosen --\n  triad census:  "
            << QueryPlanner(&informed).ExplainPlan(
                   query, plan_informed, interner)
            << "  independence:  "
            << QueryPlanner(&independent)
                   .ExplainPlan(query, plan_independent, interner)
            << "\nexpected shape: identical mappings; the triad-informed "
               "plan pays fewer join attempts / partial matches whenever "
               "the census re-ranks the candidate wedges\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
