// Experiment A1 (ablation of the §4.1 goal): what does "push the most
// selective subgraph to the lowest level of the join tree" buy? The same
// query runs under a selective-first plan, the uninformed structural plan,
// and an adversarial *frequent-first* plan (most common edge lowest). All
// three emit identical matches; partial-match population and join work
// differ by orders of magnitude on a skewed stream.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/planner/planner.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

/// Adversarial order: greedy *descending* cardinality under the
/// connectivity constraint — the exact inverse of the paper's goal, built
/// from the same public pieces.
std::vector<Bitset64> FrequentFirstOrder(const QueryGraph& query,
                                         const SelectivityEstimator& est) {
  const int n = query.num_edges();
  std::vector<double> card(n);
  for (int e = 0; e < n; ++e) {
    card[e] = est.EdgeCardinality(query, static_cast<QueryEdgeId>(e));
  }
  int seed = 0;
  for (int e = 1; e < n; ++e) {
    if (card[e] > card[seed]) seed = e;
  }
  std::vector<Bitset64> order = {Bitset64::Single(seed)};
  Bitset64 covered = query.VerticesOfEdges(Bitset64::Single(seed));
  Bitset64 remaining = query.AllEdges() - Bitset64::Single(seed);
  while (!remaining.Empty()) {
    int best = -1;
    for (int e : remaining) {
      const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
      if (!covered.Contains(qe.src) && !covered.Contains(qe.dst)) continue;
      if (best < 0 || card[e] > card[best]) best = e;
    }
    order.push_back(Bitset64::Single(best));
    covered = covered | query.VerticesOfEdges(Bitset64::Single(best));
    remaining.Remove(best);
  }
  return order;
}

void Run() {
  bench::Banner("A1", "selective-first vs frequent-first join order");
  Interner interner;

  // Sized so that even the adversarial frequent-first plan finishes in a
  // few seconds; the population *ratio* is the result, not absolute time.
  NewsGenerator::Options opt;
  opt.seed = 1111;
  opt.num_articles = 2500;
  opt.entity_skew = 1.1;  // strong popularity skew
  NewsGenerator generator(opt, &interner);
  const Timestamp span = opt.num_articles / opt.articles_per_tick;
  generator.InjectEvent(span / 3, "accident", 3);
  generator.InjectEvent(2 * span / 3, "accident", 3);
  const auto edges = generator.Generate();

  // The Fig. 2 event query, but with the *common* hasLocation edges
  // numbered before the rare hasKeyword(accident) edges — so the
  // uninformed structural plan (which follows edge numbering) starts from
  // a frequent primitive, while the informed plan must discover the rare
  // seed itself.
  QueryGraphBuilder qb(&interner);
  const QueryVertexId kw = qb.AddVertex("accident");
  const QueryVertexId loc = qb.AddVertex("Location");
  QueryVertexId articles[3];
  for (auto& a : articles) a = qb.AddVertex("Article");
  for (const QueryVertexId a : articles) qb.AddEdge(a, loc, "hasLocation");
  for (const QueryVertexId a : articles) qb.AddEdge(a, kw, "hasKeyword");
  const QueryGraph query = qb.Build("news_event_accident_3").value();

  DynamicGraph sample(&interner);
  SummaryStatistics stats;
  for (size_t i = 0; i < edges.size() / 5; ++i) {
    auto id = sample.AddEdge(edges[i]);
    if (id.ok()) stats.Observe(sample, id.value());
  }
  SelectivityEstimator estimator(&stats);
  QueryPlanner planner(&estimator);

  struct Variant {
    std::string name;
    Decomposition decomposition;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"selective_first",
       planner.Plan(query, DecompositionStrategy::kSelectivityLeftDeep)
           .value()});
  variants.push_back(
      {"structural",
       planner.Plan(query, DecompositionStrategy::kLeftDeepEdgeOrder)
           .value()});
  variants.push_back(
      {"frequent_first",
       Decomposition::MakeLeftDeep(query,
                                   FrequentFirstOrder(query, estimator))
           .value()});

  bench::Table table({18, 12, 16, 16, 10});
  table.Row({"plan", "mappings", "peak partials", "join attempts",
             "seconds"});
  table.Separator();
  uint64_t reference_matches = 0;
  for (const Variant& variant : variants) {
    SjTree tree(&query, variant.decomposition, /*window=*/40);
    DynamicGraph graph(&interner);
    graph.set_retention(40);
    uint64_t matches = 0;
    std::vector<Match> completed;
    Timer timer;
    int step = 0;
    for (const StreamEdge& e : edges) {
      completed.clear();
      tree.ProcessEdge(graph, graph.AddEdge(e).value(), &completed);
      matches += completed.size();
      if (++step % 128 == 0) tree.ExpireOldMatches(graph.watermark());
    }
    const double seconds = timer.ElapsedSeconds();
    if (reference_matches == 0) reference_matches = matches;
    SW_CHECK_EQ(matches, reference_matches)
        << "plans must agree on the match set";
    uint64_t attempts = 0;
    for (int n = 0; n < tree.decomposition().num_nodes(); ++n) {
      attempts += tree.node_stats(n).join_attempts;
    }
    table.Row({variant.name, FormatCount(matches),
               FormatCount(tree.PeakTotalPartialMatches()),
               FormatCount(attempts), FormatDouble(seconds, 3)});
  }
  std::cout << "\nexpected shape: identical mappings; the frequent-first "
               "plan accumulates a partial-match population orders of "
               "magnitude larger than selective-first (the §4.1 claim)\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
