// Experiment F7 (paper Fig. 7): emerging partial matches for the Smurf
// DDoS pattern under *different SJ-Tree query plans*. All four
// decomposition strategies track the same attack on the same stream; the
// series shows the fraction of the query matched over time (the paper's
// percentage annotations) and the partial-match population each plan pays
// to get there. Completions must be identical; populations and runtime
// must not be.

#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/planner/planner.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

void Run() {
  bench::Banner("F7",
                "emerging Smurf matches under different query plans");
  Interner interner;

  NetflowGenerator::Options opt;
  opt.seed = 77;
  opt.num_hosts = 256;
  opt.background_edges = 40000;
  opt.attack_label_noise = true;  // noise differentiates the plans
  NetflowGenerator generator(opt, &interner);
  const Timestamp span = opt.background_edges / opt.edges_per_tick;
  generator.InjectSmurf(span / 2, /*num_amplifiers=*/3);
  const auto edges = generator.Generate();

  const QueryGraph query = BuildSmurfQuery(&interner, 3);

  // Summarise a prefix for informed plans.
  DynamicGraph sample(&interner);
  SummaryStatistics stats;
  for (size_t i = 0; i < edges.size() / 5; ++i) {
    auto id = sample.AddEdge(edges[i]);
    if (id.ok()) stats.Observe(sample, id.value());
  }
  SelectivityEstimator estimator(&stats);
  QueryPlanner planner(&estimator);

  struct Plan {
    DecompositionStrategy strategy;
    std::unique_ptr<SjTree> tree;
    uint64_t completions = 0;
    double seconds = 0;
  };
  std::vector<Plan> plans;
  for (DecompositionStrategy s : kAllDecompositionStrategies) {
    Plan plan;
    plan.strategy = s;
    plan.tree = std::make_unique<SjTree>(
        &query, planner.Plan(query, s).value(), /*window=*/60);
    plans.push_back(std::move(plan));
  }

  // All plans watch one shared window graph; each is timed separately.
  DynamicGraph graph(&interner);
  graph.set_retention(60);

  std::cout << "-- series: fraction of query matched / live partial "
               "matches --\ntick      ";
  for (const Plan& plan : plans) {
    std::cout << std::string(DecompositionStrategyName(plan.strategy))
                     .substr(0, 14)
              << "        ";
  }
  std::cout << "\n";

  const Timestamp sample_every = span / 16;
  Timestamp next_sample = sample_every;
  std::vector<Match> completed;
  int step = 0;
  for (const StreamEdge& e : edges) {
    const EdgeId id = graph.AddEdge(e).value();
    for (Plan& plan : plans) {
      Timer timer;
      completed.clear();
      plan.tree->ProcessEdge(graph, id, &completed);
      plan.completions += completed.size();
      plan.seconds += timer.ElapsedSeconds();
    }
    if (++step % 256 == 0) {
      for (Plan& plan : plans) plan.tree->ExpireOldMatches(graph.watermark());
    }
    if (e.ts >= next_sample) {
      next_sample += sample_every;
      std::cout << std::left << std::setw(10) << e.ts;
      for (const Plan& plan : plans) {
        std::cout << std::setw(5)
                  << FormatDouble(plan.tree->MaxMatchedFraction(), 2)
                  << std::setw(17)
                  << StrCat("/", plan.tree->TotalPartialMatches());
      }
      std::cout << "\n";
    }
  }

  std::cout << "\n-- summary per plan --\n";
  bench::Table table({24, 12, 14, 14, 10});
  table.Row({"strategy", "mappings", "peak partials", "join attempts",
             "seconds"});
  table.Separator();
  for (const Plan& plan : plans) {
    uint64_t attempts = 0;
    for (int n = 0; n < plan.tree->decomposition().num_nodes(); ++n) {
      attempts += plan.tree->node_stats(n).join_attempts;
    }
    table.Row({std::string(DecompositionStrategyName(plan.strategy)),
               FormatCount(plan.completions),
               FormatCount(plan.tree->PeakTotalPartialMatches()),
               FormatCount(attempts), FormatDouble(plan.seconds, 3)});
  }
  std::cout << "\nexpected shape: identical mappings across plans; "
               "selectivity-informed plans hold far fewer partial matches "
               "than the uninformed left-deep baseline\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
