// Experiment F2 (paper Fig. 2): SJ-Tree decomposition of the news query —
// "three articles sharing a common keyword and location" — and the flow of
// partial matches through the tree on a news stream with planted events.
//
// The paper's figure shows the query decomposed into (article, keyword,
// location) primitives that join pairwise up to the root; this bench prints
// the primitive-pairs decomposition (which reproduces that shape: 2-edge
// wedge leaves), then streams and reports how many matches each tree level
// held, demonstrating the progressive assembly of §3.1's intuitions.

#include <iostream>
#include <set>

#include "bench/bench_util.h"
#include "streamworks/common/interner.h"
#include "streamworks/planner/planner.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/workload_queries.h"

namespace streamworks {
namespace {

void Run() {
  bench::Banner("F2", "query decomposition for the Fig. 2 news query");
  Interner interner;

  NewsGenerator::Options opt;
  opt.seed = 42;
  opt.num_articles = 8000;
  opt.entity_skew = 0.6;
  NewsGenerator generator(opt, &interner);
  const Timestamp span = opt.num_articles / opt.articles_per_tick;
  generator.InjectEvent(span / 3, "politics", 3);
  generator.InjectEvent(2 * span / 3, "politics", 3);
  const auto edges = generator.Generate();

  const QueryGraph query = BuildNewsEventQuery(&interner, "politics", 3);
  std::cout << "query: " << query.ToString(interner) << "\n\n";

  // Plan with statistics from a stream prefix, as the demo does.
  DynamicGraph sample(&interner);
  SummaryStatistics stats;
  for (size_t i = 0; i < edges.size() / 5; ++i) {
    auto id = sample.AddEdge(edges[i]);
    if (id.ok()) stats.Observe(sample, id.value());
  }
  SelectivityEstimator estimator(&stats);
  QueryPlanner planner(&estimator);
  const Decomposition decomposition =
      planner.Plan(query, DecompositionStrategy::kPrimitivePairs).value();
  std::cout << "-- decomposition (primitive pairs, Fig. 2 shape) --\n"
            << planner.ExplainPlan(query, decomposition, interner) << "\n";

  StreamWorksEngine engine(&interner);
  uint64_t completions = 0;
  std::set<uint64_t> distinct_events;
  const int qid =
      engine
          .RegisterQuery(query, decomposition, /*window=*/40,
                         [&](const CompleteMatch& cm) {
                           ++completions;
                           distinct_events.insert(
                               cm.match.EdgeSetSignature());
                         })
          .value();
  const double seconds = bench::Replay(engine, edges);

  const SjTree& tree = engine.sjtree(qid);
  const Decomposition& d = tree.decomposition();
  std::cout << "-- partial-match flow per node (matches inserted) --\n";
  bench::Table table({6, 16, 10, 14, 14});
  table.Row({"node", "role", "edges", "inserted", "join attempts"});
  table.Separator();
  for (int n = 0; n < d.num_nodes(); ++n) {
    table.Row({StrCat("n", n),
               d.IsLeaf(n) ? "search primitive"
                           : (n == d.root() ? "root" : "join"),
               StrCat(d.node(n).edges.Count()),
               FormatCount(tree.node_stats(n).matches_inserted),
               FormatCount(tree.node_stats(n).join_attempts)});
  }
  std::cout << "\ncompletions: " << completions << " mappings, "
            << distinct_events.size()
            << " distinct events (2 injected; the rest are organic "
               "keyword/location co-occurrences)\n"
            << "stream: " << FormatCount(edges.size()) << " edges in "
            << FormatDouble(seconds, 3) << "s ("
            << bench::Rate(edges.size(), seconds) << " edges/s)\n";
}

}  // namespace
}  // namespace streamworks

int main() { streamworks::Run(); }
