#ifndef STREAMWORKS_BENCH_BENCH_UTIL_H_
#define STREAMWORKS_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure/table benches: a fixed-width table printer
// matching the layout used in EXPERIMENTS.md, and a driver that replays a
// stream through an engine while sampling per-tick series.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "streamworks/common/str_util.h"
#include "streamworks/common/timer.h"
#include "streamworks/core/engine.h"

namespace streamworks::bench {

/// Prints a header banner for one experiment.
inline void Banner(std::string_view experiment, std::string_view title) {
  std::cout << "\n=== " << experiment << ": " << title << " ===\n";
}

/// Fixed-width row printer: Row({"col", ...}) with widths per column.
class Table {
 public:
  explicit Table(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (size_t i = 0; i < cells.size(); ++i) {
      const int w = i < widths_.size() ? widths_[i] : 12;
      os << std::left << std::setw(w) << cells[i] << "  ";
    }
    std::cout << os.str() << "\n";
  }

  void Separator() {
    int total = 0;
    for (int w : widths_) total += w + 2;
    std::cout << std::string(total, '-') << "\n";
  }

 private:
  std::vector<int> widths_;
};

/// Replays `edges` through `engine`, returning wall-clock seconds.
inline double Replay(StreamWorksEngine& engine,
                     const std::vector<StreamEdge>& edges) {
  Timer timer;
  for (const StreamEdge& e : edges) {
    const Status s = engine.ProcessEdge(e);
    if (!s.ok()) {
      std::cerr << "ingest error: " << s.ToString() << "\n";
      std::exit(1);
    }
  }
  return timer.ElapsedSeconds();
}

inline std::string Rate(uint64_t count, double seconds) {
  return FormatCount(
      static_cast<uint64_t>(count / std::max(seconds, 1e-9)));
}

}  // namespace streamworks::bench

#endif  // STREAMWORKS_BENCH_BENCH_UTIL_H_
