// Prices the multi-process sharding path: a DistributedBackend feeding
// worker daemons over real localhost TCP, at 1, 2 and 4 workers. Reports
// ingest throughput (edges/s through Feed -> epoch batches -> barrier ->
// commit) and completion delivery lag (enqueue-to-callback, p50/p99) for
// a netflow stream with planted worm/probe motifs.
//
//   $ ./build/bench/bench_cluster [num_edges] [--json PATH]
//
// Workers run in-process on their own threads, without frame logs: the
// number is the cluster wire + barrier protocol, not disk. Machine-
// readable results land in bench-results/bench_cluster.json; the
// committed baseline is bench-results/BENCH_cluster.json (gated by
// ci/bench_gate.py on ingest_eps; the lag percentiles ride along for
// humans). Run on an idle machine for stable numbers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "bench/bench_util.h"
#include "streamworks/cluster/coordinator.h"
#include "streamworks/cluster/worker.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/timer.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/stream/netflow_gen.h"

namespace streamworks::bench {
namespace {

struct Result {
  std::string scenario;
  uint64_t edges = 0;
  double seconds = 0;
  double cpu_seconds = 0;
  uint64_t completions = 0;
  double p50_ms = 0;
  double p99_ms = 0;

  double eps() const { return seconds > 0 ? edges / seconds : 0; }
};

/// Observed cost of cluster observability on the ingest path: paired
/// obs-off/obs-on runs of the 2-worker scenario, scraped live while
/// feeding. The gated number is the wall-clock ingest slowdown — the
/// "ingest cost" a deployment actually pays, since the cluster path is
/// latency-bound on barrier round-trips and the scrape work happens off
/// the critical path. The absolute observability CPU (scrapes, report
/// pulls, phase records) rides along: on a latency-bound denominator a
/// CPU ratio wildly overstates milliseconds of work.
struct Overhead {
  int workers = 0;
  int pairs = 0;
  double median_ingest_pct = 0;
  double mean_ingest_pct = 0;
  double obs_cpu_ms_per_s = 0;
  double gate_pct = 3.0;
};

double ProcessCpuSeconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
}

/// One worker daemon on its own thread (same shape as the cluster tests):
/// port 0 binds an ephemeral listener, Serve runs until stop.
class BenchWorker {
 public:
  BenchWorker() {
    WorkerOptions options;
    options.poll_interval_ms = 20;
    daemon_ = std::make_unique<WorkerDaemon>(std::move(options));
    if (!daemon_->Start().ok()) {
      std::cerr << "worker failed to start\n";
      std::exit(1);
    }
    thread_ = std::thread([this] { daemon_->Serve(stop_).ok(); });
  }

  ~BenchWorker() {
    stop_.store(true);
    thread_.join();
  }

  int port() const { return daemon_->port(); }

 private:
  std::unique_ptr<WorkerDaemon> daemon_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

std::vector<StreamEdge> BenchStream(Interner* interner, int num_edges) {
  NetflowGenerator::Options opt;
  opt.seed = 99;
  opt.background_edges = num_edges;
  NetflowGenerator gen(opt, interner);
  gen.InjectWorm(num_edges / 4, 3);
  gen.InjectPortScan(num_edges / 2, 8);
  gen.InjectWorm((num_edges * 3) / 4, 3);
  return gen.Generate();
}

QueryGraph WormChain(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto a = b.AddVertex("Host");
  const auto h = b.AddVertex("Host");
  const auto x = b.AddVertex("Host");
  b.AddEdge(a, h, "exploit");
  b.AddEdge(h, x, "exploit");
  return b.Build("worm_chain").value();
}

QueryGraph Probe(Interner* interner) {
  QueryGraphBuilder b(interner);
  const auto s = b.AddVertex("Host");
  const auto t = b.AddVertex("Host");
  b.AddEdge(s, t, "synProbe");
  return b.Build("probe").value();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = std::min(
      samples.size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples.size())));
  return samples[idx];
}

Result RunScenario(int num_workers, const std::vector<StreamEdge>& edges,
                   Interner* interner, bool with_obs = false) {
  std::vector<std::unique_ptr<BenchWorker>> workers;
  DistributedBackendOptions options;
  for (int i = 0; i < num_workers; ++i) {
    workers.push_back(std::make_unique<BenchWorker>());
    options.workers.push_back("127.0.0.1:" +
                              std::to_string(workers.back()->port()));
  }
  // Paced ingest: a shallow pending queue makes Feed backpressure against
  // the pump, so the delivery lag measures steady-state epoch latency
  // rather than the depth of an unbounded buffer.
  options.epoch_edges = 512;
  options.max_pending_edges = 2048;
  // The obs-on configuration is the full production wiring: federation
  // registry + stage pipeline on the coordinator, scraped concurrently
  // while the stream flows (each scrape pulls worker reports over the
  // control links, contending with the epoch pump for the cluster lock).
  MetricRegistry registry;
  PipelineMetrics pipeline;
  if (with_obs) {
    options.registry = &registry;
    options.pipeline = &pipeline;
  }
  DistributedBackend backend(options, interner);

  // Lag sampling: the callback runs on the pump thread; its sample is
  // now - enqueue time of the most recently fed edge. The completing edge
  // was fed no later than that, so this underestimates slightly — the
  // same slight bias at every worker count, which is what a comparison
  // needs.
  Timer clock;
  std::atomic<double> last_feed_s{0.0};
  std::mutex lag_mu;
  std::vector<double> lag_ms;
  uint64_t completions = 0;
  auto sink = [&](const CompleteMatch&) {
    const double lag =
        (clock.ElapsedSeconds() - last_feed_s.load(std::memory_order_relaxed)) *
        1000.0;
    std::lock_guard<std::mutex> lock(lag_mu);
    lag_ms.push_back(std::max(lag, 0.0));
    ++completions;
  };

  if (!backend.Start().ok()) {
    std::cerr << "cluster failed to start\n";
    std::exit(1);
  }
  backend.Register(WormChain(interner),
                   DecompositionStrategy::kLeftDeepEdgeOrder, 200, sink)
      .value();
  backend.Register(Probe(interner), DecompositionStrategy::kLeftDeepEdgeOrder,
                   200, sink)
      .value();

  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  if (with_obs) {
    scraper = std::thread([&] {
      while (!scrape_stop.load(std::memory_order_relaxed)) {
        (void)registry.RenderPrometheus();
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    });
  }

  Timer timer;
  const double cpu_start = ProcessCpuSeconds();
  for (const StreamEdge& e : edges) {
    last_feed_s.store(clock.ElapsedSeconds(), std::memory_order_relaxed);
    if (!backend.Feed(e).ok()) {
      std::cerr << "ingest error\n";
      std::exit(1);
    }
  }
  backend.Flush();
  const double cpu_seconds = ProcessCpuSeconds() - cpu_start;
  const double seconds = timer.ElapsedSeconds();
  if (with_obs) {
    scrape_stop.store(true);
    scraper.join();
  }
  backend.Stop();

  Result result;
  result.scenario = "workers" + std::to_string(num_workers);
  result.edges = edges.size();
  result.seconds = seconds;
  result.cpu_seconds = cpu_seconds;
  result.completions = completions;
  result.p50_ms = Percentile(lag_ms, 0.50);
  result.p99_ms = Percentile(lag_ms, 0.99);
  return result;
}

/// Alternated obs-off/obs-on pairs at 2 workers; each pair's percentage
/// is the wall-clock ingest slowdown (seconds_on - seconds_off) /
/// seconds_off. Median defends against one noisy pair; the mean rides
/// along for honesty about the spread.
Overhead MeasureOverhead(int num_edges, int pairs) {
  Overhead result;
  result.workers = 2;
  result.pairs = pairs;
  std::vector<double> pcts;
  double sum = 0;
  double cpu_delta = 0;
  double wall_on = 0;
  for (int i = 0; i < pairs; ++i) {
    // Fresh interner + stream per run, like the scenario sweep.
    Interner off_interner;
    const auto off_edges = BenchStream(&off_interner, num_edges);
    const Result off =
        RunScenario(2, off_edges, &off_interner, /*with_obs=*/false);
    Interner on_interner;
    const auto on_edges = BenchStream(&on_interner, num_edges);
    const Result on =
        RunScenario(2, on_edges, &on_interner, /*with_obs=*/true);
    const double pct =
        off.seconds > 0 ? (on.seconds - off.seconds) / off.seconds * 100.0
                        : 0.0;
    pcts.push_back(pct);
    sum += pct;
    cpu_delta += on.cpu_seconds - off.cpu_seconds;
    wall_on += on.seconds;
    std::cout << "overhead pair " << (i + 1) << "/" << pairs << ": off="
              << FormatDouble(off.seconds, 3) << "s on="
              << FormatDouble(on.seconds, 3) << "s (" << FormatDouble(pct, 2)
              << "% wall; cpu " << FormatDouble(off.cpu_seconds, 3) << "s -> "
              << FormatDouble(on.cpu_seconds, 3) << "s)\n";
  }
  std::sort(pcts.begin(), pcts.end());
  result.median_ingest_pct = pcts[pcts.size() / 2];
  result.mean_ingest_pct = sum / static_cast<double>(pairs);
  result.obs_cpu_ms_per_s =
      wall_on > 0 ? std::max(cpu_delta, 0.0) / wall_on * 1000.0 : 0.0;
  return result;
}

void WriteJson(const std::vector<Result>& rows, const Overhead* overhead,
               const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent);
  std::ofstream out(path);
  out << "{\n  \"bench\": \"cluster\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Result& r = rows[i];
    out << "    {\"scenario\": \"" << r.scenario << "\", \"edges\": "
        << r.edges << ", \"seconds\": " << FormatDouble(r.seconds, 4)
        << ", \"ingest_eps\": " << FormatDouble(r.eps(), 1)
        << ", \"completions\": " << r.completions
        << ", \"p50_ms\": " << FormatDouble(r.p50_ms, 3)
        << ", \"p99_ms\": " << FormatDouble(r.p99_ms, 3) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (overhead != nullptr) {
    out << ",\n  \"overhead\": {\"workers\": " << overhead->workers
        << ", \"pairs\": " << overhead->pairs << ", \"median_ingest_pct\": "
        << FormatDouble(overhead->median_ingest_pct, 2)
        << ", \"mean_ingest_pct\": "
        << FormatDouble(overhead->mean_ingest_pct, 2)
        << ", \"obs_cpu_ms_per_s\": "
        << FormatDouble(overhead->obs_cpu_ms_per_s, 3)
        << ", \"gate_pct\": " << FormatDouble(overhead->gate_pct, 1) << "}";
  }
  out << "\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

void RunAll(int num_edges, const std::string& json_path, int overhead_pairs) {
  Banner("cluster", "multi-process sharding: ingest + delivery lag");
  std::vector<Result> rows;
  for (int workers : {1, 2, 4}) {
    // A fresh interner per scenario: each cluster run is an independent
    // deployment, like the correctness tests.
    Interner interner;
    const auto edges = BenchStream(&interner, num_edges);
    rows.push_back(RunScenario(workers, edges, &interner));
  }

  Table table({12, 10, 10, 14, 13, 11, 11});
  table.Row({"scenario", "edges", "seconds", "ingest e/s", "completions",
             "p50 ms", "p99 ms"});
  table.Separator();
  for (const Result& r : rows) {
    table.Row({r.scenario, std::to_string(r.edges),
               FormatDouble(r.seconds, 3), FormatDouble(r.eps(), 0),
               std::to_string(r.completions), FormatDouble(r.p50_ms, 2),
               FormatDouble(r.p99_ms, 2)});
  }

  Overhead overhead;
  if (overhead_pairs > 0) {
    std::cout << "\nobservability overhead (" << overhead_pairs
              << " obs-off/obs-on pairs at 2 workers, scraped live):\n";
    overhead = MeasureOverhead(num_edges, overhead_pairs);
    std::cout << "median " << FormatDouble(overhead.median_ingest_pct, 2)
              << "% mean " << FormatDouble(overhead.mean_ingest_pct, 2)
              << "% ingest slowdown, obs cpu "
              << FormatDouble(overhead.obs_cpu_ms_per_s, 2)
              << " ms/s (budget " << FormatDouble(overhead.gate_pct, 1)
              << "%)\n";
  }
  WriteJson(rows, overhead_pairs > 0 ? &overhead : nullptr, json_path);
}

}  // namespace
}  // namespace streamworks::bench

int main(int argc, char** argv) {
  int num_edges = 20000;
  int overhead_pairs = 5;
  std::string json_path = "bench-results/bench_cluster.json";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "--json needs a path\n";
        return 1;
      }
      json_path = argv[++i];
      continue;
    }
    if (arg == "--no-overhead") {
      overhead_pairs = 0;
      continue;
    }
    int64_t n = 0;
    if (!streamworks::ParseInt64(arg, &n) || n <= 0) {
      std::cerr << "usage: bench_cluster [num_edges] [--json PATH]"
                << " [--no-overhead]\n";
      return 1;
    }
    num_edges = static_cast<int>(n);
  }
  streamworks::bench::RunAll(num_edges, json_path, overhead_pairs);
  return 0;
}
