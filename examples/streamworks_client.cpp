// streamworks_client: command-line client for the StreamWorks socket
// server (the network frontend over the CommandInterpreter line protocol).
//
//   $ streamworks_client --tcp 127.0.0.1:7687 < session.txt
//   $ streamworks_client --unix /tmp/streamworks.sock --expect-events 3
//   $ streamworks_client --unix /tmp/sw.sock --feed-file edges.txt --binary
//
// Reads protocol lines from stdin, sends each as one command, and prints
// every response line. Asynchronous EVENT lines (push-streamed matches)
// are printed as they surface. After stdin ends, --expect-events N waits
// for N more EVENT lines before saying BYE — how the CI e2e gate asserts
// that push streaming actually pushed.
//
// --feed-file ingests a file of FEED lines before the stdin script runs:
// as plain text commands by default, or — with --binary — packed into
// FEEDB binary frames of --batch edges each (the batched wire fast path;
// one "OK feedb <accepted> <rejected>" response per frame).
//
// Exit codes: 0 ok, 1 usage, 2 connect/transport failure or timeout,
// 3 the server answered ERR (a scripted session is expected to be clean).

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/graph/stream_edge.h"
#include "streamworks/net/client.h"
#include "streamworks/stream/wire_format.h"

using namespace streamworks;  // NOLINT: example brevity

namespace {

struct Options {
  std::string tcp_host;
  int tcp_port = -1;
  std::string unix_path;
  int timeout_ms = 5000;
  int expect_events = 0;
  bool keep_going = false;  ///< Don't exit 3 on ERR responses.
  std::string feed_file;    ///< FEED lines to ingest before stdin.
  bool binary = false;      ///< Pack the feed file into FEEDB frames.
  int batch_size = 512;     ///< Edges per frame in --binary mode.
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " (--tcp HOST:PORT | --unix PATH) [--timeout-ms N]\n"
         "       [--expect-events N] [--keep-going]\n"
         "       [--feed-file PATH [--binary] [--batch N]]\n"
         "Reads line-protocol commands from stdin; see README 'Wire "
         "protocol'.\n"
         "--feed-file ingests a file of FEED lines first — as text\n"
         "commands, or as length-prefixed FEEDB binary frames of --batch\n"
         "edges each with --binary (the batched wire fast path).\n";
  return 1;
}

/// Parses one "FEED <src> <SrcLabel> <dst> <DstLabel> <edgeLabel> <ts>"
/// line into `edge` via the same ParseFeedFields the interpreter's text
/// path uses — the two encodings must agree on the grammar forever.
bool ParseFeedLine(std::string_view line, Interner* interner,
                   StreamEdge* edge) {
  std::vector<std::string_view> fields;
  for (std::string_view f : Split(line, ' ')) {
    if (!f.empty()) fields.push_back(f);
  }
  if (fields.size() != 7 || fields[0] != "FEED") return false;
  return ParseFeedFields(std::span(fields).subspan(1), interner, edge)
      .ok();
}

/// Ingests `path` (FEED lines; '#' comments) through `client`, either as
/// text commands or packed into FEEDB frames. Returns an exit code, 0 on
/// success.
int RunFeedFile(LineClient& client, const Options& options) {
  std::ifstream in(options.feed_file);
  if (!in) {
    std::cerr << "cannot open feed file: " << options.feed_file << "\n";
    return 2;
  }
  const std::chrono::milliseconds timeout(options.timeout_ms);
  Interner interner;
  EdgeBatch batch;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  const auto flush_batch = [&]() -> bool {
    if (batch.empty()) return true;
    auto counts = client.FeedBatch(batch, interner, timeout);
    if (!counts.ok()) {
      std::cerr << "transport error: " << counts.status().ToString()
                << "\n";
      return false;
    }
    accepted += counts->first;
    rejected += counts->second;
    batch.clear();
    return true;
  };
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    if (options.binary) {
      StreamEdge edge;
      if (!ParseFeedLine(stripped, &interner, &edge)) {
        std::cerr << "bad feed line: " << line << "\n";
        return 1;
      }
      batch.push_back(edge);
      if (batch.size() >= static_cast<size_t>(options.batch_size) &&
          !flush_batch()) {
        return 2;
      }
    } else {
      auto payload = client.Command(stripped, timeout);
      if (!payload.ok()) {
        std::cerr << "transport error: " << payload.status().ToString()
                  << "\n";
        return 2;
      }
      for (const std::string& reply : *payload) {
        std::cout << reply << "\n";
        if (StartsWith(reply, "ERR ") && !options.keep_going) return 3;
      }
    }
  }
  if (options.binary) {
    if (!flush_batch()) return 2;
    std::cout << "OK feedb " << accepted << " " << rejected << "\n";
  }
  return 0;
}

bool ParseTcpTarget(std::string_view arg, Options* options) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string_view::npos) return false;
  int64_t port = 0;
  if (!ParseInt64(arg.substr(colon + 1), &port) || port <= 0 ||
      port > 65535) {
    return false;
  }
  options->tcp_host = std::string(arg.substr(0, colon));
  options->tcp_port = static_cast<int>(port);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tcp") {
      const char* value = next_value();
      if (value == nullptr || !ParseTcpTarget(value, &options)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--unix") {
      const char* value = next_value();
      if (value == nullptr) return Usage(argv[0]);
      options.unix_path = value;
    } else if (arg == "--timeout-ms" || arg == "--expect-events") {
      const char* value = next_value();
      int64_t n = 0;
      if (value == nullptr || !ParseInt64(value, &n) || n < 0) {
        return Usage(argv[0]);
      }
      (arg == "--timeout-ms" ? options.timeout_ms : options.expect_events) =
          static_cast<int>(n);
    } else if (arg == "--keep-going") {
      options.keep_going = true;
    } else if (arg == "--feed-file") {
      const char* value = next_value();
      if (value == nullptr) return Usage(argv[0]);
      options.feed_file = value;
    } else if (arg == "--binary") {
      options.binary = true;
    } else if (arg == "--batch") {
      const char* value = next_value();
      int64_t n = 0;
      if (value == nullptr || !ParseInt64(value, &n) || n <= 0) {
        return Usage(argv[0]);
      }
      options.batch_size = static_cast<int>(n);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.tcp_port < 0 && options.unix_path.empty()) {
    return Usage(argv[0]);
  }
  if (options.binary && options.feed_file.empty()) {
    return Usage(argv[0]);  // --binary only shapes a --feed-file ingest
  }

  auto connected = options.unix_path.empty()
                       ? LineClient::ConnectTcp(options.tcp_host,
                                                options.tcp_port)
                       : LineClient::ConnectUnix(options.unix_path);
  if (!connected.ok()) {
    std::cerr << "connect failed: " << connected.status().ToString() << "\n";
    return 2;
  }
  LineClient client = std::move(connected).value();
  const std::chrono::milliseconds timeout(options.timeout_ms);
  // Harnesses (the CI e2e gate) tail this process's redirected stdout to
  // sequence multi-client scenarios; unbuffered output makes every
  // response line observable the moment it is printed, not at exit.
  std::cout << std::unitbuf;

  bool saw_err = false;
  // Events already pushed during the command phase count toward
  // --expect-events: a self-feeding script (SUBMIT/STREAM/FEED/FLUSH in
  // one stdin) usually receives its matches inside the FLUSH exchange,
  // and waiting for that many MORE events would time out spuriously.
  int events_seen = 0;
  // Only pushed matches satisfy the gate — an early "EVENT END" (queue
  // closed before all expected matches arrived) must not.
  const auto drain_events = [&client, &events_seen]() {
    while (client.buffered_events() > 0) {
      auto event = client.NextEvent(std::chrono::milliseconds(0));
      if (event.ok()) {
        std::cout << *event << "\n";
        if (StartsWith(*event, "EVENT MATCH ")) ++events_seen;
      }
    }
  };

  if (!options.feed_file.empty()) {
    const int feed_exit = RunFeedFile(client, options);
    if (feed_exit != 0) return feed_exit;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (StripWhitespace(line).empty()) continue;
    auto payload = client.Command(line, timeout);
    if (!payload.ok()) {
      std::cerr << "transport error: " << payload.status().ToString()
                << "\n";
      return 2;
    }
    for (const std::string& reply : *payload) {
      std::cout << reply << "\n";
      if (StartsWith(reply, "ERR ")) saw_err = true;
    }
    drain_events();
    if (saw_err && !options.keep_going) {
      std::cerr << "server reported ERR; aborting (--keep-going to "
                   "continue)\n";
      return 3;
    }
  }

  while (events_seen < options.expect_events) {
    auto event = client.NextEvent(timeout);
    if (!event.ok()) {
      std::cerr << "expected " << options.expect_events << " matches, got "
                << events_seen << ": " << event.status().ToString() << "\n";
      return 2;
    }
    std::cout << *event << "\n";
    if (StartsWith(*event, "EVENT MATCH ")) ++events_seen;
  }
  drain_events();

  client.Quit();
  return saw_err ? 3 : 0;
}
