// News/social-media monitoring (paper §5.2, Figs. 2 & 5): topic-specialised
// "emerging event" queries — three articles sharing a keyword and a
// location — run concurrently over a synthetic news stream; detections are
// grouped by location as in the demo's map view.
//
//   $ ./build/examples/news_monitor [num_articles]

#include <cstdlib>
#include <iostream>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/dedup.h"
#include "streamworks/core/engine.h"
#include "streamworks/stream/news_gen.h"
#include "streamworks/stream/workload_queries.h"
#include "streamworks/viz/event_table.h"

using namespace streamworks;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const int num_articles = argc > 1 ? std::atoi(argv[1]) : 4000;

  Interner interner;
  NewsGenerator::Options options;
  options.seed = 1306;  // arXiv month of the paper
  options.num_articles = num_articles;
  options.entity_skew = 0.7;
  NewsGenerator generator(options, &interner);

  // Plant events for three topics at different times.
  const Timestamp span = num_articles / options.articles_per_tick;
  generator.InjectEvent(span / 4, "politics", 3);
  generator.InjectEvent(span / 2, "accident", 3);
  generator.InjectEvent(3 * span / 4, "politics", 3);

  StreamWorksEngine engine(&interner);
  EventTable events;

  for (const char* topic :
       {"politics", "sports", "business", "accident", "science", "health"}) {
    const QueryGraph q = BuildNewsEventQuery(&interner, topic, 3);
    // The three article slots of the query are interchangeable, so each
    // event would surface as 3! automorphic mappings; DistinctSubgraphs
    // collapses them to one event per data subgraph.
    const auto id = engine.RegisterQuery(
        q, DecompositionStrategy::kSelectivityLeftDeep, /*window=*/40,
        DistinctSubgraphs([&, topic](const CompleteMatch& cm) {
          // Query vertex 1 is the shared Location (see
          // BuildNewsEventQuery); report the event under it.
          const VertexId loc = cm.match.vertex(1);
          events.Add(cm.completed_at, StrCat("event_", topic),
                     StrCat("location_",
                            engine.graph().external_id(loc) -
                                NewsGenerator::kLocationBase),
                     StrCat("articles=3"));
        }));
    if (!id.ok()) {
      std::cerr << "register failed: " << id.status().ToString() << "\n";
      return 1;
    }
  }
  std::cout << "registered 6 topic queries (Fig. 5 style)\n";

  const auto edges = generator.Generate();
  std::cout << "streaming " << FormatCount(edges.size())
            << " article-entity links (" << FormatCount(num_articles)
            << " articles)...\n\n";
  for (const StreamEdge& e : edges) {
    if (Status s = engine.ProcessEdge(e); !s.ok()) {
      std::cerr << "ingest error: " << s.ToString() << "\n";
      return 1;
    }
  }

  std::cout << "== emerging events (deduplicated; " << events.size()
            << " distinct, 3 injected) ==\n"
            << events.RenderAscii();
  std::cout << "\n== events by location (map-view substitute) ==\n";
  for (const auto& [key, count] : events.CountByKey()) {
    std::cout << "  " << key << ": " << count << " events\n";
  }
  std::cout << "\nprocessed "
            << FormatCount(engine.metrics().edges_processed) << " edges, "
            << engine.metrics().completions
            << " raw mappings before deduplication\n";
  return 0;
}
