// Quickstart: register one continuous graph query against a tiny edge
// stream and print every match as it completes.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the minimal StreamWorks API surface: Interner, query
// construction from the text DSL, engine setup, callback registration, and
// per-edge streaming.

#include <iostream>

#include "streamworks/common/interner.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/viz/match_format.h"

using namespace streamworks;  // NOLINT: example brevity

int main() {
  Interner interner;

  // A continuous query in the text DSL: user logs into a host which then
  // opens an outbound connection, within 60 ticks.
  const auto parsed = ParseQueryText(R"(
    query login_then_connect
    node u User
    node h Host
    node x Host
    edge u h login
    edge h x connect
    window 60
  )",
                                     &interner);
  if (!parsed.ok()) {
    std::cerr << "query error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "registered: " << parsed->graph.ToString(interner) << "\n"
            << "window:     " << parsed->window << " ticks\n\n";

  StreamWorksEngine engine(&interner);
  const QueryGraph& query = parsed->graph;
  const auto query_id = engine.RegisterQuery(
      query, DecompositionStrategy::kSelectivityLeftDeep, parsed->window,
      [&](const CompleteMatch& cm) {
        std::cout << "MATCH "
                  << FormatMatch(cm.match, query, engine.graph(), interner);
      });
  if (!query_id.ok()) {
    std::cerr << "register error: " << query_id.status().ToString() << "\n";
    return 1;
  }

  // A tiny hand-written stream. Labels are interned once and reused.
  const LabelId user = interner.Intern("User");
  const LabelId host = interner.Intern("Host");
  const LabelId login = interner.Intern("login");
  const LabelId connect = interner.Intern("connect");
  const LabelId noise = interner.Intern("ping");

  struct Row {
    uint64_t src, dst;
    LabelId sl, dl, el;
    Timestamp ts;
  };
  const Row rows[] = {
      {100, 1, user, host, login, 0},    // user 100 logs into host 1
      {1, 2, host, host, noise, 5},      // unrelated traffic
      {1, 3, host, host, connect, 10},   // host 1 connects out -> MATCH
      {200, 2, user, host, login, 20},   // user 200 logs into host 2
      {2, 4, host, host, connect, 90},   // 90-20 >= 60: no match with login@20
      {100, 2, user, host, login, 95},   // -> MATCH with connect@90 (span 5;
                                         //    the window bounds the spread of
                                         //    the match, not edge order)
      {2, 5, host, host, connect, 97},   // -> MATCH with login@95 (span 2)
  };
  for (const Row& r : rows) {
    StreamEdge e;
    e.src = r.src;
    e.dst = r.dst;
    e.src_label = r.sl;
    e.dst_label = r.dl;
    e.edge_label = r.el;
    e.ts = r.ts;
    if (Status s = engine.ProcessEdge(e); !s.ok()) {
      std::cerr << "ingest error: " << s.ToString() << "\n";
      return 1;
    }
  }

  std::cout << "\nprocessed " << engine.metrics().edges_processed
            << " edges, " << engine.metrics().completions << " matches\n";
  return 0;
}
