// stream_replay: the "production" entry point — replay an edge-stream CSV
// file against one or more continuous queries written in the text DSL, and
// print each detected event.
//
//   $ ./build/examples/stream_replay stream.csv query1.txt [query2.txt ...]
//
// Run without arguments for a self-contained demo: it synthesises an attack
// stream and two query files under /tmp, then replays them — showing the
// exact file formats a downstream user would provide.
//
// Flags (before positional args):
//   --mappings   report every mapping instead of one event per subgraph
//   --stats      print engine metrics and summary statistics at the end

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/dedup.h"
#include "streamworks/core/engine.h"
#include "streamworks/graph/graph_io.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/stream/netflow_gen.h"

using namespace streamworks;  // NOLINT: example brevity

namespace {

/// Writes the demo inputs and returns their paths.
std::pair<std::string, std::vector<std::string>> WriteDemoInputs() {
  Interner interner;
  NetflowGenerator::Options opt;
  opt.seed = 7;
  opt.background_edges = 5000;
  opt.attack_label_noise = false;
  NetflowGenerator generator(opt, &interner);
  generator.InjectPortScan(60, 4);
  generator.InjectExfiltration(140);
  const std::string stream_path = "/tmp/streamworks_demo_stream.csv";
  SW_CHECK_OK(
      WriteEdgeStreamFile(stream_path, generator.Generate(), interner));

  // One *query library* file holding both watch patterns.
  const std::string library_path = "/tmp/streamworks_demo_queries.txt";
  std::ofstream(library_path) << R"(# demo watch patterns

# port scan: one scanner probes 4 targets
query port_scan
node s Host
node t1 Host
node t2 Host
node t3 Host
node t4 Host
edge s t1 synProbe
edge s t2 synProbe
edge s t3 synProbe
edge s t4 synProbe
window 30

# staged exfiltration
query exfiltration
node a Host
node b Host
node c Host
edge a b copy
edge b c upload
window 30
)";
  std::cout << "demo inputs written:\n  " << stream_path << "\n  "
            << library_path << "\n\n";
  return {stream_path, {library_path}};
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError(StrCat("cannot open '", path, "'"));
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool report_mappings = false;
  bool print_stats = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mappings") {
      report_mappings = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else {
      positional.push_back(arg);
    }
  }

  std::string stream_path;
  std::vector<std::string> query_paths;
  if (positional.empty()) {
    std::tie(stream_path, query_paths) = WriteDemoInputs();
    print_stats = true;
  } else if (positional.size() >= 2) {
    stream_path = positional[0];
    query_paths.assign(positional.begin() + 1, positional.end());
  } else {
    std::cerr << "usage: stream_replay [--mappings] [--stats] "
                 "<stream.csv> <query.txt>...\n";
    return 2;
  }

  Interner interner;
  EngineOptions options;
  options.collect_statistics = print_stats;
  StreamWorksEngine engine(&interner, options);

  for (const std::string& path : query_paths) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::cerr << text.status().ToString() << "\n";
      return 1;
    }
    // Each file is a query library: one or more `query` blocks.
    auto parsed = ParseQueryLibrary(*text, &interner);
    if (!parsed.ok()) {
      std::cerr << path << ": " << parsed.status().ToString() << "\n";
      return 1;
    }
    for (const ParsedQuery& pq : *parsed) {
      const std::string name =
          pq.graph.name().empty() ? path : pq.graph.name();
      MatchCallback report = [name](const CompleteMatch& cm) {
        std::cout << "[t=" << cm.completed_at << "] " << name << " "
                  << cm.match.ToString() << "\n";
      };
      if (!report_mappings) report = DistinctSubgraphs(std::move(report));
      auto id = engine.RegisterQuery(
          pq.graph, DecompositionStrategy::kSelectivityLeftDeep, pq.window,
          std::move(report));
      if (!id.ok()) {
        std::cerr << path << ": " << id.status().ToString() << "\n";
        return 1;
      }
      std::cout << "registered " << name << " (window " << pq.window
                << ")\n";
    }
  }

  auto stream_text = ReadFile(stream_path);
  if (!stream_text.ok()) {
    std::cerr << stream_text.status().ToString() << "\n";
    return 1;
  }
  auto edges = ParseEdgeStream(*stream_text, &interner);
  if (!edges.ok()) {
    std::cerr << stream_path << ": " << edges.status().ToString() << "\n";
    return 1;
  }
  std::cout << "replaying " << FormatCount(edges->size()) << " edges from "
            << stream_path << "\n\n";
  for (const StreamEdge& e : *edges) {
    if (Status s = engine.ProcessEdge(e); !s.ok()) {
      std::cerr << "skipping bad record: " << s.ToString() << "\n";
    }
  }

  std::cout << "\n" << engine.metrics().completions << " mappings across "
            << engine.num_queries() << " queries\n";
  if (print_stats) {
    std::cout << "\n" << engine.statistics().ReportTable(interner);
    std::cout << "throughput: "
              << FormatCount(static_cast<uint64_t>(
                     engine.metrics().edges_processed /
                     std::max(1e-9, engine.metrics().processing_seconds)))
              << " edges/s\n";
  }
  return 0;
}
