// Query-planning explorer (paper §1.1 "query planning" demo feature):
// collects summary statistics from a sample stream, then shows how each
// decomposition strategy would decompose a query — the SJ-Tree shape, cut
// vertices, and estimated cardinalities — plus Graphviz DOT for the query.
//
//   $ ./build/examples/plan_explorer            # built-in smurf query
//   $ ./build/examples/plan_explorer query.txt  # query DSL file

#include <fstream>
#include <iostream>
#include <sstream>

#include "streamworks/common/interner.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/planner/planner.h"
#include "streamworks/planner/selectivity.h"
#include "streamworks/planner/stats.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"
#include "streamworks/viz/dot_export.h"

using namespace streamworks;  // NOLINT: example brevity

int main(int argc, char** argv) {
  Interner interner;

  // The query: from a DSL file, or the built-in Smurf pattern.
  QueryGraph query = BuildSmurfQuery(&interner, 3);
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = ParseQueryText(buf.str(), &interner);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    query = std::move(parsed->graph);
  }
  std::cout << "query: " << query.ToString(interner) << "\n\n";
  std::cout << "-- graphviz --\n" << QueryGraphToDot(query, interner) << "\n";

  // Summarise a sample stream (§4.3) so the estimates are informed.
  NetflowGenerator::Options options;
  options.seed = 7;
  options.background_edges = 30000;
  NetflowGenerator generator(options, &interner);
  DynamicGraph sample_graph(&interner);
  SummaryStatistics stats(/*wedge_sample_rate=*/1.0);
  for (const StreamEdge& e : generator.Generate()) {
    auto id = sample_graph.AddEdge(e);
    if (id.ok()) stats.Observe(sample_graph, id.value());
  }
  std::cout << stats.ReportTable(interner) << "\n";

  SelectivityEstimator estimator(&stats);
  QueryPlanner planner(&estimator);
  for (DecompositionStrategy strategy : kAllDecompositionStrategies) {
    std::cout << "==== strategy: " << DecompositionStrategyName(strategy)
              << " ====\n";
    auto plan = planner.Plan(query, strategy);
    if (!plan.ok()) {
      std::cout << "  planning failed: " << plan.status().ToString()
                << "\n\n";
      continue;
    }
    std::cout << planner.ExplainPlan(query, *plan, interner);
    std::cout << "tree height: " << plan->Height() << ", leaves: "
              << plan->leaves().size() << "\n\n";
  }
  return 0;
}
