// Cyber-security monitoring (paper §5.1, Fig. 3): four attack-pattern
// queries run concurrently over a synthetic internet-traffic stream with
// planted attacks, reporting detections as an event table plus a per-subnet
// activity grid (Fig. 6 style).
//
//   $ ./build/examples/cyber_monitor [background_edges]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/engine.h"
#include "streamworks/stream/netflow_gen.h"
#include "streamworks/stream/workload_queries.h"
#include "streamworks/viz/dot_export.h"
#include "streamworks/viz/event_table.h"
#include "streamworks/viz/gexf_export.h"
#include "streamworks/viz/grid_view.h"

using namespace streamworks;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const int background_edges = argc > 1 ? std::atoi(argv[1]) : 20000;

  Interner interner;
  NetflowGenerator::Options options;
  options.seed = 2013;
  options.num_hosts = 256;
  options.num_subnets = 8;
  options.background_edges = background_edges;
  options.attack_label_noise = true;
  NetflowGenerator generator(options, &interner);

  // Plant a campaign: two Smurf attacks on different subnets, a worm, a
  // port scan and an exfiltration.
  const Timestamp span = background_edges / options.edges_per_tick;
  generator.InjectSmurf(span / 5, /*num_amplifiers=*/3,
                        /*attacker_subnet=*/1, /*victim_subnet=*/6);
  generator.InjectSmurf(3 * span / 5, /*num_amplifiers=*/3,
                        /*attacker_subnet=*/2, /*victim_subnet=*/4);
  generator.InjectWorm(2 * span / 5, /*hops=*/3);
  generator.InjectPortScan(span / 2, /*num_targets=*/4);
  generator.InjectExfiltration(4 * span / 5);

  StreamWorksEngine engine(&interner);
  EventTable events;
  GridView subnet_grid(/*slice_width=*/std::max<Timestamp>(1, span / 40));
  // The most recent detection's edges, for the Gephi-style snapshot.
  std::vector<Match> last_detection;

  auto register_query = [&](const QueryGraph& q, Timestamp window) {
    const auto id = engine.RegisterQuery(
        q, DecompositionStrategy::kPrimitivePairs, window,
        [&, name = q.name()](const CompleteMatch& cm) {
          // Key detections by the victim-side subnet: the data vertex bound
          // to the last query vertex.
          const VertexId some_vertex =
              cm.match.vertex(static_cast<QueryVertexId>(
                  cm.match.bound_vertices().First()));
          const int subnet = generator.SubnetOf(
              engine.graph().external_id(some_vertex));
          events.Add(cm.completed_at, name, StrCat("subnet_", subnet),
                     StrCat("edges=", cm.match.bound_edges().Count()));
          subnet_grid.Add(StrCat("subnet_", subnet), cm.completed_at);
          last_detection.assign(1, cm.match);
        });
    if (!id.ok()) {
      std::cerr << "register failed: " << id.status().ToString() << "\n";
      std::exit(1);
    }
    std::cout << "registered " << q.name() << " (window " << window
              << ")\n";
  };

  register_query(BuildSmurfQuery(&interner, 3), /*window=*/30);
  register_query(BuildWormQuery(&interner, 3), /*window=*/30);
  register_query(BuildPortScanQuery(&interner, 4), /*window=*/30);
  register_query(BuildExfiltrationQuery(&interner), /*window=*/30);

  const auto edges = generator.Generate();
  std::cout << "\nstreaming " << FormatCount(edges.size())
            << " flow records over " << span << " ticks...\n\n";
  for (const StreamEdge& e : edges) {
    if (Status s = engine.ProcessEdge(e); !s.ok()) {
      std::cerr << "ingest error: " << s.ToString() << "\n";
      return 1;
    }
  }

  std::cout << "== detections (" << events.size() << " matches, "
            << generator.injections().size() << " injected attacks) ==\n";
  // Automorphic mappings make raw match counts larger than attack counts;
  // the key summary groups them.
  for (const auto& [key, count] : events.CountByKey()) {
    std::cout << "  " << key << ": " << count << " matches\n";
  }
  std::cout << "\n== per-subnet detection activity (Fig. 6 style) ==\n"
            << subnet_grid.RenderAscii();

  std::cout << "\n== per-query summary ==\n";
  for (size_t qid = 0; qid < engine.num_queries(); ++qid) {
    const QueryRuntimeInfo info = engine.query_info(static_cast<int>(qid));
    std::cout << "  " << info.name << ": " << info.completions
              << " completions, peak partial matches "
              << info.peak_partial_matches << "\n";
  }
  // Gephi-style snapshot (paper §6.2): the final window with the latest
  // detection's edges highlighted.
  if (!last_detection.empty()) {
    const std::string gexf_path = "/tmp/cyber_monitor_window.gexf";
    std::ofstream(gexf_path)
        << DataGraphToGexf(engine.graph(), interner,
                           ColorMatches(last_detection, "red"));
    std::cout << "\nGephi snapshot of the final window written to "
              << gexf_path << "\n";
  }

  std::cout << "\nprocessed " << FormatCount(engine.metrics().edges_processed)
            << " edges in "
            << FormatDouble(engine.metrics().processing_seconds, 3) << "s ("
            << FormatCount(static_cast<uint64_t>(
                   engine.metrics().edges_processed /
                   std::max(1e-9, engine.metrics().processing_seconds)))
            << " edges/s)\n";
  return 0;
}
