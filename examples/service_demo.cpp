// Service demo: the multi-tenant continuous-query layer end-to-end.
//
//   $ ./build/examples/service_demo
//
// With --serve the same service becomes a network daemon instead of a
// scripted scenario: a SocketServer binds the CommandInterpreter line
// protocol to TCP and/or a unix-domain socket, and tenants drive it from
// other processes with streamworks_client (or nc). The CI e2e job runs
// exactly that: `service_demo --serve --unix /tmp/sw.sock` in the
// background, a scripted subscribe/ingest/expect-matches session against
// it, SIGTERM to shut down.
//
//   $ ./build/examples/service_demo --serve --tcp 7687 --unix /tmp/sw.sock
//
// Three analyst sessions share one live netflow-style stream served by a
// two-shard ParallelEngineGroup behind a QueryService. The whole scenario
// is scripted through the CommandInterpreter's line protocol — the same
// protocol test fixtures use — and exercises the service surface:
//
//   * soc       subscribes to a port-scan style probe pattern with a tiny
//               drop_oldest queue (a dashboard that only wants the latest),
//   * forensics subscribes to the same pattern with drop_newest (an
//               evidence log that must keep the earliest hits), pauses
//               during the noisy burst, and resumes after,
//   * triage    subscribes to a two-hop login->connect pattern, then
//               detaches mid-stream — deliveries provably stop while the
//               other sessions keep flowing.
//
// The final STATS block shows per-session admission, drop, suppression,
// and delivery-lag counters diverging per tenant.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string_view>
#include <thread>

#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/parallel.h"
#include "streamworks/net/server.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/query_service.h"

using namespace streamworks;  // NOLINT: example brevity

namespace {

constexpr const char* kScenario = R"(
# --- query catalogue -------------------------------------------------------
DEFINE probe
  node s Host
  node t Host
  edge s t synProbe
  window 100
END
DEFINE lateral
  node u User
  node h Host
  node x Host
  edge u h login
  edge h x connect
  window 50
END

# --- tenants ---------------------------------------------------------------
SESSION soc
SESSION forensics
SESSION triage
SUBMIT soc live probe CAP 3 POLICY drop_oldest
SUBMIT forensics evidence probe CAP 3 POLICY drop_newest
SUBMIT triage hunt lateral CAP 16 POLICY block

# --- quiet traffic: a lateral movement and the first probes ---------------
FEED 500 User 10 Host login 1
FEED 10 Host 11 Host connect 3
FEED 20 Host 30 Host synProbe 5
FEED 20 Host 31 Host synProbe 6
FLUSH
POLL triage hunt

# triage saw its lateral movement; the hunt is over.
DETACH triage hunt

# --- noisy burst: forensics pauses, soc rides its bounded queue -----------
PAUSE forensics evidence
FEED 20 Host 32 Host synProbe 10
FEED 20 Host 33 Host synProbe 11
FEED 20 Host 34 Host synProbe 12
FEED 20 Host 35 Host synProbe 13
FEED 500 User 12 Host login 14
FEED 12 Host 13 Host connect 15
FLUSH
RESUME forensics evidence

# --- after the burst -------------------------------------------------------
FEED 20 Host 36 Host synProbe 20
FLUSH
POLL soc live
POLL forensics evidence
STATS
)";

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

/// Daemon mode: serve the line protocol on sockets until SIGINT/SIGTERM.
int Serve(QueryService* service, Interner* interner,
          const ServerOptions& options) {
  // Handlers first: a supervisor's SIGTERM in the bind window must already
  // take the graceful path, not the default disposition.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  SocketServer server(service, interner, options);
  if (Status status = server.Start(); !status.ok()) {
    std::cerr << "server start failed: " << status.ToString() << "\n";
    return 1;
  }
  // The e2e harness (and any supervisor) scrapes this line for the
  // endpoints, so keep it on one line and flush it before backgrounding
  // settles.
  std::cout << "SERVING tcp=" << server.tcp_port() << " unix="
            << (server.unix_path().empty() ? "-" : server.unix_path())
            << std::endl;
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  const ServerStats stats = server.stats();
  std::cout << "SHUTDOWN accepted=" << stats.connections_accepted
            << " lines=" << stats.lines_executed
            << " frames=" << stats.frames_executed
            << " batch_edges=" << stats.batch_edges_in
            << " events=" << stats.events_pushed
            << " reclaimed=" << stats.subscriptions_reclaimed << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Tenants pick the sharding mode where the engine group is built:
  // broadcast (default) replicates the window graph per shard and spreads
  // queries; `service_demo partitioned` shards the data graph by vertex
  // ownership and exchanges cross-shard partial matches — same scenario,
  // same output, and STATS grows per-shard retained/forwarded lines.
  bool partitioned = false;
  bool serve = false;
  ServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "partitioned") {
      partitioned = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--tcp" && i + 1 < argc) {
      int64_t port = 0;
      if (!ParseInt64(argv[++i], &port) || port < 0 || port > 65535) {
        std::cerr << "bad --tcp port: " << argv[i] << "\n";
        return 1;
      }
      server_options.tcp_port = static_cast<int>(port);
      serve = true;  // an endpoint flag IS the request to serve
    } else if (arg == "--unix" && i + 1 < argc) {
      server_options.unix_path = argv[++i];
      serve = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [partitioned] [--serve [--tcp PORT] [--unix PATH]]\n";
      return 1;
    }
  }
  Interner interner;
  ParallelEngineGroup group(&interner, /*num_shards=*/2, {},
                            partitioned ? ShardingMode::kPartitionedData
                                        : ShardingMode::kBroadcastData);
  ParallelGroupBackend backend(&group);

  ServiceLimits limits;
  limits.max_queries_per_session = 4;
  QueryService service(&backend, limits);

  if (serve) {
    if (server_options.tcp_port < 0 && server_options.unix_path.empty()) {
      server_options.tcp_port = 0;  // ephemeral; port printed on SERVING
    }
    return Serve(&service, &interner, server_options);
  }

  CommandInterpreter interpreter(&service, &interner, &std::cout);

  if (Status status = interpreter.ExecuteScript(kScenario); !status.ok()) {
    std::cerr << "scenario error: " << status.ToString() << "\n";
    return 1;
  }

  // The triage session detached mid-stream: the login@14/connect@15 pair
  // completed after the detach and must not have been delivered.
  std::cout << "\ntriage deliveries after detach: ";
  auto triage = interpreter.ResolveSubscription("triage", "hunt");
  if (!triage.ok()) {
    std::cerr << "lookup error: " << triage.status().ToString() << "\n";
    return 1;
  }
  const ResultQueueCounters counters =
      service.queue(triage->first, triage->second)->counters();
  std::cout << counters.enqueued << " enqueued, " << counters.delivered
            << " delivered (none after DETACH)\n";
  return counters.enqueued == 1 ? 0 : 1;
}
