// Service demo: the multi-tenant continuous-query layer end-to-end.
//
//   $ ./build/examples/service_demo
//
// With --serve the same service becomes a network daemon instead of a
// scripted scenario: a SocketServer binds the CommandInterpreter line
// protocol to TCP and/or a unix-domain socket, and tenants drive it from
// other processes with streamworks_client (or nc). The CI e2e job runs
// exactly that: `service_demo --serve --unix /tmp/sw.sock` in the
// background, a scripted subscribe/ingest/expect-matches session against
// it, SIGTERM to shut down.
//
//   $ ./build/examples/service_demo --serve --tcp 7687 --unix /tmp/sw.sock
//
// Three analyst sessions share one live netflow-style stream served by a
// two-shard ParallelEngineGroup behind a QueryService. The whole scenario
// is scripted through the CommandInterpreter's line protocol — the same
// protocol test fixtures use — and exercises the service surface:
//
//   * soc       subscribes to a port-scan style probe pattern with a tiny
//               drop_oldest queue (a dashboard that only wants the latest),
//   * forensics subscribes to the same pattern with drop_newest (an
//               evidence log that must keep the earliest hits), pauses
//               during the noisy burst, and resumes after,
//   * triage    subscribes to a two-hop login->connect pattern, then
//               detaches mid-stream — deliveries provably stop while the
//               other sessions keep flowing.
//
// The final STATS block shows per-session admission, drop, suppression,
// and delivery-lag counters diverging per tenant.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string_view>
#include <thread>

#include "streamworks/cluster/coordinator.h"
#include "streamworks/cluster/worker.h"
#include "streamworks/common/interner.h"
#include "streamworks/common/str_util.h"
#include "streamworks/core/parallel.h"
#include "streamworks/net/server.h"
#include "streamworks/obs/json_render.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/persist/durable_backend.h"
#include "streamworks/persist/manager.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/query_service.h"

using namespace streamworks;  // NOLINT: example brevity

namespace {

constexpr const char* kScenario = R"(
# --- query catalogue -------------------------------------------------------
DEFINE probe
  node s Host
  node t Host
  edge s t synProbe
  window 100
END
DEFINE lateral
  node u User
  node h Host
  node x Host
  edge u h login
  edge h x connect
  window 50
END

# --- tenants ---------------------------------------------------------------
SESSION soc
SESSION forensics
SESSION triage
SUBMIT soc live probe CAP 3 POLICY drop_oldest
SUBMIT forensics evidence probe CAP 3 POLICY drop_newest
SUBMIT triage hunt lateral CAP 16 POLICY block

# --- quiet traffic: a lateral movement and the first probes ---------------
FEED 500 User 10 Host login 1
FEED 10 Host 11 Host connect 3
FEED 20 Host 30 Host synProbe 5
FEED 20 Host 31 Host synProbe 6
FLUSH
POLL triage hunt

# triage saw its lateral movement; the hunt is over.
DETACH triage hunt

# --- noisy burst: forensics pauses, soc rides its bounded queue -----------
PAUSE forensics evidence
FEED 20 Host 32 Host synProbe 10
FEED 20 Host 33 Host synProbe 11
FEED 20 Host 34 Host synProbe 12
FEED 20 Host 35 Host synProbe 13
FEED 500 User 12 Host login 14
FEED 12 Host 13 Host connect 15
FLUSH
RESUME forensics evidence

# --- after the burst -------------------------------------------------------
FEED 20 Host 36 Host synProbe 20
FLUSH
POLL soc live
POLL forensics evidence
STATS
)";

std::atomic<bool> g_shutdown{false};

void HandleSignal(int) { g_shutdown.store(true); }

/// Daemon mode: serve the line protocol on sockets until SIGINT/SIGTERM.
/// `durability` (may be null) provides the SNAPSHOT verb and a final
/// shutdown snapshot, so a graceful restart recovers without any WAL
/// tail to replay.
int Serve(QueryService* service, Interner* interner, ServerOptions options,
          DurabilityManager* durability) {
  // Handlers first: a supervisor's SIGTERM in the bind window must already
  // take the graceful path, not the default disposition.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  if (durability != nullptr) {
    options.snapshot_hook = [durability]() -> StatusOr<std::string> {
      SW_ASSIGN_OR_RETURN(const SnapshotInfo info,
                          durability->SnapshotNow());
      return "wal_seq=" + std::to_string(info.wal_seq) + " " + info.path;
    };
    // Stop() must not close still-connected tenants' sessions: the
    // shutdown snapshot below captures them, so a graceful restart
    // preserves exactly the re-attachable state a kill -9 would have.
    options.preserve_sessions_on_stop = true;
  }
  SocketServer server(service, interner, options);
  if (Status status = server.Start(); !status.ok()) {
    std::cerr << "server start failed: " << status.ToString() << "\n";
    return 1;
  }
  // The e2e harness (and any supervisor) scrapes this line for the
  // endpoints, so keep it on one line and flush it before backgrounding
  // settles.
  std::cout << "SERVING tcp=" << server.tcp_port() << " unix="
            << (server.unix_path().empty() ? "-" : server.unix_path())
            << " http=" << server.http_port() << std::endl;
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  const ServerStats stats = server.stats();
  std::cout << "SHUTDOWN accepted=" << stats.connections_accepted
            << " lines=" << stats.lines_executed
            << " frames=" << stats.frames_executed
            << " batch_edges=" << stats.batch_edges_in
            << " events=" << stats.events_pushed
            << " reclaimed=" << stats.subscriptions_reclaimed << std::endl;
  if (durability != nullptr) {
    // Stop() joined the poll thread, so this thread is the control
    // thread again: a last snapshot makes the graceful restart replay
    // nothing. (kill -9 skips this — that is what the WAL is for.)
    auto final_snap = durability->SnapshotNow();
    if (final_snap.ok()) {
      std::cout << "SNAPSHOT final wal_seq=" << final_snap->wal_seq << " "
                << final_snap->path << std::endl;
    } else {
      std::cerr << "final snapshot failed: "
                << final_snap.status().ToString() << "\n";
    }
  }
  return 0;
}

/// `--role worker`: one shard of a distributed cluster as its own daemon.
/// Prints "WORKER port=<port>" once listening (the e2e harness scrapes it,
/// like SERVING) and serves until SIGINT/SIGTERM.
int RunWorker(WorkerOptions options) {
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  WorkerDaemon daemon(std::move(options));
  if (Status status = daemon.Start(); !status.ok()) {
    std::cerr << "worker start failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "WORKER port=" << daemon.port();
  if (daemon.http_port() >= 0) std::cout << " http=" << daemon.http_port();
  std::cout << std::endl;
  const Status served = daemon.Serve(g_shutdown);
  if (!served.ok()) {
    std::cerr << "worker failed: " << served.ToString() << "\n";
    return 1;
  }
  const WorkerCounters& counters = daemon.counters();
  std::cout << "WORKER SHUTDOWN frames=" << counters.frames_applied
            << " replayed=" << counters.replayed_frames
            << " exchange_sent=" << counters.exchange_items_sent
            << " completions=" << counters.completions_sent << std::endl;
  return 0;
}

/// Splits a comma-separated "host:port,host:port" worker list.
std::vector<std::string> SplitWorkerList(std::string_view spec) {
  std::vector<std::string> out;
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    out.emplace_back(spec.substr(0, comma));
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Tenants pick the sharding mode where the engine group is built:
  // broadcast (default) replicates the window graph per shard and spreads
  // queries; `service_demo partitioned` shards the data graph by vertex
  // ownership and exchanges cross-shard partial matches — same scenario,
  // same output, and STATS grows per-shard retained/forwarded lines.
  bool partitioned = false;
  bool serve = false;
  int64_t trace_threshold_us = PipelineMetrics::kDefaultSlowThresholdUs;
  ServerOptions server_options;
  DurabilityOptions durability_options;
  // Cluster mode: --role worker serves one shard, --role coordinator runs
  // the full service surface over a DistributedBackend spanning --workers.
  std::string role;
  WorkerOptions worker_options;
  DistributedBackendOptions cluster_options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "partitioned") {
      partitioned = true;
    } else if (arg == "--role" && i + 1 < argc) {
      role = argv[++i];
      if (role != "coordinator" && role != "worker") {
        std::cerr << "bad --role (want coordinator|worker): " << role << "\n";
        return 1;
      }
    } else if (arg == "--workers" && i + 1 < argc) {
      cluster_options.workers = SplitWorkerList(argv[++i]);
    } else if (arg == "--listen-port" && i + 1 < argc) {
      int64_t port = 0;
      if (!ParseInt64(argv[++i], &port) || port < 0 || port > 65535) {
        std::cerr << "bad --listen-port: " << argv[i] << "\n";
        return 1;
      }
      worker_options.port = static_cast<int>(port);
    } else if (arg == "--http-port" && i + 1 < argc) {
      int64_t port = 0;
      if (!ParseInt64(argv[++i], &port) || port < 0 || port > 65535) {
        std::cerr << "bad --http-port: " << argv[i] << "\n";
        return 1;
      }
      worker_options.http_port = static_cast<int>(port);
    } else if (arg == "--connect-deadline-ms" && i + 1 < argc) {
      int64_t ms = 0;
      if (!ParseInt64(argv[++i], &ms) || ms <= 0) {
        std::cerr << "bad --connect-deadline-ms: " << argv[i] << "\n";
        return 1;
      }
      cluster_options.connect_deadline_ms = static_cast<int>(ms);
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--tcp" && i + 1 < argc) {
      int64_t port = 0;
      if (!ParseInt64(argv[++i], &port) || port < 0 || port > 65535) {
        std::cerr << "bad --tcp port: " << argv[i] << "\n";
        return 1;
      }
      server_options.tcp_port = static_cast<int>(port);
      serve = true;  // an endpoint flag IS the request to serve
    } else if (arg == "--unix" && i + 1 < argc) {
      server_options.unix_path = argv[++i];
      serve = true;
    } else if (arg == "--http" && i + 1 < argc) {
      int64_t port = 0;
      if (!ParseInt64(argv[++i], &port) || port < 0 || port > 65535) {
        std::cerr << "bad --http port: " << argv[i] << "\n";
        return 1;
      }
      server_options.http_port = static_cast<int>(port);
      serve = true;
    } else if (arg == "--io-loops" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0 || n > 64) {
        std::cerr << "bad --io-loops count: " << argv[i] << "\n";
        return 1;
      }
      server_options.io_loops = static_cast<int>(n);
    } else if (arg == "--max-connections" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::cerr << "bad --max-connections count: " << argv[i] << "\n";
        return 1;
      }
      server_options.max_connections = static_cast<size_t>(n);
    } else if (arg == "--write-high-water" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::cerr << "bad --write-high-water bytes: " << argv[i] << "\n";
        return 1;
      }
      server_options.write_high_water = static_cast<size_t>(n);
    } else if (arg == "--so-sndbuf" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n <= 0) {
        std::cerr << "bad --so-sndbuf bytes: " << argv[i] << "\n";
        return 1;
      }
      server_options.so_sndbuf = static_cast<int>(n);
    } else if (arg == "--trace-us" && i + 1 < argc) {
      if (!ParseInt64(argv[++i], &trace_threshold_us) ||
          trace_threshold_us < 0) {
        std::cerr << "bad --trace-us threshold: " << argv[i] << "\n";
        return 1;
      }
    } else if (arg == "--data-dir" && i + 1 < argc) {
      durability_options.data_dir = argv[++i];
    } else if (arg == "--snapshot-every" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0) {
        std::cerr << "bad --snapshot-every count: " << argv[i] << "\n";
        return 1;
      }
      durability_options.snapshot_every_edges = static_cast<uint64_t>(n);
    } else if (arg == "--fsync-every" && i + 1 < argc) {
      int64_t n = 0;
      if (!ParseInt64(argv[++i], &n) || n < 0) {
        std::cerr << "bad --fsync-every count: " << argv[i] << "\n";
        return 1;
      }
      durability_options.fsync_every_records = static_cast<int>(n);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [partitioned] [--serve [--tcp PORT] [--unix PATH]"
                   " [--http PORT]] [--io-loops N] [--max-connections N]"
                   " [--write-high-water BYTES] [--so-sndbuf BYTES]"
                   " [--trace-us N]"
                   " [--data-dir DIR [--snapshot-every N]"
                   " [--fsync-every N]]"
                   " [--role worker --listen-port P [--http-port P]"
                   " [--data-dir DIR]]"
                   " [--role coordinator --workers H:P,H:P"
                   " [--connect-deadline-ms N]]\n";
      return 1;
    }
  }
  if (role == "worker") {
    // A worker's --data-dir is its frame log, not the service WAL.
    worker_options.data_dir = durability_options.data_dir;
    return RunWorker(std::move(worker_options));
  }
  if (role == "coordinator" && cluster_options.workers.empty()) {
    std::cerr << "--role coordinator requires --workers host:port,...\n";
    return 1;
  }
  if (durability_options.data_dir.empty() &&
      (durability_options.snapshot_every_edges > 0 ||
       durability_options.fsync_every_records > 0)) {
    // Durability knobs without a data dir would be a silent no-op: the
    // operator believes state survives a crash when nothing is written.
    std::cerr << "--snapshot-every/--fsync-every require --data-dir\n";
    return 1;
  }
  Interner interner;
  // The observability spine: one registry serving /metrics, one shared
  // PipelineMetrics instance every layer records its stages into. Both
  // are wired before any traffic so instrumentation is on from the first
  // edge.
  MetricRegistry registry;
  PipelineMetrics pipeline(static_cast<uint64_t>(trace_threshold_us));
  EngineOptions engine_options;
  engine_options.pipeline = &pipeline;
  ParallelEngineGroup group(&interner, /*num_shards=*/2, engine_options,
                            partitioned ? ShardingMode::kPartitionedData
                                        : ShardingMode::kBroadcastData);
  ParallelGroupBackend group_backend(&group);

  // With --data-dir the durable decorator slides between the service and
  // the group: ingest is WAL-logged before it is applied, and the
  // process recovers its window + sessions on start.
  const bool durable =
      !durability_options.data_dir.empty() && role != "coordinator";
  DurableBackend durable_backend(&group_backend);
  QueryBackend* backend =
      durable ? static_cast<QueryBackend*>(&durable_backend)
              : &group_backend;

  // Coordinator mode swaps the in-process group for the multi-process
  // cluster; everything above it (service, sessions, wire protocol,
  // observability) is unchanged. Durability lives in the workers' frame
  // logs, so the coordinator-side WAL decorator stays out of the stack.
  std::optional<DistributedBackend> cluster;
  if (role == "coordinator") {
    if (!durability_options.data_dir.empty()) {
      std::cerr << "--data-dir on the coordinator is unused; give it to the "
                   "workers (their frame logs carry cluster durability)\n";
      return 1;
    }
    // The cluster backend joins the observability spine: its federation
    // collector makes /metrics cluster-wide, its epoch phases land in the
    // registry, and its barrier/relay time lands in the shared pipeline.
    cluster_options.registry = &registry;
    cluster_options.pipeline = &pipeline;
    cluster.emplace(cluster_options, &interner);
    if (Status status = cluster->Start(); !status.ok()) {
      std::cerr << "cluster start failed: " << status.ToString() << "\n";
      return 1;
    }
    backend = &*cluster;
  }

  ServiceLimits limits;
  limits.max_queries_per_session = 4;
  QueryService service(backend, limits);
  service.set_pipeline_metrics(&pipeline);
  // Scrape-time collectors: the service snapshot (which also folds in the
  // persist and frontend probes) and the per-stage histograms. Collectors
  // run on the scraping thread — the server's poll thread, i.e. the
  // control thread — so the Snapshot() call is safe.
  RegisterServiceCollector(&registry,
                           [&service] { return service.Snapshot(); });
  RegisterPipelineCollector(&registry, &pipeline);

  std::optional<DurabilityManager> durability;
  if (durable) {
    durability.emplace(durability_options, &service, &durable_backend,
                       &interner);
    auto recovered = durability->Start();
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status().ToString()
                << "\n";
      return 1;
    }
    // Scraped by the e2e harness, like SERVING/SHUTDOWN.
    std::cout << "RECOVERED snapshot="
              << (recovered->snapshot_loaded ? recovered->snapshot_path
                                             : "-")
              << " wal_seq=" << recovered->wal_seq
              << " window_edges=" << recovered->window_edges
              << " sessions=" << recovered->sessions
              << " subscriptions=" << recovered->subscriptions
              << " replayed_edges=" << recovered->replayed_edges
              << std::endl;
  }

  if (serve) {
    if (server_options.tcp_port < 0 && server_options.unix_path.empty()) {
      server_options.tcp_port = 0;  // ephemeral; port printed on SERVING
    }
    if (server_options.http_port < 0) {
      server_options.http_port = 0;  // always serve observability endpoints
    }
    server_options.registry = &registry;
    server_options.pipeline = &pipeline;
    if (cluster.has_value()) {
      DistributedBackend* cb = &*cluster;
      server_options.cluster_provider = [cb] {
        return RenderClusterJson(cb->ObsSnapshot(/*refresh=*/true));
      };
      server_options.epochs_provider = [cb] {
        return RenderEpochsJson(cb->EpochTrace(), cb->epochs_completed(),
                                PipelineMetrics::NowMicros());
      };
      // Health refreshes too: a pull on a killed worker's link fails
      // fast and flips it to disconnected, so /healthz degrades within
      // one scrape of the crash instead of after the staleness window.
      server_options.health_provider = [cb] {
        return RenderClusterHealthJson(cb->ObsSnapshot(/*refresh=*/true));
      };
    }
    return Serve(&service, &interner, server_options,
                 durability.has_value() ? &*durability : nullptr);
  }

  CommandInterpreter interpreter(&service, &interner, &std::cout);
  interpreter.set_pipeline_metrics(&pipeline);
  if (durability.has_value()) {
    DurabilityManager* manager = &*durability;
    interpreter.set_snapshot_hook([manager]() -> StatusOr<std::string> {
      SW_ASSIGN_OR_RETURN(const SnapshotInfo info, manager->SnapshotNow());
      return "wal_seq=" + std::to_string(info.wal_seq) + " " + info.path;
    });
  }

  if (Status status = interpreter.ExecuteScript(kScenario); !status.ok()) {
    std::cerr << "scenario error: " << status.ToString() << "\n";
    return 1;
  }

  // The triage session detached mid-stream: the login@14/connect@15 pair
  // completed after the detach and must not have been delivered.
  std::cout << "\ntriage deliveries after detach: ";
  auto triage = interpreter.ResolveSubscription("triage", "hunt");
  if (!triage.ok()) {
    std::cerr << "lookup error: " << triage.status().ToString() << "\n";
    return 1;
  }
  const ResultQueueCounters counters =
      service.queue(triage->first, triage->second)->counters();
  std::cout << counters.enqueued << " enqueued, " << counters.delivered
            << " delivered (none after DETACH)\n";
  return counters.enqueued == 1 ? 0 : 1;
}
