// Service demo: the multi-tenant continuous-query layer end-to-end.
//
//   $ ./build/examples/service_demo
//
// Three analyst sessions share one live netflow-style stream served by a
// two-shard ParallelEngineGroup behind a QueryService. The whole scenario
// is scripted through the CommandInterpreter's line protocol — the same
// protocol test fixtures use — and exercises the service surface:
//
//   * soc       subscribes to a port-scan style probe pattern with a tiny
//               drop_oldest queue (a dashboard that only wants the latest),
//   * forensics subscribes to the same pattern with drop_newest (an
//               evidence log that must keep the earliest hits), pauses
//               during the noisy burst, and resumes after,
//   * triage    subscribes to a two-hop login->connect pattern, then
//               detaches mid-stream — deliveries provably stop while the
//               other sessions keep flowing.
//
// The final STATS block shows per-session admission, drop, suppression,
// and delivery-lag counters diverging per tenant.

#include <iostream>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/core/parallel.h"
#include "streamworks/service/backend.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/query_service.h"

using namespace streamworks;  // NOLINT: example brevity

namespace {

constexpr const char* kScenario = R"(
# --- query catalogue -------------------------------------------------------
DEFINE probe
  node s Host
  node t Host
  edge s t synProbe
  window 100
END
DEFINE lateral
  node u User
  node h Host
  node x Host
  edge u h login
  edge h x connect
  window 50
END

# --- tenants ---------------------------------------------------------------
SESSION soc
SESSION forensics
SESSION triage
SUBMIT soc live probe CAP 3 POLICY drop_oldest
SUBMIT forensics evidence probe CAP 3 POLICY drop_newest
SUBMIT triage hunt lateral CAP 16 POLICY block

# --- quiet traffic: a lateral movement and the first probes ---------------
FEED 500 User 10 Host login 1
FEED 10 Host 11 Host connect 3
FEED 20 Host 30 Host synProbe 5
FEED 20 Host 31 Host synProbe 6
FLUSH
POLL triage hunt

# triage saw its lateral movement; the hunt is over.
DETACH triage hunt

# --- noisy burst: forensics pauses, soc rides its bounded queue -----------
PAUSE forensics evidence
FEED 20 Host 32 Host synProbe 10
FEED 20 Host 33 Host synProbe 11
FEED 20 Host 34 Host synProbe 12
FEED 20 Host 35 Host synProbe 13
FEED 500 User 12 Host login 14
FEED 12 Host 13 Host connect 15
FLUSH
RESUME forensics evidence

# --- after the burst -------------------------------------------------------
FEED 20 Host 36 Host synProbe 20
FLUSH
POLL soc live
POLL forensics evidence
STATS
)";

}  // namespace

int main(int argc, char** argv) {
  // Tenants pick the sharding mode where the engine group is built:
  // broadcast (default) replicates the window graph per shard and spreads
  // queries; `service_demo partitioned` shards the data graph by vertex
  // ownership and exchanges cross-shard partial matches — same scenario,
  // same output, and STATS grows per-shard retained/forwarded lines.
  const bool partitioned =
      argc > 1 && std::string_view(argv[1]) == "partitioned";
  Interner interner;
  ParallelEngineGroup group(&interner, /*num_shards=*/2, {},
                            partitioned ? ShardingMode::kPartitionedData
                                        : ShardingMode::kBroadcastData);
  ParallelGroupBackend backend(&group);

  ServiceLimits limits;
  limits.max_queries_per_session = 4;
  QueryService service(&backend, limits);
  CommandInterpreter interpreter(&service, &interner, &std::cout);

  if (Status status = interpreter.ExecuteScript(kScenario); !status.ok()) {
    std::cerr << "scenario error: " << status.ToString() << "\n";
    return 1;
  }

  // The triage session detached mid-stream: the login@14/connect@15 pair
  // completed after the detach and must not have been delivered.
  std::cout << "\ntriage deliveries after detach: ";
  auto triage = interpreter.ResolveSubscription("triage", "hunt");
  if (!triage.ok()) {
    std::cerr << "lookup error: " << triage.status().ToString() << "\n";
    return 1;
  }
  const ResultQueueCounters counters =
      service.queue(triage->first, triage->second)->counters();
  std::cout << counters.enqueued << " enqueued, " << counters.delivered
            << " delivered (none after DETACH)\n";
  return counters.enqueued == 1 ? 0 : 1;
}
