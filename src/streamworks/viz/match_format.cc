#include "streamworks/viz/match_format.h"

#include <sstream>

namespace streamworks {

std::string FormatMatch(const Match& match, const QueryGraph& query,
                        const DynamicGraph& graph,
                        const Interner& interner) {
  std::ostringstream os;
  os << (query.name().empty() ? "match" : query.name());
  if (!match.bound_edges().Empty()) {
    os << " @ [" << match.min_ts() << ", " << match.max_ts() << "]";
  }
  os << ":\n";
  for (int qe : match.bound_edges()) {
    const QueryEdge& qedge = query.edge(static_cast<QueryEdgeId>(qe));
    const EdgeId de = match.edge(static_cast<QueryEdgeId>(qe));
    const EdgeRecord& rec = graph.edge_record(de);
    os << "  v" << static_cast<int>(qedge.src) << ":"
       << interner.Name(query.vertex_label(qedge.src)) << "="
       << graph.external_id(rec.src) << " -["
       << interner.Name(rec.label) << " @" << rec.ts << "]-> v"
       << static_cast<int>(qedge.dst) << ":"
       << interner.Name(query.vertex_label(qedge.dst)) << "="
       << graph.external_id(rec.dst) << "\n";
  }
  return os.str();
}

}  // namespace streamworks
