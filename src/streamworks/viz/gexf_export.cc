#include "streamworks/viz/gexf_export.h"

#include <sstream>
#include <unordered_map>

namespace streamworks {

namespace {

struct Rgb {
  int r, g, b;
};

Rgb ColorToRgb(const std::string& name) {
  if (name == "red") return {220, 40, 40};
  if (name == "blue") return {40, 80, 220};
  if (name == "green") return {30, 160, 60};
  if (name == "orange") return {240, 150, 20};
  if (name == "purple") return {150, 60, 200};
  return {128, 128, 128};
}

/// Minimal XML text escaping for label attributes.
std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string DataGraphToGexf(const DynamicGraph& graph,
                            const Interner& interner,
                            const EdgeColorMap& colors, size_t max_edges) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<gexf xmlns=\"http://www.gexf.net/1.2draft\" "
        "xmlns:viz=\"http://www.gexf.net/1.2draft/viz\" "
        "version=\"1.2\">\n";
  os << "  <graph mode=\"dynamic\" defaultedgetype=\"directed\" "
        "timeformat=\"double\">\n";
  os << "    <attributes class=\"node\">\n"
        "      <attribute id=\"0\" title=\"type\" type=\"string\"/>\n"
        "    </attributes>\n";
  os << "    <attributes class=\"edge\">\n"
        "      <attribute id=\"1\" title=\"type\" type=\"string\"/>\n"
        "    </attributes>\n";

  // Nodes: every vertex incident to an exported edge. Iterate stored
  // indexes, not an id range — ids may have gaps on a vertex-partitioned
  // shard graph.
  std::unordered_map<VertexId, bool> used;
  const size_t end =
      std::min<size_t>(graph.num_stored_edges(), max_edges);
  for (size_t i = 0; i < end; ++i) {
    const EdgeRecord& rec = graph.edge_record(graph.stored_edge_id(i));
    used.emplace(rec.src, true);
    used.emplace(rec.dst, true);
  }
  os << "    <nodes>\n";
  for (const auto& [v, unused] : used) {
    os << "      <node id=\"" << v << "\" label=\""
       << graph.external_id(v) << "\">\n"
       << "        <attvalues><attvalue for=\"0\" value=\""
       << XmlEscape(interner.Name(graph.vertex_label(v)))
       << "\"/></attvalues>\n"
       << "      </node>\n";
  }
  os << "    </nodes>\n";

  os << "    <edges>\n";
  for (size_t i = 0; i < end; ++i) {
    const EdgeId id = graph.stored_edge_id(i);
    const EdgeRecord& rec = graph.edge_record(id);
    os << "      <edge id=\"" << id << "\" source=\"" << rec.src
       << "\" target=\"" << rec.dst << "\" start=\"" << rec.ts << "\">\n"
       << "        <attvalues><attvalue for=\"1\" value=\""
       << XmlEscape(interner.Name(rec.label)) << "\"/></attvalues>\n";
    auto color_it = colors.find(id);
    if (color_it != colors.end()) {
      const Rgb rgb = ColorToRgb(color_it->second);
      os << "        <viz:color r=\"" << rgb.r << "\" g=\"" << rgb.g
         << "\" b=\"" << rgb.b << "\"/>\n";
    }
    os << "      </edge>\n";
  }
  os << "    </edges>\n";
  os << "  </graph>\n</gexf>\n";
  return os.str();
}

}  // namespace streamworks
