#ifndef STREAMWORKS_VIZ_DOT_EXPORT_H_
#define STREAMWORKS_VIZ_DOT_EXPORT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"
#include "streamworks/sjtree/sj_tree.h"

namespace streamworks {

/// Graphviz-DOT exports — the data artefacts behind the demo's Gephi-based
/// views (paper §6.2, Fig. 7): data-graph snapshots with partial and
/// complete matches colour-coded by their SJ-Tree node, query graphs, and
/// SJ-Tree shapes with live occupancy.

/// Renders a query graph: vertices labelled "v0: Host", edges labelled
/// with their type.
std::string QueryGraphToDot(const QueryGraph& query,
                            const Interner& interner);

/// Optional colouring of data edges by id (e.g. the edges of partial or
/// complete matches). Colors are any graphviz color strings.
using EdgeColorMap = std::unordered_map<EdgeId, std::string>;

/// Renders the live window of the data graph (only vertices with at least
/// one live edge, capped at `max_edges` edges to keep snapshots readable).
/// Edges found in `colors` are drawn bold in that colour.
std::string DataGraphToDot(const DynamicGraph& graph,
                           const Interner& interner,
                           const EdgeColorMap& colors = {},
                           size_t max_edges = 500);

/// Builds an EdgeColorMap from matches: every edge of every match gets the
/// colour of the palette entry for the match's SJ-Tree node depth (partial
/// matches shallow, completions saturated) — the Fig. 7 encoding.
EdgeColorMap ColorMatches(const std::vector<Match>& matches,
                          std::string_view color);

/// Renders an SJ-Tree: one box per node with its query subgraph, cut, and
/// current live-match count (the "choice of decomposition" view).
std::string SjTreeToDot(const SjTree& tree, const Interner& interner);

}  // namespace streamworks

#endif  // STREAMWORKS_VIZ_DOT_EXPORT_H_
