#ifndef STREAMWORKS_VIZ_MATCH_FORMAT_H_
#define STREAMWORKS_VIZ_MATCH_FORMAT_H_

#include <string>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/match/match.h"

namespace streamworks {

/// Human-readable one-per-line rendering of a match against its data
/// graph, resolving external vertex ids and label names:
///
///   smurf_ddos_3 @ [10, 13]:
///     v0:Host=192 -[icmpEchoReq @10]-> v2:Host=7
///     ...
///
/// Every bound query edge must still be stored in `graph` (true for
/// matches rendered inside their completion callback; stored partials may
/// outlive their edges' window).
std::string FormatMatch(const Match& match, const QueryGraph& query,
                        const DynamicGraph& graph,
                        const Interner& interner);

}  // namespace streamworks

#endif  // STREAMWORKS_VIZ_MATCH_FORMAT_H_
