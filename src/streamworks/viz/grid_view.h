#ifndef STREAMWORKS_VIZ_GRID_VIEW_H_
#define STREAMWORKS_VIZ_GRID_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "streamworks/common/types.h"

namespace streamworks {

/// The grid view of paper Fig. 6: rows are named entities (subnetworks in
/// the Smurf demo), columns are time slices, cells count events — rendered
/// as an ASCII heat grid or CSV. Rows appear in insertion order; columns
/// are the dense range [0, max slice seen].
class GridView {
 public:
  /// `slice_width` is the number of timestamp units per column.
  explicit GridView(Timestamp slice_width);

  /// Adds `count` events for `row` at timestamp `ts`.
  void Add(const std::string& row, Timestamp ts, uint64_t count = 1);

  uint64_t CellCount(const std::string& row, int slice) const;
  int num_slices() const { return num_slices_; }
  size_t num_rows() const { return row_order_.size(); }

  /// ASCII heat grid: one row per entity; cells use ' .:*#@' scaled to the
  /// maximum cell count.
  std::string RenderAscii() const;

  /// CSV: header "row,slice_0,slice_1,..." then one line per row.
  std::string RenderCsv() const;

 private:
  Timestamp slice_width_;
  std::vector<std::string> row_order_;
  std::map<std::string, std::map<int, uint64_t>> cells_;
  int num_slices_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_VIZ_GRID_VIEW_H_
