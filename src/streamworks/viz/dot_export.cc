#include "streamworks/viz/dot_export.h"

#include <sstream>

namespace streamworks {

std::string QueryGraphToDot(const QueryGraph& query,
                            const Interner& interner) {
  std::ostringstream os;
  os << "digraph query {\n";
  os << "  label=\"" << query.name() << "\";\n";
  os << "  node [shape=ellipse];\n";
  for (int v = 0; v < query.num_vertices(); ++v) {
    os << "  v" << v << " [label=\"v" << v << ": "
       << interner.Name(query.vertex_label(static_cast<QueryVertexId>(v)))
       << "\"];\n";
  }
  for (int e = 0; e < query.num_edges(); ++e) {
    const QueryEdge& qe = query.edge(static_cast<QueryEdgeId>(e));
    os << "  v" << static_cast<int>(qe.src) << " -> v"
       << static_cast<int>(qe.dst) << " [label=\""
       << interner.Name(qe.label) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string DataGraphToDot(const DynamicGraph& graph,
                           const Interner& interner,
                           const EdgeColorMap& colors, size_t max_edges) {
  std::ostringstream os;
  os << "digraph window {\n";
  os << "  node [shape=circle, fontsize=10];\n";
  std::unordered_map<VertexId, bool> emitted_vertex;
  auto emit_vertex = [&](VertexId v) {
    if (emitted_vertex.emplace(v, true).second) {
      os << "  n" << v << " [label=\"" << graph.external_id(v) << "\\n"
         << interner.Name(graph.vertex_label(v)) << "\"];\n";
    }
  };
  size_t count = 0;
  // Index-based iteration: stored ids may have gaps on a vertex-
  // partitioned shard graph (each shard stores a subset of the global
  // sequence).
  for (size_t i = 0;
       i < graph.num_stored_edges() && count < max_edges; ++i, ++count) {
    const EdgeId id = graph.stored_edge_id(i);
    const EdgeRecord& record = graph.edge_record(id);
    emit_vertex(record.src);
    emit_vertex(record.dst);
    os << "  n" << record.src << " -> n" << record.dst << " [label=\""
       << interner.Name(record.label) << "@" << record.ts << "\"";
    auto color_it = colors.find(id);
    if (color_it != colors.end()) {
      os << ", color=\"" << color_it->second << "\", penwidth=2.5";
    }
    os << "];\n";
  }
  if (count == max_edges && graph.num_stored_edges() > max_edges) {
    os << "  truncated [shape=note, label=\"+"
       << graph.num_stored_edges() - max_edges << " more edges\"];\n";
  }
  os << "}\n";
  return os.str();
}

EdgeColorMap ColorMatches(const std::vector<Match>& matches,
                          std::string_view color) {
  EdgeColorMap map;
  for (const Match& m : matches) {
    for (int qe : m.bound_edges()) {
      map[m.edge(static_cast<QueryEdgeId>(qe))] = std::string(color);
    }
  }
  return map;
}

std::string SjTreeToDot(const SjTree& tree, const Interner& interner) {
  const Decomposition& d = tree.decomposition();
  const QueryGraph& q = tree.query();
  std::ostringstream os;
  os << "digraph sjtree {\n";
  os << "  label=\"SJ-Tree for " << q.name() << "\";\n";
  os << "  node [shape=box, fontsize=10];\n";
  for (int n = 0; n < d.num_nodes(); ++n) {
    os << "  t" << n << " [label=\"";
    os << (d.IsLeaf(n) ? "leaf" : "join") << " n" << n << "\\n";
    for (int e : d.node(n).edges) {
      const QueryEdge& qe = q.edge(static_cast<QueryEdgeId>(e));
      os << "v" << static_cast<int>(qe.src) << "-"
         << interner.Name(qe.label) << "->v" << static_cast<int>(qe.dst)
         << "\\n";
    }
    if (!d.IsLeaf(n)) {
      os << "cut:";
      for (int v : d.node(n).cut_vertices) os << " v" << v;
      os << "\\n";
    }
    os << "live=" << tree.NumPartialMatches(n)
       << " ins=" << tree.node_stats(n).matches_inserted << "\"];\n";
  }
  for (int n = 0; n < d.num_nodes(); ++n) {
    if (d.IsLeaf(n)) continue;
    os << "  t" << n << " -> t" << d.node(n).left << ";\n";
    os << "  t" << n << " -> t" << d.node(n).right << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace streamworks
