#include "streamworks/viz/grid_view.h"

#include <algorithm>
#include <sstream>

#include "streamworks/common/logging.h"

namespace streamworks {

GridView::GridView(Timestamp slice_width) : slice_width_(slice_width) {
  SW_CHECK_GT(slice_width, 0);
}

void GridView::Add(const std::string& row, Timestamp ts, uint64_t count) {
  auto [it, inserted] = cells_.try_emplace(row);
  if (inserted) row_order_.push_back(row);
  const int slice = static_cast<int>(ts / slice_width_);
  it->second[slice] += count;
  num_slices_ = std::max(num_slices_, slice + 1);
}

uint64_t GridView::CellCount(const std::string& row, int slice) const {
  auto row_it = cells_.find(row);
  if (row_it == cells_.end()) return 0;
  auto cell_it = row_it->second.find(slice);
  return cell_it == row_it->second.end() ? 0 : cell_it->second;
}

std::string GridView::RenderAscii() const {
  static constexpr char kShades[] = {' ', '.', ':', '*', '#', '@'};
  uint64_t max_cell = 1;
  for (const auto& [row, cells] : cells_) {
    for (const auto& [slice, count] : cells) {
      max_cell = std::max(max_cell, count);
    }
  }
  size_t name_width = 4;
  for (const std::string& row : row_order_) {
    name_width = std::max(name_width, row.size());
  }
  std::ostringstream os;
  os << std::string(name_width, ' ') << " |";
  for (int s = 0; s < num_slices_; ++s) os << (s % 10);
  os << "|  (time slices of " << slice_width_ << " ticks, max cell "
     << max_cell << ")\n";
  for (const std::string& row : row_order_) {
    os << row << std::string(name_width - row.size(), ' ') << " |";
    for (int s = 0; s < num_slices_; ++s) {
      const uint64_t count = CellCount(row, s);
      // 0 -> ' '; otherwise scale into 1..5 with the maximum cell at '@'.
      const size_t shade =
          count == 0
              ? 0
              : 1 + (count * (std::size(kShades) - 1) - 1) / max_cell;
      os << kShades[std::min(shade, std::size(kShades) - 1)];
    }
    os << "|\n";
  }
  return os.str();
}

std::string GridView::RenderCsv() const {
  std::ostringstream os;
  os << "row";
  for (int s = 0; s < num_slices_; ++s) os << ",slice_" << s;
  os << "\n";
  for (const std::string& row : row_order_) {
    os << row;
    for (int s = 0; s < num_slices_; ++s) os << "," << CellCount(row, s);
    os << "\n";
  }
  return os.str();
}

}  // namespace streamworks
