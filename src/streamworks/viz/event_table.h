#ifndef STREAMWORKS_VIZ_EVENT_TABLE_H_
#define STREAMWORKS_VIZ_EVENT_TABLE_H_

#include <string>
#include <vector>

#include "streamworks/common/types.h"

namespace streamworks {

/// Tabular event view (paper Figs. 5/6 substitute): one row per detected
/// event with time, query name, a grouping key (location, subnet, ...) and
/// free-form detail, rendered as an aligned ASCII table or CSV. This is the
/// engine-side data artefact behind the demo's map view: any consumer can
/// group rows by the key column.
class EventTable {
 public:
  struct Row {
    Timestamp time = 0;
    std::string query;
    std::string key;
    std::string detail;
  };

  void Add(Timestamp time, std::string query, std::string key,
           std::string detail);

  size_t size() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Count of rows per distinct key, descending — the "events by location"
  /// summary of Fig. 5.
  std::vector<std::pair<std::string, size_t>> CountByKey() const;

  /// Aligned ASCII table with a header.
  std::string RenderAscii() const;
  /// CSV with header "time,query,key,detail".
  std::string RenderCsv() const;

 private:
  std::vector<Row> rows_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_VIZ_EVENT_TABLE_H_
