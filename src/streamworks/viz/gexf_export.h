#ifndef STREAMWORKS_VIZ_GEXF_EXPORT_H_
#define STREAMWORKS_VIZ_GEXF_EXPORT_H_

#include <string>

#include "streamworks/common/interner.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/viz/dot_export.h"  // EdgeColorMap

namespace streamworks {

/// GEXF 1.2 export of the live data-graph window — the interchange format
/// of the Gephi visualisation tool the paper adapts for rendering data
/// graph snapshots with partial/complete matches (§6.2). Vertices carry
/// their external id and type label; edges carry type label and timestamp
/// (as a dynamic "start" attribute, so Gephi's timeline can replay the
/// window); edges present in `colors` get an RGB <viz:color> matching the
/// Fig. 7 encoding. Supported colour names: red, blue, green, orange,
/// purple (anything else renders grey).
///
/// Output is valid standalone XML; `max_edges` caps snapshot size.
std::string DataGraphToGexf(const DynamicGraph& graph,
                            const Interner& interner,
                            const EdgeColorMap& colors = {},
                            size_t max_edges = 2000);

}  // namespace streamworks

#endif  // STREAMWORKS_VIZ_GEXF_EXPORT_H_
