#include "streamworks/viz/event_table.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace streamworks {

void EventTable::Add(Timestamp time, std::string query, std::string key,
                     std::string detail) {
  rows_.push_back(Row{time, std::move(query), std::move(key),
                      std::move(detail)});
}

std::vector<std::pair<std::string, size_t>> EventTable::CountByKey() const {
  std::map<std::string, size_t> counts;
  for (const Row& row : rows_) ++counts[row.key];
  std::vector<std::pair<std::string, size_t>> out(counts.begin(),
                                                  counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::string EventTable::RenderAscii() const {
  size_t query_w = 5;
  size_t key_w = 3;
  size_t time_w = 4;
  for (const Row& row : rows_) {
    query_w = std::max(query_w, row.query.size());
    key_w = std::max(key_w, row.key.size());
    time_w = std::max(time_w, std::to_string(row.time).size());
  }
  std::ostringstream os;
  auto pad = [&](const std::string& s, size_t w) {
    os << s << std::string(w - s.size(), ' ') << "  ";
  };
  pad("time", time_w);
  pad("query", query_w);
  pad("key", key_w);
  os << "detail\n";
  os << std::string(time_w + query_w + key_w + 12, '-') << "\n";
  for (const Row& row : rows_) {
    pad(std::to_string(row.time), time_w);
    pad(row.query, query_w);
    pad(row.key, key_w);
    os << row.detail << "\n";
  }
  return os.str();
}

std::string EventTable::RenderCsv() const {
  std::ostringstream os;
  os << "time,query,key,detail\n";
  for (const Row& row : rows_) {
    os << row.time << "," << row.query << "," << row.key << "," << row.detail
       << "\n";
  }
  return os.str();
}

}  // namespace streamworks
