#include "streamworks/core/engine.h"

#include "streamworks/common/logging.h"
#include "streamworks/common/timer.h"

namespace streamworks {

StreamWorksEngine::StreamWorksEngine(Interner* interner,
                                     EngineOptions options)
    : interner_(interner),
      options_(options),
      graph_(interner),
      statistics_(options.collect_statistics ? options.wedge_sample_rate
                                             : 1.0) {
  SW_CHECK_GT(options_.expiry_sweep_interval, 0);
  SW_CHECK(options_.replan_interval == 0 || options_.collect_statistics)
      << "adaptive re-planning requires statistics collection";
  if (options_.stats_half_life > 0) {
    statistics_.set_decay_half_life(options_.stats_half_life);
  }
}

StatusOr<int> StreamWorksEngine::RegisterQuery(const QueryGraph& query,
                                               Decomposition decomposition,
                                               Timestamp window,
                                               MatchCallback callback) {
  return RegisterQueryImpl(query, std::move(decomposition), window,
                           std::move(callback), std::nullopt);
}

StatusOr<Decomposition> StreamWorksEngine::PlanWithCurrentStats(
    const QueryGraph& query, DecompositionStrategy strategy) const {
  const SummaryStatistics* stats =
      (options_.collect_statistics && statistics_.num_edges_observed() > 0)
          ? &statistics_
          : nullptr;
  SelectivityEstimator estimator(stats);
  QueryPlanner planner(&estimator);
  return planner.Plan(query, strategy);
}

StatusOr<int> StreamWorksEngine::RegisterQuery(const QueryGraph& query,
                                               DecompositionStrategy strategy,
                                               Timestamp window,
                                               MatchCallback callback) {
  SW_ASSIGN_OR_RETURN(Decomposition decomposition,
                      PlanWithCurrentStats(query, strategy));
  return RegisterQueryImpl(query, std::move(decomposition), window,
                           std::move(callback), strategy);
}

std::unique_ptr<SjTree> StreamWorksEngine::BuildBackfilledTree(
    const QueryGraph* query, Decomposition decomposition,
    Timestamp window) {
  auto tree = std::make_unique<SjTree>(query, std::move(decomposition),
                                       window);
  // Replay the current window so that pre-existing edges can join with
  // future arrivals. Completions produced here finished in the past and
  // are suppressed (continuous-query semantics).
  std::vector<Match> suppressed;
  for (EdgeId id = graph_.first_stored_edge_id(); id < graph_.next_edge_id();
       ++id) {
    tree->ProcessEdge(graph_, id, &suppressed);
    suppressed.clear();
  }
  return tree;
}

void StreamWorksEngine::RebuildRoutes() {
  routes_.clear();
  for (size_t qid = 0; qid < queries_.size(); ++qid) {
    if (queries_[qid] == nullptr) continue;
    const auto& plans = queries_[qid]->tree->anchor_plans();
    for (size_t i = 0; i < plans.size(); ++i) {
      routes_[plans[i].edge_label].push_back(
          Route{static_cast<int>(qid), i, plans[i].src_label,
                plans[i].dst_label});
    }
  }
}

StatusOr<int> StreamWorksEngine::RegisterQueryImpl(
    const QueryGraph& query, Decomposition decomposition, Timestamp window,
    MatchCallback callback, std::optional<DecompositionStrategy> strategy) {
  if (window <= 0) {
    return Status::InvalidArgument("query window must be positive");
  }
  SW_RETURN_IF_ERROR(decomposition.Validate(query));

  auto entry = std::make_unique<RegisteredQuery>();
  entry->query = query;
  entry->window = window;
  entry->callback = std::move(callback);
  entry->strategy = strategy;

  // The shared graph must retain edges as long as the longest window; it
  // only shrinks from unbounded when no live query needs the older edges
  // (unregistered slots don't count).
  if (graph_.retention() == kMaxTimestamp) {
    if (window != kMaxTimestamp && num_queries() == 0) {
      graph_.set_retention(window);
    }
  } else if (window > graph_.retention()) {
    graph_.set_retention(window);
  }

  // The tree holds a pointer to the entry's own query copy; the entry is
  // heap-allocated and never moved, so the pointer is stable.
  entry->tree =
      BuildBackfilledTree(&entry->query, std::move(decomposition), window);
  const int query_id = static_cast<int>(queries_.size());
  queries_.push_back(std::move(entry));
  RebuildRoutes();
  return query_id;
}

Status StreamWorksEngine::UnregisterQuery(int query_id) {
  if (!has_query(query_id)) {
    return Status::NotFound("unknown or already-unregistered query id");
  }
  queries_[query_id] = nullptr;
  RebuildRoutes();
  return OkStatus();
}

size_t StreamWorksEngine::num_queries() const {
  size_t n = 0;
  for (const auto& rq : queries_) {
    if (rq != nullptr) ++n;
  }
  return n;
}

StatusOr<bool> StreamWorksEngine::ReplanQuery(
    int query_id, std::optional<DecompositionStrategy> strategy) {
  if (!has_query(query_id)) {
    return Status::InvalidArgument("unknown query id");
  }
  RegisteredQuery& rq = *queries_[query_id];
  if (!strategy.has_value()) strategy = rq.strategy;
  if (!strategy.has_value()) {
    return Status::FailedPrecondition(
        "query was registered with an explicit decomposition; pass a "
        "strategy to re-plan it");
  }
  SW_ASSIGN_OR_RETURN(Decomposition decomposition,
                      PlanWithCurrentStats(rq.query, *strategy));
  if (decomposition == rq.tree->decomposition()) {
    return false;  // same plan; keep the live tree and its partials
  }
  rq.tree = BuildBackfilledTree(&rq.query, std::move(decomposition),
                                rq.window);
  rq.strategy = strategy;
  RebuildRoutes();
  ++replans_performed_;
  return true;
}

Status StreamWorksEngine::ProcessEdge(const StreamEdge& edge) {
  Timer timer;
  auto added = graph_.AddEdge(edge);
  if (!added.ok()) {
    ++metrics_.edges_rejected;
    return added.status();
  }
  const EdgeId id = added.value();
  ++metrics_.edges_processed;
  if (options_.collect_statistics) statistics_.Observe(graph_, id);

  auto route_it = routes_.find(edge.edge_label);
  if (route_it != routes_.end()) {
    for (const Route& route : route_it->second) {
      if (route.src_label != edge.src_label ||
          route.dst_label != edge.dst_label) {
        continue;
      }
      RegisteredQuery& rq = *queries_[route.query_id];
      scratch_completed_.clear();
      rq.tree->RunAnchorPlan(graph_, route.plan_index, id,
                             &scratch_completed_);
      for (Match& m : scratch_completed_) {
        ++rq.completions;
        ++metrics_.completions;
        if (rq.callback) {
          CompleteMatch cm;
          cm.query_id = route.query_id;
          cm.match = std::move(m);
          cm.completed_at = graph_.watermark();
          rq.callback(cm);
        }
      }
    }
  }

  if (++edges_since_sweep_ >= options_.expiry_sweep_interval) {
    edges_since_sweep_ = 0;
    for (auto& rq : queries_) {
      if (rq != nullptr) rq->tree->ExpireOldMatches(graph_.watermark());
    }
  }

  // Adaptive re-planning (§4.3 future work): between edges, re-plan every
  // strategy-registered query against the live statistics.
  if (options_.replan_interval > 0 &&
      ++edges_since_replan_ >= options_.replan_interval) {
    edges_since_replan_ = 0;
    for (size_t qid = 0; qid < queries_.size(); ++qid) {
      if (queries_[qid] == nullptr) continue;
      if (!queries_[qid]->strategy.has_value()) continue;
      auto swapped = ReplanQuery(static_cast<int>(qid));
      if (!swapped.ok()) {
        SW_LOG(Warning) << "re-plan of query " << qid
                        << " failed: " << swapped.status().ToString();
      }
    }
  }
  metrics_.processing_seconds += timer.ElapsedSeconds();
  return OkStatus();
}

Status StreamWorksEngine::ProcessBatch(const EdgeBatch& batch) {
  ++metrics_.batches_processed;
  for (const StreamEdge& e : batch) {
    SW_RETURN_IF_ERROR(ProcessEdge(e));
  }
  return OkStatus();
}

const SjTree& StreamWorksEngine::sjtree(int query_id) const {
  SW_CHECK(has_query(query_id)) << "unknown query id " << query_id;
  return *queries_[query_id]->tree;
}

QueryRuntimeInfo StreamWorksEngine::query_info(int query_id) const {
  SW_CHECK(has_query(query_id)) << "unknown query id " << query_id;
  const RegisteredQuery& rq = *queries_[query_id];
  QueryRuntimeInfo info;
  info.query_id = query_id;
  info.name = rq.query.name();
  info.window = rq.window;
  info.completions = rq.completions;
  info.live_partial_matches = rq.tree->TotalPartialMatches();
  info.peak_partial_matches = rq.tree->PeakTotalPartialMatches();
  return info;
}

}  // namespace streamworks
