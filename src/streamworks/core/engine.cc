#include "streamworks/core/engine.h"

#include "streamworks/common/hash.h"
#include "streamworks/common/logging.h"
#include "streamworks/common/timer.h"

namespace streamworks {

StreamWorksEngine::StreamWorksEngine(Interner* interner,
                                     EngineOptions options)
    : interner_(interner),
      options_(options),
      graph_(interner),
      statistics_(options.collect_statistics ? options.wedge_sample_rate
                                             : 1.0) {
  SW_CHECK_GT(options_.expiry_sweep_interval, 0);
  SW_CHECK(options_.replan_interval == 0 || options_.collect_statistics)
      << "adaptive re-planning requires statistics collection";
  if (options_.stats_half_life > 0) {
    statistics_.set_decay_half_life(options_.stats_half_life);
  }
}

StatusOr<int> StreamWorksEngine::RegisterQuery(const QueryGraph& query,
                                               Decomposition decomposition,
                                               Timestamp window,
                                               MatchCallback callback) {
  return RegisterQueryImpl(query, std::move(decomposition), window,
                           std::move(callback), std::nullopt);
}

StatusOr<Decomposition> StreamWorksEngine::PlanWithCurrentStats(
    const QueryGraph& query, DecompositionStrategy strategy) const {
  const SummaryStatistics* stats =
      (options_.collect_statistics && statistics_.num_edges_observed() > 0)
          ? &statistics_
          : nullptr;
  SelectivityEstimator estimator(stats);
  QueryPlanner planner(&estimator);
  return planner.Plan(query, strategy);
}

StatusOr<int> StreamWorksEngine::RegisterQuery(const QueryGraph& query,
                                               DecompositionStrategy strategy,
                                               Timestamp window,
                                               MatchCallback callback) {
  SW_ASSIGN_OR_RETURN(Decomposition decomposition,
                      PlanWithCurrentStats(query, strategy));
  return RegisterQueryImpl(query, std::move(decomposition), window,
                           std::move(callback), strategy);
}

std::unique_ptr<SjTree> StreamWorksEngine::BuildBackfilledTree(
    const QueryGraph* query, Decomposition decomposition,
    Timestamp window) {
  auto tree = std::make_unique<SjTree>(query, std::move(decomposition),
                                       window);
  // Replay the current window so that pre-existing edges can join with
  // future arrivals. Completions produced here finished in the past and
  // are suppressed (continuous-query semantics).
  std::vector<Match> suppressed;
  for (size_t i = 0; i < graph_.num_stored_edges(); ++i) {
    tree->ProcessEdge(graph_, graph_.stored_edge_id(i), &suppressed);
    suppressed.clear();
  }
  return tree;
}

void StreamWorksEngine::RebuildRoutes() {
  routes_.clear();
  for (size_t qid = 0; qid < queries_.size(); ++qid) {
    if (queries_[qid] == nullptr) continue;
    const auto& plans = queries_[qid]->tree->anchor_plans();
    for (size_t i = 0; i < plans.size(); ++i) {
      routes_[plans[i].edge_label].push_back(
          Route{static_cast<int>(qid), i, plans[i].src_label,
                plans[i].dst_label});
    }
  }
}

StatusOr<int> StreamWorksEngine::RegisterQueryImpl(
    const QueryGraph& query, Decomposition decomposition, Timestamp window,
    MatchCallback callback, std::optional<DecompositionStrategy> strategy) {
  if (window <= 0) {
    return Status::InvalidArgument("query window must be positive");
  }
  SW_RETURN_IF_ERROR(decomposition.Validate(query));

  auto entry = std::make_unique<RegisteredQuery>();
  entry->query = query;
  entry->window = window;
  entry->callback = std::move(callback);
  entry->strategy = strategy;

  // The shared graph must retain edges as long as the longest window; it
  // only shrinks from unbounded when no live query needs the older edges
  // (unregistered slots don't count).
  if (graph_.retention() == kMaxTimestamp) {
    if (window != kMaxTimestamp && num_queries() == 0) {
      graph_.set_retention(window);
    }
  } else if (window > graph_.retention()) {
    graph_.set_retention(window);
  }

  // The tree holds a pointer to the entry's own query copy; the entry is
  // heap-allocated and never moved, so the pointer is stable.
  //
  // Shard mode skips the local backfill: replaying only this shard's edge
  // subset would both miss cross-shard partial matches and double-run
  // anchors for edges stored on two shards. The group instead drives a
  // distributed backfill (BackfillQueryEdge + exchange pumping) right
  // after registering the query on every shard.
  if (shard_mode()) {
    entry->tree = std::make_unique<SjTree>(
        &entry->query, std::move(decomposition), window);
  } else {
    entry->tree =
        BuildBackfilledTree(&entry->query, std::move(decomposition), window);
  }
  const int query_id = static_cast<int>(queries_.size());
  queries_.push_back(std::move(entry));
  RebuildRoutes();
  return query_id;
}

Status StreamWorksEngine::UnregisterQuery(int query_id) {
  if (!has_query(query_id)) {
    return Status::NotFound("unknown or already-unregistered query id");
  }
  queries_[query_id] = nullptr;
  RebuildRoutes();
  return OkStatus();
}

size_t StreamWorksEngine::num_queries() const {
  size_t n = 0;
  for (const auto& rq : queries_) {
    if (rq != nullptr) ++n;
  }
  return n;
}

StatusOr<bool> StreamWorksEngine::ReplanQuery(
    int query_id, std::optional<DecompositionStrategy> strategy) {
  if (!has_query(query_id)) {
    return Status::InvalidArgument("unknown query id");
  }
  RegisteredQuery& rq = *queries_[query_id];
  if (!strategy.has_value()) strategy = rq.strategy;
  if (!strategy.has_value()) {
    return Status::FailedPrecondition(
        "query was registered with an explicit decomposition; pass a "
        "strategy to re-plan it");
  }
  SW_ASSIGN_OR_RETURN(Decomposition decomposition,
                      PlanWithCurrentStats(rq.query, *strategy));
  if (decomposition == rq.tree->decomposition()) {
    return false;  // same plan; keep the live tree and its partials
  }
  rq.tree = BuildBackfilledTree(&rq.query, std::move(decomposition),
                                rq.window);
  rq.strategy = strategy;
  RebuildRoutes();
  ++replans_performed_;
  return true;
}

Status StreamWorksEngine::ProcessEdge(const StreamEdge& edge) {
  Timer timer;
  auto added = graph_.AddEdge(edge);
  if (!added.ok()) {
    ++metrics_.edges_rejected;
    return added.status();
  }
  const EdgeId id = added.value();
  ++metrics_.edges_processed;
  if (options_.collect_statistics) statistics_.Observe(graph_, id);

  auto route_it = routes_.find(edge.edge_label);
  if (route_it != routes_.end()) {
    // The join stage is timed per edge-with-routes only: an edge that
    // anchors no query pays zero extra clock reads, and one that does is
    // already paying for a local search, so the two reads amortize.
    const bool time_joins = options_.pipeline != nullptr;
    const uint64_t join_t0 =
        time_joins ? PipelineMetrics::NowMicros() : 0;
    bool ran_any = false;
    for (const Route& route : route_it->second) {
      if (route.src_label != edge.src_label ||
          route.dst_label != edge.dst_label) {
        continue;
      }
      ran_any = true;
      RegisteredQuery& rq = *queries_[route.query_id];
      scratch_completed_.clear();
      rq.tree->RunAnchorPlan(graph_, route.plan_index, id,
                             &scratch_completed_);
      DeliverCompletions(route.query_id, rq);
    }
    if (time_joins && ran_any) {
      options_.pipeline->Record(PipelineStage::kSjTreeJoin,
                                PipelineMetrics::NowMicros() - join_t0);
    }
  }

  if (++edges_since_sweep_ >= options_.expiry_sweep_interval) {
    edges_since_sweep_ = 0;
    for (auto& rq : queries_) {
      if (rq != nullptr) rq->tree->ExpireOldMatches(graph_.watermark());
    }
  }

  // Adaptive re-planning (§4.3 future work): between edges, re-plan every
  // strategy-registered query against the live statistics.
  if (options_.replan_interval > 0 &&
      ++edges_since_replan_ >= options_.replan_interval) {
    edges_since_replan_ = 0;
    for (size_t qid = 0; qid < queries_.size(); ++qid) {
      if (queries_[qid] == nullptr) continue;
      if (!queries_[qid]->strategy.has_value()) continue;
      auto swapped = ReplanQuery(static_cast<int>(qid));
      if (!swapped.ok()) {
        SW_LOG(Warning) << "re-plan of query " << qid
                        << " failed: " << swapped.status().ToString();
      }
    }
  }
  metrics_.processing_seconds += timer.ElapsedSeconds();
  return OkStatus();
}

void StreamWorksEngine::DeliverCompletions(int query_id,
                                           RegisteredQuery& rq) {
  if (suppress_completions_) {
    scratch_completed_.clear();
    return;
  }
  for (Match& m : scratch_completed_) {
    ++rq.completions;
    ++metrics_.completions;
    if (rq.callback) {
      CompleteMatch cm;
      cm.query_id = query_id;
      // Classic mode: the completing edge is the newest ingested, so the
      // watermark is its timestamp. Shard mode: this shard's watermark may
      // have moved past (or lag) the completing edge of a forwarded match,
      // so read the time off the match itself — identical values, one of
      // them always available.
      cm.completed_at = shard_mode() ? m.max_ts() : graph_.watermark();
      cm.graph = &graph_;
      cm.match = std::move(m);
      rq.callback(cm);
    }
  }
  scratch_completed_.clear();
}

// --- Shard mode --------------------------------------------------------------

int StreamWorksEngine::Router::self_shard() const {
  return engine_->shard_.shard_index;
}

int StreamWorksEngine::Router::OwnerOfVertex(ExternalVertexId v) const {
  return engine_->shard_.partitioner->OwnerShard(v,
                                                 engine_->shard_.num_shards);
}

int StreamWorksEngine::Router::HomeShard(uint64_t ext_cut_key) const {
  // Mix the query id in so distinct queries with coincident cut
  // assignments spread over different homes.
  const uint64_t h =
      HashCombine(Mix64(static_cast<uint64_t>(current_query_id) + 1),
                  ext_cut_key);
  return static_cast<int>(h % static_cast<uint64_t>(
                                  engine_->shard_.num_shards));
}

int StreamWorksEngine::Router::callback_home() const {
  return current_query_id % engine_->shard_.num_shards;
}

Timestamp StreamWorksEngine::Router::safe_watermark() const {
  return engine_->safe_watermark_;
}

ExchangeItem StreamWorksEngine::Router::WireItem(ExchangeKind kind,
                                                 const Match& m) const {
  ExchangeItem item;
  item.kind = kind;
  item.query_id = current_query_id;
  item.match = MatchExchange::ToWire(engine_->graph_, m);
  return item;
}

void StreamWorksEngine::Router::ForwardExpansion(int dest, uint32_t plan,
                                                 int step, const Match& m) {
  PipelineMetrics* pipeline = engine_->options_.pipeline;
  const uint64_t t0 = pipeline ? PipelineMetrics::NowMicros() : 0;
  ExchangeItem item = WireItem(ExchangeKind::kExpand, m);
  item.plan = plan;
  item.step = step;
  engine_->shard_.exchange->Send(dest, std::move(item));
  if (pipeline) {
    pipeline->Record(PipelineStage::kExchangeForward,
                     PipelineMetrics::NowMicros() - t0);
  }
}

void StreamWorksEngine::Router::ForwardInsert(int dest, int node,
                                              const Match& m) {
  PipelineMetrics* pipeline = engine_->options_.pipeline;
  const uint64_t t0 = pipeline ? PipelineMetrics::NowMicros() : 0;
  ExchangeItem item = WireItem(ExchangeKind::kInsert, m);
  item.node = node;
  engine_->shard_.exchange->Send(dest, std::move(item));
  if (pipeline) {
    pipeline->Record(PipelineStage::kExchangeForward,
                     PipelineMetrics::NowMicros() - t0);
  }
}

void StreamWorksEngine::Router::ForwardCompletion(int dest, const Match& m) {
  PipelineMetrics* pipeline = engine_->options_.pipeline;
  const uint64_t t0 = pipeline ? PipelineMetrics::NowMicros() : 0;
  engine_->shard_.exchange->Send(dest,
                                 WireItem(ExchangeKind::kComplete, m));
  if (pipeline) {
    pipeline->Record(PipelineStage::kExchangeForward,
                     PipelineMetrics::NowMicros() - t0);
  }
}

void StreamWorksEngine::EnableShardMode(const ShardConfig& config) {
  SW_CHECK(config.partitioner != nullptr && config.exchange != nullptr);
  SW_CHECK_GT(config.num_shards, 0);
  SW_CHECK_GE(config.shard_index, 0);
  SW_CHECK_LT(config.shard_index, config.num_shards);
  SW_CHECK(queries_.empty() && metrics_.edges_processed == 0)
      << "shard mode must be enabled before registrations and ingest";
  SW_CHECK_EQ(options_.replan_interval, 0)
      << "adaptive re-planning is per-engine and would diverge the "
         "replicated trees; disable it in shard mode";
  shard_ = config;
  graph_.set_manual_eviction(true);
}

Status StreamWorksEngine::ProcessShardEdge(const StreamEdge& edge,
                                           EdgeId global_id,
                                           bool run_anchors) {
  SW_DCHECK(shard_mode());
  Timer timer;
  auto added = graph_.AddEdgeWithId(edge, global_id);
  if (!added.ok()) {
    ++metrics_.edges_rejected;
    return added.status();
  }
  ++metrics_.edges_processed;
  if (options_.collect_statistics) statistics_.Observe(graph_, global_id);

  if (run_anchors) {
    auto route_it = routes_.find(edge.edge_label);
    if (route_it != routes_.end()) {
      for (const Route& route : route_it->second) {
        if (route.src_label != edge.src_label ||
            route.dst_label != edge.dst_label) {
          continue;
        }
        RegisteredQuery& rq = *queries_[route.query_id];
        router_.current_query_id = route.query_id;
        scratch_completed_.clear();
        rq.tree->RunAnchorPlanSharded(graph_, route.plan_index, global_id,
                                      &router_, &scratch_completed_);
        DeliverCompletions(route.query_id, rq);
      }
    }
  }

  // Periodic partial-match sweeps against the *safe* (epoch) watermark —
  // a lower bound on every in-flight match's completing edge; the local
  // watermark could be ahead of forwarded work and expire its partners.
  if (++edges_since_sweep_ >= options_.expiry_sweep_interval) {
    edges_since_sweep_ = 0;
    for (auto& rq : queries_) {
      if (rq != nullptr) rq->tree->ExpireOldMatches(safe_watermark_);
    }
  }
  metrics_.processing_seconds += timer.ElapsedSeconds();
  return OkStatus();
}

void StreamWorksEngine::HandleExchangeItem(const ExchangeItem& item) {
  SW_DCHECK(shard_mode());
  Timer timer;
  shard_.exchange->CountReceived(item.kind);
  SW_CHECK(has_query(item.query_id))
      << "exchange item for unknown query " << item.query_id
      << " (unregister must quiesce the whole group first)";
  RegisteredQuery& rq = *queries_[item.query_id];
  auto localized = MatchExchange::Localize(&graph_, rq.query, item.match);
  SW_CHECK(localized.ok())
      << "forwarded match failed to localize: "
      << localized.status().ToString();
  Match m = std::move(localized).value();

  router_.current_query_id = item.query_id;
  scratch_completed_.clear();
  switch (item.kind) {
    case ExchangeKind::kExpand:
      rq.tree->ResumeExpansion(graph_, item.plan,
                               static_cast<size_t>(item.step), &m, &router_,
                               &scratch_completed_);
      break;
    case ExchangeKind::kInsert:
      rq.tree->InsertForwarded(graph_, item.node, m, &router_,
                               &scratch_completed_);
      break;
    case ExchangeKind::kComplete:
      scratch_completed_.push_back(std::move(m));
      break;
  }
  DeliverCompletions(item.query_id, rq);
  metrics_.processing_seconds += timer.ElapsedSeconds();
}

void StreamWorksEngine::AdvanceWatermark(Timestamp watermark) {
  if (watermark > safe_watermark_) safe_watermark_ = watermark;
  graph_.AdvanceWatermark(watermark);
  for (auto& rq : queries_) {
    if (rq != nullptr) rq->tree->ExpireOldMatches(safe_watermark_);
  }
}

void StreamWorksEngine::BackfillQueryEdge(int query_id, EdgeId edge_id) {
  SW_DCHECK(shard_mode());
  SW_CHECK(has_query(query_id));
  RegisteredQuery& rq = *queries_[query_id];
  const EdgeRecord& record = graph_.edge_record(edge_id);
  const LabelId src_label = graph_.vertex_label(record.src);
  const LabelId dst_label = graph_.vertex_label(record.dst);
  router_.current_query_id = query_id;
  const auto& plans = rq.tree->anchor_plans();
  for (size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].edge_label != record.label ||
        plans[i].src_label != src_label || plans[i].dst_label != dst_label) {
      continue;
    }
    scratch_completed_.clear();
    rq.tree->RunAnchorPlanSharded(graph_, i, edge_id, &router_,
                                  &scratch_completed_);
    DeliverCompletions(query_id, rq);
  }
}

WindowSnapshot StreamWorksEngine::ExportWindow() const {
  WindowSnapshot snap;
  snap.next_edge_id = graph_.next_edge_id();
  snap.watermark = graph_.watermark();
  snap.edges.reserve(graph_.num_stored_edges());
  for (size_t i = 0; i < graph_.num_stored_edges(); ++i) {
    const EdgeId id = graph_.stored_edge_id(i);
    const EdgeRecord& record = graph_.edge_record(id);
    StreamEdge e;
    e.src = graph_.external_id(record.src);
    e.dst = graph_.external_id(record.dst);
    e.src_label = graph_.vertex_label(record.src);
    e.dst_label = graph_.vertex_label(record.dst);
    e.edge_label = record.label;
    e.ts = record.ts;
    snap.edges.push_back(PersistedEdge{e, id});
  }
  return snap;
}

Status StreamWorksEngine::RestoreWindowEdge(const StreamEdge& edge,
                                            EdgeId id) {
  SW_CHECK(queries_.empty())
      << "window restore must precede query registration";
  return graph_.AddEdgeWithId(edge, id).status();
}

void StreamWorksEngine::FinishWindowRestore(EdgeId next_edge_id,
                                            Timestamp watermark) {
  graph_.FastForwardEdgeIds(next_edge_id);
  if (watermark >= 0) {
    // No queries are registered yet (restore precedes registration) and
    // retention is still unbounded, so this only raises the clock — the
    // restored edges all survive.
    graph_.AdvanceWatermark(watermark);
    if (watermark > safe_watermark_) safe_watermark_ = watermark;
  }
}

size_t StreamWorksEngine::total_live_partial_matches() const {
  size_t total = 0;
  for (const auto& rq : queries_) {
    if (rq != nullptr) total += rq->tree->TotalPartialMatches();
  }
  return total;
}

Status StreamWorksEngine::ProcessBatch(const EdgeBatch& batch) {
  ++metrics_.batches_processed;
  // A malformed edge is a stream property (counted in edges_rejected),
  // not a reason to drop the rest of the batch — a batch must match the
  // equivalent sequence of ProcessEdge calls, whose callers skip bad
  // edges and continue. The first error is still reported.
  Status first_error = OkStatus();
  for (const StreamEdge& e : batch) {
    const Status status = ProcessEdge(e);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

const SjTree& StreamWorksEngine::sjtree(int query_id) const {
  SW_CHECK(has_query(query_id)) << "unknown query id " << query_id;
  return *queries_[query_id]->tree;
}

QueryRuntimeInfo StreamWorksEngine::query_info(int query_id) const {
  SW_CHECK(has_query(query_id)) << "unknown query id " << query_id;
  const RegisteredQuery& rq = *queries_[query_id];
  QueryRuntimeInfo info;
  info.query_id = query_id;
  info.name = rq.query.name();
  info.window = rq.window;
  info.completions = rq.completions;
  info.live_partial_matches = rq.tree->TotalPartialMatches();
  info.peak_partial_matches = rq.tree->PeakTotalPartialMatches();
  const Decomposition& decomposition = rq.tree->decomposition();
  info.nodes.reserve(static_cast<size_t>(decomposition.num_nodes()));
  for (int n = 0; n < decomposition.num_nodes(); ++n) {
    const SjNodeStats& stats = rq.tree->node_stats(n);
    SjNodeRuntime node;
    node.node = n;
    node.is_leaf = decomposition.IsLeaf(n);
    node.query_edges = decomposition.node(n).edges.Count();
    node.matches_inserted = stats.matches_inserted;
    node.probes = stats.probes;
    node.join_attempts = stats.join_attempts;
    node.joins_succeeded = stats.joins_succeeded;
    node.live_partial_matches = rq.tree->NumPartialMatches(n);
    info.nodes.push_back(node);
  }
  return info;
}

}  // namespace streamworks
