#ifndef STREAMWORKS_CORE_DEDUP_H_
#define STREAMWORKS_CORE_DEDUP_H_

#include <unordered_set>

#include "streamworks/core/engine.h"

namespace streamworks {

/// Collapses automorphic mappings into one event per data subgraph.
///
/// A symmetric query (e.g. the Fig. 2 news pattern, whose three article
/// slots are interchangeable) matches each data subgraph k! times — once
/// per automorphism. Applications that want *events* rather than mappings
/// wrap their callback in this filter, which forwards only the first
/// mapping of each distinct bound-data-edge set.
///
/// Memory is O(matches completed by one edge), not O(stream): every
/// automorphic image of a data subgraph binds the same edge set, so they
/// all complete at the arrival of the same (maximal) data edge. The seen
/// set therefore resets whenever the completing edge changes; distinct
/// completing edges can never produce duplicate subgraphs.
class DistinctSubgraphFilter {
 public:
  /// Wraps `inner`; the returned callable is a valid MatchCallback.
  explicit DistinctSubgraphFilter(MatchCallback inner)
      : inner_(std::move(inner)) {}

  void operator()(const CompleteMatch& cm) {
    const EdgeId completing = cm.match.MaxDataEdgeId();
    if (completing != current_edge_) {
      current_edge_ = completing;
      seen_.clear();
    }
    if (seen_.insert(cm.match.EdgeSetSignature()).second) {
      ++forwarded_;
      inner_(cm);
    }
  }

  uint64_t distinct_forwarded() const { return forwarded_; }

 private:
  MatchCallback inner_;
  EdgeId current_edge_ = kInvalidEdgeId;
  std::unordered_set<uint64_t> seen_;
  uint64_t forwarded_ = 0;
};

/// Convenience: builds a MatchCallback that forwards one event per
/// distinct data subgraph to `inner`.
inline MatchCallback DistinctSubgraphs(MatchCallback inner) {
  // The filter is stateful; share it across copies of the callback.
  auto filter =
      std::make_shared<DistinctSubgraphFilter>(std::move(inner));
  return [filter](const CompleteMatch& cm) { (*filter)(cm); };
}

}  // namespace streamworks

#endif  // STREAMWORKS_CORE_DEDUP_H_
