#ifndef STREAMWORKS_CORE_ENGINE_H_
#define STREAMWORKS_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/graph/dynamic_graph.h"
#include "streamworks/graph/partition.h"
#include "streamworks/graph/query_graph.h"
#include "streamworks/planner/planner.h"
#include "streamworks/planner/stats.h"
#include "streamworks/sjtree/exchange.h"
#include "streamworks/sjtree/sj_tree.h"
#include "streamworks/stream/batching.h"

namespace streamworks {

/// A completed match delivered to a query's callback.
struct CompleteMatch {
  int query_id = -1;
  Match match;
  /// Stream watermark when the match completed (== the completing edge's
  /// timestamp).
  Timestamp completed_at = 0;
  /// Graph whose id space `match` is expressed in (the delivering engine's;
  /// the pointer stays valid for the engine's lifetime). Use it to resolve
  /// vertex ids to external ids / labels — internal ids are per-engine
  /// artifacts, and in a vertex-partitioned group each shard numbers
  /// vertices differently. Edge *records* resolve only where the edge is
  /// stored; edge ids themselves are globally meaningful in every mode.
  ///
  /// Thread safety: the graph keeps mutating as the stream flows, so only
  /// dereference (a) inside the delivering callback, which runs on the
  /// engine's processing thread, or (b) after the backend has been
  /// flushed/quiesced with no concurrent ingest — e.g. draining a
  /// ResultQueue after Flush(). A consumer thread racing live ingest must
  /// copy what it needs inside the callback instead.
  const DynamicGraph* graph = nullptr;
  /// Deployment-invariant text form of `match`
  /// (Match::ToExternalString against `graph`), filled by the service
  /// delivery callback at enqueue time — the one point where
  /// dereferencing `graph` is always safe. Streamed EVENT and POLL lines
  /// print this instead of re-rendering on a consumer thread that races
  /// live ingest; empty when no delivery callback rendered it.
  std::string rendered;
};

/// Receives every complete match of one registered query, in completion
/// order, exactly once.
using MatchCallback = std::function<void(const CompleteMatch&)>;

/// Global engine configuration.
struct EngineOptions {
  /// Edges between periodic partial-match expiry sweeps (lazy expiry on
  /// probe happens regardless).
  int expiry_sweep_interval = 1024;
  /// Maintain SummaryStatistics while streaming (costs O(degree) per edge
  /// on a sample of edges).
  bool collect_statistics = false;
  /// Wedge-census sampling rate when collect_statistics is on.
  double wedge_sample_rate = 0.1;
  /// Half-life in edges for recency weighting of the summary statistics
  /// (SummaryStatistics::set_decay_half_life); 0 keeps them cumulative.
  /// Recency weighting is what lets adaptive re-planning follow
  /// distribution drift instead of the stream's lifetime average.
  uint64_t stats_half_life = 0;
  /// Adaptive re-planning (the paper's §4.3 future work: "continuously
  /// collecting the statistics … and updating the query decomposition"):
  /// every this many edges, each strategy-registered query is re-planned
  /// against the live statistics and its SJ-Tree is swapped if the plan
  /// changed. 0 disables. Requires collect_statistics. Swapping preserves
  /// exactly-once semantics (see ReplanQuery).
  int replan_interval = 0;
  /// Always-on pipeline-stage instrumentation sink (kSjTreeJoin and
  /// kExchangeForward record here). Null disables — the null check is the
  /// only per-edge cost, and the join stage is timed only for edges that
  /// actually anchored a query, so pure ingest pays no extra clock reads.
  PipelineMetrics* pipeline = nullptr;
};

/// Aggregate runtime counters.
struct EngineMetrics {
  uint64_t edges_processed = 0;
  uint64_t edges_rejected = 0;  ///< Malformed input (bad ts / label clash).
  uint64_t batches_processed = 0;
  uint64_t completions = 0;
  double processing_seconds = 0;
};

/// Runtime counters of one SJ-Tree decomposition node — the per-node
/// match-rate/selectivity visibility an operator (or a future adaptive
/// re-planner) watches for drift. Selectivities derive at render time:
/// joins_succeeded/join_attempts is the node's join selectivity,
/// matches_inserted/probes its per-probe yield.
struct SjNodeRuntime {
  int node = -1;
  bool is_leaf = false;
  int query_edges = 0;  ///< Edges of the query covered by this node.
  uint64_t matches_inserted = 0;
  uint64_t probes = 0;
  uint64_t join_attempts = 0;
  uint64_t joins_succeeded = 0;
  uint64_t live_partial_matches = 0;
};

/// Snapshot of one registered query's state.
struct QueryRuntimeInfo {
  int query_id = -1;
  std::string name;
  Timestamp window = 0;
  uint64_t completions = 0;
  size_t live_partial_matches = 0;
  size_t peak_partial_matches = 0;
  /// Per-decomposition-node counters, indexed by node id. In a
  /// vertex-partitioned group these are element-wise sums across shards
  /// (every shard runs a replica of the same tree shape).
  std::vector<SjNodeRuntime> nodes;
};

/// Point-in-time export of the retained window in external-id form: what
/// a snapshot persists and a recovering process re-ingests. `edges` are
/// ascending by id; `next_edge_id` and `watermark` restore the id
/// sequence and time admission exactly, so a replayed WAL tail assigns
/// the same ids (and rejects the same regressions) the crashed
/// incarnation did.
struct WindowSnapshot {
  std::vector<PersistedEdge> edges;
  EdgeId next_edge_id = 0;
  Timestamp watermark = -1;
};

/// Identity one engine assumes when it runs as one shard of a
/// vertex-partitioned group (ParallelEngineGroup in kPartitionedData
/// mode). `partitioner` and `exchange` must outlive the engine; both are
/// shared with the group, which owns routing edges in and forwarding
/// matches out.
struct ShardConfig {
  int shard_index = 0;
  int num_shards = 1;
  const Partitioner* partitioner = nullptr;
  MatchExchange* exchange = nullptr;
};

/// StreamWorks (paper Fig. 1): the continuous-query engine for dynamic
/// graph search. Users register graph queries (each with a time window, a
/// decomposition — explicit or planned — and a callback); the engine then
/// consumes the edge stream, maintaining
///
///   * the shared windowed data graph (retention = the largest registered
///     window),
///   * optional summarisation statistics (§4.3) for planning later
///     registrations,
///   * one SJ-Tree per query, reached through a label-routing index so an
///     arriving edge only touches queries whose leaves it can anchor,
///
/// and delivers the incremental match set f(Gd, Gq, E_k+1) through the
/// callbacks, each match exactly once at the moment its last edge arrives.
class StreamWorksEngine {
 public:
  /// `interner` must outlive the engine and be the one used to intern the
  /// stream's and queries' labels.
  explicit StreamWorksEngine(Interner* interner, EngineOptions options = {});

  // --- Query registration --------------------------------------------------
  /// Registers `query` with an explicit decomposition. Returns the query
  /// id. `window` must be positive (kMaxTimestamp = unbounded).
  ///
  /// Mid-stream registration backfills the current window into the new
  /// SJ-Tree: edges already in the graph can join with future arrivals,
  /// but matches that completed before registration are not reported.
  StatusOr<int> RegisterQuery(const QueryGraph& query,
                              Decomposition decomposition, Timestamp window,
                              MatchCallback callback);

  /// Registers `query`, planning the decomposition with `strategy` against
  /// the engine's current summary statistics (uninformed if statistics
  /// collection is off or no edges have been seen). Strategy-registered
  /// queries participate in adaptive re-planning (replan_interval).
  StatusOr<int> RegisterQuery(const QueryGraph& query,
                              DecompositionStrategy strategy,
                              Timestamp window, MatchCallback callback);

  /// Re-plans one query against the engine's current statistics (with
  /// `strategy` overriding the registration strategy if given) and swaps
  /// in a fresh SJ-Tree built from the new decomposition.
  ///
  /// The swap preserves exactly-once delivery: the new tree is backfilled
  /// from the current window with completions suppressed (anything it
  /// would complete during backfill already completed — and was emitted —
  /// before the swap), then replaces the old tree atomically between
  /// edges. Costs one window replay. Returns whether the decomposition
  /// actually changed.
  StatusOr<bool> ReplanQuery(int query_id,
                             std::optional<DecompositionStrategy> strategy =
                                 std::nullopt);

  /// Number of tree swaps performed by adaptive re-planning so far.
  uint64_t replans_performed() const { return replans_performed_; }

  /// Unregisters a query: its SJ-Tree (and every live partial match) is
  /// dropped and the routing index is rebuilt so subsequent edges no longer
  /// touch it. The id is never reused; the shared graph's retention is not
  /// shrunk (remaining queries may rely on it, and a later registration
  /// with a long window would just re-grow it).
  Status UnregisterQuery(int query_id);

  /// True if `query_id` names a live (registered, not yet unregistered)
  /// query.
  bool has_query(int query_id) const {
    return query_id >= 0 && query_id < static_cast<int>(queries_.size()) &&
           queries_[query_id] != nullptr;
  }

  // --- Streaming --------------------------------------------------------------
  /// Ingests one edge and runs every routed query. Invalid edges (time
  /// regression, vertex label clash) are counted and reported, not fatal.
  Status ProcessEdge(const StreamEdge& edge);

  /// Ingests one timestep batch E_k+1; callbacks fire as each match
  /// completes within the batch. Malformed edges are counted and skipped
  /// (the rest of the batch still ingests, exactly like the equivalent
  /// ProcessEdge sequence); the first such error is returned.
  Status ProcessBatch(const EdgeBatch& batch);

  // --- Vertex-partitioned shard mode --------------------------------------
  /// Turns this engine into one shard of a vertex-partitioned group. Must
  /// be called before any registration or ingest. Requires
  /// replan_interval == 0 (per-shard re-planning would diverge the
  /// replicated trees). Switches the graph to manual eviction: expiry
  /// advances at AdvanceWatermark (group epoch) boundaries, never racing
  /// ahead of forwarded matches still in flight.
  void EnableShardMode(const ShardConfig& config);
  bool shard_mode() const { return shard_.exchange != nullptr; }

  /// Ingests one edge this shard owns at least one endpoint of, under its
  /// group-global id. `run_anchors` is set only on the shard owning the
  /// source vertex, so each edge anchors local search exactly once
  /// group-wide; the other endpoint's shard just stores the edge for
  /// future expansions through its vertex.
  Status ProcessShardEdge(const StreamEdge& edge, EdgeId global_id,
                          bool run_anchors);

  /// Executes one forwarded work item (expansion resume, homed insert, or
  /// completion delivery) against this shard's state.
  void HandleExchangeItem(const ExchangeItem& item);

  /// Raises the shard's watermark to the group watermark and expires
  /// edges + partial matches under it (group epoch barrier).
  void AdvanceWatermark(Timestamp watermark);

  /// Re-runs anchor plans of `query_id` for the stored edge `edge_id`
  /// (sharded path, exchange via the router). The group drives this during
  /// distributed backfill of a mid-stream registration, with completions
  /// suppressed; call only on the shard owning the edge's source vertex.
  void BackfillQueryEdge(int query_id, EdgeId edge_id);

  /// While set, completed matches are dropped before counting/delivery
  /// (distributed backfill replays the window; anything completing there
  /// already completed — and was emitted — in the past).
  void set_suppress_completions(bool suppress) {
    suppress_completions_ = suppress;
  }

  // --- Durability ----------------------------------------------------------
  /// Exports the retained window in external-id form (ascending by edge
  /// id), plus the id sequence and watermark — everything a snapshot
  /// needs to rebuild this engine's graph byte-for-byte.
  WindowSnapshot ExportWindow() const;

  /// Re-ingests one exported edge under its original id. Restore runs
  /// before any registration (checked): with no queries there is nothing
  /// to match against, so the window rebuilds silently and the
  /// registrations that follow backfill their SJ-Trees from it through
  /// the ordinary suppressed-backfill machinery. Edges must arrive in
  /// ascending id order.
  Status RestoreWindowEdge(const StreamEdge& edge, EdgeId id);

  /// Completes a restore: fast-forwards the id sequence to
  /// `next_edge_id` and raises the (safe) watermark to `watermark`, so
  /// post-recovery ingest continues exactly where the crashed
  /// incarnation stopped even when the restored window was empty.
  void FinishWindowRestore(EdgeId next_edge_id, Timestamp watermark);

  // --- Introspection ------------------------------------------------------------
  const DynamicGraph& graph() const { return graph_; }
  const SummaryStatistics& statistics() const { return statistics_; }
  const EngineMetrics& metrics() const { return metrics_; }
  /// Number of live queries (unregistered slots excluded).
  size_t num_queries() const;
  const SjTree& sjtree(int query_id) const;
  QueryRuntimeInfo query_info(int query_id) const;
  /// Live partial matches across every registered query's tree.
  size_t total_live_partial_matches() const;

 private:
  struct RegisteredQuery {
    QueryGraph query;
    Timestamp window = 0;
    MatchCallback callback;
    std::unique_ptr<SjTree> tree;
    uint64_t completions = 0;
    /// Strategy used at registration; nullopt for explicit decompositions
    /// (those are never auto-replanned).
    std::optional<DecompositionStrategy> strategy;
  };

  /// (query, anchor-plan) pair reached from the routing index.
  struct Route {
    int query_id;
    size_t plan_index;
    LabelId src_label;
    LabelId dst_label;
  };

  /// ShardRouter the trees consult in shard mode: ownership and homing
  /// questions answer from the shared partitioner; Forward* serialise the
  /// match against this engine's graph and queue it on the exchange. The
  /// tree never forwards to self, so these calls never re-enter the
  /// engine.
  class Router final : public ShardRouter {
   public:
    explicit Router(StreamWorksEngine* engine) : engine_(engine) {}

    int self_shard() const override;
    int OwnerOfVertex(ExternalVertexId v) const override;
    int HomeShard(uint64_t ext_cut_key) const override;
    int callback_home() const override;
    Timestamp safe_watermark() const override;
    void ForwardExpansion(int dest, uint32_t plan, int step,
                          const Match& m) override;
    void ForwardInsert(int dest, int node, const Match& m) override;
    void ForwardCompletion(int dest, const Match& m) override;

    /// Query whose tree is currently executing (set by the engine before
    /// every tree call; routing and homing are per-query).
    int current_query_id = -1;

   private:
    ExchangeItem WireItem(ExchangeKind kind, const Match& m) const;
    StreamWorksEngine* engine_;
  };

  StatusOr<int> RegisterQueryImpl(const QueryGraph& query,
                                  Decomposition decomposition,
                                  Timestamp window, MatchCallback callback,
                                  std::optional<DecompositionStrategy>
                                      strategy);

  /// Counts and delivers scratch_completed_ to `rq`'s callback (drops all
  /// of it while suppress_completions_ is set), then clears the scratch.
  void DeliverCompletions(int query_id, RegisteredQuery& rq);

  /// Builds a tree for `query` over `decomposition` and replays the
  /// current window into it with completions suppressed.
  std::unique_ptr<SjTree> BuildBackfilledTree(const QueryGraph* query,
                                              Decomposition decomposition,
                                              Timestamp window);

  /// Recomputes the label-routing index from every registered query.
  void RebuildRoutes();

  /// Plans `query` with the engine's current statistics.
  StatusOr<Decomposition> PlanWithCurrentStats(
      const QueryGraph& query, DecompositionStrategy strategy) const;

  Interner* interner_;
  EngineOptions options_;
  ShardConfig shard_;  ///< num_shards == 1 / null exchange: classic mode.
  Router router_{this};
  bool suppress_completions_ = false;
  /// Shard mode: last group watermark received through AdvanceWatermark —
  /// the only timestamp expiry may use (see ShardRouter::safe_watermark).
  Timestamp safe_watermark_ = -1;
  DynamicGraph graph_;
  SummaryStatistics statistics_;
  /// Indexed by query id. Unregistered queries leave a null slot so ids
  /// stay stable for the lifetime of the engine.
  std::vector<std::unique_ptr<RegisteredQuery>> queries_;
  std::unordered_map<LabelId, std::vector<Route>> routes_;
  EngineMetrics metrics_;
  int edges_since_sweep_ = 0;
  int edges_since_replan_ = 0;
  uint64_t replans_performed_ = 0;
  std::vector<Match> scratch_completed_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_CORE_ENGINE_H_
