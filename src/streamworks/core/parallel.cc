#include "streamworks/core/parallel.h"

#include "streamworks/common/logging.h"

namespace streamworks {

ParallelEngineGroup::ParallelEngineGroup(Interner* interner, int num_shards,
                                         EngineOptions options) {
  SW_CHECK_GT(num_shards, 0);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(interner, options));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ParallelEngineGroup::~ParallelEngineGroup() { Close(); }

StatusOr<int> ParallelEngineGroup::RegisterQuery(
    const QueryGraph& query, DecompositionStrategy strategy,
    Timestamp window, MatchCallback callback) {
  SW_CHECK(!streaming_started_)
      << "register queries before streaming begins";
  Shard& shard = *shards_[next_shard_];
  // The worker is idle (no edges yet), so touching its engine is safe.
  SW_ASSIGN_OR_RETURN(
      const int local_id,
      shard.engine.RegisterQuery(query, strategy, window,
                                 std::move(callback)));
  const int group_id =
      next_shard_ + local_id * static_cast<int>(shards_.size());
  next_shard_ = (next_shard_ + 1) % static_cast<int>(shards_.size());
  return group_id;
}

void ParallelEngineGroup::ProcessEdge(const StreamEdge& edge) {
  streaming_started_ = true;
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_producer.wait(lock, [&] {
      return shard->queue.size() < kMaxQueuedEdges;
    });
    const bool was_empty = shard->queue.empty();
    shard->queue.push_back(edge);
    shard->idle = false;
    // The worker only sleeps when the queue is empty, so a wakeup is
    // needed just on the empty -> non-empty transition (it re-checks the
    // queue after finishing its current swap buffer regardless).
    if (was_empty) shard->cv_consumer.notify_one();
  }
}

void ParallelEngineGroup::ProcessBatch(const EdgeBatch& batch) {
  if (batch.empty()) return;
  streaming_started_ = true;
  for (auto& shard : shards_) {
    size_t appended = 0;
    while (appended < batch.size()) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_producer.wait(lock, [&] {
        return shard->queue.size() < kMaxQueuedEdges;
      });
      const bool was_empty = shard->queue.empty();
      const size_t room = kMaxQueuedEdges - shard->queue.size();
      const size_t take = std::min(room, batch.size() - appended);
      shard->queue.insert(shard->queue.end(),
                          batch.begin() + static_cast<ptrdiff_t>(appended),
                          batch.begin() +
                              static_cast<ptrdiff_t>(appended + take));
      appended += take;
      shard->idle = false;
      if (was_empty) shard->cv_consumer.notify_one();
    }
  }
}

void ParallelEngineGroup::WorkerLoop(Shard* shard) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_consumer.wait(lock, [&] {
        return !shard->queue.empty() || shard->closing;
      });
      if (shard->queue.empty() && shard->closing) return;
      shard->taking.swap(shard->queue);
      shard->cv_producer.notify_one();
    }
    for (const StreamEdge& e : shard->taking) {
      // Rejected edges are counted by the engine; a parallel consumer has
      // no way to surface per-edge status, matching the callback model.
      shard->engine.ProcessEdge(e).ok();
    }
    shard->taking.clear();
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      if (shard->queue.empty()) {
        shard->idle = true;
        shard->cv_producer.notify_one();
      }
    }
  }
}

void ParallelEngineGroup::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_producer.wait(lock, [&] {
      return shard->idle && shard->queue.empty();
    });
  }
}

void ParallelEngineGroup::Close() {
  if (closed_) return;
  closed_ = true;
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->closing = true;
      shard->cv_consumer.notify_one();
    }
    shard->worker.join();
  }
}

uint64_t ParallelEngineGroup::total_completions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().completions;
  }
  return total;
}

uint64_t ParallelEngineGroup::total_rejected() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().edges_rejected;
  }
  return total;
}

double ParallelEngineGroup::total_processing_seconds() const {
  double total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().processing_seconds;
  }
  return total;
}

}  // namespace streamworks
