#include "streamworks/core/parallel.h"

#include "streamworks/common/logging.h"

namespace streamworks {

ParallelEngineGroup::ParallelEngineGroup(Interner* interner, int num_shards,
                                         EngineOptions options) {
  SW_CHECK_GT(num_shards, 0);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(interner, options));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ParallelEngineGroup::~ParallelEngineGroup() { Close(); }

std::unique_lock<std::mutex> ParallelEngineGroup::Quiesce(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->cv_producer.wait(lock, [&] {
    return shard->idle && shard->queue.empty();
  });
  // With the queue empty and the lock held, the worker is parked in (or on
  // its way into) cv_consumer.wait and cannot touch the engine until a new
  // edge is enqueued — which requires this lock.
  return lock;
}

Status ParallelEngineGroup::ResolveGroupId(int group_query_id,
                                           int* shard_index,
                                           int* local_id) const {
  const int n = static_cast<int>(shards_.size());
  if (group_query_id < 0) {
    return Status::InvalidArgument("negative group query id");
  }
  *shard_index = group_query_id % n;
  *local_id = group_query_id / n;
  return OkStatus();
}

StatusOr<int> ParallelEngineGroup::RegisterQuery(
    const QueryGraph& query, DecompositionStrategy strategy,
    Timestamp window, MatchCallback callback) {
  Shard& shard = *shards_[next_shard_];
  auto lock = Quiesce(&shard);
  SW_ASSIGN_OR_RETURN(
      const int local_id,
      shard.engine.RegisterQuery(query, strategy, window,
                                 std::move(callback)));
  const int group_id =
      next_shard_ + local_id * static_cast<int>(shards_.size());
  next_shard_ = (next_shard_ + 1) % static_cast<int>(shards_.size());
  return group_id;
}

Status ParallelEngineGroup::UnregisterQuery(int group_query_id) {
  int shard_index = 0, local_id = 0;
  SW_RETURN_IF_ERROR(
      ResolveGroupId(group_query_id, &shard_index, &local_id));
  Shard& shard = *shards_[shard_index];
  auto lock = Quiesce(&shard);
  return shard.engine.UnregisterQuery(local_id);
}

StatusOr<QueryRuntimeInfo> ParallelEngineGroup::query_info(
    int group_query_id) {
  int shard_index = 0, local_id = 0;
  SW_RETURN_IF_ERROR(
      ResolveGroupId(group_query_id, &shard_index, &local_id));
  Shard& shard = *shards_[shard_index];
  auto lock = Quiesce(&shard);
  if (!shard.engine.has_query(local_id)) {
    return Status::NotFound("unknown or unregistered group query id");
  }
  QueryRuntimeInfo info = shard.engine.query_info(local_id);
  info.query_id = group_query_id;
  return info;
}

void ParallelEngineGroup::ProcessEdge(const StreamEdge& edge) {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->cv_producer.wait(lock, [&] {
      return shard->queue.size() < kMaxQueuedEdges;
    });
    const bool was_empty = shard->queue.empty();
    shard->queue.push_back(edge);
    shard->idle = false;
    // The worker only sleeps when the queue is empty, so a wakeup is
    // needed just on the empty -> non-empty transition (it re-checks the
    // queue after finishing its current swap buffer regardless).
    if (was_empty) shard->cv_consumer.notify_one();
  }
}

void ParallelEngineGroup::ProcessBatch(const EdgeBatch& batch) {
  if (batch.empty()) return;
  for (auto& shard : shards_) {
    size_t appended = 0;
    while (appended < batch.size()) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_producer.wait(lock, [&] {
        return shard->queue.size() < kMaxQueuedEdges;
      });
      const bool was_empty = shard->queue.empty();
      const size_t room = kMaxQueuedEdges - shard->queue.size();
      const size_t take = std::min(room, batch.size() - appended);
      shard->queue.insert(shard->queue.end(),
                          batch.begin() + static_cast<ptrdiff_t>(appended),
                          batch.begin() +
                              static_cast<ptrdiff_t>(appended + take));
      appended += take;
      shard->idle = false;
      if (was_empty) shard->cv_consumer.notify_one();
    }
  }
}

void ParallelEngineGroup::WorkerLoop(Shard* shard) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_consumer.wait(lock, [&] {
        return !shard->queue.empty() || shard->closing;
      });
      if (shard->queue.empty() && shard->closing) return;
      shard->taking.swap(shard->queue);
      shard->cv_producer.notify_one();
    }
    for (const StreamEdge& e : shard->taking) {
      // Rejected edges are counted by the engine; a parallel consumer has
      // no way to surface per-edge status, matching the callback model.
      shard->engine.ProcessEdge(e).ok();
    }
    shard->taking.clear();
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      if (shard->queue.empty()) {
        shard->idle = true;
        shard->cv_producer.notify_one();
      }
    }
  }
}

void ParallelEngineGroup::Flush() {
  for (auto& shard : shards_) {
    auto lock = Quiesce(shard.get());
  }
}

void ParallelEngineGroup::Close() {
  if (closed_) return;
  closed_ = true;
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->closing = true;
      shard->cv_consumer.notify_one();
    }
    shard->worker.join();
  }
}

uint64_t ParallelEngineGroup::total_completions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().completions;
  }
  return total;
}

uint64_t ParallelEngineGroup::total_rejected() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().edges_rejected;
  }
  return total;
}

double ParallelEngineGroup::total_processing_seconds() const {
  double total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().processing_seconds;
  }
  return total;
}

}  // namespace streamworks
