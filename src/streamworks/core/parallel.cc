#include "streamworks/core/parallel.h"

#include <algorithm>

#include "streamworks/common/logging.h"
#include "streamworks/planner/selectivity.h"

namespace streamworks {

ParallelEngineGroup::ParallelEngineGroup(Interner* interner, int num_shards,
                                         EngineOptions options,
                                         ShardingMode mode,
                                         const Partitioner* partitioner)
    : mode_(mode),
      options_(options),
      partitioner_(partitioner != nullptr ? partitioner
                                          : &default_partitioner_) {
  SW_CHECK_GT(num_shards, 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(interner, options));
  }
  if (mode_ == ShardingMode::kPartitionedData) {
    for (int i = 0; i < num_shards; ++i) {
      ShardConfig config;
      config.shard_index = i;
      config.num_shards = num_shards;
      config.partitioner = partitioner_;
      config.exchange = &shards_[static_cast<size_t>(i)]->exchange;
      shards_[static_cast<size_t>(i)]->engine.EnableShardMode(config);
    }
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

ParallelEngineGroup::~ParallelEngineGroup() { Close(); }

std::unique_lock<std::mutex> ParallelEngineGroup::Quiesce(Shard* shard) {
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->cv_producer.wait(lock, [&] {
    return shard->idle && shard->queue.empty();
  });
  // With the queue empty and the lock held, the worker is parked in (or on
  // its way into) cv_consumer.wait and cannot touch the engine until a new
  // task is enqueued — which requires this lock.
  return lock;
}

void ParallelEngineGroup::WaitDrained() {
  std::unique_lock<std::mutex> lock(drained_mu_);
  drained_cv_.wait(lock, [&] { return pending_.load() == 0; });
}

void ParallelEngineGroup::QuiesceAll() {
  WaitDrained();
  // pending_ == 0 and the control thread (the sole external producer) is
  // here, so no new work can appear; wait out each worker's parking. Once
  // this returns the control thread may touch every engine/exchange: the
  // per-shard mutex handoff orders those accesses against the workers.
  for (auto& shard : shards_) {
    auto lock = Quiesce(shard.get());
  }
}

Status ParallelEngineGroup::ResolveGroupId(int group_query_id,
                                           int* shard_index,
                                           int* local_id) const {
  const int n = static_cast<int>(shards_.size());
  if (group_query_id < 0) {
    return Status::InvalidArgument("negative group query id");
  }
  *shard_index = group_query_id % n;
  *local_id = group_query_id / n;
  return OkStatus();
}

StatusOr<Decomposition> ParallelEngineGroup::PlanForGroup(
    const QueryGraph& query, DecompositionStrategy strategy) const {
  // One plan for every shard: the replicated trees must agree on node
  // numbering and cut vertices or the exchange's homing would scatter
  // siblings. Shard 0's statistics stand in for the group's (each shard
  // observes only its own edge subset; planning quality, not correctness).
  const StreamWorksEngine& engine0 = shards_[0]->engine;
  const SummaryStatistics* stats =
      (options_.collect_statistics &&
       engine0.statistics().num_edges_observed() > 0)
          ? &engine0.statistics()
          : nullptr;
  SelectivityEstimator estimator(stats);
  QueryPlanner planner(&estimator);
  return planner.Plan(query, strategy);
}

StatusOr<int> ParallelEngineGroup::RegisterQuery(
    const QueryGraph& query, DecompositionStrategy strategy,
    Timestamp window, MatchCallback callback) {
  if (mode_ == ShardingMode::kBroadcastData) {
    Shard& shard = *shards_[static_cast<size_t>(next_shard_)];
    auto lock = Quiesce(&shard);
    SW_ASSIGN_OR_RETURN(
        const int local_id,
        shard.engine.RegisterQuery(query, strategy, window,
                                   std::move(callback)));
    const int group_id =
        next_shard_ + local_id * static_cast<int>(shards_.size());
    next_shard_ = (next_shard_ + 1) % static_cast<int>(shards_.size());
    return group_id;
  }

  QuiesceAll();
  SW_ASSIGN_OR_RETURN(const Decomposition planned,
                      PlanForGroup(query, strategy));
  // Replicate onto every shard. Identical registration sequences keep the
  // per-engine ids aligned, so the group id is the engine id.
  auto first = shards_[0]->engine.RegisterQuery(query, planned, window,
                                                callback);
  SW_RETURN_IF_ERROR(first.status());
  const int group_id = first.value();
  for (size_t s = 1; s < shards_.size(); ++s) {
    auto replicated =
        shards_[s]->engine.RegisterQuery(query, planned, window, callback);
    // Shard 0 already passed the same deterministic validation.
    SW_CHECK(replicated.ok()) << replicated.status().ToString();
    SW_CHECK_EQ(replicated.value(), group_id)
        << "shard registration sequences diverged";
  }
  BackfillQueryDistributed(group_id);
  return group_id;
}

void ParallelEngineGroup::BackfillQueryDistributed(int query_id) {
  bool any_edges = false;
  for (auto& shard : shards_) {
    any_edges = any_edges || shard->engine.graph().num_stored_edges() > 0;
  }
  if (!any_edges) return;

  // Replay the retained window through the sharded pipeline with
  // completions suppressed — the distributed analogue of the engine's
  // BuildBackfilledTree. Only the new query's tree is touched (anchors run
  // per query id), so the group-wide suppression flag is safe. Order
  // across shards is irrelevant: the graph is static here and the anchor
  // discipline bounds candidates by edge id, not by ingest recency.
  for (auto& shard : shards_) {
    shard->engine.set_suppress_completions(true);
  }
  const int n = num_shards();
  for (int s = 0; s < n; ++s) {
    StreamWorksEngine& engine = shards_[static_cast<size_t>(s)]->engine;
    const DynamicGraph& graph = engine.graph();
    for (size_t i = 0; i < graph.num_stored_edges(); ++i) {
      const EdgeId id = graph.stored_edge_id(i);
      const EdgeRecord& record = graph.edge_record(id);
      // Anchor each edge once group-wide: on its source-owner shard, the
      // same shard that gets run_anchors during live ingest.
      if (partitioner_->OwnerShard(graph.external_id(record.src), n) != s) {
        continue;
      }
      engine.BackfillQueryEdge(query_id, id);
    }
    PumpExchange();
  }
  for (auto& shard : shards_) {
    shard->engine.set_suppress_completions(false);
  }
}

void ParallelEngineGroup::PumpExchange() {
  // Control-thread fixpoint (group quiesced): deliver forwarded items
  // directly until no shard produces more.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& shard : shards_) {
      for (auto& [dest, item] : shard->exchange.Drain()) {
        shards_[static_cast<size_t>(dest)]->engine.HandleExchangeItem(item);
        progress = true;
      }
    }
  }
}

Status ParallelEngineGroup::UnregisterQuery(int group_query_id) {
  if (mode_ == ShardingMode::kBroadcastData) {
    int shard_index = 0, local_id = 0;
    SW_RETURN_IF_ERROR(
        ResolveGroupId(group_query_id, &shard_index, &local_id));
    Shard& shard = *shards_[static_cast<size_t>(shard_index)];
    auto lock = Quiesce(&shard);
    return shard.engine.UnregisterQuery(local_id);
  }

  // Any shard may hold the query's partials and in-flight exchange items
  // reference it by id, so the whole group quiesces first.
  QuiesceAll();
  Status status = OkStatus();
  for (auto& shard : shards_) {
    const Status s = shard->engine.UnregisterQuery(group_query_id);
    if (!s.ok()) status = s;
  }
  return status;
}

StatusOr<QueryRuntimeInfo> ParallelEngineGroup::query_info(
    int group_query_id) {
  if (mode_ == ShardingMode::kBroadcastData) {
    int shard_index = 0, local_id = 0;
    SW_RETURN_IF_ERROR(
        ResolveGroupId(group_query_id, &shard_index, &local_id));
    Shard& shard = *shards_[static_cast<size_t>(shard_index)];
    auto lock = Quiesce(&shard);
    if (!shard.engine.has_query(local_id)) {
      return Status::NotFound("unknown or unregistered group query id");
    }
    QueryRuntimeInfo info = shard.engine.query_info(local_id);
    info.query_id = group_query_id;
    return info;
  }

  QuiesceAll();
  if (group_query_id < 0 || !shards_[0]->engine.has_query(group_query_id)) {
    return Status::NotFound("unknown or unregistered group query id");
  }
  // Completions are counted where they are delivered: the callback home.
  const size_t home =
      static_cast<size_t>(group_query_id % num_shards());
  QueryRuntimeInfo info = shards_[home]->engine.query_info(group_query_id);
  info.query_id = group_query_id;
  info.live_partial_matches = 0;
  info.peak_partial_matches = 0;
  // Every shard runs a replica of the same tree shape, so the per-node
  // counters sum element-wise; start from zeroed nodes and fold each
  // shard's contribution in (including the home's, re-read below).
  for (SjNodeRuntime& node : info.nodes) {
    node.matches_inserted = 0;
    node.probes = 0;
    node.join_attempts = 0;
    node.joins_succeeded = 0;
    node.live_partial_matches = 0;
  }
  for (auto& shard : shards_) {
    const QueryRuntimeInfo per = shard->engine.query_info(group_query_id);
    info.live_partial_matches += per.live_partial_matches;
    info.peak_partial_matches += per.peak_partial_matches;
    for (size_t n = 0; n < info.nodes.size() && n < per.nodes.size(); ++n) {
      info.nodes[n].matches_inserted += per.nodes[n].matches_inserted;
      info.nodes[n].probes += per.nodes[n].probes;
      info.nodes[n].join_attempts += per.nodes[n].join_attempts;
      info.nodes[n].joins_succeeded += per.nodes[n].joins_succeeded;
      info.nodes[n].live_partial_matches += per.nodes[n].live_partial_matches;
    }
  }
  return info;
}

void ParallelEngineGroup::EnqueueTask(Shard* shard, ShardTask task,
                                      bool bounded) {
  std::unique_lock<std::mutex> lock(shard->mu);
  if (bounded) {
    shard->cv_producer.wait(lock, [&] {
      return shard->queue.size() < kMaxQueuedEdges;
    });
  }
  const bool was_empty = shard->queue.empty();
  shard->queue.push_back(std::move(task));
  shard->idle = false;
  pending_.fetch_add(1);
  // The worker only sleeps when the queue is empty, so a wakeup is needed
  // just on the empty -> non-empty transition (it re-checks the queue
  // after finishing its current swap buffer regardless).
  if (was_empty) shard->cv_consumer.notify_one();
}

bool ParallelEngineGroup::AdmitPartitionedEdge(const StreamEdge& edge) {
  // The checks AddEdge would apply, against *group* state: shards see only
  // the edges incident to their owned vertices, so an endpoint-label clash
  // the owner shard would reject could slip into the other endpoint's
  // shard (which has never seen the clashing vertex) and corrupt results.
  // Validating once here keeps every shard's vertex records globally
  // consistent — and rejects exactly the edges a single engine rejects.
  if (edge.ts < 0 || edge.ts < group_watermark_) {
    ++group_rejected_;
    return false;
  }
  // Mirror AddEdge's sequential endpoint checks, including the side effect
  // that an edge rejected on its dst label has still recorded its src.
  auto [src_it, src_new] =
      admitted_vertex_labels_.try_emplace(edge.src, edge.src_label);
  if (!src_new && src_it->second != edge.src_label) {
    ++group_rejected_;
    return false;
  }
  auto [dst_it, dst_new] =
      admitted_vertex_labels_.try_emplace(edge.dst, edge.dst_label);
  if (!dst_new && dst_it->second != edge.dst_label) {
    ++group_rejected_;
    return false;
  }
  return true;
}

void ParallelEngineGroup::PartitionedIngest(const StreamEdge& edge) {
  if (!AdmitPartitionedEdge(edge)) return;
  const EdgeId id = next_global_edge_id_++;
  group_watermark_ = edge.ts;
  ++edges_since_epoch_;
  const int n = num_shards();
  const int src_owner = partitioner_->OwnerShard(edge.src, n);
  const int dst_owner = partitioner_->OwnerShard(edge.dst, n);
  ShardTask task;
  task.kind = ShardTask::Kind::kEdge;
  task.run_anchors = true;  // the src owner anchors; exactly one shard
  task.edge = edge;
  task.edge_id = id;
  EnqueueTask(shards_[static_cast<size_t>(src_owner)].get(),
              std::move(task), /*bounded=*/true);
  if (dst_owner != src_owner) {
    ShardTask copy;
    copy.kind = ShardTask::Kind::kEdge;
    copy.run_anchors = false;
    copy.edge = edge;
    copy.edge_id = id;
    EnqueueTask(shards_[static_cast<size_t>(dst_owner)].get(),
                std::move(copy), /*bounded=*/true);
  }
}

void ParallelEngineGroup::EpochFlush() {
  edges_since_epoch_ = 0;
  // Drain every queue and everything the exchange spawned, so no in-flight
  // match still needs a neighbourhood the watermark broadcast may evict.
  WaitDrained();
  if (group_watermark_ <= last_broadcast_watermark_) return;
  last_broadcast_watermark_ = group_watermark_;
  for (auto& shard : shards_) {
    ShardTask task;
    task.kind = ShardTask::Kind::kWatermark;
    task.watermark = group_watermark_;
    EnqueueTask(shard.get(), std::move(task), /*bounded=*/false);
  }
}

void ParallelEngineGroup::ProcessEdge(const StreamEdge& edge) {
  if (mode_ == ShardingMode::kPartitionedData) {
    PartitionedIngest(edge);
    if (edges_since_epoch_ >= kEpochEdges) EpochFlush();
    return;
  }
  for (auto& shard : shards_) {
    ShardTask task;
    task.kind = ShardTask::Kind::kEdge;
    task.edge = edge;
    EnqueueTask(shard.get(), std::move(task), /*bounded=*/true);
  }
}

void ParallelEngineGroup::ProcessBatch(const EdgeBatch& batch) {
  if (batch.empty()) return;
  if (mode_ == ShardingMode::kPartitionedData) {
    for (const StreamEdge& edge : batch) {
      PartitionedIngest(edge);
      // One huge batch must not suspend eviction for its whole duration —
      // keep the same per-kEpochEdges bound the single-edge path has.
      if (edges_since_epoch_ >= kEpochEdges) EpochFlush();
    }
    // The batch boundary is an epoch boundary: exchange drained, watermark
    // broadcast, expiry advanced consistently on every shard.
    EpochFlush();
    return;
  }
  for (auto& shard : shards_) {
    size_t appended = 0;
    while (appended < batch.size()) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_producer.wait(lock, [&] {
        return shard->queue.size() < kMaxQueuedEdges;
      });
      const bool was_empty = shard->queue.empty();
      const size_t room = kMaxQueuedEdges - shard->queue.size();
      const size_t take = std::min(room, batch.size() - appended);
      shard->queue.reserve(shard->queue.size() + take);
      for (size_t i = 0; i < take; ++i) {
        ShardTask task;
        task.kind = ShardTask::Kind::kEdge;
        task.edge = batch[appended + i];
        shard->queue.push_back(std::move(task));
      }
      appended += take;
      shard->idle = false;
      pending_.fetch_add(take);
      if (was_empty) shard->cv_consumer.notify_one();
    }
  }
}

void ParallelEngineGroup::ExecuteTask(Shard* shard, ShardTask& task) {
  switch (task.kind) {
    case ShardTask::Kind::kEdge:
      // Rejected edges are counted by the engine; a parallel consumer has
      // no way to surface per-edge status, matching the callback model.
      if (mode_ == ShardingMode::kBroadcastData) {
        shard->engine.ProcessEdge(task.edge).ok();
      } else {
        shard->engine
            .ProcessShardEdge(task.edge, task.edge_id, task.run_anchors)
            .ok();
      }
      break;
    case ShardTask::Kind::kItem:
      shard->engine.HandleExchangeItem(*task.item);
      break;
    case ShardTask::Kind::kWatermark:
      shard->engine.AdvanceWatermark(task.watermark);
      break;
  }
}

void ParallelEngineGroup::DispatchExchange(Shard* from) {
  if (from->exchange.empty()) return;
  auto items = from->exchange.Drain();
  // One lock acquisition per destination: group the batch first.
  std::vector<std::vector<std::unique_ptr<ExchangeItem>>> per_dest(
      shards_.size());
  for (auto& [dest, item] : items) {
    per_dest[static_cast<size_t>(dest)].push_back(
        std::make_unique<ExchangeItem>(std::move(item)));
  }
  for (size_t d = 0; d < per_dest.size(); ++d) {
    if (per_dest[d].empty()) continue;
    Shard* dst = shards_[d].get();
    std::unique_lock<std::mutex> lock(dst->mu);
    const bool was_empty = dst->queue.empty();
    for (auto& item : per_dest[d]) {
      ShardTask task;
      task.kind = ShardTask::Kind::kItem;
      task.item = std::move(item);
      dst->queue.push_back(std::move(task));
    }
    dst->idle = false;
    pending_.fetch_add(per_dest[d].size());
    if (was_empty) dst->cv_consumer.notify_one();
  }
}

void ParallelEngineGroup::WorkerLoop(Shard* shard) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv_consumer.wait(lock, [&] {
        return !shard->queue.empty() || shard->closing;
      });
      if (shard->queue.empty() && shard->closing) return;
      shard->taking.swap(shard->queue);
      shard->cv_producer.notify_all();
    }
    const size_t taken = shard->taking.size();
    for (ShardTask& task : shard->taking) {
      ExecuteTask(shard, task);
    }
    // Forward everything the batch produced before retiring it from
    // pending_, so "drained" can never be observed with items in flight.
    DispatchExchange(shard);
    shard->taking.clear();
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      if (shard->queue.empty()) {
        shard->idle = true;
        shard->cv_producer.notify_all();
      }
    }
    if (pending_.fetch_sub(taken) == taken) {
      std::lock_guard<std::mutex> guard(drained_mu_);
      drained_cv_.notify_all();
    }
  }
}

void ParallelEngineGroup::Flush() {
  if (mode_ == ShardingMode::kPartitionedData) {
    EpochFlush();   // drain + final watermark broadcast
    WaitDrained();  // drain the watermark tasks themselves
  } else {
    WaitDrained();
  }
  for (auto& shard : shards_) {
    auto lock = Quiesce(shard.get());
  }
}

void ParallelEngineGroup::Close() {
  if (closed_) return;
  if (mode_ == ShardingMode::kPartitionedData) {
    // Partitioned workers forward to each other; a worker must never exit
    // while a peer might still send it work, so drain globally first.
    Flush();
  }
  closed_ = true;
  for (auto& shard : shards_) {
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->closing = true;
      shard->cv_consumer.notify_one();
    }
    shard->worker.join();
  }
}

uint64_t ParallelEngineGroup::total_completions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().completions;
  }
  return total;
}

uint64_t ParallelEngineGroup::total_rejected() const {
  uint64_t total = group_rejected_;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().edges_rejected;
  }
  return total;
}

double ParallelEngineGroup::total_processing_seconds() const {
  double total = 0;
  for (const auto& shard : shards_) {
    total += shard->engine.metrics().processing_seconds;
  }
  return total;
}

WindowSnapshot ParallelEngineGroup::ExportWindow() {
  QuiesceAll();
  if (mode_ == ShardingMode::kBroadcastData) {
    // Every shard retains the identical window and id sequence.
    return shards_[0]->engine.ExportWindow();
  }
  WindowSnapshot merged;
  merged.next_edge_id = next_global_edge_id_;
  merged.watermark = group_watermark_;
  for (auto& shard : shards_) {
    WindowSnapshot per = shard->engine.ExportWindow();
    merged.edges.insert(merged.edges.end(), per.edges.begin(),
                        per.edges.end());
  }
  // An edge stored on both endpoint owners was exported twice; ids are
  // group-global, so sort + unique restores the single ingest sequence.
  std::sort(merged.edges.begin(), merged.edges.end(),
            [](const PersistedEdge& a, const PersistedEdge& b) {
              return a.id < b.id;
            });
  merged.edges.erase(std::unique(merged.edges.begin(), merged.edges.end(),
                                 [](const PersistedEdge& a,
                                    const PersistedEdge& b) {
                                   return a.id == b.id;
                                 }),
                     merged.edges.end());
  return merged;
}

Status ParallelEngineGroup::RestoreWindow(const WindowSnapshot& snapshot) {
  QuiesceAll();
  const int n = num_shards();
  for (const PersistedEdge& pe : snapshot.edges) {
    if (mode_ == ShardingMode::kBroadcastData) {
      for (auto& shard : shards_) {
        SW_RETURN_IF_ERROR(shard->engine.RestoreWindowEdge(pe.edge, pe.id));
      }
      continue;
    }
    const int src_owner = partitioner_->OwnerShard(pe.edge.src, n);
    const int dst_owner = partitioner_->OwnerShard(pe.edge.dst, n);
    SW_RETURN_IF_ERROR(
        shards_[static_cast<size_t>(src_owner)]->engine.RestoreWindowEdge(
            pe.edge, pe.id));
    if (dst_owner != src_owner) {
      SW_RETURN_IF_ERROR(
          shards_[static_cast<size_t>(dst_owner)]->engine.RestoreWindowEdge(
              pe.edge, pe.id));
    }
    // Rebuild group admission state so a post-recovery label clash on a
    // retained vertex is rejected exactly as before the crash. (Vertices
    // whose every edge was evicted pre-snapshot lose their recorded
    // label; admission for them starts fresh — documented.)
    admitted_vertex_labels_.try_emplace(pe.edge.src, pe.edge.src_label);
    admitted_vertex_labels_.try_emplace(pe.edge.dst, pe.edge.dst_label);
  }
  for (auto& shard : shards_) {
    shard->engine.FinishWindowRestore(snapshot.next_edge_id,
                                      snapshot.watermark);
  }
  if (mode_ == ShardingMode::kPartitionedData) {
    next_global_edge_id_ = snapshot.next_edge_id;
    group_watermark_ = snapshot.watermark;
    last_broadcast_watermark_ = snapshot.watermark;
  }
  return OkStatus();
}

void ParallelEngineGroup::SetSuppressCompletions(bool suppress) {
  QuiesceAll();
  for (auto& shard : shards_) {
    shard->engine.set_suppress_completions(suppress);
  }
}

std::vector<ShardStatsSnapshot> ParallelEngineGroup::ShardStats() {
  QuiesceAll();
  std::vector<ShardStatsSnapshot> out;
  out.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    const StreamWorksEngine& engine = shards_[s]->engine;
    ShardStatsSnapshot snap;
    snap.shard = static_cast<int>(s);
    snap.retained_edges = engine.graph().num_stored_edges();
    snap.retained_vertices = engine.graph().num_vertices();
    snap.evicted_edges = engine.graph().num_evicted_edges();
    snap.edges_processed = engine.metrics().edges_processed;
    snap.completions = engine.metrics().completions;
    snap.live_partial_matches = engine.total_live_partial_matches();
    snap.exchange = shards_[s]->exchange.counters();
    out.push_back(snap);
  }
  return out;
}

}  // namespace streamworks
