#ifndef STREAMWORKS_CORE_PARALLEL_H_
#define STREAMWORKS_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "streamworks/core/engine.h"
#include "streamworks/graph/partition.h"

namespace streamworks {

/// How a ParallelEngineGroup spreads work over its shards.
enum class ShardingMode {
  /// The original coarse-grained mode: *queries* are partitioned
  /// round-robin across shards and every edge is broadcast to every shard.
  /// Shards never talk to each other, but each one retains the whole
  /// window graph — memory grows with the shard count.
  kBroadcastData,

  /// Vertex-partitioned scale-out: the *data graph* is partitioned by
  /// vertex ownership (a pluggable Partitioner) and every query is
  /// replicated onto every shard. An edge is routed only to the shard(s)
  /// owning its endpoints, so each shard retains O(owned edges) instead of
  /// O(all edges); partial matches whose expansion or join leaves a shard
  /// are forwarded through the MatchExchange. Match sets are identical to
  /// a single engine's (the exchange relocates each exactly-once event, it
  /// never duplicates or drops one).
  kPartitionedData,
};

/// Point-in-time per-shard load/traffic counters (call sites: ShardStats).
struct ShardStatsSnapshot {
  int shard = 0;
  uint64_t retained_edges = 0;    ///< Edges currently stored in the window.
  uint64_t retained_vertices = 0;
  uint64_t evicted_edges = 0;
  uint64_t edges_processed = 0;   ///< Ingested copies (not group-unique).
  uint64_t completions = 0;       ///< Matches this shard delivered.
  uint64_t live_partial_matches = 0;
  ExchangeCounters exchange;      ///< All zero in broadcast mode.
};

/// Multi-core query execution (the paper's demo ran many concurrent
/// queries on a 48-core shared-memory node): N worker threads, each owning
/// a private StreamWorksEngine, fed through bounded per-shard queues.
///
/// Two sharding modes (ShardingMode above): kBroadcastData trades memory
/// for fully independent shards; kPartitionedData shards the data graph by
/// vertex ownership and exchanges cross-shard partial matches, the real
/// scale-out step. Either way the result set equals a single engine run
/// (verified by the equivalence tests).
///
/// Threading contract: callbacks run on worker threads, one shard at a
/// time per query (broadcast: a query lives on one shard; partitioned: all
/// of a query's completions are delivered by its *callback-home* shard),
/// so a callback only needs to be thread-safe against callbacks of queries
/// homed on other shards. Control calls (Register/Unregister/query_info/
/// Process*/Flush/Close) come from one control thread. Close() (or
/// destruction) drains the queues and joins the workers.
///
/// Partitioned-mode ingest runs in *epochs*: every ProcessBatch (and every
/// kEpochEdges single edges) ends with a barrier that drains the exchange,
/// then broadcasts the group watermark so window expiry advances
/// consistently on every shard — a shard holding only old vertices would
/// otherwise never see a new edge and never expire, and eager local expiry
/// could race ahead of forwarded matches still needing old neighbourhoods.
class ParallelEngineGroup {
 public:
  /// Creates `num_shards` workers configured with `options`. In
  /// kPartitionedData mode, `partitioner` picks vertex ownership (null =
  /// built-in hash+modulo); it must outlive the group. Partitioned mode
  /// requires options.replan_interval == 0 (per-shard re-planning would
  /// diverge the replicated trees).
  ParallelEngineGroup(Interner* interner, int num_shards,
                      EngineOptions options = {},
                      ShardingMode mode = ShardingMode::kBroadcastData,
                      const Partitioner* partitioner = nullptr);
  ~ParallelEngineGroup();

  ParallelEngineGroup(const ParallelEngineGroup&) = delete;
  ParallelEngineGroup& operator=(const ParallelEngineGroup&) = delete;

  /// Registers a query and returns a group-wide query id. May be called
  /// mid-stream; the affected shard(s) are quiesced so the new SJ-Tree is
  /// backfilled from a consistent window. Broadcast mode places the query
  /// on the next shard round-robin; partitioned mode plans once (against
  /// shard 0's statistics), replicates the tree onto every shard, and runs
  /// a distributed backfill through the exchange. Not thread-safe against
  /// other control calls or the producer; one control thread.
  StatusOr<int> RegisterQuery(const QueryGraph& query,
                              DecompositionStrategy strategy,
                              Timestamp window, MatchCallback callback);

  /// Unregisters a group query id. Quiesces the owning shard (broadcast)
  /// or the whole group (partitioned; any shard may hold its partials), so
  /// once this returns no further callbacks fire for the query. Same
  /// threading contract as RegisterQuery.
  Status UnregisterQuery(int group_query_id);

  /// Runtime snapshot of one group query (quiesces the owning shard or,
  /// partitioned, the group; partial-match gauges aggregate over shards).
  StatusOr<QueryRuntimeInfo> query_info(int group_query_id);

  /// Ingests one edge: broadcast enqueues it for every shard, partitioned
  /// validates it group-wide and routes it to its endpoint owners. Blocks
  /// when a target shard's queue is full (backpressure). Not thread-safe;
  /// one producer.
  void ProcessEdge(const StreamEdge& edge);

  /// Ingests a batch with one lock acquisition per target shard — the fast
  /// path for replay. In partitioned mode the batch boundary is an epoch
  /// boundary (exchange drained, watermark broadcast).
  void ProcessBatch(const EdgeBatch& batch);

  /// Waits until every shard has drained its queue and (partitioned) the
  /// exchange has reached quiescence; also broadcasts the final watermark.
  /// The group remains usable afterwards.
  void Flush();

  /// Drains and joins the workers. Called by the destructor.
  void Close();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardingMode mode() const { return mode_; }
  const Partitioner& partitioner() const { return *partitioner_; }

  /// Aggregate completions across shards (call after Flush). Each match
  /// counts once in either mode.
  uint64_t total_completions() const;
  /// Aggregate rejected-edge count across shards (call after Flush). In
  /// partitioned mode invalid edges are rejected once, at group admission,
  /// before they consume a global id — matching the single engine; in
  /// broadcast mode every shard rejects its own copy.
  uint64_t total_rejected() const;

  /// Sum of per-shard engine processing time (call after Flush). With N
  /// shards this can exceed wall-clock time; wall / (this / N) measures
  /// pipeline efficiency.
  double total_processing_seconds() const;

  /// Per-shard retained-memory and exchange-traffic counters (quiesces the
  /// group). The partitioned-vs-broadcast memory claim is measured from
  /// exactly this: retained_edges per shard drops from O(total) to
  /// O(owned).
  std::vector<ShardStatsSnapshot> ShardStats();

  // --- Durability (control thread; see QueryBackend's persist seam) --------
  /// Group-wide window export (quiesces the group): partitioned mode
  /// merges the shards' owned subsets by global edge id (an edge stored
  /// on both endpoint owners appears once); broadcast mode reads shard 0
  /// (every shard retains the identical window).
  WindowSnapshot ExportWindow();

  /// Rebuilds the group's window from an export. Must run before any
  /// registration or ingest. The group is quiesced and edges are applied
  /// directly to the owning shards' engines under their original global
  /// ids; partitioned-mode admission state (vertex labels, id sequence,
  /// group watermark) is restored alongside.
  Status RestoreWindow(const WindowSnapshot& snapshot);

  /// Gates match delivery on every shard (quiesces to flip the flag).
  /// Recovery replays the WAL tail with completions suppressed: those
  /// matches were delivered by the crashed incarnation, so the replay
  /// rebuilds state without re-emitting them.
  void SetSuppressCompletions(bool suppress);

 private:
  /// One unit of queued shard work.
  struct ShardTask {
    enum class Kind : uint8_t { kEdge, kItem, kWatermark };
    Kind kind = Kind::kEdge;
    /// kEdge (partitioned): this shard owns edge.src and must anchor local
    /// search; exactly one shard per edge gets this bit.
    bool run_anchors = true;
    StreamEdge edge{};
    EdgeId edge_id = kInvalidEdgeId;  ///< kEdge: global id (partitioned).
    Timestamp watermark = -1;         ///< kWatermark.
    std::unique_ptr<ExchangeItem> item;  ///< kItem.
  };

  struct Shard {
    Shard(Interner* interner, EngineOptions options)
        : engine(interner, options) {}

    StreamWorksEngine engine;
    MatchExchange exchange;  ///< Worker-owned outbox (control during quiesce).
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv_producer;
    std::condition_variable cv_consumer;
    std::vector<ShardTask> queue;   // guarded by mu
    std::vector<ShardTask> taking;  // worker-local swap buffer
    bool closing = false;           // guarded by mu
    bool idle = true;               // guarded by mu; true when drained
  };

  void WorkerLoop(Shard* shard);
  void ExecuteTask(Shard* shard, ShardTask& task);

  /// Moves the shard's freshly forwarded exchange items onto their
  /// destination queues, one lock acquisition per destination (worker
  /// thread; the batching half of "batched, epoch-flushed").
  void DispatchExchange(Shard* from);

  /// Enqueues one task. `bounded` waits for queue room (ingest
  /// backpressure); exchange and watermark tasks never wait — a forwarding
  /// worker that blocked on a full peer queue could deadlock with a peer
  /// forwarding back.
  void EnqueueTask(Shard* shard, ShardTask task, bool bounded);

  /// Blocks until every queued task — including everything the exchange
  /// spawned transitively — has been executed.
  void WaitDrained();

  /// Waits (holding shard->mu, which is returned locked) until the shard's
  /// queue is drained and its worker is parked, so the caller may touch
  /// shard->engine directly.
  std::unique_lock<std::mutex> Quiesce(Shard* shard);

  /// WaitDrained + every worker parked: the control thread may touch any
  /// shard's engine/exchange until it enqueues new work.
  void QuiesceAll();

  // --- Partitioned-mode internals (control thread only) ---------------------
  /// Group-level admission: the checks DynamicGraph::AddEdge would apply,
  /// evaluated against group state, so shards only ever see valid edges
  /// and agree on every vertex's label (a shard seeing only one endpoint
  /// could otherwise record a clashing label the owner shard rejected).
  bool AdmitPartitionedEdge(const StreamEdge& edge);
  void PartitionedIngest(const StreamEdge& edge);
  /// Drains everything, then broadcasts the group watermark so shards
  /// evict and expire consistently.
  void EpochFlush();
  /// Control-thread fixpoint over the shard outboxes (used while quiesced:
  /// distributed backfill of a mid-stream registration).
  void PumpExchange();
  /// Plans once for the whole group against shard 0's statistics.
  StatusOr<Decomposition> PlanForGroup(const QueryGraph& query,
                                       DecompositionStrategy strategy) const;
  /// Distributed, completion-suppressed window replay for a mid-stream
  /// registration (all shards quiesced).
  void BackfillQueryDistributed(int query_id);

  /// Splits a broadcast-mode group query id into (shard, local id).
  Status ResolveGroupId(int group_query_id, int* shard_index,
                        int* local_id) const;

  static constexpr size_t kMaxQueuedEdges = 32768;
  /// Single-edge ingest runs an epoch barrier at least this often.
  static constexpr int kEpochEdges = 1024;

  ShardingMode mode_;
  EngineOptions options_;
  HashModuloPartitioner default_partitioner_;
  const Partitioner* partitioner_;

  std::vector<std::unique_ptr<Shard>> shards_;
  int next_shard_ = 0;  ///< Broadcast round-robin cursor.
  bool closed_ = false;

  /// Tasks enqueued but not yet fully executed (including tasks their
  /// execution spawned). Zero <=> the group is globally drained.
  std::atomic<uint64_t> pending_{0};
  std::mutex drained_mu_;
  std::condition_variable drained_cv_;

  // Partitioned ingest state (control thread only).
  EdgeId next_global_edge_id_ = 0;
  Timestamp group_watermark_ = -1;
  Timestamp last_broadcast_watermark_ = -1;
  int edges_since_epoch_ = 0;
  uint64_t group_rejected_ = 0;
  std::unordered_map<ExternalVertexId, LabelId> admitted_vertex_labels_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_CORE_PARALLEL_H_
