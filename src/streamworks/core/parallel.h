#ifndef STREAMWORKS_CORE_PARALLEL_H_
#define STREAMWORKS_CORE_PARALLEL_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "streamworks/core/engine.h"

namespace streamworks {

/// Multi-core query execution (the paper's demo ran many concurrent
/// queries on a 48-core shared-memory node): registered queries are
/// sharded round-robin across N worker threads, each owning a private
/// StreamWorksEngine (its own window graph and SJ-Trees). Every ingested
/// edge is broadcast to all shards through bounded per-shard queues.
///
/// This is coarse-grained parallelism — queries never share partial
/// matches, so shards are fully independent and results are identical to a
/// single engine run (verified by the equivalence tests). The window graph
/// is duplicated per shard: memory for parallelism, the standard trade for
/// multi-query streaming engines.
///
/// Threading contract: callbacks run on worker threads, one shard at a
/// time per query (a query lives on exactly one shard), so a callback only
/// needs to be thread-safe against callbacks of queries on *other* shards.
/// Close() (or destruction) drains the queues and joins the workers.
class ParallelEngineGroup {
 public:
  /// Creates `num_shards` workers configured with `options`.
  ParallelEngineGroup(Interner* interner, int num_shards,
                      EngineOptions options = {});
  ~ParallelEngineGroup();

  ParallelEngineGroup(const ParallelEngineGroup&) = delete;
  ParallelEngineGroup& operator=(const ParallelEngineGroup&) = delete;

  /// Registers a query on the next shard (round-robin) and returns a
  /// group-wide query id. May be called mid-stream: the target shard is
  /// quiesced (its queue drained and its worker parked) for the duration
  /// of the registration, so the new SJ-Tree is backfilled from a
  /// consistent window. Not thread-safe against other control calls or the
  /// producer; one control thread.
  StatusOr<int> RegisterQuery(const QueryGraph& query,
                              DecompositionStrategy strategy,
                              Timestamp window, MatchCallback callback);

  /// Unregisters a group query id on whichever shard owns it (shard-aware
  /// detach). Quiesces that shard first, so once this returns no further
  /// callbacks fire for the query. Same threading contract as
  /// RegisterQuery.
  Status UnregisterQuery(int group_query_id);

  /// Runtime snapshot of one group query (quiesces the owning shard).
  StatusOr<QueryRuntimeInfo> query_info(int group_query_id);

  /// Enqueues one edge for every shard. Blocks when a shard's queue is
  /// full (backpressure). Not thread-safe; one producer.
  void ProcessEdge(const StreamEdge& edge);

  /// Enqueues a batch for every shard with one lock acquisition per shard
  /// — the fast path for replay (per-edge broadcast pays a wakeup per
  /// shard per edge; batches amortise it).
  void ProcessBatch(const EdgeBatch& batch);

  /// Waits until every shard has drained its queue. The group remains
  /// usable afterwards.
  void Flush();

  /// Drains and joins the workers. Called by the destructor.
  void Close();

  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Aggregate completions across shards (call after Flush).
  uint64_t total_completions() const;
  /// Aggregate rejected-edge count across shards (call after Flush).
  uint64_t total_rejected() const;

  /// Sum of per-shard engine processing time (call after Flush). With N
  /// shards this can exceed wall-clock time; wall / (this / N) measures
  /// pipeline efficiency.
  double total_processing_seconds() const;

 private:
  struct Shard {
    explicit Shard(Interner* interner, EngineOptions options)
        : engine(interner, options) {}

    StreamWorksEngine engine;
    std::thread worker;
    std::mutex mu;
    std::condition_variable cv_producer;
    std::condition_variable cv_consumer;
    std::vector<StreamEdge> queue;   // guarded by mu
    std::vector<StreamEdge> taking;  // worker-local swap buffer
    bool closing = false;            // guarded by mu
    bool idle = true;                // guarded by mu; true when drained
  };

  void WorkerLoop(Shard* shard);

  /// Waits (holding shard->mu, which is returned locked) until the shard's
  /// queue is drained and its worker is parked, so the caller may touch
  /// shard->engine directly.
  std::unique_lock<std::mutex> Quiesce(Shard* shard);

  /// Splits a group query id into (shard index, shard-local query id).
  Status ResolveGroupId(int group_query_id, int* shard_index,
                        int* local_id) const;

  static constexpr size_t kMaxQueuedEdges = 32768;

  std::vector<std::unique_ptr<Shard>> shards_;
  int next_shard_ = 0;
  bool closed_ = false;
};

}  // namespace streamworks

#endif  // STREAMWORKS_CORE_PARALLEL_H_
