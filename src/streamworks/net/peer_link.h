#ifndef STREAMWORKS_NET_PEER_LINK_H_
#define STREAMWORKS_NET_PEER_LINK_H_

#include <string>
#include <string_view>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/common/unique_fd.h"
#include "streamworks/stream/cluster_wire.h"

namespace streamworks {

/// One framed peer connection of the cluster control plane — the pipe a
/// coordinator holds to each worker daemon and a worker holds back to its
/// coordinator. Owns the fd, a receive buffer, and the frame codec; the
/// caller sees whole CtrlFrames in, whole encoded frames out.
///
/// Two personalities, picked at construction:
///
///   * duplex (coordinator side): the fd is nonblocking and SendFrame
///     drains inbound bytes into the receive buffer whenever a write
///     would park. This breaks the classic write-write deadlock — the
///     coordinator pushing a large Batch while the worker pushes
///     Exchange/Completion traffic back fills both socket buffers, and a
///     blocking writer on each end would wait forever. One nonblocking
///     side suffices: the coordinator keeps consuming, so the worker's
///     writes drain, so the worker returns to reading.
///   * blocking (worker side): plain blocking writes; reads still poll
///     with a timeout so the daemon loop can notice a stop flag.
///
/// Not thread-safe: one thread owns a link (the coordinator's cluster
/// mutex or the worker's single daemon thread).
class PeerLink {
 public:
  PeerLink() = default;

  /// Adopts a connected socket. `duplex` selects the nonblocking
  /// coordinator personality above.
  static StatusOr<PeerLink> Adopt(UniqueFd fd, bool duplex);

  /// Connects to `host:port` with the duplex personality, retrying until
  /// `deadline_ms` elapses (a worker daemon may still be starting, or
  /// restarting after a crash).
  static StatusOr<PeerLink> ConnectTcpRetry(const std::string& host, int port,
                                            int deadline_ms);

  /// Writes one already-encoded frame, fully. Duplex links spill inbound
  /// bytes into the receive buffer while waiting for writability; those
  /// frames surface on later ReadFrame calls in order.
  Status SendFrame(std::string_view frame);

  /// Returns the next whole control frame, reading from the socket as
  /// needed. `timeout_ms` < 0 waits forever; on expiry the result is
  /// a "link read timed out" Unavailable error. EOF and malformed bytes
  /// are errors too — the control plane has no resync story by design
  /// (a desynchronized peer must reconnect and handshake).
  StatusOr<CtrlFrame> ReadFrame(Interner* interner, int timeout_ms);

  /// True if a whole frame is already buffered (ReadFrame would not
  /// touch the socket).
  bool HasBufferedFrame() const;

  bool connected() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  void Close() { fd_.reset(); rbuf_.clear(); }

 private:
  Status FillFromSocket(int timeout_ms);

  UniqueFd fd_;
  bool duplex_ = false;
  std::string rbuf_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_PEER_LINK_H_
