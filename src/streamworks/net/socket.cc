#include "streamworks/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace streamworks {

namespace {

std::string Errno(std::string_view what) {
  return std::string(what) + ": " + std::strerror(errno);
}

StatusOr<sockaddr_in> TcpAddress(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return addr;
}

StatusOr<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "unix socket path empty or longer than sun_path: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(Errno("fcntl(O_NONBLOCK)"));
  }
  return OkStatus();
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, int port, int backlog) {
  SW_ASSIGN_OR_RETURN(const sockaddr_in addr, TcpAddress(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::IoError(Errno("bind(tcp " + host + ":" +
                                 std::to_string(port) + ")"));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::IoError(Errno("listen(tcp)"));
  }
  SW_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

StatusOr<int> BoundTcpPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Status::IoError(Errno("getsockname"));
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<UniqueFd> ListenUnix(const std::string& path, int backlog) {
  SW_ASSIGN_OR_RETURN(const sockaddr_un addr, UnixAddress(path));
  // A stale socket file would fail the bind, so remove it — but only a
  // socket: a typo'd path must not delete an operator's regular file.
  // (A *live* server's socket is still replaced; detecting liveness would
  // need a probe connect and the second daemon's bind is the operator's
  // call either way.)
  struct stat st;
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      return Status::InvalidArgument(
          "refusing to replace non-socket file at " + path);
    }
    ::unlink(path.c_str());
  }
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket(AF_UNIX)"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status::IoError(Errno("bind(unix " + path + ")"));
  }
  if (::listen(fd.get(), backlog) < 0) {
    return Status::IoError(Errno("listen(unix)"));
  }
  SW_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  return fd;
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port) {
  SW_ASSIGN_OR_RETURN(const sockaddr_in addr, TcpAddress(host, port));
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket(AF_INET)"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Status::IoError(Errno("connect(tcp " + host + ":" +
                                 std::to_string(port) + ")"));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

StatusOr<UniqueFd> ConnectUnix(const std::string& path) {
  SW_ASSIGN_OR_RETURN(const sockaddr_un addr, UnixAddress(path));
  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::IoError(Errno("socket(AF_UNIX)"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Status::IoError(Errno("connect(unix " + path + ")"));
  }
  return fd;
}

StatusOr<UniqueFd> CreateEpoll() {
  UniqueFd fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!fd.valid()) return Status::IoError(Errno("epoll_create1"));
  return fd;
}

StatusOr<std::pair<UniqueFd, UniqueFd>> MakeWakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) return Status::IoError(Errno("pipe"));
  UniqueFd read_end(fds[0]), write_end(fds[1]);
  SW_RETURN_IF_ERROR(SetNonBlocking(read_end.get()));
  SW_RETURN_IF_ERROR(SetNonBlocking(write_end.get()));
  return std::make_pair(std::move(read_end), std::move(write_end));
}

}  // namespace streamworks
