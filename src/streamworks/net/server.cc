#include "streamworks/net/server.h"

#include <unistd.h>

#include <algorithm>
#include <thread>
#include <utility>

#include "streamworks/common/logging.h"

namespace streamworks {

int ServerOptions::ResolvedIoLoops() const {
  if (io_loops > 0) return io_loops;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, std::min(4, static_cast<int>(hw)));
}

SocketServer::SocketServer(QueryService* service, Interner* interner,
                           ServerOptions options)
    : service_(service), interner_(interner), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.tcp_port < 0 && options_.unix_path.empty()) {
    return Status::InvalidArgument(
        "no listener configured (need tcp_port >= 0 and/or unix_path)");
  }
  if (options_.tcp_port >= 0) {
    SW_ASSIGN_OR_RETURN(tcp_listener_,
                        ListenTcp(options_.tcp_host, options_.tcp_port,
                                  options_.backlog));
    SW_ASSIGN_OR_RETURN(bound_tcp_port_, BoundTcpPort(tcp_listener_.get()));
  }
  if (!options_.unix_path.empty()) {
    SW_ASSIGN_OR_RETURN(unix_listener_,
                        ListenUnix(options_.unix_path, options_.backlog));
  }
  if (options_.http_port >= 0) {
    SW_ASSIGN_OR_RETURN(http_listener_,
                        ListenTcp(options_.http_host, options_.http_port,
                                  options_.backlog));
    SW_ASSIGN_OR_RETURN(bound_http_port_, BoundTcpPort(http_listener_.get()));
    HttpHandler::Providers providers;
    providers.registry = options_.registry;
    providers.pipeline = options_.pipeline;
    providers.stats = [this] { return service_->Snapshot(); };
    providers.queries = [this] { return service_->QueryInfos(); };
    providers.cluster = options_.cluster_provider;
    providers.epochs = options_.epochs_provider;
    providers.health = options_.health_provider;
    http_handler_ = std::make_unique<HttpHandler>(std::move(providers));
  }

  const int n_loops = options_.ResolvedIoLoops();
  loops_.reserve(static_cast<size_t>(n_loops));
  for (int i = 0; i < n_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        i, service_, interner_, &options_, &counters_, &control_mu_,
        http_handler_.get(), &stopping_));
  }

  // Fold this server's wire counters into the service snapshot, so STATS
  // and the streamworks_frontend_* / streamworks_io_loop_* metric
  // families show live activity. The probe reads atomics and leaf locks
  // only (never the control mutex), so it is safe from any thread —
  // including a loop thread already holding the control mutex inside
  // Snapshot(). Installed before the threads spawn and cleared in Stop
  // after they join.
  service_->set_frontend_probe([this] {
    const ServerStats s = stats();
    FrontendStatsSnapshot f;
    f.enabled = true;
    f.connections_accepted = s.connections_accepted;
    f.connections_refused = s.connections_refused;
    f.connections_closed = s.connections_closed;
    f.lines_executed = s.lines_executed;
    f.frames_executed = s.frames_executed;
    f.batch_edges_in = s.batch_edges_in;
    f.protocol_errors = s.protocol_errors;
    f.events_pushed = s.events_pushed;
    f.pump_flushes = s.pump_flushes;
    f.http_requests = s.http_requests;
    f.bytes_in = s.bytes_in;
    f.bytes_out = s.bytes_out;
    f.subscriptions_reclaimed = s.subscriptions_reclaimed;
    f.io_loops.reserve(loops_.size());
    for (const auto& loop : loops_) {
      IoLoopStatsSnapshot l;
      l.loop = loop->index();
      l.connections = loop->connection_count();
      l.pump_flushes = loop->pump_flushes();
      f.io_loops.push_back(l);
    }
    return f;
  });

  size_t started_loops = 0;
  Status status = OkStatus();
  for (auto& loop : loops_) {
    status = loop->Start();
    if (!status.ok()) break;
    ++started_loops;
  }
  if (status.ok()) {
    acceptor_ = std::make_unique<Acceptor>(
        tcp_listener_.valid() ? tcp_listener_.get() : -1,
        unix_listener_.valid() ? unix_listener_.get() : -1,
        http_listener_.valid() ? http_listener_.get() : -1, &options_,
        &counters_, &loops_);
    status = acceptor_->Start();
  }
  if (!status.ok()) {
    // Unwind the partial spawn so the failed Start leaves no threads.
    stopping_.store(true, std::memory_order_release);
    for (size_t i = 0; i < started_loops; ++i) {
      loops_[i]->Wake();
      loops_[i]->JoinIo();
      loops_[i]->StopPump();
    }
    loops_.clear();
    acceptor_.reset();
    service_->set_frontend_probe(nullptr);
    stopping_.store(false, std::memory_order_release);
    return status;
  }
  started_ = true;
  running_.store(true, std::memory_order_release);
  return OkStatus();
}

void SocketServer::Stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  // No new connections while everything else drains.
  acceptor_->Stop();
  // Phase 1: retire the IO loops. The pumps keep running — if a loop
  // thread is parked in a backend Flush waiting on a worker blocked in a
  // kBlock Push, its pump's draining (now unthrottled, see
  // PumpConnection) unwedges streamed queues, and CloseAllQueues
  // unblocks every producer regardless of streaming (shutdown discards
  // undelivered matches by definition), so the joins below always
  // return. SIGTERM must land no matter what tenants are doing.
  stopping_.store(true, std::memory_order_release);
  service_->CloseAllQueues();
  for (auto& loop : loops_) {
    loop->Wake();
    loop->NotifyPump();
  }
  for (auto& loop : loops_) loop->JoinIo();
  // Phase 2: now the pumps can go.
  for (auto& loop : loops_) loop->StopPump();
  running_.store(false, std::memory_order_release);

  // Every loop thread is gone: this thread owns the teardown. Flush and
  // tear down every surviving connection (closing its sessions and
  // compacting the service — unless a durable deployment asked Stop to
  // preserve them for its shutdown snapshot), then retire the listeners.
  for (auto& loop : loops_) {
    for (const auto& conn : loop->TakeConnections()) {
      loop->CloseConnection(conn, options_.preserve_sessions_on_stop);
    }
  }
  service_->set_frontend_probe(nullptr);
  tcp_listener_.reset();
  unix_listener_.reset();
  http_listener_.reset();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

ServerStats SocketServer::stats() const {
  const ServerCounters& c = counters_;
  ServerStats s;
  s.connections_accepted = c.connections_accepted.load();
  s.connections_refused = c.connections_refused.load();
  s.connections_closed = c.connections_closed.load();
  s.lines_executed = c.lines_executed.load();
  s.frames_executed = c.frames_executed.load();
  s.batch_edges_in = c.batch_edges_in.load();
  s.protocol_errors = c.protocol_errors.load();
  s.events_pushed = c.events_pushed.load();
  s.pump_flushes = c.pump_flushes.load();
  s.http_requests = c.http_requests.load();
  s.bytes_in = c.bytes_in.load();
  s.bytes_out = c.bytes_out.load();
  s.subscriptions_reclaimed = c.subscriptions_reclaimed.load();
  return s;
}

size_t SocketServer::active_connections() const {
  size_t n = 0;
  for (const auto& loop : loops_) n += loop->connection_count();
  return n;
}

}  // namespace streamworks
