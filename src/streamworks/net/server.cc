#include "streamworks/net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

constexpr std::string_view kTerminator = ".\n";

/// One framed error response (used for protocol-level refusals that never
/// reach the interpreter).
std::string ErrFrame(std::string_view message) {
  return "ERR " + std::string(message) + "\n" + std::string(kTerminator);
}

}  // namespace

SocketServer::SocketServer(QueryService* service, Interner* interner,
                           ServerOptions options)
    : service_(service), interner_(interner), options_(std::move(options)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.tcp_port < 0 && options_.unix_path.empty()) {
    return Status::InvalidArgument(
        "no listener configured (need tcp_port >= 0 and/or unix_path)");
  }
  SW_ASSIGN_OR_RETURN(auto pipe_ends, MakeWakePipe());
  wake_read_ = std::move(pipe_ends.first);
  wake_write_ = std::move(pipe_ends.second);
  if (options_.tcp_port >= 0) {
    SW_ASSIGN_OR_RETURN(tcp_listener_,
                        ListenTcp(options_.tcp_host, options_.tcp_port,
                                  options_.backlog));
    SW_ASSIGN_OR_RETURN(bound_tcp_port_, BoundTcpPort(tcp_listener_.get()));
  }
  if (!options_.unix_path.empty()) {
    SW_ASSIGN_OR_RETURN(unix_listener_,
                        ListenUnix(options_.unix_path, options_.backlog));
  }
  if (options_.http_port >= 0) {
    SW_ASSIGN_OR_RETURN(http_listener_,
                        ListenTcp(options_.http_host, options_.http_port,
                                  options_.backlog));
    SW_ASSIGN_OR_RETURN(bound_http_port_, BoundTcpPort(http_listener_.get()));
    HttpHandler::Providers providers;
    providers.registry = options_.registry;
    providers.pipeline = options_.pipeline;
    providers.stats = [this] { return service_->Snapshot(); };
    providers.queries = [this] { return service_->QueryInfos(); };
    http_handler_ = std::make_unique<HttpHandler>(std::move(providers));
  }
  // Fold this server's wire counters into the service snapshot, so STATS
  // and the streamworks_frontend_* metric families show live activity.
  // Installed before the threads spawn and cleared in Stop after they
  // join — both points where this thread is the control thread.
  service_->set_frontend_probe([this] {
    const ServerStats s = stats();
    FrontendStatsSnapshot f;
    f.enabled = true;
    f.connections_accepted = s.connections_accepted;
    f.connections_refused = s.connections_refused;
    f.connections_closed = s.connections_closed;
    f.lines_executed = s.lines_executed;
    f.frames_executed = s.frames_executed;
    f.batch_edges_in = s.batch_edges_in;
    f.protocol_errors = s.protocol_errors;
    f.events_pushed = s.events_pushed;
    f.pump_flushes = s.pump_flushes;
    f.http_requests = s.http_requests;
    f.bytes_in = s.bytes_in;
    f.bytes_out = s.bytes_out;
    f.subscriptions_reclaimed = s.subscriptions_reclaimed;
    return f;
  });
  started_ = true;
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  pump_thread_ = std::thread([this] { PumpLoop(); });
  return OkStatus();
}

void SocketServer::Stop() {
  if (!started_ || !running_.load(std::memory_order_acquire)) return;
  // Phase 1: retire the poll loop. The pump keeps running — if the poll
  // thread is parked in a backend Flush waiting on a worker blocked in a
  // kBlock Push, the pump's draining (now unthrottled, see
  // PumpConnection) unwedges streamed queues, and CloseAllQueues
  // unblocks every producer regardless of streaming (shutdown discards
  // undelivered matches by definition), so the join below always
  // returns. SIGTERM must land no matter what tenants are doing.
  stopping_.store(true, std::memory_order_release);
  service_->CloseAllQueues();
  WakePoll();
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    pump_cv_.notify_all();
  }
  poll_thread_.join();
  // Phase 2: now the pump can go.
  pump_stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    pump_cv_.notify_all();
  }
  pump_thread_.join();
  running_.store(false, std::memory_order_release);

  // Both threads are gone: this thread is now the control thread. Flush
  // and tear down every surviving connection (closing its sessions and
  // compacting the service — unless a durable deployment asked Stop to
  // preserve them for its shutdown snapshot), then retire the
  // listeners.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns = conns_;
  }
  for (const auto& conn : conns) {
    CloseConnection(conn, options_.preserve_sessions_on_stop);
  }
  service_->set_frontend_probe(nullptr);
  tcp_listener_.reset();
  unix_listener_.reset();
  http_listener_.reset();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

ServerStats SocketServer::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_refused = connections_refused_.load();
  s.connections_closed = connections_closed_.load();
  s.lines_executed = lines_executed_.load();
  s.frames_executed = frames_executed_.load();
  s.batch_edges_in = batch_edges_in_.load();
  s.protocol_errors = protocol_errors_.load();
  s.events_pushed = events_pushed_.load();
  s.pump_flushes = pump_flushes_.load();
  s.http_requests = http_requests_.load();
  s.bytes_in = bytes_in_.load();
  s.bytes_out = bytes_out_.load();
  s.subscriptions_reclaimed = subscriptions_reclaimed_.load();
  return s;
}

size_t SocketServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void SocketServer::WakePoll() {
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void SocketServer::PollLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Snapshot connections and build the poll set. Dead connections are
    // collected for teardown instead of being polled.
    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
    }
    std::vector<std::shared_ptr<Connection>> dead;
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.push_back({wake_read_.get(), POLLIN, 0});
    if (tcp_listener_.valid()) {
      fds.push_back({tcp_listener_.get(), POLLIN, 0});
    }
    if (unix_listener_.valid()) {
      fds.push_back({unix_listener_.get(), POLLIN, 0});
    }
    if (http_listener_.valid()) {
      fds.push_back({http_listener_.get(), POLLIN, 0});
    }
    const size_t first_conn = fds.size();
    for (const auto& conn : conns) {
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!conn->open || !conn->fd.valid()) {
        dead.push_back(conn);
        continue;
      }
      // Response-path backpressure: a connection sitting on more unsent
      // response bytes than the high-water mark stops being read from
      // (and so stops being executed for) until its reader drains it —
      // TCP flow control then pushes back on the sender.
      short events = 0;
      if (conn->wbuf.size() < options_.write_high_water) events |= POLLIN;
      if (!conn->wbuf.empty()) events |= POLLOUT;
      fds.push_back({conn->fd.get(), events, 0});
      polled.push_back(conn);
    }
    for (const auto& conn : dead) CloseConnection(conn);

    if (::poll(fds.data(), fds.size(), /*timeout=*/-1) < 0) {
      if (errno == EINTR) continue;
      SW_LOG(Error) << "poll: " << std::strerror(errno);
      break;
    }

    if (fds[0].revents & POLLIN) {  // drain the wake pipe
      char buf[64];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    size_t idx = 1;
    if (tcp_listener_.valid()) {
      if (fds[idx].revents & POLLIN) AcceptFrom(tcp_listener_.get());
      ++idx;
    }
    if (unix_listener_.valid()) {
      if (fds[idx].revents & POLLIN) AcceptFrom(unix_listener_.get());
      ++idx;
    }
    if (http_listener_.valid()) {
      if (fds[idx].revents & POLLIN) {
        AcceptFrom(http_listener_.get(), /*http=*/true);
      }
      ++idx;
    }
    SW_CHECK_EQ(idx, first_conn);

    for (size_t i = 0; i < polled.size(); ++i) {
      const auto& conn = polled[i];
      const short revents = fds[first_conn + i].revents;
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        if (conn->open && (revents & POLLOUT)) FlushWritesLocked(*conn);
        // POLLHUP alone is not fatal while reads still return data (the
        // peer may have half-closed after a final command); EOF on read
        // marks the connection dead when the input truly ends.
        if (revents & (POLLERR | POLLNVAL)) conn->open = false;
      }
      if (revents & POLLIN) {
        HandleReadable(conn);  // reads, then advances (and may close)
      } else {
        // A POLLOUT drain may have made room for lines parked behind a
        // full write buffer; the EOF/BYE finish rules also live here.
        AdvanceConnection(conn);
      }
    }
  }
}

void SocketServer::AcceptFrom(int listen_fd, bool http) {
  while (true) {
    const int raw = ::accept(listen_fd, nullptr, nullptr);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      SW_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    UniqueFd fd(raw);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.size() >= options_.max_connections) {
        const std::string refusal =
            http ? EncodeHttpResponse(
                       {503, "text/plain; charset=utf-8", "server full\n"})
                 : ErrFrame("server full");
        // MSG_NOSIGNAL: the refused peer may already be gone, and a raw
        // write would raise process-killing SIGPIPE.
        [[maybe_unused]] ssize_t n = ::send(fd.get(), refusal.data(),
                                            refusal.size(), MSG_NOSIGNAL);
        connections_refused_.fetch_add(1);
        continue;  // fd closes on scope exit
      }
    }
    if (!SetNonBlocking(fd.get()).ok()) continue;
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }

    auto conn = std::make_shared<Connection>(std::move(fd));
    if (http) {
      // HTTP connections have no interpreter session: one request, one
      // response, close. They still ride the same poll set and limits.
      conn->http = true;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conns_.push_back(conn);
      }
      connections_accepted_.fetch_add(1);
      continue;
    }
    conn->out = std::make_unique<std::ostringstream>();
    conn->interpreter = std::make_unique<CommandInterpreter>(
        service_, interner_, conn->out.get());
    if (options_.snapshot_hook) {
      conn->interpreter->set_snapshot_hook(options_.snapshot_hook);
    }
    if (options_.pipeline != nullptr) {
      conn->interpreter->set_pipeline_metrics(options_.pipeline);
    }
    std::weak_ptr<Connection> weak = conn;
    conn->interpreter->set_stream_hook(
        [this, weak](bool enable, std::string_view session,
                     std::string_view sub, int session_id,
                     int subscription_id) {
          auto locked = weak.lock();
          if (locked == nullptr) {
            return Status::FailedPrecondition("connection is gone");
          }
          return HandleStream(locked, enable, session, sub, session_id,
                              subscription_id);
        });
    // kBlock over a socket is only sound with the connection as its live
    // consumer: un-streamed, the queue's sole drainer would be the very
    // poll thread its producer blocks (three protocol lines could wedge
    // every tenant). Auto-upgrade such subscriptions to push streaming —
    // on SUBMIT, and equally on ATTACH (a recovered kBlock subscription
    // comes back paused, and its RESUME must already find the pump
    // draining, or crash recovery would reintroduce the same wedge).
    const auto auto_stream_block = [this, weak](std::string_view session,
                                                std::string_view sub,
                                                int session_id,
                                                int subscription_id) {
      auto locked = weak.lock();
      if (locked == nullptr) return;
      std::shared_ptr<ResultQueue> handle =
          service_->queue_handle(session_id, subscription_id);
      if (handle == nullptr ||
          handle->policy() != OverflowPolicy::kBlock) {
        return;
      }
      HandleStream(locked, /*enable=*/true, session, sub, session_id,
                   subscription_id)
          .ok();
    };
    conn->interpreter->set_submit_hook(
        [auto_stream_block](std::string_view session, std::string_view sub,
                            int session_id, int subscription_id,
                            const SubmitOptions&) {
          auto_stream_block(session, sub, session_id, subscription_id);
        });
    conn->interpreter->set_attach_hook(auto_stream_block);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    connections_accepted_.fetch_add(1);
  }
}

void SocketServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  // Reads and line assembly are poll-thread-only; io_mu is taken just for
  // buffer appends inside ExecuteLine and for the EOF/open flips.
  // 64KB per read: a pipelined burst (text lines or FEEDB frames) should
  // cost one syscall per tens of KB, not one per 4KB.
  char buf[65536];
  while (true) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!conn->open) return;
      fd = conn->fd.get();
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      bytes_in_.fetch_add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // n == 0 (orderly EOF) or a hard error: the peer is done sending.
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->read_eof = true;
    break;
  }
  AdvanceConnection(conn);
}

void SocketServer::AdvanceConnection(
    const std::shared_ptr<Connection>& conn) {
  if (conn->http) {
    AdvanceHttp(conn);
    return;
  }
  // Consume complete protocol units — text lines and binary FEEDB frames,
  // demultiplexed on the frame-magic lead byte (0xFB can never begin an
  // ASCII command) — via an offset, compacting once per pass: a pipelined
  // burst of thousands of units must not pay a front-erase memmove each.
  // The response path's backpressure valve sits here: once unsent
  // responses pass the high-water mark, stop executing (and, via
  // PollLoop's event mask, stop reading) until the client drains.
  size_t consumed = 0;
  conn->input_parked = false;
  while (consumed < conn->rbuf.size()) {
    {
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!conn->open || conn->closing) break;
      if (conn->wbuf.size() >= options_.write_high_water) {
        conn->input_parked = true;  // complete units may be waiting
        break;
      }
    }
    // Discard the remainder of a refused oversized frame; the length
    // prefix tells us exactly how much, so the stream stays in sync.
    if (conn->skip_bytes > 0) {
      const size_t n =
          std::min(conn->skip_bytes, conn->rbuf.size() - consumed);
      consumed += n;
      conn->skip_bytes -= n;
      continue;
    }
    const std::string_view rest(conn->rbuf.data() + consumed,
                                conn->rbuf.size() - consumed);
    if (IsFrameStart(rest)) {
      PipelineMetrics* const pipeline = options_.pipeline;
      const uint64_t decode_t0 =
          pipeline != nullptr ? PipelineMetrics::NowMicros() : 0;
      FrameDecodeResult decoded = DecodeFeedFrame(
          rest, options_.max_frame_body_bytes, interner_);
      if (decoded.status == FrameDecodeStatus::kNeedMore) break;
      if (decoded.status == FrameDecodeStatus::kOk) {
        if (pipeline != nullptr) {
          pipeline->Record(PipelineStage::kFrameDecode,
                           PipelineMetrics::NowMicros() - decode_t0, -1, -1,
                           /*detail=*/decoded.batch.size());
        }
        consumed += decoded.frame_bytes;
        ExecuteFrame(conn, decoded.batch);
        continue;
      }
      // Oversized or malformed: refuse with ERR. With a decodable length
      // prefix the frame's bytes are skipped and the connection
      // survives; a corrupt magic leaves no way back into sync.
      protocol_errors_.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        conn->wbuf += ErrFrame(decoded.error);
      }
      if (decoded.frame_bytes == 0) {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        FlushWritesLocked(*conn);
        conn->open = false;
        break;
      }
      const size_t available = std::min(decoded.frame_bytes, rest.size());
      consumed += available;
      conn->skip_bytes = decoded.frame_bytes - available;
      continue;
    }
    const size_t pos = conn->rbuf.find('\n', consumed);
    if (pos == std::string::npos) break;
    std::string line = conn->rbuf.substr(consumed, pos - consumed);
    consumed = pos + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ExecuteLine(conn, line);
  }
  conn->rbuf.erase(0, consumed);
  if (conn->rbuf.size() > options_.max_line_bytes &&
      conn->skip_bytes == 0 &&      // pending discard is not a line
      !IsFrameStart(conn->rbuf) &&  // a buffering frame is length-framed
      conn->rbuf.find('\n') == std::string::npos) {
    protocol_errors_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->wbuf += ErrFrame("line exceeds " +
                           std::to_string(options_.max_line_bytes) +
                           " bytes");
    FlushWritesLocked(*conn);
    conn->open = false;
  }
  bool failed;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (conn->open) FlushWritesLocked(*conn);
    // A BYE whose response already drained has nothing left to wait for.
    if (conn->closing && conn->wbuf.empty()) conn->open = false;
    if (conn->read_eof && conn->open && !conn->closing &&
        !conn->input_parked) {
      // The peer finished sending and nothing executable was parked, so
      // whatever remains buffered can never complete. A partial FEEDB
      // frame at EOF is a protocol error worth reporting before the
      // close; a partial (or absent) text line keeps the silent
      // half-close contract (printf | nc). Responses the socket wouldn't
      // take yet are flushed by POLLOUT before the orderly close; only
      // an empty write buffer closes immediately.
      if (conn->skip_bytes > 0 || IsFrameStart(conn->rbuf)) {
        protocol_errors_.fetch_add(1);
        conn->wbuf += ErrFrame("truncated binary frame at EOF");
        FlushWritesLocked(*conn);
      }
      if (conn->wbuf.empty()) {
        conn->open = false;
      } else {
        conn->closing = true;
      }
    }
    failed = !conn->open;
  }
  if (failed) CloseConnection(conn);
}

void SocketServer::AdvanceHttp(const std::shared_ptr<Connection>& conn) {
  // rbuf is poll-thread-only, exactly like the line protocol's. At most
  // one request is answered per connection (Connection: close), so a
  // pipelined second request is simply never parsed.
  HttpResponse response;
  bool respond = false;
  if (!conn->closing) {
    HttpRequest request;
    size_t consumed = 0;
    switch (ParseHttpRequest(conn->rbuf, &request, &consumed)) {
      case HttpParseResult::kComplete:
        conn->rbuf.erase(0, consumed);
        // The handler's providers make control-plane calls (Snapshot,
        // QueryInfos); this is the poll thread and io_mu is not held, so
        // that is exactly the contract they need.
        response = http_handler_ != nullptr
                       ? http_handler_->Handle(request)
                       : HttpResponse{503, "text/plain; charset=utf-8",
                                      "no handler\n"};
        http_requests_.fetch_add(1);
        respond = true;
        break;
      case HttpParseResult::kNeedMore:
        if (conn->rbuf.size() > options_.max_line_bytes) {
          protocol_errors_.fetch_add(1);
          response = HttpResponse{400, "text/plain; charset=utf-8",
                                  "request head too large\n"};
          respond = true;
        }
        break;
      case HttpParseResult::kBad:
        protocol_errors_.fetch_add(1);
        response = HttpResponse{400, "text/plain; charset=utf-8",
                                "malformed request\n"};
        respond = true;
        break;
    }
  }
  bool failed;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (respond && conn->open) {
      conn->wbuf += EncodeHttpResponse(response);
      conn->closing = true;  // reuses the BYE drain-then-close machinery
    }
    if (conn->open) FlushWritesLocked(*conn);
    if (conn->closing && conn->wbuf.empty()) conn->open = false;
    // EOF before a complete request head: nothing to answer.
    if (conn->read_eof && conn->open && !conn->closing) conn->open = false;
    failed = !conn->open;
  }
  if (failed) CloseConnection(conn);
}

void SocketServer::ExecuteLine(const std::shared_ptr<Connection>& conn,
                               std::string_view line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped == "BYE") {
    lines_executed_.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->wbuf += "OK bye\n";
    conn->wbuf += kTerminator;
    conn->closing = true;
    FlushWritesLocked(*conn);
    return;
  }

  // The interpreter (and through it every QueryService control-plane call)
  // runs without io_mu held: FLUSH / kBlock deliveries may park this
  // thread, and the pump must still be able to drain this connection.
  conn->out->str("");
  const Status status = conn->interpreter->ExecuteLine(line);
  lines_executed_.fetch_add(1);
  std::string payload = conn->out->str();

  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return;
  conn->wbuf += payload;
  if (!status.ok()) {
    // Unlike a scripted fixture, a network session survives its typos:
    // report and keep the connection (and its subscriptions) alive.
    protocol_errors_.fetch_add(1);
    conn->wbuf += "ERR " + status.ToString() + "\n";
  }
  conn->wbuf += kTerminator;
  FlushWritesLocked(*conn);
}

void SocketServer::ExecuteFrame(const std::shared_ptr<Connection>& conn,
                                const EdgeBatch& batch) {
  // Like ExecuteLine, the interpreter (and the backend FeedBatch under
  // it) runs without io_mu held — a kBlock delivery inside the batch may
  // park this thread, and the pump must still drain this connection.
  conn->out->str("");
  const Status status = conn->interpreter->ExecuteBatch(batch);
  frames_executed_.fetch_add(1);
  batch_edges_in_.fetch_add(batch.size());
  std::string payload = conn->out->str();

  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return;
  conn->wbuf += payload;
  if (!status.ok()) {
    protocol_errors_.fetch_add(1);
    conn->wbuf += "ERR " + status.ToString() + "\n";
  }
  conn->wbuf += kTerminator;
  FlushWritesLocked(*conn);
}

Status SocketServer::HandleStream(const std::shared_ptr<Connection>& conn,
                                  bool enable, std::string_view session,
                                  std::string_view sub, int session_id,
                                  int subscription_id) {
  const std::string label =
      std::string(session) + "." + std::string(sub);
  if (!enable) {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    for (size_t i = 0; i < conn->streams.size(); ++i) {
      if (conn->streams[i].label != label) continue;
      if (std::shared_ptr<ResultQueue> queue =
              conn->streams[i].queue.lock();
          queue != nullptr &&
          queue->policy() == OverflowPolicy::kBlock && !queue->closed()) {
        return Status::FailedPrecondition(
            "a block-policy subscription must stay streamed on the "
            "socket frontend (its producer would wedge the shared "
            "control thread with no consumer); DETACH it instead");
      }
      conn->streams.erase(conn->streams.begin() + i);
      active_streams_.fetch_sub(1);
      return OkStatus();
    }
    return Status::NotFound("not streaming: " + label);
  }
  std::shared_ptr<ResultQueue> handle =
      service_->queue_handle(session_id, subscription_id);
  if (handle == nullptr) {
    return Status::NotFound("subscription has no queue: " + label);
  }
  std::lock_guard<std::mutex> lock(conn->io_mu);
  for (Connection::Stream& s : conn->streams) {
    if (s.label == label) {
      // Same name, possibly a new subscription (DETACH + re-SUBMIT frees
      // the name): point the stream at the current queue rather than
      // leaving a stale handle the pump is about to END.
      s.queue = handle;
      return OkStatus();
    }
  }
  conn->streams.push_back(Connection::Stream{label, handle});
  active_streams_.fetch_add(1);
  {
    std::lock_guard<std::mutex> pump_lock(pump_mu_);
    pump_cv_.notify_all();
  }
  return OkStatus();
}

bool SocketServer::PumpConnection(const std::shared_ptr<Connection>& conn) {
  PipelineMetrics* const pipeline = options_.pipeline;
  const uint64_t flush_t0 =
      pipeline != nullptr ? PipelineMetrics::NowMicros() : 0;
  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return false;
  std::vector<CompleteMatch> drained;
  bool pushed_any = false;
  for (size_t i = 0; i < conn->streams.size();) {
    Connection::Stream& stream = conn->streams[i];
    bool ended = false;
    // Write-buffer high-water is the backpressure valve: above it we stop
    // draining, the ResultQueue fills, and its own overflow policy (block
    // the producer / drop oldest / drop newest) takes over upstream.
    // During shutdown the valve opens fully — a kBlock producer must be
    // freed even if its slow reader never collects the bytes.
    const size_t high_water = stopping_.load(std::memory_order_acquire)
                                  ? std::numeric_limits<size_t>::max()
                                  : options_.write_high_water;
    while (conn->wbuf.size() < high_water) {
      std::shared_ptr<ResultQueue> queue = stream.queue.lock();
      if (queue == nullptr) {  // reclaimed under us
        ended = true;
        break;
      }
      // Coalesced drain: one queue-lock round-trip pops a whole chunk,
      // which is then formatted into wbuf and flushed below in a single
      // write — not one lock and one send per EVENT line.
      drained.clear();
      const size_t n = queue->DrainUpTo(&drained, options_.pump_drain_chunk);
      if (n > 0) {
        for (const CompleteMatch& cm : drained) {
          conn->wbuf += "EVENT MATCH ";
          conn->wbuf += stream.label;
          conn->wbuf += " completed_at=";
          conn->wbuf += std::to_string(cm.completed_at);
          conn->wbuf += ' ';
          conn->wbuf += cm.match.ToString();
          conn->wbuf += '\n';
        }
        events_pushed_.fetch_add(n);
        pushed_any = true;
        continue;
      }
      if (queue->closed() && queue->size() == 0) ended = true;
      break;
    }
    if (ended) {
      conn->wbuf += "EVENT END " + stream.label + "\n";
      conn->streams.erase(conn->streams.begin() + i);
      active_streams_.fetch_sub(1);
    } else {
      ++i;
    }
  }
  if (pushed_any) {
    pump_flushes_.fetch_add(1);
    // Only drain passes that moved matches count as a flush; idle ticks
    // would drown the histogram in zeros.
    if (pipeline != nullptr) {
      pipeline->Record(PipelineStage::kDeliveryFlush,
                       PipelineMetrics::NowMicros() - flush_t0);
    }
  }
  if (!FlushWritesLocked(*conn)) return false;
  return conn->open;
}

bool SocketServer::FlushWritesLocked(Connection& conn) {
  // Send from an offset and erase the consumed prefix once: one memmove
  // per flush, not one per partial send.
  size_t sent = 0;
  bool fatal = false;
  while (sent < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.wbuf.data() + sent,
                             conn.wbuf.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_.fetch_add(static_cast<uint64_t>(n));
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    fatal = true;  // EPIPE / ECONNRESET / anything else
    break;
  }
  conn.wbuf.erase(0, sent);
  if (fatal) {
    conn.open = false;
    return false;
  }
  if (conn.wbuf.empty() && conn.closing) {  // BYE fully flushed
    conn.open = false;
    return false;
  }
  return true;
}

void SocketServer::CloseConnection(const std::shared_ptr<Connection>& conn,
                                   bool preserve_sessions) {
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (!conn->fd.valid()) return;  // already torn down
    FlushWritesLocked(*conn);       // best effort (BYE responses etc.)
    conn->open = false;
    active_streams_.fetch_sub(static_cast<int>(conn->streams.size()));
    conn->streams.clear();
    conn->fd.reset();
  }
  // Control-plane reclamation: a vanished tenant's sessions close, their
  // subscriptions detach (unblocking any kBlock producer), and the
  // service's tables compact. Closed-session scope only: one tenant's
  // disconnect must never change what another tenant's open session
  // observes (a drained POLL stays "n=0"). A durable server's *shutdown*
  // teardown is the exception (preserve_sessions): those tenants didn't
  // leave, the process is — their sessions must survive into the final
  // snapshot so they can re-ATTACH after the restart, exactly as they
  // would after a kill -9.
  if (!preserve_sessions && conn->interpreter != nullptr) {
    for (const auto& [name, session_id] : conn->interpreter->sessions()) {
      service_->CloseSession(session_id).ok();
    }
    subscriptions_reclaimed_.fetch_add(
        service_->ReclaimDetached(/*drained_in_open_sessions=*/false));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i] == conn) {
        conns_.erase(conns_.begin() + i);
        break;
      }
    }
  }
  connections_closed_.fetch_add(1);
}

void SocketServer::PumpLoop() {
  std::unique_lock<std::mutex> lock(pump_mu_);
  while (!pump_stop_.load(std::memory_order_acquire)) {
    if (active_streams_.load(std::memory_order_acquire) == 0 &&
        !stopping_.load(std::memory_order_acquire)) {
      // Nothing to drain: park until STREAM registration or Stop (the
      // poll loop owns plain response writes on its own).
      pump_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               pump_stop_.load(std::memory_order_acquire) ||
               active_streams_.load(std::memory_order_acquire) > 0;
      });
    } else {
      pump_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.pump_interval_ms));
    }
    if (pump_stop_.load(std::memory_order_acquire)) break;
    lock.unlock();

    std::vector<std::shared_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      conns = conns_;
    }
    bool wake = false;
    for (const auto& conn : conns) {
      if (!PumpConnection(conn)) {
        wake = true;  // dead connection: the poll loop owns teardown
        continue;
      }
      std::lock_guard<std::mutex> io_lock(conn->io_mu);
      // Bytes the socket would not take need the poll loop's POLLOUT.
      if (!conn->wbuf.empty()) wake = true;
    }
    if (wake) WakePoll();

    lock.lock();
  }
}

}  // namespace streamworks
