#ifndef STREAMWORKS_NET_SOCKET_H_
#define STREAMWORKS_NET_SOCKET_H_

#include <string>
#include <string_view>
#include <utility>

#include "streamworks/common/statusor.h"
#include "streamworks/common/unique_fd.h"

namespace streamworks {

/// Marks `fd` O_NONBLOCK (the poll loop must never be parked in read/write;
/// blocking is the ResultQueue's job, not the socket's).
Status SetNonBlocking(int fd);

/// Listening TCP socket bound to `host:port` (SO_REUSEADDR, IPv4 dotted
/// quad or "0.0.0.0"). `port` 0 picks an ephemeral port — read it back
/// with BoundTcpPort.
StatusOr<UniqueFd> ListenTcp(const std::string& host, int port, int backlog);

/// The port a listening TCP socket actually bound (resolves port 0).
StatusOr<int> BoundTcpPort(int fd);

/// Listening unix-domain socket at `path`. A stale socket file from a
/// previous run is unlinked first; the caller owns unlinking on shutdown.
StatusOr<UniqueFd> ListenUnix(const std::string& path, int backlog);

/// Blocking client connects (the LineClient side).
StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port);
StatusOr<UniqueFd> ConnectUnix(const std::string& path);

/// Self-pipe (read end, write end), both ends nonblocking — how Stop()
/// and the stream pump wake a poll loop parked in poll(2).
StatusOr<std::pair<UniqueFd, UniqueFd>> MakeWakePipe();

/// epoll(7) instance (EPOLL_CLOEXEC) — one per IO loop.
StatusOr<UniqueFd> CreateEpoll();

}  // namespace streamworks

#endif  // STREAMWORKS_NET_SOCKET_H_
