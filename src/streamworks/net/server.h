#ifndef STREAMWORKS_NET_SERVER_H_
#define STREAMWORKS_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "streamworks/net/socket.h"
#include "streamworks/obs/http_endpoint.h"
#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/query_service.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

/// Knobs of a SocketServer. At least one of tcp_port / unix_path must be
/// enabled.
struct ServerOptions {
  /// TCP listener port; -1 disables, 0 binds an ephemeral port (read the
  /// real one back from SocketServer::tcp_port after Start).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Unix-domain listener path; empty disables. The server unlinks the
  /// path on shutdown.
  std::string unix_path;
  int backlog = 16;
  /// Accepts beyond this are refused with "ERR server full".
  size_t max_connections = 64;
  /// Per-connection write-buffer high-water mark: above it the stream pump
  /// stops draining that connection's subscriptions, so backpressure falls
  /// through to each ResultQueue's own overflow policy (block / drop).
  size_t write_high_water = 256 * 1024;
  /// A read buffer growing past this without a newline is a protocol
  /// violation; the connection is told ERR and closed.
  size_t max_line_bytes = 64 * 1024;
  /// Largest accepted FEEDB frame body. An oversized frame is refused
  /// with ERR and its declared bytes are skipped, so the stream stays in
  /// sync and the connection survives.
  size_t max_frame_body_bytes = kDefaultMaxFrameBodyBytes;
  /// Matches the stream pump pops per queue-lock acquisition while
  /// coalescing a drain pass (one lock + one write per chunk, not per
  /// match).
  size_t pump_drain_chunk = 256;
  /// Stream-pump drain cadence while any subscription is streaming.
  int pump_interval_ms = 2;
  /// When > 0, SO_SNDBUF for accepted connections. Tests shrink it so a
  /// slow reader hits the write high-water (and thus the queue's overflow
  /// policy) after kilobytes instead of the kernel-default hundreds of KB.
  int so_sndbuf = 0;
  /// Installed on every connection's interpreter as the SNAPSHOT verb's
  /// target (the durability layer's SnapshotNow). Runs on the poll
  /// thread — the control thread — like every other interpreter call.
  /// Unset = SNAPSHOT answers ERR (no durability layer).
  CommandInterpreter::SnapshotHook snapshot_hook;
  /// Observability HTTP listener port; -1 disables, 0 binds an ephemeral
  /// port (read back from SocketServer::http_port after Start). Requests
  /// are parsed and answered on the poll thread — the control thread —
  /// which is what lets /stats.json and friends call
  /// QueryService::Snapshot()/QueryInfos() safely; a standalone HTTP
  /// thread could not.
  int http_port = -1;
  std::string http_host = "127.0.0.1";
  /// Served as GET /metrics when set; the server also installs itself as
  /// the service's frontend probe either way, so its counters reach STATS
  /// and the streamworks_frontend_* families. Must outlive the server.
  MetricRegistry* registry = nullptr;
  /// The deployment's shared stage instrumentation: the server records
  /// kFrameDecode around FEEDB decoding and kDeliveryFlush around stream-
  /// pump drain passes, and serves /trace.json from it. Must outlive the
  /// server. Null = no stage timing, trace endpoint answers 503.
  PipelineMetrics* pipeline = nullptr;
  /// Durable deployments set this so Stop()'s connection teardown leaves
  /// still-connected tenants' sessions OPEN: the shutdown snapshot taken
  /// after Stop must capture them (a graceful restart preserves exactly
  /// what a kill -9 would have), where a live tenant's own disconnect
  /// still closes its sessions as always. Leave false without a
  /// durability layer — preserved sessions would just leak.
  bool preserve_sessions_on_stop = false;
};

/// Monotonic counters of one server's lifetime (all reads are safe from
/// any thread).
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;
  uint64_t connections_closed = 0;
  uint64_t lines_executed = 0;
  uint64_t frames_executed = 0;  ///< Binary FEEDB frames executed.
  uint64_t batch_edges_in = 0;   ///< Edges carried by those frames.
  uint64_t protocol_errors = 0;
  uint64_t events_pushed = 0;  ///< EVENT lines queued to sockets.
  uint64_t pump_flushes = 0;   ///< Coalesced drain-pass writes by the pump.
  uint64_t http_requests = 0;  ///< Observability HTTP requests answered.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t subscriptions_reclaimed = 0;  ///< Subscriptions reclaimed on close.
};

/// Network frontend for one QueryService: accepts TCP and unix-domain
/// connections and runs one CommandInterpreter session per connection, so
/// every tenant speaks the same line protocol scripts and fixtures use —
/// the server stays ignorant of whether the backend is a single engine, a
/// broadcast group, or a vertex-partitioned group (the QueryBackend seam).
///
/// Wire protocol, over the interpreter grammar (see interpreter.h):
///   * client sends one command per '\n'-terminated line;
///   * a binary FEEDB frame (lead byte 0xFB; layout in
///     stream/wire_format.h) may appear anywhere a command line could:
///     it carries a whole EdgeBatch onto the backend's batched fast path
///     and is answered with one "OK feedb <accepted> <rejected>" + "."
///     — per-frame cost where text FEED pays per edge. An oversized
///     frame is refused with ERR and skipped by its declared length (no
///     desync, no disconnect); a frame whose magic is corrupt
///     desynchronizes the stream and closes the connection;
///   * the server replies with the command's output lines followed by a
///     lone "." terminator line;
///   * a malformed command replies "ERR <status>" + "." and the connection
///     stays usable (a network tenant's typo must not tear the session
///     down the way a scripted fixture's should);
///   * STREAM <session> <sub> upgrades POLL to push: matches are written
///     as "EVENT MATCH <session>.<sub> ..." lines as they arrive, which
///     may interleave between responses (clients demux on the EVENT
///     prefix); "EVENT END <session>.<sub>" marks a streamed subscription
///     whose queue closed (detach / reclaim) after its last match;
///   * BYE replies "OK bye" + "." and half-closes: the server flushes and
///     disconnects.
///
/// Threading: a poll loop owns accept/read/execute/write — every
/// interpreter (and thus QueryService control-plane) call happens on that
/// one thread, satisfying the service's one-control-thread contract. A
/// second stream-pump thread drains streamed ResultQueues into per-
/// connection write buffers and opportunistically writes them out; because
/// it never touches the control plane it keeps draining even while the
/// poll thread is parked inside a backend Flush or a kBlock Push, which is
/// what turns the block policy into end-to-end throttling instead of a
/// deadlock. For that to hold, every kBlock queue needs the pump as its
/// consumer: the server auto-upgrades block-policy submissions to
/// streaming and refuses to UNSTREAM them (a POLL-only kBlock queue's
/// sole drainer would be the very thread its producer blocks). A slow
/// kBlock tenant can still stall FLUSH/STATS for everyone until it reads
/// — block means block — but reading always unwedges, and Stop() always
/// completes (it force-closes every queue up front). Both threads
/// serialize per-connection IO state on Connection::io_mu.
///
/// Disconnect (client close, error, or Stop) closes every session the
/// connection opened through QueryService::CloseSession and then compacts
/// the service's subscription table via ReclaimDetached — a vanished
/// tenant's DeliveryState does not outlive its socket.
class SocketServer {
 public:
  /// `service` and `interner` must outlive the server. The interner is
  /// shared with the backend (FEED interns labels).
  SocketServer(QueryService* service, Interner* interner,
               ServerOptions options);

  /// Stops if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the listeners and spawns the poll + pump threads. One-shot.
  Status Start();

  /// Graceful shutdown: flushes what it can, closes every connection
  /// (running the disconnect reclamation for each), closes listeners,
  /// unlinks the unix socket path, joins both threads. Idempotent.
  void Stop();

  /// The TCP port actually bound (resolves tcp_port=0), -1 when disabled.
  int tcp_port() const { return bound_tcp_port_; }
  /// The HTTP port actually bound (resolves http_port=0), -1 when
  /// disabled.
  int http_port() const { return bound_http_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ServerStats stats() const;

  /// Live connection count (for tests and ops).
  size_t active_connections() const;

 private:
  /// One client connection. IO state (fd validity via `open`, read/write
  /// buffers, streams) is guarded by io_mu and shared between the poll
  /// loop and the stream pump; the interpreter is poll-loop-only.
  struct Connection {
    explicit Connection(UniqueFd fd_in) : fd(std::move(fd_in)) {}

    UniqueFd fd;
    std::mutex io_mu;
    /// Accepted on the HTTP listener: the connection speaks HTTP instead
    /// of the line protocol (one request, one response, close) and has no
    /// interpreter.
    bool http = false;
    bool open = true;      ///< False once the fd is being torn down.
    bool closing = false;  ///< BYE/half-close: disconnect once wbuf drains.
    bool read_eof = false; ///< Peer finished sending (half-close or gone).
    std::string rbuf;
    std::string wbuf;
    /// Remaining bytes of a refused (oversized) FEEDB frame still to be
    /// discarded — the length prefix makes resync exact, so the
    /// connection survives the refusal. Poll-thread-only, like rbuf.
    size_t skip_bytes = 0;
    /// Set when AdvanceConnection parked complete-but-unexecuted input
    /// behind the write high-water; an EOF must not close such a
    /// connection (the parked work resumes after POLLOUT drains).
    bool input_parked = false;
    /// Subscriptions upgraded to push streaming. The weak_ptr expires when
    /// the service reclaims the subscription (the pump then emits END).
    struct Stream {
      std::string label;  ///< "<session>.<sub>" as the client named it.
      std::weak_ptr<ResultQueue> queue;
    };
    std::vector<Stream> streams;

    /// Poll-loop-only (interpreter calls are control-plane calls).
    std::unique_ptr<std::ostringstream> out;
    std::unique_ptr<CommandInterpreter> interpreter;
  };

  void PollLoop();
  void PumpLoop();

  void AcceptFrom(int listen_fd, bool http = false);
  /// Reads what's available into rbuf (noting EOF), then advances.
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  /// Executes buffered lines while the write buffer is below high-water
  /// (the response path's backpressure: a reader that won't take its
  /// responses stops being read from), flushes, applies the BYE/EOF
  /// close-once-drained rules, and tears the connection down if it died.
  /// Poll-thread-only; re-entered after POLLOUT drains to resume lines
  /// parked behind a full write buffer.
  void AdvanceConnection(const std::shared_ptr<Connection>& conn);
  /// The HTTP sibling of AdvanceConnection: parses one request head from
  /// rbuf, answers it through the handler (whose providers make
  /// control-plane calls — poll-thread-only, io_mu not held), and marks
  /// the connection closing. Runs on the poll thread.
  void AdvanceHttp(const std::shared_ptr<Connection>& conn);
  /// Executes one protocol line on the poll thread and appends the framed
  /// response to wbuf.
  void ExecuteLine(const std::shared_ptr<Connection>& conn,
                   std::string_view line);
  /// Executes one decoded FEEDB batch on the poll thread (the binary
  /// sibling of ExecuteLine; one framed "OK feedb ..." response per
  /// frame).
  void ExecuteFrame(const std::shared_ptr<Connection>& conn,
                    const EdgeBatch& batch);
  /// STREAM/UNSTREAM hook target (runs on the poll thread, from inside
  /// the connection's interpreter).
  Status HandleStream(const std::shared_ptr<Connection>& conn, bool enable,
                      std::string_view session, std::string_view sub,
                      int session_id, int subscription_id);

  /// Drains streamed queues into wbuf (respecting write_high_water) and
  /// writes wbuf to the socket. Callable from either thread; io_mu must
  /// NOT be held. Returns false when the connection died mid-write.
  bool PumpConnection(const std::shared_ptr<Connection>& conn);

  /// Nonblocking write of wbuf; io_mu must be held. False on fatal error.
  bool FlushWritesLocked(Connection& conn);

  /// Tears the connection down: closes the fd and — unless
  /// `preserve_sessions` (Stop's shutdown path on a durable server) —
  /// closes every session its interpreter opened and reclaims detached
  /// subscriptions.
  void CloseConnection(const std::shared_ptr<Connection>& conn,
                       bool preserve_sessions = false);

  void WakePoll();

  QueryService* service_;
  Interner* interner_;
  ServerOptions options_;

  UniqueFd tcp_listener_;
  UniqueFd unix_listener_;
  UniqueFd http_listener_;
  int bound_tcp_port_ = -1;
  int bound_http_port_ = -1;
  std::unique_ptr<HttpHandler> http_handler_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;

  std::thread poll_thread_;
  std::thread pump_thread_;
  std::atomic<bool> running_{false};
  /// Two-phase shutdown: stopping_ retires the poll loop while the pump
  /// keeps draining (a poll thread parked in a backend Flush behind a
  /// kBlock queue needs the pump to free it); pump_stop_ retires the pump
  /// only after the poll thread joined.
  std::atomic<bool> stopping_{false};
  std::atomic<bool> pump_stop_{false};
  bool started_ = false;

  /// Guards conns_ (the list itself; per-connection state is io_mu's).
  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;

  /// Pump parking: woken by Stop and by STREAM registration. While no
  /// subscription is streaming (active_streams_ == 0) the pump sleeps
  /// indefinitely instead of ticking, so an idle daemon costs nothing.
  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  std::atomic<int> active_streams_{0};

  // Stats (atomics: bumped from both threads, read from any).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_refused_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> lines_executed_{0};
  std::atomic<uint64_t> frames_executed_{0};
  std::atomic<uint64_t> batch_edges_in_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> events_pushed_{0};
  std::atomic<uint64_t> pump_flushes_{0};
  std::atomic<uint64_t> http_requests_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> subscriptions_reclaimed_{0};
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_SERVER_H_
