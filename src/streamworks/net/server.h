#ifndef STREAMWORKS_NET_SERVER_H_
#define STREAMWORKS_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "streamworks/net/acceptor.h"
#include "streamworks/net/event_loop.h"
#include "streamworks/net/server_options.h"
#include "streamworks/net/socket.h"
#include "streamworks/obs/http_endpoint.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// Network frontend for one QueryService: accepts TCP and unix-domain
/// connections and runs one CommandInterpreter session per connection, so
/// every tenant speaks the same line protocol scripts and fixtures use —
/// the server stays ignorant of whether the backend is a single engine, a
/// broadcast group, or a vertex-partitioned group (the QueryBackend seam).
///
/// Wire protocol, over the interpreter grammar (see interpreter.h):
///   * client sends one command per '\n'-terminated line;
///   * a binary FEEDB frame (lead byte 0xFB; layout in
///     stream/wire_format.h) may appear anywhere a command line could:
///     it carries a whole EdgeBatch onto the backend's batched fast path
///     and is answered with one "OK feedb <accepted> <rejected>" + "."
///     — per-frame cost where text FEED pays per edge. An oversized
///     frame is refused with ERR and skipped by its declared length (no
///     desync, no disconnect); a frame whose magic is corrupt
///     desynchronizes the stream and closes the connection;
///   * the server replies with the command's output lines followed by a
///     lone "." terminator line;
///   * a malformed command replies "ERR <status>" + "." and the connection
///     stays usable (a network tenant's typo must not tear the session
///     down the way a scripted fixture's should);
///   * STREAM <session> <sub> upgrades POLL to push: matches are written
///     as "EVENT MATCH <session>.<sub> ..." lines as they arrive, which
///     may interleave between responses (clients demux on the EVENT
///     prefix); "EVENT END <session>.<sub>" marks a streamed subscription
///     whose queue closed (detach / reclaim) after its last match;
///   * BYE replies "OK bye" + "." and half-closes: the server flushes and
///     disconnects.
///
/// Threading: one acceptor thread polls the listeners and deals accepted
/// fds round-robin across N epoll IO loops (ServerOptions::io_loops; see
/// event_loop.h). Each loop owns its connections end to end — read,
/// FEEDB/text demux, execute, write — with per-connection interpreter
/// state shared-nothing between loops, and runs its own stream-pump
/// thread draining only its connections' streamed ResultQueues, so a
/// slow consumer degrades delivery on its own loop only. The one shared
/// seam is the server's control mutex: every interpreter (and thus
/// QueryService control-plane) call from any loop serializes under it,
/// preserving the service's serialized-control-plane contract — io_loops
/// scales connection fan-out and delivery, not query execution. Pumps
/// never take the control mutex, so they keep draining even while a loop
/// thread is parked inside a backend Flush or a kBlock Push, which is
/// what turns the block policy into end-to-end throttling instead of a
/// deadlock. For that to hold, every kBlock queue needs its loop's pump
/// as its consumer: the server auto-upgrades block-policy submissions to
/// streaming and refuses to UNSTREAM them (a POLL-only kBlock queue's
/// sole drainer would be the very thread its producer blocks). A slow
/// kBlock tenant can still stall FLUSH/STATS for everyone until it reads
/// — block means block — but reading always unwedges, and Stop() always
/// completes (it force-closes every queue up front). IO thread and pump
/// serialize per-connection IO state on ServerConnection::io_mu.
///
/// Disconnect (client close, error, or Stop) closes every session the
/// connection opened through QueryService::CloseSession and then compacts
/// the service's subscription table via ReclaimDetached — a vanished
/// tenant's DeliveryState does not outlive its socket.
class SocketServer {
 public:
  /// `service` and `interner` must outlive the server. The interner is
  /// shared with the backend (FEED interns labels).
  SocketServer(QueryService* service, Interner* interner,
               ServerOptions options);

  /// Stops if still running.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the listeners and spawns the acceptor and the IO loops (each
  /// an epoll thread + a pump thread). One-shot.
  Status Start();

  /// Graceful shutdown: flushes what it can, closes every connection
  /// (running the disconnect reclamation for each), closes listeners,
  /// unlinks the unix socket path, joins every thread. Idempotent.
  void Stop();

  /// The TCP port actually bound (resolves tcp_port=0), -1 when disabled.
  int tcp_port() const { return bound_tcp_port_; }
  /// The HTTP port actually bound (resolves http_port=0), -1 when
  /// disabled.
  int http_port() const { return bound_http_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  ServerStats stats() const;

  /// Live connection count across all loops (for tests and ops).
  size_t active_connections() const;

  /// IO loops actually running (options_.io_loops with auto resolved);
  /// 0 before Start.
  int io_loops() const { return static_cast<int>(loops_.size()); }

 private:
  QueryService* service_;
  Interner* interner_;
  ServerOptions options_;

  UniqueFd tcp_listener_;
  UniqueFd unix_listener_;
  UniqueFd http_listener_;
  int bound_tcp_port_ = -1;
  int bound_http_port_ = -1;
  std::unique_ptr<HttpHandler> http_handler_;

  /// The narrow locked handoff into the control plane: every
  /// interpreter / QueryService / HTTP-handler call from any loop
  /// serializes here (see event_loop.h).
  std::mutex control_mu_;

  ServerCounters counters_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<Acceptor> acceptor_;

  std::atomic<bool> running_{false};
  /// Server-wide shutdown latch: retires the IO loops while the pumps
  /// keep draining (a loop thread parked in a backend Flush behind a
  /// kBlock queue needs its pump to free it); each loop's pump stops only
  /// after its IO thread joined.
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_SERVER_H_
