#ifndef STREAMWORKS_NET_ACCEPTOR_H_
#define STREAMWORKS_NET_ACCEPTOR_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "streamworks/net/event_loop.h"
#include "streamworks/net/server_options.h"
#include "streamworks/net/socket.h"

namespace streamworks {

/// The frontend's accept thread: polls the server's listeners, applies the
/// max_connections admission check (refusing with "ERR server full" /
/// HTTP 503 exactly as the single-loop frontend did), and deals accepted
/// fds round-robin across the IO loops. Accepting is the only work here —
/// a connection's whole life after Adopt belongs to one EventLoop.
class Acceptor {
 public:
  /// Listener fds stay owned by the caller (SocketServer); -1 disables a
  /// slot. `loops` must be started and must outlive the acceptor.
  Acceptor(int tcp_fd, int unix_fd, int http_fd, const ServerOptions* options,
           ServerCounters* counters,
           const std::vector<std::unique_ptr<EventLoop>>* loops);

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Spawns the accept thread.
  Status Start();

  /// Stops and joins the accept thread (idempotent).
  void Stop();

 private:
  void AcceptLoop();
  /// Drains every pending accept on `listen_fd`; refused or failed
  /// accepts close the fd, admitted ones go to the next loop round-robin.
  void AcceptFrom(int listen_fd, bool http);

  const int tcp_fd_;
  const int unix_fd_;
  const int http_fd_;
  const ServerOptions* const options_;
  ServerCounters* const counters_;
  const std::vector<std::unique_ptr<EventLoop>>* const loops_;

  UniqueFd wake_read_;
  UniqueFd wake_write_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  size_t next_loop_ = 0;  ///< Accept-thread-only round-robin cursor.
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_ACCEPTOR_H_
