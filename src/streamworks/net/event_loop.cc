#include "streamworks/net/event_loop.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "streamworks/common/logging.h"
#include "streamworks/common/str_util.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

namespace {

constexpr std::string_view kTerminator = ".\n";

/// One framed error response (used for protocol-level refusals that never
/// reach the interpreter).
std::string ErrFrame(std::string_view message) {
  return "ERR " + std::string(message) + "\n" + std::string(kTerminator);
}

}  // namespace

EventLoop::EventLoop(int index, QueryService* service, Interner* interner,
                     const ServerOptions* options, ServerCounters* counters,
                     std::mutex* control_mu, HttpHandler* http_handler,
                     const std::atomic<bool>* stopping)
    : index_(index),
      service_(service),
      interner_(interner),
      options_(options),
      counters_(counters),
      control_mu_(control_mu),
      http_handler_(http_handler),
      stopping_(stopping) {}

EventLoop::~EventLoop() {
  // The owning SocketServer joins both threads before destruction; the
  // asserts document that contract rather than papering over it.
  SW_CHECK(!io_thread_.joinable());
  SW_CHECK(!pump_thread_.joinable());
}

Status EventLoop::Start() {
  SW_ASSIGN_OR_RETURN(epoll_fd_, CreateEpoll());
  SW_ASSIGN_OR_RETURN(auto pipe_ends, MakeWakePipe());
  wake_read_ = std::move(pipe_ends.first);
  wake_write_ = std::move(pipe_ends.second);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_read_.get(), &ev) <
      0) {
    return Status::IoError(std::string("epoll_ctl(wake): ") +
                           std::strerror(errno));
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  pump_thread_ = std::thread([this] { PumpLoop(); });
  return OkStatus();
}

void EventLoop::Adopt(UniqueFd fd, bool http) {
  auto conn = std::make_shared<ServerConnection>(std::move(fd));
  if (http) {
    // HTTP connections have no interpreter session: one request, one
    // response, close. They still ride the owning loop and its limits.
    conn->http = true;
  } else {
    conn->out = std::make_unique<std::ostringstream>();
    conn->interpreter = std::make_unique<CommandInterpreter>(
        service_, interner_, conn->out.get());
    if (options_->snapshot_hook) {
      conn->interpreter->set_snapshot_hook(options_->snapshot_hook);
    }
    if (options_->pipeline != nullptr) {
      conn->interpreter->set_pipeline_metrics(options_->pipeline);
    }
    std::weak_ptr<ServerConnection> weak = conn;
    conn->interpreter->set_stream_hook(
        [this, weak](bool enable, std::string_view session,
                     std::string_view sub, int session_id,
                     int subscription_id) {
          auto locked = weak.lock();
          if (locked == nullptr) {
            return Status::FailedPrecondition("connection is gone");
          }
          return HandleStream(locked, enable, session, sub, session_id,
                              subscription_id);
        });
    // kBlock over a socket is only sound with the connection as its live
    // consumer: un-streamed, the queue's sole drainer would be the very
    // IO thread its producer blocks (three protocol lines could wedge
    // every tenant on this loop). Auto-upgrade such subscriptions to push
    // streaming — on SUBMIT, and equally on ATTACH (a recovered kBlock
    // subscription comes back paused, and its RESUME must already find
    // the pump draining, or crash recovery would reintroduce the same
    // wedge).
    const auto auto_stream_block = [this, weak](std::string_view session,
                                                std::string_view sub,
                                                int session_id,
                                                int subscription_id) {
      auto locked = weak.lock();
      if (locked == nullptr) return;
      std::shared_ptr<ResultQueue> handle =
          service_->queue_handle(session_id, subscription_id);
      if (handle == nullptr || handle->policy() != OverflowPolicy::kBlock) {
        return;
      }
      HandleStream(locked, /*enable=*/true, session, sub, session_id,
                   subscription_id)
          .ok();
    };
    conn->interpreter->set_submit_hook(
        [auto_stream_block](std::string_view session, std::string_view sub,
                            int session_id, int subscription_id,
                            const SubmitOptions&) {
          auto_stream_block(session, sub, session_id, subscription_id);
        });
    conn->interpreter->set_attach_hook(auto_stream_block);
  }
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    pending_.push_back(std::move(conn));
  }
  Wake();
}

void EventLoop::Wake() {
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void EventLoop::NotifyPump() {
  std::lock_guard<std::mutex> lock(pump_mu_);
  pump_cv_.notify_all();
}

void EventLoop::JoinIo() {
  if (io_thread_.joinable()) io_thread_.join();
}

void EventLoop::StopPump() {
  pump_stop_.store(true, std::memory_order_release);
  NotifyPump();
  if (pump_thread_.joinable()) pump_thread_.join();
}

std::vector<std::shared_ptr<ServerConnection>> EventLoop::TakeConnections() {
  std::vector<std::shared_ptr<ServerConnection>> out;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [fd, conn] : conns_) out.push_back(std::move(conn));
    conns_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    for (auto& conn : pending_) out.push_back(std::move(conn));
    pending_.clear();
    dirty_.clear();
  }
  return out;
}

size_t EventLoop::connection_count() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void EventLoop::IoLoop() {
  std::array<epoll_event, 128> events;
  while (!stopping_->load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()),
                               /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      SW_LOG(Error) << "epoll_wait(loop " << index_
                    << "): " << std::strerror(errno);
      break;
    }
    if (stopping_->load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.fd == wake_read_.get()) {
        char buf[64];
        while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      std::shared_ptr<ServerConnection> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        const auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;  // closed earlier this pass
        conn = it->second;
      }
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        if (conn->open && (ev.events & EPOLLOUT)) FlushWritesLocked(*conn);
        if (ev.events & EPOLLERR) conn->open = false;
      }
      if (ev.events & (EPOLLIN | EPOLLHUP)) {
        HandleReadable(conn);  // reads, then advances (and may close)
      } else {
        // A write drain may have made room for lines parked behind a
        // full write buffer; the EOF/BYE finish rules also live here.
        AdvanceConnection(conn);
      }
      UpdateInterest(conn);
    }
    // Adoptees and pump-flagged connections arrive through the handoff
    // queues rather than epoll events.
    DrainHandoffQueues();
  }
}

void EventLoop::DrainHandoffQueues() {
  std::vector<std::shared_ptr<ServerConnection>> pending;
  std::vector<std::shared_ptr<ServerConnection>> dirty;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    pending.swap(pending_);
    dirty.swap(dirty_);
  }
  for (auto& conn : pending) {
    const int fd = conn->fd.get();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      SW_LOG(Warning) << "epoll_ctl(add): " << std::strerror(errno);
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        conn->open = false;
      }
      CloseConnection(conn);
      continue;
    }
    conn->epoll_mask = EPOLLIN;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace(fd, std::move(conn));
  }
  for (const auto& conn : dirty) {
    AdvanceConnection(conn);
    UpdateInterest(conn);
  }
}

void EventLoop::UpdateInterest(
    const std::shared_ptr<ServerConnection>& conn) {
  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open || !conn->fd.valid()) return;
  // Response-path backpressure: a connection sitting on more unsent
  // response bytes than the high-water mark stops being read from (and so
  // stops being executed for) until its reader drains it — TCP flow
  // control then pushes back on the sender.
  uint32_t want = 0;
  if (conn->wbuf.size() < options_->write_high_water) want |= EPOLLIN;
  if (!conn->wbuf.empty()) want |= EPOLLOUT;
  if (want == conn->epoll_mask) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd.get();
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) ==
      0) {
    conn->epoll_mask = want;
  }
}

void EventLoop::HandleReadable(
    const std::shared_ptr<ServerConnection>& conn) {
  // Reads and line assembly are IO-thread-only; io_mu is taken just for
  // buffer appends inside ExecuteLine and for the EOF/open flips.
  // 64KB per read: a pipelined burst (text lines or FEEDB frames) should
  // cost one syscall per tens of KB, not one per 4KB.
  char buf[65536];
  while (true) {
    int fd;
    {
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!conn->open) return;
      fd = conn->fd.get();
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn->rbuf.append(buf, static_cast<size_t>(n));
      counters_->bytes_in.fetch_add(static_cast<uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // n == 0 (orderly EOF) or a hard error: the peer is done sending.
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->read_eof = true;
    break;
  }
  AdvanceConnection(conn);
}

void EventLoop::AdvanceConnection(
    const std::shared_ptr<ServerConnection>& conn) {
  if (conn->http) {
    AdvanceHttp(conn);
    return;
  }
  // Consume complete protocol units — text lines and binary FEEDB frames,
  // demultiplexed on the frame-magic lead byte (0xFB can never begin an
  // ASCII command) — via an offset, compacting once per pass: a pipelined
  // burst of thousands of units must not pay a front-erase memmove each.
  // The response path's backpressure valve sits here: once unsent
  // responses pass the high-water mark, stop executing (and, via the
  // epoll interest mask, stop reading) until the client drains.
  size_t consumed = 0;
  {
    // Locked: the pump thread reads input_parked to decide whether a
    // draining write buffer should hand the connection back for unpark.
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->input_parked = false;
  }
  while (consumed < conn->rbuf.size()) {
    {
      std::lock_guard<std::mutex> lock(conn->io_mu);
      if (!conn->open || conn->closing) break;
      if (conn->wbuf.size() >= options_->write_high_water) {
        conn->input_parked = true;  // complete units may be waiting
        break;
      }
    }
    // Discard the remainder of a refused oversized frame; the length
    // prefix tells us exactly how much, so the stream stays in sync.
    if (conn->skip_bytes > 0) {
      const size_t n =
          std::min(conn->skip_bytes, conn->rbuf.size() - consumed);
      consumed += n;
      conn->skip_bytes -= n;
      continue;
    }
    const std::string_view rest(conn->rbuf.data() + consumed,
                                conn->rbuf.size() - consumed);
    if (IsFrameStart(rest)) {
      PipelineMetrics* const pipeline = options_->pipeline;
      const uint64_t decode_t0 =
          pipeline != nullptr ? PipelineMetrics::NowMicros() : 0;
      FrameDecodeResult decoded =
          DecodeFeedFrame(rest, options_->max_frame_body_bytes, interner_);
      if (decoded.status == FrameDecodeStatus::kNeedMore) break;
      if (decoded.status == FrameDecodeStatus::kOk) {
        if (pipeline != nullptr) {
          pipeline->Record(PipelineStage::kFrameDecode,
                           PipelineMetrics::NowMicros() - decode_t0, -1, -1,
                           /*detail=*/decoded.batch.size());
        }
        consumed += decoded.frame_bytes;
        ExecuteFrame(conn, decoded.batch);
        continue;
      }
      // Oversized or malformed: refuse with ERR. With a decodable length
      // prefix the frame's bytes are skipped and the connection
      // survives; a corrupt magic leaves no way back into sync.
      counters_->protocol_errors.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        conn->wbuf += ErrFrame(decoded.error);
      }
      if (decoded.frame_bytes == 0) {
        std::lock_guard<std::mutex> lock(conn->io_mu);
        FlushWritesLocked(*conn);
        conn->open = false;
        break;
      }
      const size_t available = std::min(decoded.frame_bytes, rest.size());
      consumed += available;
      conn->skip_bytes = decoded.frame_bytes - available;
      continue;
    }
    const size_t pos = conn->rbuf.find('\n', consumed);
    if (pos == std::string::npos) break;
    std::string line = conn->rbuf.substr(consumed, pos - consumed);
    consumed = pos + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ExecuteLine(conn, line);
  }
  conn->rbuf.erase(0, consumed);
  if (conn->rbuf.size() > options_->max_line_bytes &&
      conn->skip_bytes == 0 &&      // pending discard is not a line
      !IsFrameStart(conn->rbuf) &&  // a buffering frame is length-framed
      conn->rbuf.find('\n') == std::string::npos) {
    counters_->protocol_errors.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->wbuf += ErrFrame("line exceeds " +
                           std::to_string(options_->max_line_bytes) +
                           " bytes");
    FlushWritesLocked(*conn);
    conn->open = false;
  }
  bool failed;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (conn->open) FlushWritesLocked(*conn);
    // A BYE whose response already drained has nothing left to wait for.
    if (conn->closing && conn->wbuf.empty()) conn->open = false;
    if (conn->read_eof && conn->open && !conn->closing &&
        !conn->input_parked) {
      // The peer finished sending and nothing executable was parked, so
      // whatever remains buffered can never complete. A partial FEEDB
      // frame at EOF is a protocol error worth reporting before the
      // close; a partial (or absent) text line keeps the silent
      // half-close contract (printf | nc). Responses the socket wouldn't
      // take yet are flushed by EPOLLOUT before the orderly close; only
      // an empty write buffer closes immediately.
      if (conn->skip_bytes > 0 || IsFrameStart(conn->rbuf)) {
        counters_->protocol_errors.fetch_add(1);
        conn->wbuf += ErrFrame("truncated binary frame at EOF");
        FlushWritesLocked(*conn);
      }
      if (conn->wbuf.empty()) {
        conn->open = false;
      } else {
        conn->closing = true;
      }
    }
    failed = !conn->open;
  }
  if (failed) CloseConnection(conn);
}

void EventLoop::AdvanceHttp(const std::shared_ptr<ServerConnection>& conn) {
  // rbuf is IO-thread-only, exactly like the line protocol's. At most
  // one request is answered per connection (Connection: close), so a
  // pipelined second request is simply never parsed.
  HttpResponse response;
  bool respond = false;
  if (!conn->closing) {
    HttpRequest request;
    size_t consumed = 0;
    switch (ParseHttpRequest(conn->rbuf, &request, &consumed)) {
      case HttpParseResult::kComplete: {
        conn->rbuf.erase(0, consumed);
        // The handler's providers make control-plane calls (Snapshot,
        // QueryInfos); serialize them under the control mutex like every
        // interpreter call. io_mu is not held, which is exactly the
        // contract they need.
        std::lock_guard<std::mutex> control(*control_mu_);
        response = http_handler_ != nullptr
                       ? http_handler_->Handle(request)
                       : HttpResponse{503, "text/plain; charset=utf-8",
                                      "no handler\n"};
        counters_->http_requests.fetch_add(1);
        respond = true;
        break;
      }
      case HttpParseResult::kNeedMore:
        if (conn->rbuf.size() > options_->max_line_bytes) {
          counters_->protocol_errors.fetch_add(1);
          response = HttpResponse{400, "text/plain; charset=utf-8",
                                  "request head too large\n"};
          respond = true;
        }
        break;
      case HttpParseResult::kBad:
        counters_->protocol_errors.fetch_add(1);
        response = HttpResponse{400, "text/plain; charset=utf-8",
                                "malformed request\n"};
        respond = true;
        break;
    }
  }
  bool failed;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (respond && conn->open) {
      conn->wbuf += EncodeHttpResponse(response);
      conn->closing = true;  // reuses the BYE drain-then-close machinery
    }
    if (conn->open) FlushWritesLocked(*conn);
    if (conn->closing && conn->wbuf.empty()) conn->open = false;
    // EOF before a complete request head: nothing to answer.
    if (conn->read_eof && conn->open && !conn->closing) conn->open = false;
    failed = !conn->open;
  }
  if (failed) CloseConnection(conn);
}

void EventLoop::ExecuteLine(const std::shared_ptr<ServerConnection>& conn,
                            std::string_view line) {
  const std::string_view stripped = StripWhitespace(line);
  if (stripped == "BYE") {
    counters_->lines_executed.fetch_add(1);
    std::lock_guard<std::mutex> lock(conn->io_mu);
    conn->wbuf += "OK bye\n";
    conn->wbuf += kTerminator;
    conn->closing = true;
    FlushWritesLocked(*conn);
    return;
  }

  // The interpreter (and through it every QueryService control-plane
  // call) runs under the control mutex — the serialization that keeps the
  // service's control plane single-file across loops — and without io_mu
  // held: FLUSH / kBlock deliveries may park this thread, and the pump
  // must still be able to drain this connection.
  conn->out->str("");
  Status status = OkStatus();
  {
    std::lock_guard<std::mutex> control(*control_mu_);
    status = conn->interpreter->ExecuteLine(line);
  }
  counters_->lines_executed.fetch_add(1);
  std::string payload = conn->out->str();

  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return;
  conn->wbuf += payload;
  if (!status.ok()) {
    // Unlike a scripted fixture, a network session survives its typos:
    // report and keep the connection (and its subscriptions) alive.
    counters_->protocol_errors.fetch_add(1);
    conn->wbuf += "ERR " + status.ToString() + "\n";
  }
  conn->wbuf += kTerminator;
  FlushWritesLocked(*conn);
}

void EventLoop::ExecuteFrame(const std::shared_ptr<ServerConnection>& conn,
                             const EdgeBatch& batch) {
  // Like ExecuteLine, the interpreter (and the backend FeedBatch under
  // it) runs under the control mutex and without io_mu held — a kBlock
  // delivery inside the batch may park this thread, and the pump must
  // still drain this connection.
  conn->out->str("");
  Status status = OkStatus();
  {
    std::lock_guard<std::mutex> control(*control_mu_);
    status = conn->interpreter->ExecuteBatch(batch);
  }
  counters_->frames_executed.fetch_add(1);
  counters_->batch_edges_in.fetch_add(batch.size());
  std::string payload = conn->out->str();

  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return;
  conn->wbuf += payload;
  if (!status.ok()) {
    counters_->protocol_errors.fetch_add(1);
    conn->wbuf += "ERR " + status.ToString() + "\n";
  }
  conn->wbuf += kTerminator;
  FlushWritesLocked(*conn);
}

Status EventLoop::HandleStream(const std::shared_ptr<ServerConnection>& conn,
                               bool enable, std::string_view session,
                               std::string_view sub, int session_id,
                               int subscription_id) {
  const std::string label = std::string(session) + "." + std::string(sub);
  if (!enable) {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    for (size_t i = 0; i < conn->streams.size(); ++i) {
      if (conn->streams[i].label != label) continue;
      if (std::shared_ptr<ResultQueue> queue = conn->streams[i].queue.lock();
          queue != nullptr && queue->policy() == OverflowPolicy::kBlock &&
          !queue->closed()) {
        return Status::FailedPrecondition(
            "a block-policy subscription must stay streamed on the "
            "socket frontend (its producer would wedge the shared "
            "control thread with no consumer); DETACH it instead");
      }
      conn->streams.erase(conn->streams.begin() + i);
      active_streams_.fetch_sub(1);
      return OkStatus();
    }
    return Status::NotFound("not streaming: " + label);
  }
  std::shared_ptr<ResultQueue> handle =
      service_->queue_handle(session_id, subscription_id);
  if (handle == nullptr) {
    return Status::NotFound("subscription has no queue: " + label);
  }
  std::lock_guard<std::mutex> lock(conn->io_mu);
  for (ServerConnection::Stream& s : conn->streams) {
    if (s.label == label) {
      // Same name, possibly a new subscription (DETACH + re-SUBMIT frees
      // the name): point the stream at the current queue rather than
      // leaving a stale handle the pump is about to END.
      s.queue = handle;
      return OkStatus();
    }
  }
  conn->streams.push_back(ServerConnection::Stream{label, handle});
  active_streams_.fetch_add(1);
  {
    std::lock_guard<std::mutex> pump_lock(pump_mu_);
    pump_cv_.notify_all();
  }
  return OkStatus();
}

bool EventLoop::PumpConnection(
    const std::shared_ptr<ServerConnection>& conn) {
  PipelineMetrics* const pipeline = options_->pipeline;
  const uint64_t flush_t0 =
      pipeline != nullptr ? PipelineMetrics::NowMicros() : 0;
  std::lock_guard<std::mutex> lock(conn->io_mu);
  if (!conn->open) return false;
  std::vector<CompleteMatch> drained;
  bool pushed_any = false;
  for (size_t i = 0; i < conn->streams.size();) {
    ServerConnection::Stream& stream = conn->streams[i];
    bool ended = false;
    // Write-buffer high-water is the backpressure valve: above it we stop
    // draining, the ResultQueue fills, and its own overflow policy (block
    // the producer / drop oldest / drop newest) takes over upstream.
    // During shutdown the valve opens fully — a kBlock producer must be
    // freed even if its slow reader never collects the bytes.
    const size_t high_water = stopping_->load(std::memory_order_acquire)
                                  ? std::numeric_limits<size_t>::max()
                                  : options_->write_high_water;
    while (conn->wbuf.size() < high_water) {
      std::shared_ptr<ResultQueue> queue = stream.queue.lock();
      if (queue == nullptr) {  // reclaimed under us
        ended = true;
        break;
      }
      // Coalesced drain: one queue-lock round-trip pops a whole chunk,
      // which is then formatted into wbuf and flushed below in a single
      // write — not one lock and one send per EVENT line.
      drained.clear();
      const size_t n = queue->DrainUpTo(&drained, options_->pump_drain_chunk);
      if (n > 0) {
        for (const CompleteMatch& cm : drained) {
          conn->wbuf += "EVENT MATCH ";
          conn->wbuf += stream.label;
          conn->wbuf += " completed_at=";
          conn->wbuf += std::to_string(cm.completed_at);
          conn->wbuf += ' ';
          // External-id rendering, pre-computed by the delivery callback:
          // byte-identical for the same match whether the backend is one
          // engine, a sharded group, or a coordinator fronting worker
          // daemons — and no graph dereference on this thread, which
          // races live ingest.
          conn->wbuf += cm.rendered;
          conn->wbuf += '\n';
        }
        counters_->events_pushed.fetch_add(n);
        pushed_any = true;
        continue;
      }
      if (queue->closed() && queue->size() == 0) ended = true;
      break;
    }
    if (ended) {
      conn->wbuf += "EVENT END " + stream.label + "\n";
      conn->streams.erase(conn->streams.begin() + i);
      active_streams_.fetch_sub(1);
    } else {
      ++i;
    }
  }
  if (pushed_any) {
    counters_->pump_flushes.fetch_add(1);
    pump_flushes_.fetch_add(1, std::memory_order_relaxed);
    // Only drain passes that moved matches count as a flush; idle ticks
    // would drown the histogram in zeros.
    if (pipeline != nullptr) {
      pipeline->Record(PipelineStage::kDeliveryFlush,
                       PipelineMetrics::NowMicros() - flush_t0);
    }
  }
  if (!FlushWritesLocked(*conn)) return false;
  return conn->open;
}

bool EventLoop::FlushWritesLocked(ServerConnection& conn) {
  // Send from an offset and erase the consumed prefix once: one memmove
  // per flush, not one per partial send.
  size_t sent = 0;
  bool fatal = false;
  while (sent < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.fd.get(), conn.wbuf.data() + sent,
                             conn.wbuf.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      counters_->bytes_out.fetch_add(static_cast<uint64_t>(n));
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    fatal = true;  // EPIPE / ECONNRESET / anything else
    break;
  }
  conn.wbuf.erase(0, sent);
  if (fatal) {
    conn.open = false;
    return false;
  }
  if (conn.wbuf.empty() && conn.closing) {  // BYE fully flushed
    conn.open = false;
    return false;
  }
  return true;
}

void EventLoop::CloseConnection(
    const std::shared_ptr<ServerConnection>& conn, bool preserve_sessions) {
  int fd_key = -1;
  {
    std::lock_guard<std::mutex> lock(conn->io_mu);
    if (!conn->fd.valid()) return;  // already torn down
    FlushWritesLocked(*conn);       // best effort (BYE responses etc.)
    conn->open = false;
    active_streams_.fetch_sub(static_cast<int>(conn->streams.size()));
    conn->streams.clear();
    fd_key = conn->fd.get();
    conn->fd.reset();  // closing the fd also drops its epoll registration
  }
  // Control-plane reclamation: a vanished tenant's sessions close, their
  // subscriptions detach (unblocking any kBlock producer), and the
  // service's tables compact — serialized under the control mutex like
  // every other control-plane call. Closed-session scope only: one
  // tenant's disconnect must never change what another tenant's open
  // session observes (a drained POLL stays "n=0"). A durable server's
  // *shutdown* teardown is the exception (preserve_sessions): those
  // tenants didn't leave, the process is — their sessions must survive
  // into the final snapshot so they can re-ATTACH after the restart,
  // exactly as they would after a kill -9.
  if (!preserve_sessions && conn->interpreter != nullptr) {
    std::lock_guard<std::mutex> control(*control_mu_);
    for (const auto& [name, session_id] : conn->interpreter->sessions()) {
      service_->CloseSession(session_id).ok();
    }
    counters_->subscriptions_reclaimed.fetch_add(
        service_->ReclaimDetached(/*drained_in_open_sessions=*/false));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(fd_key);
  }
  counters_->connections_closed.fetch_add(1);
  counters_->live_connections.fetch_sub(1);
}

void EventLoop::PumpLoop() {
  std::unique_lock<std::mutex> lock(pump_mu_);
  while (!pump_stop_.load(std::memory_order_acquire)) {
    if (active_streams_.load(std::memory_order_acquire) == 0 &&
        !stopping_->load(std::memory_order_acquire)) {
      // Nothing to drain: park until STREAM registration or Stop (the IO
      // thread owns plain response writes on its own).
      pump_cv_.wait(lock, [this] {
        return stopping_->load(std::memory_order_acquire) ||
               pump_stop_.load(std::memory_order_acquire) ||
               active_streams_.load(std::memory_order_acquire) > 0;
      });
    } else {
      pump_cv_.wait_for(
          lock, std::chrono::milliseconds(options_->pump_interval_ms));
    }
    if (pump_stop_.load(std::memory_order_acquire)) break;
    lock.unlock();

    std::vector<std::shared_ptr<ServerConnection>> conns;
    {
      std::lock_guard<std::mutex> conns_lock(conns_mu_);
      conns.reserve(conns_.size());
      for (const auto& [fd, conn] : conns_) conns.push_back(conn);
    }
    bool wake = false;
    for (const auto& conn : conns) {
      bool attention = false;
      if (!PumpConnection(conn)) {
        attention = true;  // dead connection: the IO thread owns teardown
      } else {
        std::lock_guard<std::mutex> io_lock(conn->io_mu);
        // Bytes the socket would not take need the IO thread to arm
        // EPOLLOUT; a drained write buffer may also unpark input.
        if (!conn->wbuf.empty() ||
            (conn->input_parked &&
             conn->wbuf.size() < options_->write_high_water)) {
          attention = true;
        }
      }
      if (attention) {
        std::lock_guard<std::mutex> handoff(handoff_mu_);
        dirty_.push_back(conn);
        wake = true;
      }
    }
    if (wake) Wake();

    lock.lock();
  }
}

}  // namespace streamworks
