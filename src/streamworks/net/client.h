#ifndef STREAMWORKS_NET_CLIENT_H_
#define STREAMWORKS_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "streamworks/common/interner.h"
#include "streamworks/common/statusor.h"
#include "streamworks/net/socket.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

/// Blocking line client for the SocketServer wire protocol: sends one
/// command per line, collects the response payload up to the "."
/// terminator, and demultiplexes asynchronous "EVENT ..." push lines
/// (streamed matches) into a separate buffer so they never corrupt a
/// request/response exchange. Used by streamworks_client (the CLI), the
/// net tests, and the socket-path benchmarks. Single-threaded by design.
class LineClient {
 public:
  static StatusOr<LineClient> ConnectTcp(const std::string& host, int port);
  static StatusOr<LineClient> ConnectUnix(const std::string& path);

  LineClient(LineClient&&) = default;
  LineClient& operator=(LineClient&&) = default;

  /// Writes `line` + '\n'. IoError when the server hung up.
  Status SendLine(std::string_view line);

  /// Writes `bytes` verbatim (no framing added). The escape hatch binary
  /// feeders and the torn-frame tests build on.
  Status SendRaw(std::string_view bytes);

  /// Encodes `batch` as one binary FEEDB frame and sends it without
  /// waiting for the response — the pipelining sender's half (responses
  /// are absorbed later with ReadLine, one "OK feedb ..." + "." per
  /// frame). Label ids are resolved through `interner` (the client's
  /// own; labels cross the wire as strings).
  Status SendFrame(const EdgeBatch& batch, const Interner& interner);

  /// SendFrame + awaits the frame's response. Returns (accepted,
  /// rejected) as reported by the server; IoError on transport failure
  /// or timeout, Internal when the server refused the frame with ERR.
  StatusOr<std::pair<uint64_t, uint64_t>> FeedBatch(
      const EdgeBatch& batch, const Interner& interner,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Reads the next raw protocol line (payload, terminator, or EVENT),
  /// waiting up to `timeout`. IoError on EOF or timeout. A zero timeout
  /// is a non-blocking drain: it returns whatever is already buffered or
  /// immediately readable, or times out without sleeping — how a
  /// pipelining sender absorbs responses between bursts.
  StatusOr<std::string> ReadLine(std::chrono::milliseconds timeout);

  /// Sends one command and returns its payload lines (terminator
  /// excluded). EVENT lines arriving in between are buffered for
  /// NextEvent. An "ERR ..." payload is returned like any other payload —
  /// the caller decides whether a scenario treats it as fatal.
  StatusOr<std::vector<std::string>> Command(
      std::string_view line,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Next pushed EVENT line (buffered or read fresh), waiting up to
  /// `timeout`. Non-EVENT lines read while waiting are a protocol
  /// violation outside a Command exchange and fail with Internal.
  StatusOr<std::string> NextEvent(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  size_t buffered_events() const { return events_.size(); }

  /// Half-close politely: BYE, wait for the farewell, close the socket.
  void Quit();

  void Close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }
  /// Raw fd, for callers multiplexing many clients with poll(2) (the
  /// fanout bench). -1 when closed; ownership stays with the client.
  int fd() const { return fd_.get(); }

 private:
  explicit LineClient(UniqueFd fd) : fd_(std::move(fd)) {}

  UniqueFd fd_;
  std::string rbuf_;
  size_t rpos_ = 0;  ///< Consumed prefix of rbuf_ (compacted on refill).
  std::deque<std::string> events_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_CLIENT_H_
