#ifndef STREAMWORKS_NET_SERVER_OPTIONS_H_
#define STREAMWORKS_NET_SERVER_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "streamworks/obs/metric_registry.h"
#include "streamworks/obs/stage_trace.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/stream/wire_format.h"

namespace streamworks {

/// Knobs of a SocketServer. At least one of tcp_port / unix_path must be
/// enabled. Lives apart from server.h so the IO-loop and acceptor layers
/// can share it without depending on the assembled server.
struct ServerOptions {
  /// TCP listener port; -1 disables, 0 binds an ephemeral port (read the
  /// real one back from SocketServer::tcp_port after Start).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Unix-domain listener path; empty disables. The server unlinks the
  /// path on shutdown.
  std::string unix_path;
  int backlog = 16;
  /// Accepts beyond this are refused with "ERR server full".
  size_t max_connections = 64;
  /// IO loops (epoll event loops) the acceptor shards connections across,
  /// round-robin. Each loop owns its connections' read/decode/write and
  /// runs its own stream pump, so a slow consumer degrades delivery on
  /// its own loop only. 0 = auto: min(4, hardware_concurrency). Control-
  /// plane calls from every loop serialize on one mutex, so io_loops
  /// scales the byte-shuffling and delivery fan-out, not query execution.
  int io_loops = 0;
  /// Per-connection write-buffer high-water mark: above it the stream pump
  /// stops draining that connection's subscriptions, so backpressure falls
  /// through to each ResultQueue's own overflow policy (block / drop).
  size_t write_high_water = 256 * 1024;
  /// A read buffer growing past this without a newline is a protocol
  /// violation; the connection is told ERR and closed.
  size_t max_line_bytes = 64 * 1024;
  /// Largest accepted FEEDB frame body. An oversized frame is refused
  /// with ERR and its declared bytes are skipped, so the stream stays in
  /// sync and the connection survives.
  size_t max_frame_body_bytes = kDefaultMaxFrameBodyBytes;
  /// Matches the stream pump pops per queue-lock acquisition while
  /// coalescing a drain pass (one lock + one write per chunk, not per
  /// match).
  size_t pump_drain_chunk = 256;
  /// Stream-pump drain cadence while any subscription is streaming.
  int pump_interval_ms = 2;
  /// When > 0, SO_SNDBUF for accepted connections. Tests shrink it so a
  /// slow reader hits the write high-water (and thus the queue's overflow
  /// policy) after kilobytes instead of the kernel-default hundreds of KB.
  int so_sndbuf = 0;
  /// Installed on every connection's interpreter as the SNAPSHOT verb's
  /// target (the durability layer's SnapshotNow). Runs under the server's
  /// control mutex, like every other interpreter call. Unset = SNAPSHOT
  /// answers ERR (no durability layer).
  CommandInterpreter::SnapshotHook snapshot_hook;
  /// Observability HTTP listener port; -1 disables, 0 binds an ephemeral
  /// port (read back from SocketServer::http_port after Start). An HTTP
  /// connection rides whichever IO loop the acceptor dealt it to; requests
  /// are parsed and answered on that loop's thread under the server's
  /// control mutex, which is what lets /stats.json and friends call
  /// QueryService::Snapshot()/QueryInfos() safely.
  int http_port = -1;
  std::string http_host = "127.0.0.1";
  /// Served as GET /metrics when set; the server also installs itself as
  /// the service's frontend probe either way, so its counters reach STATS
  /// and the streamworks_frontend_* families. Must outlive the server.
  MetricRegistry* registry = nullptr;
  /// The deployment's shared stage instrumentation: the server records
  /// kFrameDecode around FEEDB decoding and kDeliveryFlush around stream-
  /// pump drain passes, and serves /trace.json from it. Must outlive the
  /// server. Null = no stage timing, trace endpoint answers 503.
  PipelineMetrics* pipeline = nullptr;
  /// Cluster deployments: pre-rendered /cluster.json and /epochs.json
  /// documents, plus a /healthz override that folds worker health into
  /// the answer (the coordinator binds these to its federation cache and
  /// epoch trace ring). Invoked on the scraping IO loop under the
  /// server's control mutex, like every other provider. Unset = the
  /// cluster routes answer 503 and /healthz stays stats-based.
  std::function<std::string()> cluster_provider;
  std::function<std::string()> epochs_provider;
  std::function<std::string()> health_provider;
  /// Durable deployments set this so Stop()'s connection teardown leaves
  /// still-connected tenants' sessions OPEN: the shutdown snapshot taken
  /// after Stop must capture them (a graceful restart preserves exactly
  /// what a kill -9 would have), where a live tenant's own disconnect
  /// still closes its sessions as always. Leave false without a
  /// durability layer — preserved sessions would just leak.
  bool preserve_sessions_on_stop = false;

  /// io_loops with the auto default resolved.
  int ResolvedIoLoops() const;
};

/// Monotonic counters of one server's lifetime (all reads are safe from
/// any thread). Sums over every IO loop; the per-loop split is in
/// FrontendStatsSnapshot::io_loops.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;
  uint64_t connections_closed = 0;
  uint64_t lines_executed = 0;
  uint64_t frames_executed = 0;  ///< Binary FEEDB frames executed.
  uint64_t batch_edges_in = 0;   ///< Edges carried by those frames.
  uint64_t protocol_errors = 0;
  uint64_t events_pushed = 0;  ///< EVENT lines queued to sockets.
  uint64_t pump_flushes = 0;   ///< Coalesced drain-pass writes by the pumps.
  uint64_t http_requests = 0;  ///< Observability HTTP requests answered.
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t subscriptions_reclaimed = 0;  ///< Subscriptions reclaimed on close.
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_SERVER_OPTIONS_H_
