#include "streamworks/net/peer_link.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "streamworks/common/str_util.h"
#include "streamworks/common/timer.h"
#include "streamworks/net/socket.h"

namespace streamworks {

namespace {

/// A peer that stops draining for this long while we hold a full socket
/// buffer is treated as dead (the caller's reconnect machinery takes
/// over rather than wedging the control plane forever).
constexpr int kSendStallTimeoutMs = 60000;

constexpr int kConnectRetrySleepMs = 100;

int RemainingMs(const Timer& timer, int timeout_ms) {
  if (timeout_ms < 0) return -1;
  const int elapsed = static_cast<int>(timer.ElapsedSeconds() * 1000.0);
  return elapsed >= timeout_ms ? 0 : timeout_ms - elapsed;
}

}  // namespace

StatusOr<PeerLink> PeerLink::Adopt(UniqueFd fd, bool duplex) {
  PeerLink link;
  if (duplex) {
    SW_RETURN_IF_ERROR(SetNonBlocking(fd.get()));
  }
  link.fd_ = std::move(fd);
  link.duplex_ = duplex;
  return link;
}

StatusOr<PeerLink> PeerLink::ConnectTcpRetry(const std::string& host,
                                             int port, int deadline_ms) {
  Timer timer;
  Status last = Status::Unavailable("never attempted");
  do {
    StatusOr<UniqueFd> fd = ConnectTcp(host, port);
    if (fd.ok()) return Adopt(std::move(fd).value(), /*duplex=*/true);
    last = fd.status();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(kConnectRetrySleepMs));
  } while (RemainingMs(timer, deadline_ms) > 0);
  return Status::Unavailable(StrCat("cannot connect to ", host, ":", port,
                                    " within ", deadline_ms,
                                    "ms: ", last.ToString()));
}

Status PeerLink::FillFromSocket(int timeout_ms) {
  if (!fd_.valid()) return Status::Unavailable("link is closed");
  struct pollfd pfd {};
  pfd.fd = fd_.get();
  pfd.events = POLLIN;
  const int n = ::poll(&pfd, 1, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      // A signal (the daemon's stop path) interrupts the wait; surface it
      // as a timeout so the caller's loop re-checks its stop flag.
      return Status::Unavailable("link read timed out");
    }
    return Status::IoError(StrCat("poll: ", std::strerror(errno)));
  }
  if (n == 0) return Status::Unavailable("link read timed out");
  char buf[65536];
  const ssize_t got = ::read(fd_.get(), buf, sizeof(buf));
  if (got < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return OkStatus();  // spurious wakeup; the outer loop re-polls
    }
    return Status::IoError(StrCat("read: ", std::strerror(errno)));
  }
  if (got == 0) return Status::Unavailable("peer closed the link");
  rbuf_.append(buf, static_cast<size_t>(got));
  return OkStatus();
}

Status PeerLink::SendFrame(std::string_view frame) {
  if (!fd_.valid()) return Status::Unavailable("link is closed");
  size_t sent = 0;
  Timer stall;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-stream must surface as EPIPE for
    // the caller's reconnect path, not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_.get(), frame.data() + sent,
                             frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      stall.Reset();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && duplex_) {
      // Write buffer full. Wait for writability but keep draining the
      // peer's inbound traffic meanwhile — it may be blocked pushing
      // frames at us, and neither side's buffer empties unless we read.
      const int wait = RemainingMs(stall, kSendStallTimeoutMs);
      if (wait == 0) {
        return Status::Unavailable("peer stalled; send timed out");
      }
      struct pollfd pfd {};
      pfd.fd = fd_.get();
      pfd.events = POLLIN | POLLOUT;
      const int ready = ::poll(&pfd, 1, wait);
      if (ready < 0 && errno != EINTR) {
        return Status::IoError(StrCat("poll: ", std::strerror(errno)));
      }
      if (ready > 0 && (pfd.revents & POLLIN) != 0) {
        char buf[65536];
        ssize_t got;
        while ((got = ::read(fd_.get(), buf, sizeof(buf))) > 0) {
          rbuf_.append(buf, static_cast<size_t>(got));
        }
        if (got == 0) return Status::Unavailable("peer closed the link");
        if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
            errno != EINTR) {
          return Status::IoError(StrCat("read: ", std::strerror(errno)));
        }
      }
      continue;
    }
    return Status::IoError(StrCat("write: ", std::strerror(errno)));
  }
  return OkStatus();
}

bool PeerLink::HasBufferedFrame() const {
  if (rbuf_.size() < kCtrlFrameHeaderBytes) return false;
  const size_t body_len =
      static_cast<size_t>(static_cast<unsigned char>(rbuf_[4])) |
      static_cast<size_t>(static_cast<unsigned char>(rbuf_[5])) << 8 |
      static_cast<size_t>(static_cast<unsigned char>(rbuf_[6])) << 16 |
      static_cast<size_t>(static_cast<unsigned char>(rbuf_[7])) << 24;
  return rbuf_.size() >= kCtrlFrameHeaderBytes + body_len;
}

StatusOr<CtrlFrame> PeerLink::ReadFrame(Interner* interner, int timeout_ms) {
  Timer timer;
  for (;;) {
    const CtrlDecodeResult decoded =
        DecodeCtrlFrame(rbuf_, kDefaultMaxFrameBodyBytes, interner);
    switch (decoded.status) {
      case FrameDecodeStatus::kOk: {
        CtrlFrame frame = std::move(decoded.frame);
        rbuf_.erase(0, decoded.frame_bytes);
        return frame;
      }
      case FrameDecodeStatus::kNeedMore:
        break;
      case FrameDecodeStatus::kOversized:
      case FrameDecodeStatus::kMalformed:
        // No resync on the control plane: a bad frame means the peers
        // disagree about the protocol, and skipping bytes would only
        // turn that into silent state divergence.
        return Status::DataLoss(StrCat("control link broken: ",
                                       decoded.error));
    }
    const int wait = RemainingMs(timer, timeout_ms);
    if (timeout_ms >= 0 && wait == 0) {
      return Status::Unavailable("link read timed out");
    }
    SW_RETURN_IF_ERROR(FillFromSocket(wait));
  }
}

}  // namespace streamworks
