#ifndef STREAMWORKS_NET_EVENT_LOOP_H_
#define STREAMWORKS_NET_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "streamworks/common/thread_annotations.h"
#include "streamworks/net/server_options.h"
#include "streamworks/net/socket.h"
#include "streamworks/obs/http_endpoint.h"
#include "streamworks/service/interpreter.h"
#include "streamworks/service/query_service.h"

namespace streamworks {

/// Wire counters shared by the acceptor and every IO loop (atomics: bumped
/// from any loop thread, read from any). The per-loop split (connections,
/// pump flushes) lives on each EventLoop; these are the server-lifetime
/// sums ServerStats reports.
struct ServerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> lines_executed{0};
  std::atomic<uint64_t> frames_executed{0};
  std::atomic<uint64_t> batch_edges_in{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> events_pushed{0};
  std::atomic<uint64_t> pump_flushes{0};
  std::atomic<uint64_t> http_requests{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> subscriptions_reclaimed{0};
  /// Live connections across all loops (adopted and not yet torn down) —
  /// the acceptor's max_connections admission check reads this.
  std::atomic<size_t> live_connections{0};
};

/// One client connection, owned by exactly one EventLoop (shared-nothing
/// between loops). IO state (fd validity via `open`, read/write buffers,
/// streams) is guarded by io_mu and shared between the owning loop's IO
/// thread and its stream pump; rbuf, skip_bytes and the interpreter are
/// IO-thread-only.
struct ServerConnection {
  explicit ServerConnection(UniqueFd fd_in) : fd(std::move(fd_in)) {}

  UniqueFd fd;
  std::mutex io_mu;
  /// Accepted on the HTTP listener: the connection speaks HTTP instead
  /// of the line protocol (one request, one response, close) and has no
  /// interpreter.
  bool http = false;
  bool open SW_GUARDED_BY(io_mu) = true;  ///< False once being torn down.
  bool closing SW_GUARDED_BY(io_mu) = false;  ///< BYE: close once drained.
  bool read_eof SW_GUARDED_BY(io_mu) = false;  ///< Peer finished sending.
  std::string rbuf;
  std::string wbuf SW_GUARDED_BY(io_mu);
  /// Epoll interest mask currently registered for this fd (owning IO
  /// thread only; serialized under io_mu with the wbuf state it derives
  /// from).
  uint32_t epoll_mask = 0;
  /// Remaining bytes of a refused (oversized) FEEDB frame still to be
  /// discarded — the length prefix makes resync exact, so the
  /// connection survives the refusal. IO-thread-only, like rbuf.
  size_t skip_bytes = 0;
  /// Set when AdvanceConnection parked complete-but-unexecuted input
  /// behind the write high-water; an EOF must not close such a
  /// connection (the parked work resumes after the write buffer drains).
  /// The pump thread reads it when deciding to hand a draining
  /// connection back to the IO thread, hence the guard.
  bool input_parked SW_GUARDED_BY(io_mu) = false;
  /// Subscriptions upgraded to push streaming. The weak_ptr expires when
  /// the service reclaims the subscription (the pump then emits END).
  struct Stream {
    std::string label;  ///< "<session>.<sub>" as the client named it.
    std::weak_ptr<ResultQueue> queue;
  };
  std::vector<Stream> streams SW_GUARDED_BY(io_mu);

  /// IO-thread-only (interpreter calls are control-plane calls, made
  /// under the server's control mutex).
  std::unique_ptr<std::ostringstream> out;
  std::unique_ptr<CommandInterpreter> interpreter;
};

/// One sharded IO loop of the frontend: an epoll(7) event loop owning a
/// subset of the server's connections end to end — read, FEEDB/text
/// demux, execute, write — plus its own stream-pump thread draining only
/// this loop's streamed subscriptions. Loops share nothing per-connection;
/// the one shared seam is the control mutex (`control_mu`), under which
/// every interpreter / QueryService control-plane call from any loop is
/// serialized, preserving the service's serialized-control-plane contract
/// no matter how many loops run. Pumps never take the control mutex, so
/// delivery keeps draining even while a loop thread is parked inside a
/// backend Flush or a kBlock Push — and a slow consumer's pump stall
/// degrades its own loop's delivery scans only.
class EventLoop {
 public:
  /// All pointers must outlive the loop. `stopping` is the server-wide
  /// shutdown latch; `http_handler` may be null (no HTTP listener).
  EventLoop(int index, QueryService* service, Interner* interner,
            const ServerOptions* options, ServerCounters* counters,
            std::mutex* control_mu, HttpHandler* http_handler,
            const std::atomic<bool>* stopping);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and spawns the IO + pump threads.
  Status Start();

  /// Adopts an accepted fd onto this loop (thread-safe; the acceptor's
  /// handoff). Builds the connection, wires its interpreter and hooks,
  /// queues it for epoll registration on the IO thread, and wakes the
  /// loop.
  void Adopt(UniqueFd fd, bool http);

  /// Wakes the IO thread out of epoll_wait.
  void Wake();
  /// Wakes the pump thread (Stop's shutdown broadcast; stream
  /// registration notifies on its own).
  void NotifyPump();
  /// Joins the IO thread. Called after the stopping latch is set and the
  /// loop woken; the pump must still be running (it may need to unwedge a
  /// loop thread parked behind a kBlock queue).
  void JoinIo();
  /// Retires and joins the pump thread. Call only after JoinIo.
  void StopPump();

  /// Removes and returns every connection still owned by the loop
  /// (including not-yet-registered adoptees). Caller-thread teardown
  /// after both threads joined.
  std::vector<std::shared_ptr<ServerConnection>> TakeConnections();

  /// Tears the connection down: closes the fd and — unless
  /// `preserve_sessions` (Stop's shutdown path on a durable server) —
  /// closes every session its interpreter opened and reclaims detached
  /// subscriptions (a control-plane call, taken under the control mutex).
  /// Runs on the IO thread during normal operation and on the Stop caller
  /// during final teardown.
  void CloseConnection(const std::shared_ptr<ServerConnection>& conn,
                       bool preserve_sessions = false);

  int index() const { return index_; }
  /// Connections currently owned (registered + pending adoption).
  size_t connection_count() const;
  /// Coalesced drain-pass writes by this loop's pump.
  uint64_t pump_flushes() const {
    return pump_flushes_.load(std::memory_order_relaxed);
  }

 private:
  void IoLoop();
  void PumpLoop();

  /// Registers pending adoptees with epoll and re-advances connections
  /// the pump flagged (write buffer drained below high-water with parked
  /// input, or died mid-pump). IO thread only.
  void DrainHandoffQueues();

  /// Reads what's available into rbuf (noting EOF), then advances.
  void HandleReadable(const std::shared_ptr<ServerConnection>& conn);
  /// Executes buffered lines while the write buffer is below high-water,
  /// flushes, applies the BYE/EOF close-once-drained rules, and tears the
  /// connection down if it died. IO thread only; re-entered after a write
  /// drain to resume lines parked behind a full write buffer.
  void AdvanceConnection(const std::shared_ptr<ServerConnection>& conn);
  /// The HTTP sibling of AdvanceConnection: parses one request head from
  /// rbuf and answers it through the handler (whose providers make
  /// control-plane calls — taken under the control mutex, io_mu not
  /// held).
  void AdvanceHttp(const std::shared_ptr<ServerConnection>& conn);
  /// Executes one protocol line (interpreter under the control mutex) and
  /// appends the framed response to wbuf.
  void ExecuteLine(const std::shared_ptr<ServerConnection>& conn,
                   std::string_view line);
  /// Executes one decoded FEEDB batch (the binary sibling of
  /// ExecuteLine).
  void ExecuteFrame(const std::shared_ptr<ServerConnection>& conn,
                    const EdgeBatch& batch);
  /// STREAM/UNSTREAM hook target (runs on the IO thread, from inside the
  /// connection's interpreter, control mutex held).
  Status HandleStream(const std::shared_ptr<ServerConnection>& conn,
                      bool enable, std::string_view session,
                      std::string_view sub, int session_id,
                      int subscription_id);

  /// Drains streamed queues into wbuf (respecting write_high_water) and
  /// writes wbuf to the socket. Callable from either thread; io_mu must
  /// NOT be held. Returns false when the connection died mid-write.
  bool PumpConnection(const std::shared_ptr<ServerConnection>& conn);

  /// Nonblocking write of wbuf; io_mu must be held. False on fatal error.
  bool FlushWritesLocked(ServerConnection& conn) SW_REQUIRES(conn.io_mu);

  /// Recomputes the fd's epoll interest (EPOLLIN below write high-water,
  /// EPOLLOUT while wbuf is nonempty) and MODs it if changed. IO thread
  /// only.
  void UpdateInterest(const std::shared_ptr<ServerConnection>& conn);

  const int index_;
  QueryService* const service_;
  Interner* const interner_;
  const ServerOptions* const options_;
  ServerCounters* const counters_;
  /// The narrow locked handoff into the control plane: every interpreter
  /// / QueryService / HTTP-handler call from any loop serializes here.
  std::mutex* const control_mu_;
  HttpHandler* const http_handler_;
  const std::atomic<bool>* const stopping_;

  UniqueFd epoll_fd_;
  UniqueFd wake_read_;
  UniqueFd wake_write_;

  std::thread io_thread_;
  std::thread pump_thread_;
  std::atomic<bool> pump_stop_{false};

  /// Registered connections, keyed by fd (the epoll event's handle; a
  /// stale event after a same-pass close just misses the lookup).
  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<ServerConnection>> conns_
      SW_GUARDED_BY(conns_mu_);

  /// Acceptor→loop and pump→loop handoff: adoptees awaiting epoll
  /// registration, and connections needing IO-thread attention (parked
  /// input to resume, or teardown).
  std::mutex handoff_mu_;
  std::vector<std::shared_ptr<ServerConnection>> pending_
      SW_GUARDED_BY(handoff_mu_);
  std::vector<std::shared_ptr<ServerConnection>> dirty_
      SW_GUARDED_BY(handoff_mu_);

  /// Pump parking: woken by Stop and by STREAM registration. While no
  /// subscription on this loop is streaming the pump sleeps indefinitely
  /// instead of ticking, so an idle loop costs nothing.
  std::mutex pump_mu_;
  std::condition_variable pump_cv_;
  std::atomic<int> active_streams_{0};

  std::atomic<uint64_t> pump_flushes_{0};
};

}  // namespace streamworks

#endif  // STREAMWORKS_NET_EVENT_LOOP_H_
