#include "streamworks/net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "streamworks/common/str_util.h"

namespace streamworks {

namespace {

bool IsEvent(std::string_view line) { return StartsWith(line, "EVENT "); }

}  // namespace

StatusOr<LineClient> LineClient::ConnectTcp(const std::string& host,
                                            int port) {
  SW_ASSIGN_OR_RETURN(UniqueFd fd, streamworks::ConnectTcp(host, port));
  return LineClient(std::move(fd));
}

StatusOr<LineClient> LineClient::ConnectUnix(const std::string& path) {
  SW_ASSIGN_OR_RETURN(UniqueFd fd, streamworks::ConnectUnix(path));
  return LineClient(std::move(fd));
}

Status LineClient::SendLine(std::string_view line) {
  return SendRaw(std::string(line) + "\n");
}

Status LineClient::SendRaw(std::string_view bytes) {
  if (!fd_.valid()) return Status::FailedPrecondition("client closed");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status LineClient::SendFrame(const EdgeBatch& batch,
                             const Interner& interner) {
  SW_ASSIGN_OR_RETURN(const std::string frame,
                      EncodeFeedFrame(batch, interner));
  return SendRaw(frame);
}

StatusOr<std::pair<uint64_t, uint64_t>> LineClient::FeedBatch(
    const EdgeBatch& batch, const Interner& interner,
    std::chrono::milliseconds timeout) {
  SW_RETURN_IF_ERROR(SendFrame(batch, interner));
  // The response is framed exactly like a command's: payload lines, then
  // the "." terminator; EVENT lines may interleave.
  std::string ok_line;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline -
                                   std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::IoError("timed out waiting for the frame response");
    }
    SW_ASSIGN_OR_RETURN(std::string next, ReadLine(remaining));
    if (next == ".") break;
    if (IsEvent(next)) {
      events_.push_back(std::move(next));
      continue;
    }
    ok_line = std::move(next);
  }
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  const std::vector<std::string_view> fields = [&] {
    std::vector<std::string_view> out;
    for (std::string_view f : Split(ok_line, ' ')) {
      if (!f.empty()) out.push_back(f);
    }
    return out;
  }();
  if (fields.size() != 4 || fields[0] != "OK" || fields[1] != "feedb" ||
      !ParseUint64(fields[2], &accepted) ||
      !ParseUint64(fields[3], &rejected)) {
    return Status::Internal("server refused the frame: " + ok_line);
  }
  return std::make_pair(accepted, rejected);
}

StatusOr<std::string> LineClient::ReadLine(
    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // Consume via an offset and compact only before refilling: a drain
    // of thousands of EVENT lines must not pay a front-erase memmove per
    // line.
    const size_t pos = rbuf_.find('\n', rpos_);
    if (pos != std::string::npos) {
      std::string line = rbuf_.substr(rpos_, pos - rpos_);
      rpos_ = pos + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (rpos_ > 0) {
      rbuf_.erase(0, rpos_);
      rpos_ = 0;
    }
    if (!fd_.valid()) return Status::IoError("client closed");
    // remaining == 0 still polls (non-blockingly): a zero-timeout caller
    // gets data the kernel already has, not an unconditional timeout.
    const auto remaining = std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline - std::chrono::steady_clock::now())
               .count());
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) {
      return Status::IoError("timed out waiting for a protocol line");
    }
    char buf[4096];
    const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
    if (n > 0) {
      rbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::IoError("server closed the connection");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::IoError(std::string("read: ") + std::strerror(errno));
  }
}

StatusOr<std::vector<std::string>> LineClient::Command(
    std::string_view line, std::chrono::milliseconds timeout) {
  SW_RETURN_IF_ERROR(SendLine(line));
  std::vector<std::string> payload;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::IoError("timed out waiting for command response");
    }
    SW_ASSIGN_OR_RETURN(std::string next, ReadLine(remaining));
    if (next == ".") return payload;
    if (IsEvent(next)) {
      events_.push_back(std::move(next));
      continue;
    }
    payload.push_back(std::move(next));
  }
}

StatusOr<std::string> LineClient::NextEvent(
    std::chrono::milliseconds timeout) {
  if (!events_.empty()) {
    std::string event = std::move(events_.front());
    events_.pop_front();
    return event;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::IoError("timed out waiting for an event");
    }
    SW_ASSIGN_OR_RETURN(std::string next, ReadLine(remaining));
    if (IsEvent(next)) return next;
    return Status::Internal("non-event line outside a command exchange: " +
                            next);
  }
}

void LineClient::Quit() {
  if (!fd_.valid()) return;
  // Best effort: the server may already be gone.
  Command("BYE", std::chrono::milliseconds(500)).status().ok();
  fd_.reset();
}

}  // namespace streamworks
