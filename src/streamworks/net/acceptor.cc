#include "streamworks/net/acceptor.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "streamworks/common/logging.h"
#include "streamworks/obs/http_endpoint.h"

namespace streamworks {

Acceptor::Acceptor(int tcp_fd, int unix_fd, int http_fd,
                   const ServerOptions* options, ServerCounters* counters,
                   const std::vector<std::unique_ptr<EventLoop>>* loops)
    : tcp_fd_(tcp_fd),
      unix_fd_(unix_fd),
      http_fd_(http_fd),
      options_(options),
      counters_(counters),
      loops_(loops) {}

Status Acceptor::Start() {
  SW_ASSIGN_OR_RETURN(auto pipe_ends, MakeWakePipe());
  wake_read_ = std::move(pipe_ends.first);
  wake_write_ = std::move(pipe_ends.second);
  thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void Acceptor::Stop() {
  stop_.store(true, std::memory_order_release);
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
  if (thread_.joinable()) thread_.join();
}

void Acceptor::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_read_.get(), POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    if (http_fd_ >= 0) fds.push_back({http_fd_, POLLIN, 0});

    if (::poll(fds.data(), fds.size(), /*timeout=*/-1) < 0) {
      if (errno == EINTR) continue;
      SW_LOG(Error) << "poll(acceptor): " << std::strerror(errno);
      break;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    if (fds[0].revents & POLLIN) {  // drain the wake pipe
      char buf[64];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    size_t idx = 1;
    if (tcp_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) AcceptFrom(tcp_fd_, /*http=*/false);
      ++idx;
    }
    if (unix_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) AcceptFrom(unix_fd_, /*http=*/false);
      ++idx;
    }
    if (http_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) AcceptFrom(http_fd_, /*http=*/true);
      ++idx;
    }
  }
}

void Acceptor::AcceptFrom(int listen_fd, bool http) {
  while (true) {
    const int raw = ::accept(listen_fd, nullptr, nullptr);
    if (raw < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      SW_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    UniqueFd fd(raw);
    // Admission first: live_connections counts every adopted,
    // not-yet-torn-down connection across all loops, so the cap holds
    // server-wide no matter how the loops shard.
    if (counters_->live_connections.load(std::memory_order_acquire) >=
        options_->max_connections) {
      const std::string refusal =
          http ? EncodeHttpResponse(
                     {503, "text/plain; charset=utf-8", "server full\n"})
               : "ERR server full\n.\n";
      // MSG_NOSIGNAL: the refused peer may already be gone, and a raw
      // write would raise process-killing SIGPIPE.
      [[maybe_unused]] ssize_t n = ::send(fd.get(), refusal.data(),
                                          refusal.size(), MSG_NOSIGNAL);
      counters_->connections_refused.fetch_add(1);
      continue;  // fd closes on scope exit
    }
    if (!SetNonBlocking(fd.get()).ok()) continue;
    if (options_->so_sndbuf > 0) {
      ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &options_->so_sndbuf,
                   sizeof(options_->so_sndbuf));
    }
    counters_->live_connections.fetch_add(1);
    counters_->connections_accepted.fetch_add(1);
    EventLoop* loop = (*loops_)[next_loop_++ % loops_->size()].get();
    loop->Adopt(std::move(fd), http);
  }
}

}  // namespace streamworks
