#ifndef STREAMWORKS_SERVICE_BACKEND_H_
#define STREAMWORKS_SERVICE_BACKEND_H_

#include <vector>

#include "streamworks/core/engine.h"
#include "streamworks/core/parallel.h"
#include "streamworks/service/metrics.h"

namespace streamworks {

/// Uniform control surface the service layer drives, hiding whether
/// queries run on one StreamWorksEngine or are sharded across a
/// ParallelEngineGroup. This is the seam later deployment modes (remote
/// workers, multi-backend fan-out) plug into.
///
/// Threading contract: one control thread calls Register / Unregister /
/// Info / Feed* / Flush; match callbacks may run on backend worker threads
/// and must be thread-safe (the service hands the backend callbacks that
/// only touch ResultQueue and atomics).
class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  virtual StatusOr<int> Register(const QueryGraph& query,
                                 DecompositionStrategy strategy,
                                 Timestamp window, MatchCallback callback) = 0;

  /// After this returns, no further callbacks fire for the query.
  virtual Status Unregister(int query_id) = 0;

  virtual StatusOr<QueryRuntimeInfo> Info(int query_id) = 0;

  /// Ingests one edge. A malformed-edge error is reported for the
  /// single-engine backend; the parallel backend surfaces those only in
  /// aggregate counters (its ingestion is asynchronous).
  virtual Status Feed(const StreamEdge& edge) = 0;

  /// Ingests a whole batch on the batched fast path. Malformed edges are
  /// skipped, not batch-fatal; when `rejected_out` is non-null it receives
  /// how many edges the backend refused (always 0 for asynchronous
  /// backends, which surface rejections only in aggregate counters — the
  /// wire protocol reports that count per FEEDB frame).
  virtual Status FeedBatch(const EdgeBatch& batch,
                           size_t* rejected_out) = 0;

  /// Blocks until every previously fed edge is fully processed (and its
  /// callbacks have run).
  virtual void Flush() = 0;

  /// Per-shard load/exchange counters, for ServiceMetrics. Deployment
  /// modes without shards report nothing; the parallel backend quiesces
  /// its group to read consistent gauges — call from the control thread.
  virtual std::vector<ShardLoadSnapshot> ShardLoads() { return {}; }

  // --- Durability seam ------------------------------------------------------
  // The persistence layer (persist/) snapshots and recovers through these
  // three calls, staying ignorant of whether the window lives on one
  // engine or across a sharded group. All are control-thread calls.

  /// Point-in-time export of the retained window (quiesces asynchronous
  /// backends first).
  virtual StatusOr<WindowSnapshot> ExportWindow() {
    return Status::Unimplemented("backend does not support window export");
  }

  /// Rebuilds the window from an export. Must precede any registration
  /// or ingest; the registrations that follow backfill from it.
  virtual Status RestoreWindow(const WindowSnapshot& snapshot) {
    (void)snapshot;
    return Status::Unimplemented("backend does not support window restore");
  }

  /// Gates match delivery while a recovery replay rebuilds state whose
  /// completions the crashed incarnation already emitted.
  virtual void SetSuppressCompletions(bool suppress) { (void)suppress; }
};

/// In-process, single-threaded deployment: every query on one engine,
/// callbacks fire synchronously inside Feed.
class SingleEngineBackend : public QueryBackend {
 public:
  /// `engine` must outlive the backend.
  explicit SingleEngineBackend(StreamWorksEngine* engine) : engine_(engine) {}

  StatusOr<int> Register(const QueryGraph& query,
                         DecompositionStrategy strategy, Timestamp window,
                         MatchCallback callback) override;
  Status Unregister(int query_id) override;
  StatusOr<QueryRuntimeInfo> Info(int query_id) override;
  Status Feed(const StreamEdge& edge) override;
  Status FeedBatch(const EdgeBatch& batch, size_t* rejected_out) override;
  void Flush() override {}
  StatusOr<WindowSnapshot> ExportWindow() override;
  Status RestoreWindow(const WindowSnapshot& snapshot) override;
  void SetSuppressCompletions(bool suppress) override {
    engine_->set_suppress_completions(suppress);
  }

 private:
  StreamWorksEngine* engine_;
};

/// Sharded deployment over a ParallelEngineGroup in either sharding mode —
/// the tenant-facing choice between them is made where the group is
/// constructed (ShardingMode::kBroadcastData replicates the window graph
/// per shard and spreads queries; kPartitionedData partitions the data
/// graph by vertex and replicates queries, exchanging cross-shard partial
/// matches). Callbacks fire on shard threads, Feed is an asynchronous
/// enqueue, and ShardLoads surfaces per-shard retained memory plus
/// exchange traffic into ServiceMetrics.
class ParallelGroupBackend : public QueryBackend {
 public:
  /// `group` must outlive the backend.
  explicit ParallelGroupBackend(ParallelEngineGroup* group) : group_(group) {}

  StatusOr<int> Register(const QueryGraph& query,
                         DecompositionStrategy strategy, Timestamp window,
                         MatchCallback callback) override;
  Status Unregister(int query_id) override;
  StatusOr<QueryRuntimeInfo> Info(int query_id) override;
  Status Feed(const StreamEdge& edge) override;
  Status FeedBatch(const EdgeBatch& batch, size_t* rejected_out) override;
  void Flush() override { group_->Flush(); }
  std::vector<ShardLoadSnapshot> ShardLoads() override;
  StatusOr<WindowSnapshot> ExportWindow() override {
    return group_->ExportWindow();
  }
  Status RestoreWindow(const WindowSnapshot& snapshot) override {
    return group_->RestoreWindow(snapshot);
  }
  void SetSuppressCompletions(bool suppress) override {
    group_->SetSuppressCompletions(suppress);
  }

 private:
  ParallelEngineGroup* group_;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SERVICE_BACKEND_H_
