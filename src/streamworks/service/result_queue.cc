#include "streamworks/service/result_queue.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "streamworks/common/logging.h"

namespace streamworks {

std::string_view OverflowPolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDropOldest:
      return "drop_oldest";
    case OverflowPolicy::kDropNewest:
      return "drop_newest";
  }
  return "unknown";
}

StatusOr<OverflowPolicy> ParseOverflowPolicy(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "block") return OverflowPolicy::kBlock;
  if (lower == "drop_oldest") return OverflowPolicy::kDropOldest;
  if (lower == "drop_newest") return OverflowPolicy::kDropNewest;
  return Status::InvalidArgument("unknown overflow policy: " +
                                 std::string(name));
}

ResultQueue::ResultQueue(size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  SW_CHECK_GT(capacity, 0u);
}

void ResultQueue::Push(CompleteMatch match) {
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    ++counters_.dropped;
    return;
  }
  if (queue_.size() >= capacity_) {
    switch (policy_) {
      case OverflowPolicy::kBlock:
        cv_space_.wait(lock, [&] {
          return closed_ || queue_.size() < capacity_;
        });
        if (closed_) {
          ++counters_.dropped;
          return;
        }
        break;
      case OverflowPolicy::kDropOldest:
        queue_.pop_front();
        ++counters_.dropped;
        break;
      case OverflowPolicy::kDropNewest:
        ++counters_.dropped;
        return;
    }
  }
  queue_.push_back(Entry{std::move(match), std::chrono::steady_clock::now()});
  ++counters_.enqueued;
  cv_items_.notify_one();
}

void ResultQueue::PopFrontLocked(CompleteMatch* out) {
  Entry& front = queue_.front();
  const auto lag = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - front.enqueued_at);
  lag_.Record(static_cast<uint64_t>(std::max<int64_t>(0, lag.count())));
  *out = std::move(front.match);
  queue_.pop_front();
  ++counters_.delivered;
  cv_space_.notify_one();
}

bool ResultQueue::TryPop(CompleteMatch* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  PopFrontLocked(out);
  return true;
}

bool ResultQueue::WaitPop(CompleteMatch* out,
                          std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_items_.wait_for(lock, timeout,
                     [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  PopFrontLocked(out);
  return true;
}

size_t ResultQueue::Drain(std::vector<CompleteMatch>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = queue_.size();
  for (size_t i = 0; i < n; ++i) {
    CompleteMatch m;
    PopFrontLocked(&m);
    out->push_back(std::move(m));
  }
  return n;
}

size_t ResultQueue::DrainUpTo(std::vector<CompleteMatch>* out, size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min(queue_.size(), max);
  if (n == 0) return 0;
  // One clock read and one reservation for the whole chunk: producers on
  // the hot ingest path contend on mu_, so the drain must not pay a
  // steady_clock call (or a vector reallocation) per match while holding
  // it. Lag loses sub-chunk resolution, which the power-of-two histogram
  // buckets never showed anyway.
  const auto now = std::chrono::steady_clock::now();
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) {
    Entry& front = queue_.front();
    const auto lag = std::chrono::duration_cast<std::chrono::microseconds>(
        now - front.enqueued_at);
    lag_.Record(static_cast<uint64_t>(std::max<int64_t>(0, lag.count())));
    out->push_back(std::move(front.match));
    queue_.pop_front();
  }
  counters_.delivered += n;
  cv_space_.notify_all();
  return n;
}

void ResultQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_space_.notify_all();
  cv_items_.notify_all();
}

bool ResultQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t ResultQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ResultQueueCounters ResultQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

LagHistogram ResultQueue::lag_histogram() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lag_;
}

}  // namespace streamworks
