#ifndef STREAMWORKS_SERVICE_INTERPRETER_H_
#define STREAMWORKS_SERVICE_INTERPRETER_H_

#include <functional>
#include <map>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "streamworks/service/query_service.h"

namespace streamworks {

/// Line protocol that scripts whole multi-tenant scenarios against a
/// QueryService from text — fixtures, the service demo, and (later) a
/// network frontend all speak it. One command per line; `#` starts a
/// comment; blank lines are ignored.
///
///   DEFINE <query>              begin a query definition; the following
///     node <v> <Label>          lines are the query DSL body (node/edge/
///     edge <u> <v> <label>      window directives, see ParseQueryText)
///   END                         end the definition
///
///   SESSION <session>           open a session
///   ATTACH <session>            claim a recovery-restored session by
///                               name, together with its subscriptions'
///                               names (one claim per session; live
///                               sessions stay bound to their creator
///                               and refuse ATTACH)
///   SUBMIT <session> <sub> <query> [WINDOW <w>] [CAP <n>]
///          [POLICY block|drop_oldest|drop_newest] [STRATEGY <name>]
///                               submit <query> as subscription <sub>;
///                               prints "OK ..." or "REJECTED ..." (an
///                               admission rejection is a scenario
///                               outcome, not a script error)
///   PAUSE <session> <sub>
///   RESUME <session> <sub>
///   DETACH <session> <sub>
///   FEED <src> <SrcLabel> <dst> <DstLabel> <edgeLabel> <ts>
///                               ingest one stream edge
///   FLUSH                       wait until the backend drained everything
///   POLL <session> <sub>        drain the subscription's queue, printing
///                               one MATCH line per result
///   STREAM <session> <sub>      upgrade the subscription to push delivery
///   UNSTREAM <session> <sub>    back to POLL-only delivery
///   SNAPSHOT                    force a durability snapshot (needs the
///                               hosting frontend to run with a data dir)
///   STATS [JSON]                print the service-wide snapshot; with
///                               JSON, as one compact /stats.json document
///   TRACE                       print the slow-op trace ring (needs the
///                               hosting deployment to install pipeline
///                               metrics)
///
/// STREAM/UNSTREAM are transport commands: they only work when the hosting
/// frontend installed a stream hook (the socket server does; in-process
/// scripts get Unimplemented — there is no push channel to stream onto).
///
/// Malformed commands stop the script with InvalidArgument carrying the
/// line number.
class CommandInterpreter {
 public:
  /// All pointees must outlive the interpreter. `out` receives command
  /// output (OK/REJECTED/MATCH/STATS lines); nullptr silences it.
  CommandInterpreter(QueryService* service, Interner* interner,
                     std::ostream* out);

  /// Runs a whole script; stops at the first malformed line.
  Status ExecuteScript(std::string_view script);

  /// Runs one line (or accumulates it into an open DEFINE block).
  Status ExecuteLine(std::string_view line);

  /// Executes one decoded binary FEEDB frame: the whole batch rides the
  /// backend's batched fast path (QueryService::FeedBatch) and the frame
  /// is answered with a single "OK feedb <accepted> <rejected>" line —
  /// per-frame accounting where text FEED pays per edge. Malformed edges
  /// are a stream property (skipped and counted), never a script error.
  Status ExecuteBatch(const EdgeBatch& batch);

  /// Honours STREAM (enable=true) / UNSTREAM for an already-resolved
  /// subscription. Installed by a push-capable transport (the socket
  /// server binds it to the owning connection).
  using StreamHook =
      std::function<Status(bool enable, std::string_view session,
                           std::string_view sub, int session_id,
                           int subscription_id)>;
  void set_stream_hook(StreamHook hook) { stream_hook_ = std::move(hook); }

  /// Notified after every successful SUBMIT with the options it resolved
  /// to. A push-capable transport uses it to auto-upgrade kBlock
  /// subscriptions to streaming — over a socket the connection is the
  /// only consumer that can honour block's "producer waits for the
  /// consumer" promise without wedging the shared control thread.
  using SubmitHook = std::function<void(
      std::string_view session, std::string_view sub, int session_id,
      int subscription_id, const SubmitOptions& options)>;
  void set_submit_hook(SubmitHook hook) { submit_hook_ = std::move(hook); }

  /// Notified for every subscription a successful ATTACH adopted. The
  /// push-capable transport uses it exactly like the submit hook: a
  /// recovered kBlock subscription must be auto-upgraded to streaming
  /// before its owner can RESUME it, or the un-drained queue would
  /// block deliveries on the shared control thread (the PR 3 wedge,
  /// reachable via crash recovery otherwise).
  using AttachHook =
      std::function<void(std::string_view session, std::string_view sub,
                         int session_id, int subscription_id)>;
  void set_attach_hook(AttachHook hook) { attach_hook_ = std::move(hook); }

  /// Honours SNAPSHOT: forces a durability snapshot and returns a short
  /// human-readable summary ("wal_seq=N path"). Installed by a frontend
  /// whose deployment runs with a data dir (service_demo --data-dir);
  /// without it the verb answers Unimplemented.
  using SnapshotHook = std::function<StatusOr<std::string>()>;
  void set_snapshot_hook(SnapshotHook hook) {
    snapshot_hook_ = std::move(hook);
  }

  /// Honours TRACE: the deployment's shared pipeline instrumentation,
  /// installed by whoever wires it (service_demo). Must outlive the
  /// interpreter; without it the verb answers an error.
  void set_pipeline_metrics(PipelineMetrics* pipeline) {
    pipeline_ = pipeline;
  }

  /// Session name -> service session id, every session this interpreter
  /// opened. A network frontend uses it to close a disconnected tenant's
  /// sessions.
  const std::map<std::string, int, std::less<>>& sessions() const {
    return session_ids_;
  }

  uint64_t commands_executed() const { return commands_executed_; }
  /// Binary-path accounting: FEEDB frames executed and the edges they
  /// carried (each frame also counts once in commands_executed).
  uint64_t batch_frames() const { return batch_frames_; }
  uint64_t batch_edges() const { return batch_edges_; }

  /// Subscription handle resolved by "<session> <sub>" names; exposed so
  /// tests can cross-check interpreter-created state through the service
  /// API.
  StatusOr<std::pair<int, int>> ResolveSubscription(
      std::string_view session, std::string_view sub) const;

 private:
  /// Tokens are string_views into the line being executed (zero-copy; the
  /// tokenizer never allocates on the hot FEED path).
  using Tokens = std::span<const std::string_view>;

  Status Emit(const std::string& line);

  Status HandleSession(Tokens tokens);
  Status HandleAttach(Tokens tokens);
  Status HandleSubmit(Tokens tokens);
  Status HandleLifecycle(std::string_view verb, Tokens tokens);
  Status HandleFeed(Tokens tokens);
  Status HandlePoll(Tokens tokens);
  Status HandleStream(bool enable, Tokens tokens);

  QueryService* service_;
  Interner* interner_;
  std::ostream* out_;
  StreamHook stream_hook_;
  SubmitHook submit_hook_;
  AttachHook attach_hook_;
  SnapshotHook snapshot_hook_;
  PipelineMetrics* pipeline_ = nullptr;

  /// Transparent comparators: command handlers look names up as
  /// string_views without materializing std::strings.
  struct NamePairLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      const std::string_view a_first(a.first), b_first(b.first);
      if (a_first != b_first) return a_first < b_first;
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };
  std::map<std::string, ParsedQuery, std::less<>> definitions_;
  std::map<std::string, int, std::less<>> session_ids_;
  /// (session name, sub name) -> subscription id.
  std::map<std::pair<std::string, std::string>, int, NamePairLess>
      subscription_ids_;

  bool in_define_ = false;
  std::string define_name_;
  std::string define_body_;
  int line_number_ = 0;
  uint64_t commands_executed_ = 0;
  uint64_t batch_frames_ = 0;
  uint64_t batch_edges_ = 0;
};

}  // namespace streamworks

#endif  // STREAMWORKS_SERVICE_INTERPRETER_H_
